// acn_cli — characterize anomalies from CSV snapshots.
//
// Usage:
//   acn_cli characterize <snapshots.csv> --r 0.03 --tau 3 [--csv]
//   acn_cli demo [--n 500] [--errors 10] [--seed 1] [--r 0.03] [--tau 3]
//
// Input format for `characterize` (one row per device):
//   device_id, prev_1..prev_d, curr_1..curr_d, abnormal(0|1)
// The dimension d is inferred from the column count (columns = 2 + 2d).
//
// `demo` generates one interval of the paper's §VII-A workload and
// characterizes it — a no-input way to see the library run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/report.hpp"
#include "sim/scenario.hpp"

namespace {

struct Options {
  double r = 0.03;
  std::uint32_t tau = 3;
  bool csv_output = false;
  std::size_t n = 500;
  std::uint32_t errors = 10;
  std::uint64_t seed = 1;
};

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  acn_cli characterize <snapshots.csv> [--r R] [--tau T] [--csv]\n"
               "  acn_cli demo [--n N] [--errors A] [--seed S] [--r R] [--tau T]\n");
}

Options parse_flags(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](const char* name) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--r") {
      options.r = std::atof(need_value("--r").c_str());
    } else if (flag == "--tau") {
      options.tau = static_cast<std::uint32_t>(std::atoi(need_value("--tau").c_str()));
    } else if (flag == "--csv") {
      options.csv_output = true;
    } else if (flag == "--n") {
      options.n = static_cast<std::size_t>(std::atoll(need_value("--n").c_str()));
    } else if (flag == "--errors") {
      options.errors =
          static_cast<std::uint32_t>(std::atoi(need_value("--errors").c_str()));
    } else if (flag == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(std::atoll(need_value("--seed").c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return options;
}

acn::StatePair load_state(const std::string& path) {
  const auto rows = acn::read_csv_file(path);
  if (rows.empty()) throw std::runtime_error("empty CSV");
  std::size_t start = 0;
  // Skip a header row if the first cell is not numeric.
  if (!rows[0].empty() && rows[0][0].find_first_not_of("0123456789") !=
                              std::string::npos) {
    start = 1;
  }
  const std::size_t columns = rows[start].size();
  if (columns < 4 || (columns - 2) % 2 != 0) {
    throw std::runtime_error("expected columns: id, prev_1..d, curr_1..d, abnormal");
  }
  const std::size_t d = (columns - 2) / 2;

  std::vector<acn::Point> prev;
  std::vector<acn::Point> curr;
  std::vector<acn::DeviceId> abnormal;
  for (std::size_t rix = start; rix < rows.size(); ++rix) {
    const auto& row = rows[rix];
    if (row.size() != columns) {
      throw std::runtime_error("ragged CSV row " + std::to_string(rix));
    }
    std::vector<double> p(d);
    std::vector<double> c(d);
    for (std::size_t i = 0; i < d; ++i) {
      p[i] = std::atof(row[1 + i].c_str());
      c[i] = std::atof(row[1 + d + i].c_str());
    }
    prev.emplace_back(std::span<const double>(p));
    curr.emplace_back(std::span<const double>(c));
    if (std::atoi(row[1 + 2 * d].c_str()) != 0) {
      abnormal.push_back(static_cast<acn::DeviceId>(prev.size() - 1));
    }
  }
  return acn::StatePair(acn::Snapshot(std::move(prev)),
                        acn::Snapshot(std::move(curr)),
                        acn::DeviceSet(std::move(abnormal)));
}

int run_characterize(const std::string& path, const Options& options) {
  const acn::StatePair state = load_state(path);
  const acn::Params params{.r = options.r, .tau = options.tau};
  const acn::CharacterizationReport report = acn::make_report(state, params);
  std::fputs(options.csv_output ? report.to_csv().c_str()
                                : report.to_text().c_str(),
             stdout);
  return 0;
}

int run_demo(const Options& options) {
  acn::ScenarioParams params;
  params.n = options.n;
  params.d = 2;
  params.model = {.r = options.r, .tau = options.tau};
  params.errors_per_step = options.errors;
  params.isolated_probability = 0.4;
  params.seed = options.seed;
  params.apply_calibrated_profile();
  acn::ScenarioGenerator generator(params);
  const acn::ScenarioStep step = generator.advance();

  const acn::CharacterizationReport report =
      acn::make_report(step.state, params.model);
  if (options.csv_output) {
    std::fputs(report.to_csv().c_str(), stdout);
    return 0;
  }
  std::printf("generated interval: n=%zu errors=%u |A_k|=%zu (seed %llu)\n\n",
              params.n, options.errors, step.truth.abnormal.size(),
              static_cast<unsigned long long>(options.seed));
  std::fputs(report.to_text().c_str(), stdout);

  // Score against the generator's ground truth.
  std::size_t correct = 0;
  std::size_t decided = 0;
  for (const auto& [device, decision] : report.decisions) {
    if (decision.cls == acn::AnomalyClass::kUnresolved) continue;
    ++decided;
    const bool truly_massive = step.truth.truly_massive.contains(device);
    if ((decision.cls == acn::AnomalyClass::kMassive) == truly_massive) ++correct;
  }
  std::printf("\nground truth: %zu/%zu decided verdicts correct\n", correct, decided);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "characterize") {
      if (argc < 3) {
        usage();
        return 2;
      }
      return run_characterize(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "demo") {
      return run_demo(parse_flags(argc, argv, 2));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage();
  return 2;
}
