// acn_cli — characterize anomalies from CSV snapshots.
//
// Usage:
//   acn_cli characterize <snapshots.csv> --r 0.03 --tau 3 [--csv]
//   acn_cli demo [--n 500] [--errors 10] [--seed 1] [--r 0.03] [--tau 3]
//   acn_cli telemetry [--family F|list] [--n N] [--seed S] [--intervals K]
//                     [--regions G] [--window W] [--format prom|json]
//                     [--query anomaly-rate|verdict-mix|ms-percentiles|
//                      degraded-rate [--region I]] [--watch]
//
// Input format for `characterize` (one row per device):
//   device_id, prev_1..prev_d, curr_1..curr_d, abnormal(0|1)
// The dimension d is inferred from the column count (columns = 2 + 2d).
//
// `demo` generates one interval of the paper's §VII-A workload and
// characterizes it — a no-input way to see the library run.
//
// `telemetry` streams a hostile family through a telemetry-enabled
// OnlineMonitor and then either dumps the whole hub (--format prom|json),
// answers one trailing-window query (--query, optionally per --region), or
// tails one line per interval while streaming (--watch). This is the
// operator's view of the telemetry layer: the same store and exporters a
// deployment would scrape.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "online/monitor.hpp"
#include "sim/hostile.hpp"
#include "sim/scenario.hpp"

namespace {

struct Options {
  double r = 0.03;
  std::uint32_t tau = 3;
  bool csv_output = false;
  std::size_t n = 500;
  std::uint32_t errors = 10;
  std::uint64_t seed = 1;
};

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  acn_cli characterize <snapshots.csv> [--r R] [--tau T] [--csv]\n"
      "  acn_cli demo [--n N] [--errors A] [--seed S] [--r R] [--tau T]\n"
      "  acn_cli telemetry [--family F|list] [--n N] [--seed S]\n"
      "                    [--intervals K] [--regions G] [--window W]\n"
      "                    [--format prom|json] [--query Q [--region I]]\n"
      "                    [--watch]\n"
      "    Q: anomaly-rate | verdict-mix | ms-percentiles | degraded-rate\n");
}

Options parse_flags(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](const char* name) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--r") {
      options.r = std::atof(need_value("--r").c_str());
    } else if (flag == "--tau") {
      options.tau = static_cast<std::uint32_t>(std::atoi(need_value("--tau").c_str()));
    } else if (flag == "--csv") {
      options.csv_output = true;
    } else if (flag == "--n") {
      options.n = static_cast<std::size_t>(std::atoll(need_value("--n").c_str()));
    } else if (flag == "--errors") {
      options.errors =
          static_cast<std::uint32_t>(std::atoi(need_value("--errors").c_str()));
    } else if (flag == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(std::atoll(need_value("--seed").c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return options;
}

acn::StatePair load_state(const std::string& path) {
  const auto rows = acn::read_csv_file(path);
  if (rows.empty()) throw std::runtime_error("empty CSV");
  std::size_t start = 0;
  // Skip a header row if the first cell is not numeric.
  if (!rows[0].empty() && rows[0][0].find_first_not_of("0123456789") !=
                              std::string::npos) {
    start = 1;
  }
  const std::size_t columns = rows[start].size();
  if (columns < 4 || (columns - 2) % 2 != 0) {
    throw std::runtime_error("expected columns: id, prev_1..d, curr_1..d, abnormal");
  }
  const std::size_t d = (columns - 2) / 2;

  std::vector<acn::Point> prev;
  std::vector<acn::Point> curr;
  std::vector<acn::DeviceId> abnormal;
  for (std::size_t rix = start; rix < rows.size(); ++rix) {
    const auto& row = rows[rix];
    if (row.size() != columns) {
      throw std::runtime_error("ragged CSV row " + std::to_string(rix));
    }
    std::vector<double> p(d);
    std::vector<double> c(d);
    for (std::size_t i = 0; i < d; ++i) {
      p[i] = std::atof(row[1 + i].c_str());
      c[i] = std::atof(row[1 + d + i].c_str());
    }
    prev.emplace_back(std::span<const double>(p));
    curr.emplace_back(std::span<const double>(c));
    if (std::atoi(row[1 + 2 * d].c_str()) != 0) {
      abnormal.push_back(static_cast<acn::DeviceId>(prev.size() - 1));
    }
  }
  return acn::StatePair(acn::Snapshot(std::move(prev)),
                        acn::Snapshot(std::move(curr)),
                        acn::DeviceSet(std::move(abnormal)));
}

int run_characterize(const std::string& path, const Options& options) {
  const acn::StatePair state = load_state(path);
  const acn::Params params{.r = options.r, .tau = options.tau};
  const acn::CharacterizationReport report = acn::make_report(state, params);
  std::fputs(options.csv_output ? report.to_csv().c_str()
                                : report.to_text().c_str(),
             stdout);
  return 0;
}

int run_demo(const Options& options) {
  acn::ScenarioParams params;
  params.n = options.n;
  params.d = 2;
  params.model = {.r = options.r, .tau = options.tau};
  params.errors_per_step = options.errors;
  params.isolated_probability = 0.4;
  params.seed = options.seed;
  params.apply_calibrated_profile();
  acn::ScenarioGenerator generator(params);
  const acn::ScenarioStep step = generator.advance();

  const acn::CharacterizationReport report =
      acn::make_report(step.state, params.model);
  if (options.csv_output) {
    std::fputs(report.to_csv().c_str(), stdout);
    return 0;
  }
  std::printf("generated interval: n=%zu errors=%u |A_k|=%zu (seed %llu)\n\n",
              params.n, options.errors, step.truth.abnormal.size(),
              static_cast<unsigned long long>(options.seed));
  std::fputs(report.to_text().c_str(), stdout);

  // Score against the generator's ground truth.
  std::size_t correct = 0;
  std::size_t decided = 0;
  for (const auto& [device, decision] : report.decisions) {
    if (decision.cls == acn::AnomalyClass::kUnresolved) continue;
    ++decided;
    const bool truly_massive = step.truth.truly_massive.contains(device);
    if ((decision.cls == acn::AnomalyClass::kMassive) == truly_massive) ++correct;
  }
  std::printf("\nground truth: %zu/%zu decided verdicts correct\n", correct, decided);
  return 0;
}

// --- telemetry subcommand ------------------------------------------------

struct TelemetryOptions {
  std::string family = "regional-outage";
  std::size_t n = 400;
  std::uint64_t seed = 2014;
  int intervals = 24;
  std::uint32_t regions = 8;
  std::size_t window = 8;
  std::string format = "json";  ///< prom | json
  std::string query;            ///< empty = full dump
  int region = -1;              ///< -1 = fleet-wide
  bool watch = false;
};

TelemetryOptions parse_telemetry_flags(int argc, char** argv, int first) {
  TelemetryOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](const char* name) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--family") options.family = need_value("--family");
    else if (flag == "--n") {
      options.n = static_cast<std::size_t>(std::atoll(need_value("--n").c_str()));
    } else if (flag == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(std::atoll(need_value("--seed").c_str()));
    } else if (flag == "--intervals") {
      options.intervals = std::atoi(need_value("--intervals").c_str());
    } else if (flag == "--regions") {
      options.regions =
          static_cast<std::uint32_t>(std::atoi(need_value("--regions").c_str()));
    } else if (flag == "--window") {
      options.window =
          static_cast<std::size_t>(std::atoll(need_value("--window").c_str()));
    } else if (flag == "--format") options.format = need_value("--format");
    else if (flag == "--query") options.query = need_value("--query");
    else if (flag == "--region") {
      options.region = std::atoi(need_value("--region").c_str());
    } else if (flag == "--watch") options.watch = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return options;
}

int run_telemetry(const TelemetryOptions& options) {
  const std::vector<acn::HostileSpec> suite =
      acn::standard_hostile_suite(options.n, options.seed);
  if (options.family == "list") {
    for (const acn::HostileSpec& spec : suite) {
      std::printf("%-20s %s\n", spec.name.c_str(), spec.violates.c_str());
    }
    return 0;
  }
  const acn::HostileSpec* spec = nullptr;
  for (const acn::HostileSpec& candidate : suite) {
    if (candidate.name == options.family) spec = &candidate;
  }
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "unknown family '%s' (acn_cli telemetry --family list)\n",
                 options.family.c_str());
    return 2;
  }

  acn::HostileScenario scenario(spec->params);
  acn::OnlineMonitor::Config config;
  config.model = spec->params.base.model;
  config.telemetry = acn::obs::TelemetryConfig{
      .history = static_cast<std::size_t>(options.intervals) + 1,
      .regions = options.regions};
  acn::OnlineMonitor monitor(config);
  (void)monitor.observe(scenario.initial(), acn::DeviceSet{});
  const acn::obs::TelemetryHub& hub = *monitor.telemetry();
  for (int k = 0; k < options.intervals; ++k) {
    acn::HostileStep step = scenario.advance();
    (void)monitor.observe(std::move(step.observed), step.abnormal);
    if (options.watch) {
      const acn::obs::IntervalTelemetry& last = hub.store().latest();
      std::printf(
          "k=%llu ms=%.3f abnormal=%u isolated=%u massive=%u unresolved=%u "
          "episodes_open=%llu\n",
          static_cast<unsigned long long>(last.interval), last.total_ms,
          last.abnormal, last.isolated, last.massive, last.unresolved,
          static_cast<unsigned long long>(last.episodes_open));
    }
  }

  const acn::obs::TelemetryStore& store = hub.store();
  if (options.query == "anomaly-rate") {
    if (options.region >= 0) {
      std::printf(
          "{\"query\":\"anomaly-rate\",\"family\":\"%s\",\"window\":%zu,"
          "\"region\":%d,\"value\":%.6f}\n",
          spec->name.c_str(), options.window, options.region,
          store.region_anomaly_rate(static_cast<std::uint32_t>(options.region),
                                    options.window));
    } else {
      std::printf(
          "{\"query\":\"anomaly-rate\",\"family\":\"%s\",\"window\":%zu,"
          "\"value\":%.6f}\n",
          spec->name.c_str(), options.window, store.anomaly_rate(options.window));
    }
    return 0;
  }
  if (options.query == "verdict-mix") {
    const auto mix = store.verdict_mix(options.window);
    std::printf(
        "{\"query\":\"verdict-mix\",\"family\":\"%s\",\"window\":%zu,"
        "\"intervals\":%llu,\"abnormal\":%llu,\"isolated\":%llu,"
        "\"massive\":%llu,\"unresolved\":%llu,\"budget_exhausted\":%llu}\n",
        spec->name.c_str(), options.window,
        static_cast<unsigned long long>(mix.intervals),
        static_cast<unsigned long long>(mix.abnormal),
        static_cast<unsigned long long>(mix.isolated),
        static_cast<unsigned long long>(mix.massive),
        static_cast<unsigned long long>(mix.unresolved),
        static_cast<unsigned long long>(mix.budget_exhausted));
    return 0;
  }
  if (options.query == "ms-percentiles") {
    const auto pct = store.step_ms_percentiles(options.window);
    std::printf(
        "{\"query\":\"ms-percentiles\",\"family\":\"%s\",\"window\":%zu,"
        "\"p50\":%.4f,\"p90\":%.4f,\"p99\":%.4f,\"max\":%.4f}\n",
        spec->name.c_str(), options.window, pct.p50, pct.p90, pct.p99, pct.max);
    return 0;
  }
  if (options.query == "degraded-rate") {
    std::printf(
        "{\"query\":\"degraded-rate\",\"family\":\"%s\",\"window\":%zu,"
        "\"value\":%.6f}\n",
        spec->name.c_str(), options.window, store.degraded_rate(options.window));
    return 0;
  }
  if (!options.query.empty()) {
    std::fprintf(stderr, "unknown query '%s'\n", options.query.c_str());
    return 2;
  }

  if (options.format == "prom") {
    std::fputs(acn::obs::to_prometheus(hub, options.window).c_str(), stdout);
  } else if (options.format == "json") {
    std::printf("%s\n", acn::obs::to_json(hub, options.window).c_str());
  } else {
    std::fprintf(stderr, "unknown format '%s' (prom|json)\n",
                 options.format.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "characterize") {
      if (argc < 3) {
        usage();
        return 2;
      }
      return run_characterize(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "demo") {
      return run_demo(parse_flags(argc, argv, 2));
    }
    if (command == "telemetry") {
      return run_telemetry(parse_telemetry_flags(argc, argv, 2));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage();
  return 2;
}
