#!/usr/bin/env sh
# Record bench trajectories: run every bench binary and wrap its stdout and
# wall-clock seconds into BENCH_<name>.json, one file per bench, so PRs can
# commit/compare runs over time.
#
# Usage: tools/record_bench.sh [build-dir] [out-dir] [bench-name...]
#
# With no bench names, records every bench_* binary. Naming one or more
# benches (with or without the bench_ prefix) records just those in one
# invocation, e.g.:
#   tools/record_bench.sh build . hostile adversary
set -eu

build_dir=${1:-build}
out_dir=${2:-.}
if [ $# -ge 1 ]; then shift; fi
if [ $# -ge 1 ]; then shift; fi

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found; build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir --target bench -j" >&2
  exit 1
fi

# Resolve the bench set: all bench_* binaries, or the named subset.
if [ $# -eq 0 ]; then
  set -- "$build_dir"/bench/bench_*
else
  names=$*
  set --
  for name in $names; do
    case $name in bench_*) ;; *) name="bench_$name" ;; esac
    bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
      echo "error: $bin not found or not executable" >&2
      exit 1
    fi
    set -- "$@" "$bin"
  done
fi

# Emit a JSON string literal for stdin (escape backslash, quote, newline, tab).
json_escape() {
  sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' |
    awk 'NR>1 {printf "\\n"} {printf "%s", $0}'
}

# A failing bench must fail the whole invocation loudly and must NOT leave
# a BENCH_*.json behind: a committed file with ok=false (or a half-written
# one) looks like a recorded run and silently poisons later comparisons.
# Each bench writes to a temp file that is only moved into place on success.
tmp_file=
cleanup() { [ -n "$tmp_file" ] && rm -f "$tmp_file"; }
trap cleanup EXIT INT TERM

status=0
failed=
for bin in "$@"; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  out_file="$out_dir/BENCH_${name#bench_}.json"
  echo "== $name -> $out_file"
  start=$(date +%s)
  if output=$("$bin" 2>&1); then
    ok=true
  else
    bench_status=$?
    ok=false
    status=1
    failed="$failed $name"
    echo "error: $name exited with status $bench_status; $out_file NOT written" >&2
    printf '%s\n' "$output" | sed 's/^/  | /' >&2
  fi
  elapsed=$(( $(date +%s) - start ))
  if [ "$ok" = true ]; then
    tmp_file="$out_file.tmp.$$"
    {
      printf '{\n'
      printf '  "bench": "%s",\n' "$name"
      printf '  "recorded_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
      printf '  "elapsed_seconds": %s,\n' "$elapsed"
      printf '  "ok": %s,\n' "$ok"
      printf '  "stdout": "%s"\n' "$(printf '%s' "$output" | json_escape)"
      printf '}\n'
    } > "$tmp_file"
    mv "$tmp_file" "$out_file"
    tmp_file=
  fi
done

if [ $status -ne 0 ]; then
  echo "error: bench run failed:$failed (recorded files for failing benches were not written)" >&2
fi
exit $status
