#!/usr/bin/env sh
# Record bench trajectories: run every bench binary and wrap its stdout and
# wall-clock seconds into BENCH_<name>.json, one file per bench, so PRs can
# commit/compare runs over time.
#
# Usage: tools/record_bench.sh [--check-regression] [build-dir] [out-dir] [bench-name...]
#
# With no bench names, records every bench_* binary. Naming one or more
# benches (with or without the bench_ prefix) records just those in one
# invocation, e.g.:
#   tools/record_bench.sh build . hostile adversary
#
# --check-regression diffs every fresh ms/step figure against the same row
# of the previously committed BENCH_<name>.json (markdown-table cells and
# embedded-JSON "ms_per_step" entries alike) and exits non-zero when any
# row slowed down by more than 25% — the nightly perf gate. The new file is
# still written (the recording is honest either way); only the exit status
# flags the regression.
set -eu

check_regression=0
if [ "${1:-}" = "--check-regression" ]; then
  check_regression=1
  shift
fi

build_dir=${1:-build}
out_dir=${2:-.}
if [ $# -ge 1 ]; then shift; fi
if [ $# -ge 1 ]; then shift; fi

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found; build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir --target bench -j" >&2
  exit 1
fi

# Resolve the bench set: all bench_* binaries, or the named subset.
if [ $# -eq 0 ]; then
  set -- "$build_dir"/bench/bench_*
else
  names=$*
  set --
  for name in $names; do
    case $name in bench_*) ;; *) name="bench_$name" ;; esac
    bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
      echo "error: $bin not found or not executable" >&2
      exit 1
    fi
    set -- "$@" "$bin"
  done
fi

# The kernel dispatch the run will use (scalar or avx2, decided by CPUID /
# ACN_KERNELS at startup) — stamped into every recording's header so two
# BENCH_*.json files are only ever compared like-for-like. bench_kernels
# prints it; "unknown" when that binary isn't built.
kernel_dispatch=unknown
if [ -x "$build_dir/bench/bench_kernels" ]; then
  kernel_dispatch=$("$build_dir/bench/bench_kernels" --dispatch 2>/dev/null || echo unknown)
fi

# Provenance for like-for-like comparison: the commit the binaries were
# built from and the core count of the recording machine (a 1-core runner's
# parallel rows are not comparable to a 16-core workstation's).
git_commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
cpu_cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# Emit a JSON string literal for stdin (escape backslash, quote, newline, tab).
json_escape() {
  sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' |
    awk 'NR>1 {printf "\\n"} {printf "%s", $0}'
}

# Recover the recorded stdout from a committed BENCH_*.json (inverse of the
# json_escape line above — the files are written by this script, so the
# "stdout" field is always one line with those four escapes and no others).
json_unescape_stdout() {
  sed -n 's/^  "stdout": "\(.*\)"$/\1/p' "$1" |
    awk '{ gsub(/\\n/, "\n"); gsub(/\\t/, "\t"); gsub(/\\"/, "\""); gsub(/\\\\/, "\\"); print }'
}

# Key every ms/step figure in a bench's stdout, one "key value" pair per
# line, so two runs can be joined row by row:
#   - 10-column markdown rows with a numeric first cell (the
#     characterize-all grid): keys cell:<n>:<A>:{serial,parallel,scratch}
#   - embedded-JSON "ms_per_step" entries: keyed by the nearest preceding
#     "name" or "node_budget" (the hostile scenario/budget/delivery rows)
extract_ms_keys() {
  awk '
    {
      s = $0
      key = ""
      while (match(s, /"(name|node_budget)":("[^"]*"|[0-9]+)|"ms_per_step":[0-9.]+/)) {
        tok = substr(s, RSTART, RLENGTH)
        s = substr(s, RSTART + RLENGTH)
        if (tok ~ /^"ms_per_step"/) {
          split(tok, kv, ":")
          if (key != "") printf "json:%s %s\n", key, kv[2]
        } else {
          split(tok, kv, ":")
          key = kv[2]
          gsub(/"/, "", key)
        }
      }
    }
    /^\|/ {
      n = split($0, f, /\|/)
      if (n == 12 && f[2] ~ /^ *[0-9]+ *$/) {
        for (i = 2; i <= 10; i++) gsub(/ /, "", f[i])
        printf "cell:%s:%s:serial %s\n", f[2], f[3], f[8]
        printf "cell:%s:%s:parallel %s\n", f[2], f[3], f[9]
        printf "cell:%s:%s:scratch %s\n", f[2], f[3], f[10]
      }
    }'
}

# Joins the previous run's keys against the fresh run's; prints every row
# that slowed down >25% and returns non-zero if any did. Rows below 0.05 ms
# are skipped — at that scale the machine jitter dwarfs the signal.
report_regressions() {
  awk '
    NR == FNR { old[$1] = $2; next }
    { new[$1] = $2 }
    END {
      bad = 0
      for (k in new) {
        if (k in old && old[k] + 0 >= 0.05 && new[k] + 0 > old[k] * 1.25) {
          printf "  regression: %s %.3f -> %.3f ms/step (+%.0f%%)\n",
                 k, old[k], new[k], 100 * (new[k] / old[k] - 1)
          bad = 1
        }
      }
      exit bad
    }' "$1" "$2"
}

# A failing bench must fail the whole invocation loudly and must NOT leave
# a BENCH_*.json behind: a committed file with ok=false (or a half-written
# one) looks like a recorded run and silently poisons later comparisons.
# Each bench writes to a temp file that is only moved into place on success.
# (if-form, not `[ -n ] &&`: a short-circuit ending the EXIT trap with a
# false test makes the whole script exit 1 even when every bench passed)
tmp_file=
cleanup() { if [ -n "$tmp_file" ]; then rm -f "$tmp_file"; fi; }
trap cleanup EXIT INT TERM

status=0
failed=
for bin in "$@"; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  out_file="$out_dir/BENCH_${name#bench_}.json"
  echo "== $name -> $out_file"
  start=$(date +%s)
  if output=$("$bin" 2>&1); then
    ok=true
  else
    bench_status=$?
    ok=false
    status=1
    failed="$failed $name"
    echo "error: $name exited with status $bench_status; $out_file NOT written" >&2
    printf '%s\n' "$output" | sed 's/^/  | /' >&2
  fi
  elapsed=$(( $(date +%s) - start ))
  if [ "$ok" = true ] && [ $check_regression -eq 1 ] && [ -f "$out_file" ]; then
    old_keys="$out_dir/.bench_old_keys.$$"
    new_keys="$out_dir/.bench_new_keys.$$"
    json_unescape_stdout "$out_file" | extract_ms_keys > "$old_keys"
    printf '%s\n' "$output" | extract_ms_keys > "$new_keys"
    if ! report_regressions "$old_keys" "$new_keys"; then
      status=1
      failed="$failed $name(regression)"
      echo "error: $name regressed >25% vs committed $out_file" >&2
    fi
    rm -f "$old_keys" "$new_keys"
  fi
  if [ "$ok" = true ]; then
    tmp_file="$out_file.tmp.$$"
    {
      printf '{\n'
      printf '  "bench": "%s",\n' "$name"
      printf '  "recorded_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
      printf '  "elapsed_seconds": %s,\n' "$elapsed"
      printf '  "kernel_dispatch": "%s",\n' "$kernel_dispatch"
      printf '  "git_commit": "%s",\n' "$git_commit"
      printf '  "cpu_cores": %s,\n' "$cpu_cores"
      printf '  "ok": %s,\n' "$ok"
      printf '  "stdout": "%s"\n' "$(printf '%s' "$output" | json_escape)"
      printf '}\n'
    } > "$tmp_file"
    mv "$tmp_file" "$out_file"
    tmp_file=
  fi
done

if [ $status -ne 0 ]; then
  echo "error: bench run failed:$failed (crashed benches leave no JSON;" \
       "regressed benches are recorded but fail the run)" >&2
fi
exit $status
