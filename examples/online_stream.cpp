// Streaming example: OnlineMonitor over a live error stream, with the
// §VII-C adaptive snapshot scheduler and episode tracking. Shows the
// operator's view: per-interval verdicts, the sampler reacting to anomaly
// pressure, and the closed-episode ledger at the end.
#include <cstdio>

#include "online/monitor.hpp"
#include "sim/scenario.hpp"

int main() {
  acn::ScenarioParams params;
  params.n = 500;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 1;  // overridden per interval below
  params.isolated_probability = 0.4;
  params.massive_anchor_retries = 16;
  params.seed = 2024;
  acn::ScenarioGenerator generator(params);

  acn::OnlineMonitor::Config config;
  config.model = params.model;
  config.episode_quiet_intervals = 2;
  config.adaptive = acn::AdaptiveSampler::Config{.min_interval = 2,
                                                 .max_interval = 32,
                                                 .initial_interval = 8,
                                                 .decrease = 0.5,
                                                 .increase = 1.5};
  acn::OnlineMonitor monitor(config);

  // Prime with the initial fleet state.
  (void)monitor.observe(acn::Snapshot(generator.positions()), acn::DeviceSet{});

  // A bursty error stream: calm, storm, calm.
  const double rates[] = {0.2, 0.2, 3.0, 3.0, 3.0, 0.2, 0.2, 0.1, 0.1, 0.1};
  std::uint64_t interval = monitor.next_sampling_interval();
  double carry = 0.0;
  std::printf("interval | Delta | |A_k| | isolated | massive | unresolved\n");
  std::printf("---------+-------+-------+----------+---------+-----------\n");
  for (const double rate : rates) {
    carry += rate * static_cast<double>(interval);
    const auto errors = static_cast<std::uint32_t>(carry);
    carry -= errors;
    const acn::ScenarioStep step = generator.advance(errors);
    const acn::IntervalReport report =
        monitor.observe(step.state.curr(), step.truth.abnormal);
    std::printf("%8llu | %5llu | %5zu | %8zu | %7zu | %zu\n",
                static_cast<unsigned long long>(report.interval),
                static_cast<unsigned long long>(interval),
                report.abnormal.size(), report.isolated.size(),
                report.massive.size(), report.unresolved.size());
    interval = monitor.next_sampling_interval();
  }

  monitor.finish();
  std::printf("\nclosed episodes: %zu\n", monitor.episodes().closed().size());
  std::size_t sharpened = 0;
  std::size_t flapped = 0;
  for (const acn::Episode& episode : monitor.episodes().closed()) {
    sharpened += episode.sharpened() ? 1 : 0;
    flapped += episode.flapped() ? 1 : 0;
  }
  std::printf("episodes that sharpened from unresolved: %zu\n", sharpened);
  std::printf("episodes that flapped between classes:   %zu (should be ~0)\n",
              flapped);
  return 0;
}
