// Over-the-top (OTT) operator scenario from §I: the OTT rides on ISPs it
// does not control, so it wants the *opposite* filter from the ISP — be
// alerted on network-level (massive) events quickly, and ignore isolated
// customer-side problems. This example measures the detection latency from
// fault injection to the first massive verdict, per event.
#include <cstdio>
#include <optional>
#include <vector>

#include "detect/cusum.hpp"
#include "net/monitoring.hpp"

int main() {
  acn::Topology topology({.regions = 3,
                          .aggregations_per_region = 3,
                          .gateways_per_aggregation = 16,
                          .services = 2});  // 144 gateways
  acn::QosNetwork network(topology, {.base_qos = 0.9, .noise_sigma = 0.01},
                          /*seed=*/99);

  struct Event {
    acn::Fault fault;
    const char* label;
    std::optional<std::uint64_t> detected_tick;
  };
  std::vector<Event> events = {
      {{acn::FaultSite::kAggregation, 1, 0.5, 40, 24}, "aggregation outage", {}},
      {{acn::FaultSite::kRegion, 2, 0.45, 120, 24}, "regional outage", {}},
      {{acn::FaultSite::kServiceBackend, 1, 0.5, 200, 24}, "service backend", {}},
      // Distractors the OTT must NOT page on:
      {{acn::FaultSite::kGateway, 17, 0.6, 80, 12}, "lone gateway (ignore)", {}},
      {{acn::FaultSite::kGateway, 90, 0.5, 160, 12}, "lone gateway (ignore)", {}},
  };

  acn::FaultInjector faults;
  for (const Event& event : events) faults.inject(event.fault);

  acn::SwarmConfig config;
  config.model = {.r = 0.05, .tau = 3};
  config.snapshot_interval = 4;  // OTT samples aggressively for low latency
  // Detector false alarms are costlier here than in the ISP case: healthy
  // gateways all sit at the same healthy operating point of the QoS space,
  // so a handful of simultaneous spurious alarms *looks like* a correlated
  // massive event. Run the CUSUM conservatively.
  acn::CusumDetector prototype({.slack = 0.75, .threshold = 8.0, .warmup = 16});
  acn::MonitoringSwarm swarm(topology, config, prototype);

  std::uint64_t false_pages = 0;
  for (std::uint64_t t = 0; t < 260; ++t) {
    const auto outcome = swarm.tick(network, faults);
    if (!outcome.has_value() || outcome->massive.empty()) continue;
    // Attribute the massive verdict to the injected event(s) active now.
    bool attributed = false;
    for (Event& event : events) {
      const bool active = outcome->tick >= event.fault.start &&
                          outcome->tick < event.fault.start + event.fault.duration +
                                              config.snapshot_interval;
      const bool network_level = event.fault.site != acn::FaultSite::kGateway;
      if (active && network_level) {
        if (!event.detected_tick.has_value()) event.detected_tick = outcome->tick;
        attributed = true;
      }
    }
    if (!attributed) ++false_pages;
  }

  std::printf("event              | injected | detected | latency (ticks)\n");
  std::printf("-------------------+----------+----------+----------------\n");
  for (const Event& event : events) {
    if (event.fault.site == acn::FaultSite::kGateway) continue;
    if (event.detected_tick.has_value()) {
      std::printf("%-18s | %8llu | %8llu | %llu\n", event.label,
                  static_cast<unsigned long long>(event.fault.start),
                  static_cast<unsigned long long>(*event.detected_tick),
                  static_cast<unsigned long long>(*event.detected_tick -
                                                  event.fault.start));
    } else {
      std::printf("%-18s | %8llu |   missed |\n", event.label,
                  static_cast<unsigned long long>(event.fault.start));
    }
  }
  std::printf(
      "\nunattributed massive pages: %llu\n"
      "(residual false alarms: quiescent gateways share one healthy QoS\n"
      " operating point, so simultaneous spurious detector alarms can mimic\n"
      " a correlated event — tune the detector, or filter repeat offenders)\n",
      static_cast<unsigned long long>(false_pages));
  return 0;
}
