// Walkthrough of the paper's illustrative configurations (Figures 2, 3, 5):
// prints the maximal motions, the anomaly partitions found by exhaustive
// enumeration, and the local decisions — so you can follow §III-V of the
// paper with executable objects instead of pictures.
#include <cstdio>

#include "core/characterizer.hpp"
#include "core/partition_enumerator.hpp"

namespace {

acn::StatePair scene(const std::vector<std::pair<double, double>>& prev_curr) {
  std::vector<acn::Point> prev;
  std::vector<acn::Point> curr;
  std::vector<acn::DeviceId> all;
  for (std::size_t j = 0; j < prev_curr.size(); ++j) {
    prev.push_back(acn::Point{prev_curr[j].first});
    curr.push_back(acn::Point{prev_curr[j].second});
    all.push_back(static_cast<acn::DeviceId>(j));
  }
  return acn::StatePair(acn::Snapshot(prev), acn::Snapshot(curr), acn::DeviceSet(all));
}

void report(const char* title, const acn::StatePair& state, acn::Params params) {
  std::printf("=== %s (r=%.3f, tau=%u) ===\n", title, params.r, params.tau);

  acn::Characterizer characterizer(state, params);
  for (const acn::DeviceId j : state.abnormal()) {
    const auto& motions = characterizer.oracle().maximal_motions(j);
    std::printf("  device %u maximal motions:", j);
    for (const auto& motion : motions) std::printf(" %s", motion.to_string().c_str());
    std::printf("\n");
  }

  const acn::PartitionEnumerator enumerator(state, params);
  const auto partitions = enumerator.enumerate_all();
  std::printf("  anomaly partitions (%zu):\n", partitions.size());
  for (const auto& partition : partitions) {
    std::printf("    %s\n", partition.to_string().c_str());
  }

  const auto sets = characterizer.characterize_all();
  std::printf("  local verdicts: M_k=%s I_k=%s U_k=%s\n\n",
              sets.massive.to_string().c_str(), sets.isolated.to_string().c_str(),
              sets.unresolved.to_string().c_str());
}

}  // namespace

int main() {
  // Figure 2: ten devices, four maximal motions, partition not unique but
  // every partition classifies the devices the same way (no unresolved).
  report("Figure 2 - non-unique anomaly partition",
         scene({{0.10, 0.50},
                {0.16, 0.55},
                {0.18, 0.52},
                {0.24, 0.56},
                {0.60, 0.20},
                {0.62, 0.22},
                {0.64, 0.24},
                {0.66, 0.21},
                {0.68, 0.23},
                {0.90, 0.90}}),
         {.r = 0.05, .tau = 3});

  // Figure 3: five devices in a chain; the omniscient observer cannot tell
  // which of the two partitions happened: devices 1 and 5 are unresolved
  // (Theorem 3, ACP impossibility).
  report("Figure 3 - unresolved configuration (Theorem 3)",
         scene({{0.10, 0.50}, {0.14, 0.51}, {0.16, 0.52}, {0.18, 0.53}, {0.22, 0.54}}),
         {.r = 0.05, .tau = 3});

  // Figure 5: the ring of pairs; Theorem 6 is silent, Theorem 7 still
  // certifies every device massive.
  report("Figure 5 - Theorem 7 beyond Theorem 6",
         scene({{0.10, 0.01},
                {0.11, 0.00},
                {0.20, 0.10},
                {0.21, 0.11},
                {0.10, 0.20},
                {0.11, 0.21},
                {0.00, 0.10},
                {0.01, 0.11}}),
         {.r = 0.075, .tau = 3});
  return 0;
}
