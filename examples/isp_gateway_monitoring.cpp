// ISP scenario (the paper's §I motivation): a fleet of home gateways runs
// the full pipeline — per-service detectors feed a_k, periodic snapshots
// feed the local characterizer — while faults hit individual gateways and
// whole subtrees. Shows, snapshot by snapshot, who would have called the
// support centre and what actually gets reported.
#include <cstdio>

#include "common/table.hpp"
#include "detect/ewma.hpp"
#include "net/monitoring.hpp"

int main() {
  // 2 regions x 4 aggregations x 12 gateways = 96 gateways, 2 services.
  acn::Topology topology({.regions = 2,
                          .aggregations_per_region = 4,
                          .gateways_per_aggregation = 12,
                          .services = 2});
  acn::QosNetwork network(topology, {.base_qos = 0.92, .noise_sigma = 0.008},
                          /*seed=*/7);

  acn::FaultInjector faults;
  // Three gateway-local faults (hardware trouble at homes 5, 40, 77)...
  faults.inject({acn::FaultSite::kGateway, 5, 0.5, 24, 12});
  faults.inject({acn::FaultSite::kGateway, 40, 0.4, 56, 12});
  faults.inject({acn::FaultSite::kGateway, 77, 0.6, 88, 12});
  // ... one aggregation-switch outage (12 gateways at once) ...
  faults.inject({acn::FaultSite::kAggregation, 2, 0.5, 40, 16});
  // ... and one regional outage (48 gateways at once).
  faults.inject({acn::FaultSite::kRegion, 1, 0.45, 72, 16});

  acn::SwarmConfig config;
  config.model = {.r = 0.04, .tau = 3};
  config.snapshot_interval = 8;
  acn::EwmaDetector prototype({.alpha = 0.3, .k_sigma = 5.0, .warmup = 6});
  acn::MonitoringSwarm swarm(topology, config, prototype);
  acn::ReportCenter centre;

  std::printf("tick | |A_k| | isolated (call support)      | massive | unresolved\n");
  std::printf("-----+------+------------------------------+---------+-----------\n");
  for (std::uint64_t t = 0; t < 120; ++t) {
    const auto outcome = swarm.tick(network, faults);
    if (!outcome.has_value() || outcome->abnormal.empty()) continue;
    centre.ingest(*outcome);
    std::printf("%4llu | %4zu | %-28s | %7zu | %zu\n",
                static_cast<unsigned long long>(outcome->tick),
                outcome->abnormal.size(), outcome->isolated.to_string().c_str(),
                outcome->massive.size(), outcome->unresolved.size());
  }

  std::printf("\nsupport calls: naive policy %llu -> paper policy %llu "
              "(suppression %.1f%%)\n",
              static_cast<unsigned long long>(centre.naive_calls()),
              static_cast<unsigned long long>(centre.filtered_calls()),
              100.0 * centre.suppression_ratio());
  std::printf("network alerts pushed to the operator: %llu\n",
              static_cast<unsigned long long>(centre.network_alerts()));
  return 0;
}
