// Quickstart: characterize anomalies in two snapshots of a small fleet.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
//
// The scene: ten devices measured on one service (so the QoS space is
// [0,1]). Between the two snapshots, a network event drags five devices
// down together, one device fails on its own, and the rest stay healthy.
#include <cstdio>

#include "core/characterizer.hpp"

int main() {
  using acn::Point;

  // QoS of each device at time k-1 and at time k. Devices 0-4 share a
  // correlated drop (same displacement: a network event); device 5 crashes
  // alone; devices 6-9 are healthy and unchanged.
  const acn::Snapshot before({
      Point{0.90}, Point{0.91}, Point{0.92}, Point{0.93}, Point{0.94},  // group
      Point{0.88},                                                      // loner
      Point{0.95}, Point{0.96}, Point{0.97}, Point{0.98},               // healthy
  });
  const acn::Snapshot after({
      Point{0.30}, Point{0.31}, Point{0.32}, Point{0.33}, Point{0.34},
      Point{0.10},
      Point{0.95}, Point{0.96}, Point{0.97}, Point{0.98},
  });

  // A_k: the devices whose error-detection function fired (0-5 moved).
  const acn::DeviceSet abnormal({0, 1, 2, 3, 4, 5});
  const acn::StatePair state(before, after, abnormal);

  // Model parameters: consistency radius r and density threshold tau.
  const acn::Params params{.r = 0.04, .tau = 3};

  acn::Characterizer characterizer(state, params);
  std::printf("device | class      | decided by\n");
  std::printf("-------+------------+------------\n");
  for (const acn::DeviceId j : abnormal) {
    const acn::Decision decision = characterizer.characterize(j);
    std::printf("  %2u   | %-10s | %s\n", j, acn::to_string(decision.cls),
                acn::to_string(decision.rule));
  }

  // Bulk API: the three sets of the relaxed Anomaly Characterization
  // Problem. M_k / I_k are *certain*; U_k is provably undecidable.
  const acn::CharacterizationSets sets = characterizer.characterize_all();
  std::printf("\nM_k = %s\nI_k = %s\nU_k = %s\n", sets.massive.to_string().c_str(),
              sets.isolated.to_string().c_str(), sets.unresolved.to_string().c_str());
  return 0;
}
