// Export schema goldens: the Prometheus exposition text and the versioned
// "acn.telemetry.v1" JSON document for a fixed two-interval hub must match
// byte-for-byte. Any intentional schema change must update these strings
// (and bump the JSON schema version if the shape changes).
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace acn::obs {
namespace {

TelemetryHub make_hub() {
  TelemetryHub hub(TelemetryConfig{.history = 4, .regions = 2, .lanes = 1});

  IntervalTelemetry one;
  one.interval = 1;
  one.total_ms = 2.5;
  one.spans = {TraceSpan{"advance", 1.0, 0.0, 0.0, 0},
               TraceSpan{"characterize", 1.5, 0.75, 0.5, 2}};
  one.moved = 10;
  one.components = 3;
  one.motions = 4;
  one.shards = 2;
  one.devices = 100;
  one.abnormal = 4;
  one.isolated = 2;
  one.massive = 1;
  one.unresolved = 1;
  one.budget_exhausted = 1;
  one.degraded = false;
  one.episodes_opened = 2;
  one.episodes_closed = 0;
  one.episodes_open = 2;
  one.regions = {RegionStats{60, 3, 2, 1, 0}, RegionStats{40, 1, 0, 0, 1}};
  hub.record(std::move(one));

  IntervalTelemetry two;
  two.interval = 2;
  two.total_ms = 4.0;
  two.spans = {TraceSpan{"advance", 1.75, 0.0, 0.0, 0},
               TraceSpan{"characterize", 2.25, 1.25, 1.0, 2}};
  two.moved = 12;
  two.components = 2;
  two.motions = 3;
  two.shards = 2;
  two.devices = 100;
  two.abnormal = 2;
  two.isolated = 1;
  two.massive = 1;
  two.unresolved = 0;
  two.budget_exhausted = 0;
  two.degraded = true;
  two.episodes_opened = 0;
  two.episodes_closed = 1;
  two.episodes_open = 1;
  two.regions = {RegionStats{60, 1, 1, 0, 0}, RegionStats{40, 1, 0, 1, 0}};
  hub.record(std::move(two));

  IngestSample sample;
  sample.seal_lag = 2;
  sample.forced = true;
  sample.reported = 98;
  sample.replayed = 2;
  sample.deferred = 1;
  sample.retired = 0;
  sample.late_sealed = 3;
  sample.duplicates = 5;
  sample.shed_claims = 7;
  sample.open_intervals = 2;
  hub.annotate_ingest(2, sample);
  return hub;
}

constexpr const char* kGoldenProm =
    R"GOLD(# HELP acn_intervals_total Intervals observed
# TYPE acn_intervals_total counter
acn_intervals_total 2
# HELP acn_degraded_intervals_total Intervals sealed degraded (shed, deferred, or forced close)
# TYPE acn_degraded_intervals_total counter
acn_degraded_intervals_total 1
# HELP acn_abnormal_devices_total Abnormal device-intervals (|A_k|)
# TYPE acn_abnormal_devices_total counter
acn_abnormal_devices_total 6
# HELP acn_verdict_isolated_total Isolated verdicts
# TYPE acn_verdict_isolated_total counter
acn_verdict_isolated_total 3
# HELP acn_verdict_massive_total Massive verdicts
# TYPE acn_verdict_massive_total counter
acn_verdict_massive_total 2
# HELP acn_verdict_unresolved_total Unresolved verdicts
# TYPE acn_verdict_unresolved_total counter
acn_verdict_unresolved_total 1
# HELP acn_budget_exhausted_total Decisions that exhausted the Theorem-7 search budget (safe-side)
# TYPE acn_budget_exhausted_total counter
acn_budget_exhausted_total 1
# HELP acn_episodes_opened_total Episodes opened
# TYPE acn_episodes_opened_total counter
acn_episodes_opened_total 2
# HELP acn_episodes_closed_total Episodes closed
# TYPE acn_episodes_closed_total counter
acn_episodes_closed_total 1
# HELP acn_step_ms Wall-clock milliseconds per observed interval
# TYPE acn_step_ms histogram
acn_step_ms_bucket{le="0.5"} 0
acn_step_ms_bucket{le="1"} 0
acn_step_ms_bucket{le="2"} 0
acn_step_ms_bucket{le="5"} 2
acn_step_ms_bucket{le="10"} 2
acn_step_ms_bucket{le="20"} 2
acn_step_ms_bucket{le="50"} 2
acn_step_ms_bucket{le="100"} 2
acn_step_ms_bucket{le="200"} 2
acn_step_ms_bucket{le="500"} 2
acn_step_ms_bucket{le="1000"} 2
acn_step_ms_bucket{le="+Inf"} 2
acn_step_ms_sum 6.5
acn_step_ms_count 2
# HELP acn_fleet_devices Devices in the observed fleet
# TYPE acn_fleet_devices gauge
acn_fleet_devices 100
# HELP acn_open_episodes Episodes currently open
# TYPE acn_open_episodes gauge
acn_open_episodes 1
# HELP acn_last_abnormal |A_k| of the latest interval
# TYPE acn_last_abnormal gauge
acn_last_abnormal 2
# HELP acn_ingest_late_sealed_total Reports for already-sealed intervals (claim replayed)
# TYPE acn_ingest_late_sealed_total counter
acn_ingest_late_sealed_total 3
# HELP acn_ingest_duplicates_total Duplicate report deliveries absorbed
# TYPE acn_ingest_duplicates_total counter
acn_ingest_duplicates_total 5
# HELP acn_ingest_shed_claims_total Claim updates shed under overload
# TYPE acn_ingest_shed_claims_total counter
acn_ingest_shed_claims_total 7
# HELP acn_ingest_replayed_claims_total Active devices sealed without a report (last claim replayed)
# TYPE acn_ingest_replayed_claims_total counter
acn_ingest_replayed_claims_total 2
# HELP acn_ingest_forced_closes_total Timeout/flood forced seals
# TYPE acn_ingest_forced_closes_total counter
acn_ingest_forced_closes_total 1
# HELP acn_ingest_open_intervals Staging frames currently open
# TYPE acn_ingest_open_intervals gauge
acn_ingest_open_intervals 2
# HELP acn_anomaly_rate Abnormal device-intervals per device-interval over the window
# TYPE acn_anomaly_rate gauge
acn_anomaly_rate{window="2"} 0.03
# HELP acn_degraded_rate Share of degraded intervals over the window
# TYPE acn_degraded_rate gauge
acn_degraded_rate{window="2"} 0.5
# HELP acn_budget_exhausted_rate BudgetExhausted decisions per abnormal device over the window
# TYPE acn_budget_exhausted_rate gauge
acn_budget_exhausted_rate{window="2"} 0.166667
# HELP acn_region_anomaly_rate Per-region abnormal device-intervals per device-interval
# TYPE acn_region_anomaly_rate gauge
acn_region_anomaly_rate{region="0",window="2"} 0.0333333
# HELP acn_region_anomaly_rate Per-region abnormal device-intervals per device-interval
# TYPE acn_region_anomaly_rate gauge
acn_region_anomaly_rate{region="1",window="2"} 0.025
# HELP acn_step_ms_quantile Interval latency percentile (ms)
# TYPE acn_step_ms_quantile gauge
acn_step_ms_quantile{q="0.5",window="2"} 3.25
# HELP acn_step_ms_quantile Interval latency percentile (ms)
# TYPE acn_step_ms_quantile gauge
acn_step_ms_quantile{q="0.9",window="2"} 3.85
# HELP acn_step_ms_quantile Interval latency percentile (ms)
# TYPE acn_step_ms_quantile gauge
acn_step_ms_quantile{q="0.99",window="2"} 3.985
# HELP acn_step_ms_quantile Interval latency percentile (ms)
# TYPE acn_step_ms_quantile gauge
acn_step_ms_quantile{q="1",window="2"} 4
)GOLD";

constexpr const char* kGoldenJson =
    R"GOLD({"schema":"acn.telemetry.v1","window":2,"intervals":{"retained":2,"capacity":4,"first":1,"last":2},"rates":{"anomaly":0.03,"degraded":0.5,"budget_exhausted":0.166667},"verdict_mix":{"intervals":2,"abnormal":6,"isolated":3,"massive":2,"unresolved":1,"budget_exhausted":1},"step_ms":{"p50":3.25,"p90":3.85,"p99":3.985,"max":4},"regions":[{"region":0,"devices":120,"abnormal":4,"isolated":3,"massive":1,"unresolved":0,"anomaly_rate":0.0333333},{"region":1,"devices":80,"abnormal":2,"isolated":0,"massive":1,"unresolved":1,"anomaly_rate":0.025}],"last_interval":{"interval":2,"ms":4,"degraded":true,"devices":100,"abnormal":2,"isolated":1,"massive":1,"unresolved":0,"budget_exhausted":0,"moved":12,"components":2,"motions":3,"shards":2,"spans":[{"name":"advance","ms":1.75,"lane_max_ms":0,"lane_mean_ms":0,"lanes":0},{"name":"characterize","ms":2.25,"lane_max_ms":1.25,"lane_mean_ms":1,"lanes":2}],"episodes":{"opened":0,"closed":1,"open":1},"ingest":{"seal_lag":2,"forced":true,"reported":98,"replayed":2,"deferred":1,"retired":0,"late_sealed":3,"duplicates":5,"shed_claims":7,"open_intervals":2}},"metrics":[{"name":"acn_intervals_total","kind":"counter","value":2},{"name":"acn_degraded_intervals_total","kind":"counter","value":1},{"name":"acn_abnormal_devices_total","kind":"counter","value":6},{"name":"acn_verdict_isolated_total","kind":"counter","value":3},{"name":"acn_verdict_massive_total","kind":"counter","value":2},{"name":"acn_verdict_unresolved_total","kind":"counter","value":1},{"name":"acn_budget_exhausted_total","kind":"counter","value":1},{"name":"acn_episodes_opened_total","kind":"counter","value":2},{"name":"acn_episodes_closed_total","kind":"counter","value":1},{"name":"acn_step_ms","kind":"histogram","count":2,"sum":6.5,"buckets":[{"le":0.5,"count":0},{"le":1,"count":0},{"le":2,"count":0},{"le":5,"count":2},{"le":10,"count":0},{"le":20,"count":0},{"le":50,"count":0},{"le":100,"count":0},{"le":200,"count":0},{"le":500,"count":0},{"le":1000,"count":0},{"le":"inf","count":0}]},{"name":"acn_fleet_devices","kind":"gauge","value":100},{"name":"acn_open_episodes","kind":"gauge","value":1},{"name":"acn_last_abnormal","kind":"gauge","value":2},{"name":"acn_ingest_late_sealed_total","kind":"counter","value":3},{"name":"acn_ingest_duplicates_total","kind":"counter","value":5},{"name":"acn_ingest_shed_claims_total","kind":"counter","value":7},{"name":"acn_ingest_replayed_claims_total","kind":"counter","value":2},{"name":"acn_ingest_forced_closes_total","kind":"counter","value":1},{"name":"acn_ingest_open_intervals","kind":"gauge","value":2}]})GOLD";

TEST(TelemetryExport, PrometheusGolden) {
  const TelemetryHub hub = make_hub();
  EXPECT_EQ(to_prometheus(hub, 2), kGoldenProm);
}

TEST(TelemetryExport, JsonGolden) {
  const TelemetryHub hub = make_hub();
  EXPECT_EQ(to_json(hub, 2), kGoldenJson);
}

// The JSON document must stay parseable in the trivial sense: balanced
// braces/brackets and no trailing garbage. A real parser lives in the sim
// harness' consumers; here we guard the invariants a schema bump would break.
TEST(TelemetryExport, JsonStructurallyBalanced) {
  const TelemetryHub hub = make_hub();
  const std::string json = to_json(hub, 2);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// An empty hub still exports a valid document (null last_interval, zero rates).
TEST(TelemetryExport, EmptyHubExports) {
  const TelemetryHub hub(TelemetryConfig{.history = 2, .regions = 1, .lanes = 1});
  const std::string json = to_json(hub, 0);
  EXPECT_NE(json.find("\"schema\":\"acn.telemetry.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"last_interval\":null"), std::string::npos);
  const std::string prom = to_prometheus(hub, 0);
  EXPECT_NE(prom.find("acn_intervals_total 0"), std::string::npos);
}

}  // namespace
}  // namespace acn::obs
