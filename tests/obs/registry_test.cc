// MetricsRegistry: registration, hot-path semantics, and the lane-shard
// concurrency contract — concurrent lane writers against a snapshotting
// reader must be data-race-free (the TSan CI job runs this suite) and the
// merged totals must be exact once the writers join.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace acn::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulateAcrossLanes) {
  MetricsRegistry registry(3);
  const MetricId a = registry.counter("a_total", "a");
  const MetricId b = registry.counter("b_total", "b");
  registry.add(a, 1, 0);
  registry.add(a, 2, 1);
  registry.add(a, 3, 2);
  registry.add(b, 10, 1);
  const auto values = registry.snapshot();
  EXPECT_EQ(values[a].count, 6u);
  EXPECT_EQ(values[b].count, 10u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  const MetricId g = registry.gauge("level", "g");
  registry.set(g, 4.5);
  registry.set(g, -1.25);
  EXPECT_DOUBLE_EQ(registry.snapshot()[g].value, -1.25);
}

TEST(MetricsRegistry, HistogramBucketsCountAndSum) {
  MetricsRegistry registry(2);
  const MetricId h = registry.histogram("ms", "h", {1.0, 10.0, 100.0});
  registry.observe(h, 0.5, 0);    // bucket le=1
  registry.observe(h, 1.0, 1);    // le=1 (bounds are inclusive upper bounds)
  registry.observe(h, 7.0, 0);    // le=10
  registry.observe(h, 1000.0, 1); // +Inf
  const auto values = registry.snapshot();
  ASSERT_EQ(values[h].buckets.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(values[h].buckets[0], 2u);
  EXPECT_EQ(values[h].buckets[1], 1u);
  EXPECT_EQ(values[h].buckets[2], 0u);
  EXPECT_EQ(values[h].buckets[3], 1u);
  EXPECT_EQ(values[h].count, 4u);
  EXPECT_DOUBLE_EQ(values[h].value, 0.5 + 1.0 + 7.0 + 1000.0);
}

TEST(MetricsRegistry, HistogramBoundsValidated) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", "", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("bad", "", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("bad", "", {1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, MetadataRoundTrips) {
  MetricsRegistry registry;
  const MetricId c = registry.counter("x_total", "help text");
  EXPECT_EQ(registry.metrics()[c].name, "x_total");
  EXPECT_EQ(registry.metrics()[c].help, "help text");
  EXPECT_EQ(registry.metrics()[c].kind, MetricKind::kCounter);
}

// The concurrency property the whole design rests on: one writer thread per
// lane hammering counters and histograms while a reader thread snapshots
// concurrently. TSan must stay quiet (every slot is a relaxed atomic, lanes
// are disjoint); counter snapshots must be monotone while writers run; and
// the post-join totals must be exact.
TEST(MetricsRegistry, ConcurrentLaneWritersVsSnapshotReader) {
  constexpr unsigned kLanes = 4;
  constexpr std::uint64_t kPerLane = 20'000;
  MetricsRegistry registry(kLanes);
  const MetricId counter = registry.counter("ops_total", "");
  const MetricId hist = registry.histogram("lat_ms", "", {1.0, 4.0, 16.0});

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto values = registry.snapshot();
      EXPECT_GE(values[counter].count, last);
      last = values[counter].count;
      EXPECT_LE(values[hist].count, kLanes * kPerLane);
    }
  });

  std::vector<std::thread> writers;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    writers.emplace_back([&, lane] {
      for (std::uint64_t i = 0; i < kPerLane; ++i) {
        registry.add(counter, 1, lane);
        registry.observe(hist, static_cast<double>(i % 20), lane);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto values = registry.snapshot();
  EXPECT_EQ(values[counter].count, kLanes * kPerLane);
  EXPECT_EQ(values[hist].count, kLanes * kPerLane);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : values[hist].buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kLanes * kPerLane);
  // Sum of i % 20 over kPerLane iterations, per lane.
  const double per_lane_sum =
      (kPerLane / 20) * (19.0 * 20.0 / 2.0);
  EXPECT_DOUBLE_EQ(values[hist].value, kLanes * per_lane_sum);
}

}  // namespace
}  // namespace acn::obs
