// Telemetry is observation-only: with the hub on or off, every verdict of
// every interval must be byte-identical (all six Decision fields, all four
// verdict sets, the degraded flag) across the whole hostile suite — both
// through the fixed-fleet OnlineMonitor front door and through the full
// IngestPipeline (watermark seals, roster churn, ingest annotation). The
// hub reads only interval OUTPUTS, so this holds by construction; the test
// pins it so a future telemetry hook cannot silently reach into the
// decision path.
#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/pipeline.hpp"
#include "obs/telemetry.hpp"
#include "online/monitor.hpp"
#include "sim/hostile.hpp"
#include "sim/report_source.hpp"

namespace acn {
namespace {

constexpr std::size_t kFleet = 160;
constexpr std::uint64_t kSuiteSeed = 2014;
constexpr int kIntervals = 6;

struct Stream {
  Snapshot initial;
  std::vector<ObservedInterval> intervals;
};

Stream materialize(const HostileSpec& spec, int intervals) {
  HostileScenario scenario(spec.params);
  Stream stream{scenario.initial(), {}};
  for (int k = 0; k < intervals; ++k) {
    HostileStep step = scenario.advance();
    stream.intervals.push_back(
        ObservedInterval{std::move(step.observed), std::move(step.abnormal)});
  }
  return stream;
}

void expect_same_report(const IntervalReport& got, const IntervalReport& want,
                        const HostileSpec& spec, std::size_t interval,
                        const char* path) {
  EXPECT_EQ(got.interval, want.interval);
  EXPECT_EQ(got.degraded, want.degraded);
  EXPECT_TRUE(got.abnormal == want.abnormal && got.isolated == want.isolated &&
              got.massive == want.massive && got.unresolved == want.unresolved)
      << "REPRO: family=" << spec.name << " suite-seed=" << kSuiteSeed
      << " interval=" << interval << " path=" << path;
  ASSERT_EQ(got.decisions.size(), want.decisions.size())
      << "REPRO: family=" << spec.name << " interval=" << interval;
  auto it = want.decisions.begin();
  for (const auto& [device, a] : got.decisions) {
    ASSERT_EQ(device, it->first);
    const Decision& b = it->second;
    EXPECT_TRUE(a.cls == b.cls && a.rule == b.rule && a.exact == b.exact &&
                a.maximal_motion_count == b.maximal_motion_count &&
                a.dense_motion_count == b.dense_motion_count &&
                a.collections_tested == b.collections_tested)
        << "REPRO: family=" << spec.name << " suite-seed=" << kSuiteSeed
        << " interval=" << interval << " path=" << path
        << " device=" << device;
    ++it;
  }
}

std::vector<IntervalReport> run_monitor(const HostileSpec& spec,
                                        const Stream& stream, bool telemetry) {
  OnlineMonitor::Config config;
  config.model = spec.params.base.model;
  config.characterize = CharacterizeOptions{.parallel_grain = 1};
  if (telemetry) {
    config.telemetry = obs::TelemetryConfig{.history = 16, .regions = 4};
  }
  OnlineMonitor monitor(config);
  (void)monitor.observe(stream.initial, DeviceSet{});
  std::vector<IntervalReport> reports;
  for (const ObservedInterval& interval : stream.intervals) {
    reports.push_back(monitor.observe(interval.positions, interval.abnormal));
  }
  // Query sanity on the live hub before the monitor dies.
  if (telemetry) {
    const obs::TelemetryHub* hub = monitor.telemetry();
    EXPECT_NE(hub, nullptr);
    // Priming interval + every observed interval, clamped by history.
    EXPECT_EQ(hub->store().size(),
              std::min<std::size_t>(stream.intervals.size() + 1, 16));
    const double rate = hub->store().anomaly_rate(0);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    EXPECT_EQ(hub->store().region_totals(0).size(), 4u);
    for (std::uint32_t r = 0; r < hub->regions(); ++r) {
      const double region_rate = hub->store().region_anomaly_rate(r, 0);
      EXPECT_GE(region_rate, 0.0);
      EXPECT_LE(region_rate, 1.0);
    }
  } else {
    EXPECT_EQ(monitor.telemetry(), nullptr);
  }
  return reports;
}

TEST(TelemetryConformance, MonitorVerdictsIdenticalOnOrOff) {
  for (const HostileSpec& spec : standard_hostile_suite(kFleet, kSuiteSeed)) {
    const Stream stream = materialize(spec, kIntervals);
    const std::vector<IntervalReport> off = run_monitor(spec, stream, false);
    const std::vector<IntervalReport> on = run_monitor(spec, stream, true);
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t k = 0; k < off.size(); ++k) {
      expect_same_report(on[k], off[k], spec, k, "monitor");
    }
  }
}

std::vector<ClosedInterval> run_pipeline(const HostileSpec& spec,
                                         const Stream& stream,
                                         bool telemetry) {
  IngestPipeline::Config config;
  config.monitor.model = spec.params.base.model;
  config.monitor.characterize = CharacterizeOptions{.parallel_grain = 1};
  if (telemetry) {
    config.monitor.telemetry = obs::TelemetryConfig{.history = 16, .regions = 4};
  }
  config.capacity = stream.initial.size();
  config.dim = stream.initial[0].dim();
  config.watermark.allowed_lag = 2;
  IngestPipeline pipeline(config);
  pipeline.prime(stream.initial);
  // Mild reorder within the lateness budget: telemetry must be inert even
  // on the degraded-tolerant path, not just in-order exactly-once.
  DeliveryFaults faults;
  faults.reorder_window = 3;
  faults.duplicate_rate = 0.05;
  for (const QosReport& report : delivery_schedule(stream.intervals, faults)) {
    pipeline.push(report);
  }
  pipeline.finish();
  std::vector<ClosedInterval> closed = pipeline.drain_ready();
  if (telemetry) {
    const obs::TelemetryHub* hub = pipeline.monitor().telemetry();
    EXPECT_NE(hub, nullptr);
    // Every sealed interval got its ingest annotation (the latest is the
    // cheapest to reach; eviction would only drop older ones).
    EXPECT_FALSE(hub->store().empty());
    if (!hub->store().empty()) {
      EXPECT_TRUE(hub->store().latest().ingest.has_value());
    }
  }
  return closed;
}

TEST(TelemetryConformance, PipelineVerdictsIdenticalOnOrOff) {
  for (const HostileSpec& spec : standard_hostile_suite(kFleet, kSuiteSeed)) {
    const Stream stream = materialize(spec, kIntervals);
    const std::vector<ClosedInterval> off = run_pipeline(spec, stream, false);
    const std::vector<ClosedInterval> on = run_pipeline(spec, stream, true);
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t k = 0; k < off.size(); ++k) {
      EXPECT_EQ(on[k].interval, off[k].interval);
      EXPECT_EQ(on[k].forced, off[k].forced);
      EXPECT_EQ(on[k].degraded, off[k].degraded);
      expect_same_report(on[k].report, off[k].report, spec, k, "pipeline");
    }
  }
}

}  // namespace
}  // namespace acn
