// TelemetryStore: ring eviction, recency indexing, and every trailing-window
// query against hand-computed records.
#include "obs/store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace acn::obs {
namespace {

IntervalTelemetry record_at(std::uint64_t interval) {
  IntervalTelemetry record;
  record.interval = interval;
  record.total_ms = static_cast<double>(interval);
  record.devices = 100;
  record.abnormal = static_cast<std::uint32_t>(interval % 5);
  record.degraded = interval % 4 == 0;
  return record;
}

TEST(TelemetryStore, RingEvictsOldestAndKeepsRecencyOrder) {
  TelemetryStore store(8);
  EXPECT_TRUE(store.empty());
  for (std::uint64_t k = 0; k < 20; ++k) store.push(record_at(k));

  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(store.capacity(), 8u);
  EXPECT_EQ(store.latest().interval, 19u);
  // from_latest walks back newest -> oldest retained.
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.from_latest(i).interval, 19u - i);
  }
  // Evicted intervals are gone; retained ones findable.
  EXPECT_EQ(store.find(11), nullptr);
  ASSERT_NE(store.find(12), nullptr);
  EXPECT_EQ(store.find(12)->interval, 12u);
}

TEST(TelemetryStore, FindAllowsInPlaceAnnotation) {
  TelemetryStore store(4);
  store.push(record_at(7));
  IngestSample sample;
  sample.duplicates = 3;
  store.find(7)->ingest = sample;
  ASSERT_TRUE(store.latest().ingest.has_value());
  EXPECT_EQ(store.latest().ingest->duplicates, 3u);
}

TEST(TelemetryStore, WindowedVerdictMixAndRates) {
  TelemetryStore store(16);
  // intervals 0..9: abnormal = k % 5, devices = 100, degraded when k % 4 == 0.
  for (std::uint64_t k = 0; k < 10; ++k) store.push(record_at(k));

  // Window 4 = intervals 6,7,8,9: abnormal 1+2+3+4 = 10 over 400 devices.
  const auto mix = store.verdict_mix(4);
  EXPECT_EQ(mix.intervals, 4u);
  EXPECT_EQ(mix.abnormal, 10u);
  EXPECT_DOUBLE_EQ(store.anomaly_rate(4), 10.0 / 400.0);
  // Degraded in {6,7,8,9}: only 8 -> 1/4.
  EXPECT_DOUBLE_EQ(store.degraded_rate(4), 0.25);
  // Window 0 = everything retained (10 records).
  EXPECT_EQ(store.verdict_mix(0).intervals, 10u);
  // Oversized windows clamp.
  EXPECT_EQ(store.verdict_mix(99).intervals, 10u);
}

TEST(TelemetryStore, RegionQueries) {
  TelemetryStore store(8);
  IntervalTelemetry a = record_at(1);
  a.regions = {RegionStats{50, 5, 3, 2, 0}, RegionStats{50, 0, 0, 0, 0}};
  IntervalTelemetry b = record_at(2);
  b.regions = {RegionStats{60, 1, 1, 0, 0}, RegionStats{40, 3, 0, 3, 0}};
  store.push(std::move(a));
  store.push(std::move(b));

  EXPECT_DOUBLE_EQ(store.region_anomaly_rate(0, 0), 6.0 / 110.0);
  EXPECT_DOUBLE_EQ(store.region_anomaly_rate(1, 0), 3.0 / 90.0);
  EXPECT_DOUBLE_EQ(store.region_anomaly_rate(1, 1), 3.0 / 40.0);  // last only
  EXPECT_DOUBLE_EQ(store.region_anomaly_rate(7, 0), 0.0);  // absent region

  const auto totals = store.region_totals(0);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].devices, 110u);
  EXPECT_EQ(totals[0].abnormal, 6u);
  EXPECT_EQ(totals[1].massive, 3u);
}

TEST(TelemetryStore, BudgetExhaustedRate) {
  TelemetryStore store(4);
  IntervalTelemetry r = record_at(1);
  r.abnormal = 8;
  r.budget_exhausted = 2;
  store.push(std::move(r));
  EXPECT_DOUBLE_EQ(store.budget_exhausted_rate(0), 0.25);
  TelemetryStore empty_store(4);
  EXPECT_DOUBLE_EQ(empty_store.budget_exhausted_rate(0), 0.0);
}

TEST(TelemetryStore, StepMsPercentiles) {
  TelemetryStore store(16);
  // total_ms = interval, intervals 0..9 -> sorted ms 0..9.
  for (std::uint64_t k = 0; k < 10; ++k) store.push(record_at(k));
  const auto pct = store.step_ms_percentiles(0);
  EXPECT_DOUBLE_EQ(pct.p50, 4.5);
  EXPECT_NEAR(pct.p90, 8.1, 1e-9);
  EXPECT_NEAR(pct.p99, 8.91, 1e-9);
  EXPECT_DOUBLE_EQ(pct.max, 9.0);
  // Empty store: all zeros, no crash.
  TelemetryStore empty_store(4);
  EXPECT_DOUBLE_EQ(empty_store.step_ms_percentiles(0).p50, 0.0);
}

TEST(TelemetryStore, SeriesOldestFirstAndUnknownDimensionThrows) {
  TelemetryStore store(4);
  for (std::uint64_t k = 10; k < 16; ++k) store.push(record_at(k));  // keeps 12..15
  const auto points = store.series("ms", 3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].first, 13u);  // oldest of the window first
  EXPECT_EQ(points[2].first, 15u);
  EXPECT_DOUBLE_EQ(points[2].second, 15.0);
  const auto rate = store.series("anomaly_rate", 1);
  EXPECT_DOUBLE_EQ(rate[0].second, static_cast<double>(15 % 5) / 100.0);
  EXPECT_THROW((void)store.series("no-such-dimension", 0), std::invalid_argument);
}

}  // namespace
}  // namespace acn::obs
