#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

TEST(AnomalyPartitionTest, RejectsOverlapsAndEmptyClasses) {
  EXPECT_THROW(AnomalyPartition({DeviceSet({1, 2}), DeviceSet({2, 3})}),
               std::invalid_argument);
  EXPECT_THROW(AnomalyPartition({DeviceSet{}}), std::invalid_argument);
}

TEST(AnomalyPartitionTest, ClassLookup) {
  const AnomalyPartition p({DeviceSet({1, 2}), DeviceSet({3})});
  EXPECT_EQ(p.class_of(1), DeviceSet({1, 2}));
  EXPECT_EQ(p.class_of(3), DeviceSet({3}));
  EXPECT_THROW((void)p.class_of(9), std::out_of_range);
  EXPECT_TRUE(p.covers(2));
  EXPECT_FALSE(p.covers(9));
}

TEST(AnomalyPartitionTest, MassiveAndIsolatedSplit) {
  const AnomalyPartition p({DeviceSet({1, 2, 3, 4}), DeviceSet({5}), DeviceSet({6, 7})});
  EXPECT_EQ(p.massive_devices(3), DeviceSet({1, 2, 3, 4}));
  EXPECT_EQ(p.isolated_devices(3), DeviceSet({5, 6, 7}));
  EXPECT_EQ(p.massive_devices(1), DeviceSet({1, 2, 3, 4, 6, 7}));
  EXPECT_EQ(p.support(), DeviceSet({1, 2, 3, 4, 5, 6, 7}));
}

// ---------------------------------------------------------------------------
// Validity checker.
// ---------------------------------------------------------------------------

TEST(PartitionValidityTest, AcceptsTheValidPartitionOfTheCounterexample) {
  const StatePair state = test::make_static_1d({0.0, 0.225, 0.3, 0.325});
  const Params params{.r = 0.125, .tau = 2};
  std::string why;
  const AnomalyPartition good({DeviceSet({0}), DeviceSet({1, 2, 3})});
  EXPECT_TRUE(is_valid_anomaly_partition(state, params, good, &why)) << why;
}

TEST(PartitionValidityTest, RejectsC1Violation) {
  // The greedy counterexample documented in partition.hpp: classes {0,1} and
  // {2,3} are sparse, but {1,2,3} is a dense motion inside their union.
  const StatePair state = test::make_static_1d({0.0, 0.225, 0.3, 0.325});
  const Params params{.r = 0.125, .tau = 2};
  std::string why;
  const AnomalyPartition bad({DeviceSet({0, 1}), DeviceSet({2, 3})});
  EXPECT_FALSE(is_valid_anomaly_partition(state, params, bad, &why));
  EXPECT_NE(why.find("C1"), std::string::npos) << why;
}

TEST(PartitionValidityTest, RejectsC2Violation) {
  // Dense class {0,1,2} and nearby sparse {3} that could join it.
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14, 0.16});
  const Params params{.r = 0.05, .tau = 2};
  std::string why;
  const AnomalyPartition bad({DeviceSet({0, 1, 2}), DeviceSet({3})});
  EXPECT_FALSE(is_valid_anomaly_partition(state, params, bad, &why));
  EXPECT_NE(why.find("C2"), std::string::npos) << why;
}

TEST(PartitionValidityTest, RejectsNonMotionClass) {
  const StatePair state = test::make_static_1d({0.1, 0.9});
  const Params params{.r = 0.05, .tau = 1};
  std::string why;
  const AnomalyPartition bad({DeviceSet({0, 1})});
  EXPECT_FALSE(is_valid_anomaly_partition(state, params, bad, &why));
  EXPECT_NE(why.find("motion"), std::string::npos) << why;
}

TEST(PartitionValidityTest, RejectsIncompleteCover) {
  const StatePair state = test::make_static_1d({0.1, 0.9});
  const Params params{.r = 0.05, .tau = 1};
  const AnomalyPartition partial({DeviceSet({0})});
  EXPECT_FALSE(is_valid_anomaly_partition(state, params, partial, nullptr));
}

// ---------------------------------------------------------------------------
// Figure 2 of the paper: ten devices, tau = 3; the anomaly partition is not
// unique (Lemma 2). Maximal motions: {1,2,3}, {2,3,4}, {5,...,9}, {10}
// (paper ids; indices are one less).
// ---------------------------------------------------------------------------
class Figure2Test : public ::testing::Test {
 protected:
  Figure2Test()
      : state_(test::make_state_1d({
            {0.10, 0.50},  // 1
            {0.16, 0.55},  // 2
            {0.18, 0.52},  // 3
            {0.24, 0.56},  // 4
            {0.60, 0.20},  // 5
            {0.62, 0.22},  // 6
            {0.64, 0.24},  // 7
            {0.66, 0.21},  // 8
            {0.68, 0.23},  // 9
            {0.90, 0.90},  // 10
        })),
        params_{.r = 0.05, .tau = 3} {}

  StatePair state_;
  Params params_;
};

TEST_F(Figure2Test, BothPaperPartitionsAreValid) {
  std::string why;
  const AnomalyPartition p1({DeviceSet({0, 1, 2}), DeviceSet({3}),
                             DeviceSet({4, 5, 6, 7, 8}), DeviceSet({9})});
  EXPECT_TRUE(is_valid_anomaly_partition(state_, params_, p1, &why)) << why;
  const AnomalyPartition p2({DeviceSet({0}), DeviceSet({1, 2, 3}),
                             DeviceSet({4, 5, 6, 7, 8}), DeviceSet({9})});
  EXPECT_TRUE(is_valid_anomaly_partition(state_, params_, p2, &why)) << why;
}

TEST_F(Figure2Test, GreedyProducesValidPartitionHere) {
  MotionOracle oracle(state_, params_);
  Rng rng(1234);
  for (int attempt = 0; attempt < 20; ++attempt) {
    const AnomalyPartition p = build_greedy_partition(oracle, rng);
    std::string why;
    EXPECT_TRUE(is_valid_anomaly_partition(state_, params_, p, &why)) << why;
  }
}

TEST_F(Figure2Test, RobustBuilderAlwaysValid) {
  MotionOracle oracle(state_, params_);
  Rng rng(99);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const AnomalyPartition p = build_anomaly_partition(oracle, rng);
    std::string why;
    ASSERT_TRUE(is_valid_anomaly_partition(state_, params_, p, &why)) << why;
    // The dense cluster must always form one class.
    EXPECT_EQ(p.class_of(4), DeviceSet({4, 5, 6, 7, 8}));
  }
}

// ---------------------------------------------------------------------------
// The greedy counterexample: faithful Algorithm 1 can emit invalid
// partitions; the robust builder never does.
// ---------------------------------------------------------------------------

TEST(GreedyCounterexampleTest, FaithfulGreedyCanViolateC1) {
  const StatePair state = test::make_static_1d({0.0, 0.225, 0.3, 0.325});
  const Params params{.r = 0.125, .tau = 2};
  MotionOracle oracle(state, params);
  bool saw_invalid = false;
  bool saw_valid = false;
  for (std::uint64_t seed = 0; seed < 64 && (!saw_invalid || !saw_valid); ++seed) {
    Rng rng(seed);
    const AnomalyPartition p = build_greedy_partition(oracle, rng);
    if (is_valid_anomaly_partition(state, params, p, nullptr)) {
      saw_valid = true;
    } else {
      saw_invalid = true;
    }
  }
  EXPECT_TRUE(saw_invalid)
      << "expected some greedy execution to produce an invalid partition";
  EXPECT_TRUE(saw_valid)
      << "expected some greedy execution to produce a valid partition";
}

TEST(GreedyCounterexampleTest, RobustBuilderSucceeds) {
  const StatePair state = test::make_static_1d({0.0, 0.225, 0.3, 0.325});
  const Params params{.r = 0.125, .tau = 2};
  MotionOracle oracle(state, params);
  Rng rng(7);
  const AnomalyPartition p = build_anomaly_partition(oracle, rng);
  std::string why;
  ASSERT_TRUE(is_valid_anomaly_partition(state, params, p, &why)) << why;
  EXPECT_EQ(p.class_of(1), DeviceSet({1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Randomized: robust builder output is always a valid anomaly partition.
// ---------------------------------------------------------------------------

class PartitionBuilderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionBuilderSweep, RobustBuilderAlwaysValidOnRandomInstances) {
  Rng rng(GetParam());
  const std::size_t n = 8 + rng.uniform_int(std::uint64_t{8});
  std::vector<std::pair<double, double>> pc;
  pc.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    pc.emplace_back(rng.uniform(0.0, 0.4), rng.uniform(0.0, 0.4));
  }
  const StatePair state = test::make_state_1d(pc);
  const Params params{.r = 0.02 + 0.08 * rng.uniform(), .tau = 2};
  MotionOracle oracle(state, params);
  const AnomalyPartition p = build_anomaly_partition(oracle, rng);
  std::string why;
  EXPECT_TRUE(is_valid_anomaly_partition(state, params, p, &why)) << why;
  EXPECT_EQ(p.support(), state.abnormal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionBuilderSweep,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{32}));

}  // namespace
}  // namespace acn
