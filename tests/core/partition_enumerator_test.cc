#include "core/partition_enumerator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

// ---------------------------------------------------------------------------
// Figure 3 of the paper (Theorem 3, ACP impossibility): five devices, tau=3,
// maximal motions C1 = {1,2,3,4}, C2 = {2,3,4,5}; exactly two anomaly
// partitions exist and they disagree on devices 1 and 5 (indices 0 and 4).
// ---------------------------------------------------------------------------
class Figure3Test : public ::testing::Test {
 protected:
  Figure3Test()
      : state_(test::make_state_1d({
            {0.10, 0.50},  // 1
            {0.14, 0.51},  // 2
            {0.16, 0.52},  // 3
            {0.18, 0.53},  // 4
            {0.22, 0.54},  // 5
        })),
        params_{.r = 0.05, .tau = 3} {}

  StatePair state_;
  Params params_;
};

TEST_F(Figure3Test, ExactlyTwoAnomalyPartitions) {
  const PartitionEnumerator enumerator(state_, params_);
  const auto partitions = enumerator.enumerate_all();
  ASSERT_EQ(partitions.size(), 2u);
}

TEST_F(Figure3Test, PartitionsMatchThePaper) {
  const PartitionEnumerator enumerator(state_, params_);
  bool saw_c1 = false;
  bool saw_c2 = false;
  for (const auto& p : enumerator.enumerate_all()) {
    if (p.covers(0) && p.class_of(0) == DeviceSet({0, 1, 2, 3})) saw_c1 = true;
    if (p.covers(4) && p.class_of(4) == DeviceSet({1, 2, 3, 4})) saw_c2 = true;
  }
  EXPECT_TRUE(saw_c1);
  EXPECT_TRUE(saw_c2);
}

TEST_F(Figure3Test, CharacterizationSetsMatchTheorem3) {
  const PartitionEnumerator enumerator(state_, params_);
  const CharacterizationSets sets = enumerator.characterize_all();
  EXPECT_EQ(sets.massive, DeviceSet({1, 2, 3}));
  EXPECT_EQ(sets.unresolved, DeviceSet({0, 4}));
  EXPECT_TRUE(sets.isolated.empty());
  EXPECT_FALSE(sets.acp_solvable());  // Theorem 3: ACP cannot be solved here
}

TEST_F(Figure3Test, CountPartitions) {
  const PartitionEnumerator enumerator(state_, params_);
  EXPECT_EQ(enumerator.count_partitions(), 2u);
}

// ---------------------------------------------------------------------------
// Component decomposition.
// ---------------------------------------------------------------------------

TEST(PartitionEnumeratorTest, ComponentsSplitByJointDistance) {
  const StatePair state =
      test::make_static_1d({0.10, 0.12, 0.50, 0.52, 0.54, 0.90});
  const PartitionEnumerator enumerator(state, Params{.r = 0.02, .tau = 1});
  const auto comps = enumerator.components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<DeviceId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<DeviceId>{2, 3, 4}));
  EXPECT_EQ(comps[2], (std::vector<DeviceId>{5}));
}

TEST(PartitionEnumeratorTest, ComponentsUseJointNotSingleInstantDistance) {
  // Close at k-1, far at k: not connected.
  const StatePair state = test::make_state_1d({{0.1, 0.1}, {0.12, 0.9}});
  const PartitionEnumerator enumerator(state, Params{.r = 0.05, .tau = 1});
  EXPECT_EQ(enumerator.components().size(), 2u);
}

TEST(PartitionEnumeratorTest, WholeSetEnumerationMatchesComponentwise) {
  // Two independent pairs: component-wise counting must equal the product
  // observed on whole-set enumeration.
  const StatePair state = test::make_static_1d({0.10, 0.14, 0.60, 0.64});
  const PartitionEnumerator enumerator(state, Params{.r = 0.04, .tau = 1});
  const auto whole = enumerator.enumerate_all();
  EXPECT_EQ(static_cast<std::uint64_t>(whole.size()), enumerator.count_partitions());
}

TEST(PartitionEnumeratorTest, LimitEnforced) {
  std::vector<double> xs(16);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = 0.1 + 0.001 * i;
  const StatePair state = test::make_static_1d(xs);
  const PartitionEnumerator enumerator(
      state, Params{.r = 0.1, .tau = 2},
      PartitionEnumerator::Limits{.max_component_size = 8,
                                  .max_partitions_per_component = 1000});
  EXPECT_THROW((void)enumerator.characterize_all(), EnumerationLimitError);
}

// ---------------------------------------------------------------------------
// Lemma 2 (existence): every random instance admits at least one anomaly
// partition; and every enumerated partition passes the validity checker.
// ---------------------------------------------------------------------------

class Lemma2Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma2Sweep, ValidPartitionAlwaysExists) {
  Rng rng(GetParam());
  const std::size_t n = 6 + rng.uniform_int(std::uint64_t{6});
  std::vector<std::pair<double, double>> pc;
  for (std::size_t j = 0; j < n; ++j) {
    pc.emplace_back(rng.uniform(0.0, 0.35), rng.uniform(0.0, 0.35));
  }
  const StatePair state = test::make_state_1d(pc);
  const Params params{.r = 0.03 + 0.05 * rng.uniform(),
                      .tau = static_cast<std::uint32_t>(1 + rng.uniform_int(std::uint64_t{3}))};
  const PartitionEnumerator enumerator(state, params);
  const auto partitions = enumerator.enumerate_all();
  ASSERT_GE(partitions.size(), 1u) << "Lemma 2 violated at seed " << GetParam();
  for (const auto& p : partitions) {
    std::string why;
    EXPECT_TRUE(is_valid_anomaly_partition(state, params, p, &why)) << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Sweep,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{48}));

}  // namespace
}  // namespace acn
