#include "core/report.hpp"

#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

StatePair scene() {
  // Figure-3-like: 3 massive, 2 unresolved, 1 isolated.
  return test::make_state_1d({
      {0.10, 0.50}, {0.14, 0.51}, {0.16, 0.52}, {0.18, 0.53}, {0.22, 0.54},
      {0.90, 0.10},
  });
}

TEST(ReportTest, SetsMatchCharacterizer) {
  const StatePair state = scene();
  const CharacterizationReport report = make_report(state, {.r = 0.05, .tau = 3});
  EXPECT_EQ(report.sets.massive, DeviceSet({1, 2, 3}));
  EXPECT_EQ(report.sets.unresolved, DeviceSet({0, 4}));
  EXPECT_EQ(report.sets.isolated, DeviceSet({5}));
  EXPECT_EQ(report.decisions.size(), 6u);
}

TEST(ReportTest, TextContainsTotalsAndRows) {
  const CharacterizationReport report = make_report(scene(), {.r = 0.05, .tau = 3});
  const std::string text = report.to_text();
  EXPECT_NE(text.find("massive: 3"), std::string::npos);
  EXPECT_NE(text.find("unresolved: 2"), std::string::npos);
  EXPECT_NE(text.find("Theorem6"), std::string::npos);
  EXPECT_NE(text.find("Corollary8"), std::string::npos);
}

TEST(ReportTest, CsvParsesBackWithOneRowPerDevice) {
  const CharacterizationReport report = make_report(scene(), {.r = 0.05, .tau = 3});
  const auto rows = parse_csv(report.to_csv());
  ASSERT_EQ(rows.size(), 7u);  // header + 6 devices
  EXPECT_EQ(rows[0][0], "device");
  EXPECT_EQ(rows[0].size(), 7u);
  for (std::size_t i = 1; i < rows.size(); ++i) EXPECT_EQ(rows[i].size(), 7u);
}

TEST(ReportTest, EmptyAbnormalSet) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}}, DeviceSet{});
  const CharacterizationReport report = make_report(state, {.r = 0.05, .tau = 3});
  EXPECT_TRUE(report.decisions.empty());
  EXPECT_EQ(parse_csv(report.to_csv()).size(), 1u);  // header only
}

}  // namespace
}  // namespace acn
