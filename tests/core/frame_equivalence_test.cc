// The incremental engine's contract: a FrameEngine fed one snapshot per
// interval — rolling StatePair, incrementally re-bucketed FleetGrid,
// 4r-closure plane, pooled fan-outs — produces verdicts byte-identical to a
// from-scratch rebuild (fresh StatePair + GridIndex + MotionPlane +
// Characterizer) of every interval. Swept over randomized multi-interval
// scenarios, a device-teleport stream, and an all-abnormal stream.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "sim/scenario.hpp"

namespace acn {
namespace {

void expect_identical_decisions(const std::vector<Decision>& incremental,
                                const std::vector<Decision>& scratch,
                                const DeviceSet& abnormal, std::uint64_t interval) {
  ASSERT_EQ(incremental.size(), scratch.size()) << "interval " << interval;
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    const Decision& a = incremental[i];
    const Decision& b = scratch[i];
    const DeviceId j = abnormal[i];
    EXPECT_EQ(a.cls, b.cls) << "interval " << interval << " device " << j;
    EXPECT_EQ(a.rule, b.rule) << "interval " << interval << " device " << j;
    EXPECT_EQ(a.exact, b.exact) << "interval " << interval << " device " << j;
    EXPECT_EQ(a.maximal_motion_count, b.maximal_motion_count)
        << "interval " << interval << " device " << j;
    EXPECT_EQ(a.dense_motion_count, b.dense_motion_count)
        << "interval " << interval << " device " << j;
    EXPECT_EQ(a.collections_tested, b.collections_tested)
        << "interval " << interval << " device " << j;
  }
}

/// Feeds `snapshots[k]` with abnormal sets `abnormal[k]` (k >= 1; snapshot 0
/// primes) through engines at several pool sizes and checks each interval
/// against the from-scratch rebuild.
void sweep_stream(const std::vector<Snapshot>& snapshots,
                  const std::vector<DeviceSet>& abnormal, Params model) {
  for (const unsigned threads : {1u, 4u}) {
    FrameEngine engine(
        FrameEngine::Config{.model = model,
                            .characterize = {.parallel_grain = 1},
                            .threads = threads,
                            .component_fanout = 1});
    (void)engine.observe(snapshots[0], DeviceSet{});
    for (std::size_t k = 1; k < snapshots.size(); ++k) {
      const std::optional<FrameEngine::Result> result =
          engine.observe(snapshots[k], abnormal[k]);
      ASSERT_TRUE(result.has_value());

      const StatePair scratch_state(snapshots[k - 1], snapshots[k], abnormal[k]);
      Characterizer scratch(scratch_state, model);
      const std::vector<Decision> expected = scratch.decide_all();
      expect_identical_decisions(result->decisions, expected, abnormal[k], k);

      // The bucketed sets follow the decisions deterministically.
      const CharacterizationSets sets = [&] {
        Characterizer again(scratch_state, model);
        return again.characterize_all();
      }();
      EXPECT_EQ(result->sets.isolated, sets.isolated) << "interval " << k;
      EXPECT_EQ(result->sets.massive, sets.massive) << "interval " << k;
      EXPECT_EQ(result->sets.unresolved, sets.unresolved) << "interval " << k;
    }
  }
}

TEST(FrameEquivalence, RandomizedScenarioSweep) {
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    for (const bool r3 : {true, false}) {
      ScenarioParams params;
      params.n = 400;
      params.errors_per_step = 24;
      params.seed = seed;
      params.enforce_r3 = r3;

      ScenarioGenerator generator(params);
      std::vector<Snapshot> snapshots;
      std::vector<DeviceSet> abnormal;
      snapshots.emplace_back(generator.positions());
      abnormal.emplace_back();
      for (int k = 0; k < 6; ++k) {
        const ScenarioStep step = generator.advance();
        snapshots.push_back(step.state.curr());
        abnormal.push_back(step.truth.abnormal);
      }
      sweep_stream(snapshots, abnormal, params.model);
    }
  }
}

TEST(FrameEquivalence, DeviceTeleportAcrossTheSpace) {
  // Device 0 teleports corner to corner every interval (the largest
  // possible grid re-bucket) while a small cluster drifts coherently; every
  // affected device is abnormal each round.
  const Params model{.r = 0.05, .tau = 2};
  std::vector<Snapshot> snapshots;
  std::vector<DeviceSet> abnormal;
  const auto build = [](double teleport_x, double drift) {
    std::vector<Point> positions;
    positions.push_back(Point{teleport_x, teleport_x});
    for (int c = 0; c < 4; ++c) {
      positions.push_back(
          Point{0.40 + 0.01 * static_cast<double>(c) + drift, 0.50 + drift});
    }
    for (int q = 0; q < 3; ++q) {
      positions.push_back(Point{0.90, 0.05 + 0.3 * static_cast<double>(q)});
    }
    return Snapshot(positions);
  };
  snapshots.push_back(build(0.02, 0.0));
  abnormal.emplace_back();
  const double hops[] = {0.95, 0.03, 0.55, 0.97};
  for (int k = 0; k < 4; ++k) {
    snapshots.push_back(build(hops[k], 0.02 * static_cast<double>(k + 1)));
    abnormal.push_back(DeviceSet({0, 1, 2, 3, 4}));
  }
  sweep_stream(snapshots, abnormal, model);
}

TEST(FrameEquivalence, AllAbnormalEveryInterval) {
  // Every device abnormal every interval: the plane covers the whole fleet
  // and the mask filter of the fleet grid passes everything.
  const Params model{.r = 0.03, .tau = 3};
  Rng rng(7);
  const std::size_t n = 60;
  std::vector<Point> positions;
  positions.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    positions.push_back(Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  std::vector<DeviceId> everyone;
  for (std::size_t j = 0; j < n; ++j) everyone.push_back(static_cast<DeviceId>(j));

  std::vector<Snapshot> snapshots;
  std::vector<DeviceSet> abnormal;
  snapshots.emplace_back(positions);
  abnormal.emplace_back();
  for (int k = 0; k < 5; ++k) {
    // A third of the fleet jumps somewhere uniform, the rest stays put.
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.33) {
        positions[j] = Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
      }
    }
    snapshots.emplace_back(positions);
    abnormal.push_back(DeviceSet::from_sorted(everyone));
  }
  sweep_stream(snapshots, abnormal, model);
}

TEST(FrameEquivalence, RejectsFleetShapeChanges) {
  FrameEngine engine(FrameEngine::Config{.model = Params{}});
  (void)engine.observe(Snapshot({Point{0.1, 0.1}, Point{0.2, 0.2}}), DeviceSet{});
  EXPECT_THROW(
      (void)engine.observe(Snapshot({Point{0.1, 0.1}}), DeviceSet{}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)engine.observe(Snapshot({Point{0.1}, Point{0.2}}), DeviceSet{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace acn
