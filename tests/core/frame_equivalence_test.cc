// The incremental engine's contract: a FrameEngine fed one snapshot per
// interval — rolling StatePair, incrementally re-bucketed FleetGrid,
// 4r-closure plane, pooled fan-outs — produces verdicts byte-identical to a
// from-scratch rebuild (fresh StatePair + GridIndex + MotionPlane +
// Characterizer) of every interval. Swept over randomized multi-interval
// scenarios, a device-teleport stream, and an all-abnormal stream.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "online/monitor.hpp"
#include "sim/scenario.hpp"

namespace acn {
namespace {

void expect_identical_decisions(const std::vector<Decision>& incremental,
                                const std::vector<Decision>& scratch,
                                const DeviceSet& abnormal, std::uint64_t interval) {
  ASSERT_EQ(incremental.size(), scratch.size()) << "interval " << interval;
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    const Decision& a = incremental[i];
    const Decision& b = scratch[i];
    const DeviceId j = abnormal[i];
    EXPECT_EQ(a.cls, b.cls) << "interval " << interval << " device " << j;
    EXPECT_EQ(a.rule, b.rule) << "interval " << interval << " device " << j;
    EXPECT_EQ(a.exact, b.exact) << "interval " << interval << " device " << j;
    EXPECT_EQ(a.maximal_motion_count, b.maximal_motion_count)
        << "interval " << interval << " device " << j;
    EXPECT_EQ(a.dense_motion_count, b.dense_motion_count)
        << "interval " << interval << " device " << j;
    EXPECT_EQ(a.collections_tested, b.collections_tested)
        << "interval " << interval << " device " << j;
  }
}

/// Feeds `snapshots[k]` with abnormal sets `abnormal[k]` (k >= 1; snapshot 0
/// primes) through engines at several (pool size, shard count) pairs and
/// checks each interval against the from-scratch rebuild. Shard count 7 is
/// deliberately coprime to the 4-lane pool and larger than it, so stripes
/// outnumber lanes and halo routing crosses every stripe boundary.
void sweep_stream(const std::vector<Snapshot>& snapshots,
                  const std::vector<DeviceSet>& abnormal, Params model) {
  struct EngineShape {
    unsigned threads;
    unsigned shards;
  };
  constexpr EngineShape shapes[] = {
      {1, 1}, {1, 7}, {4, 1}, {4, 2}, {4, 4}, {4, 7},
  };
  for (const EngineShape shape : shapes) {
    SCOPED_TRACE(::testing::Message()
                 << "threads=" << shape.threads << " shards=" << shape.shards);
    FrameEngine engine(
        FrameEngine::Config{.model = model,
                            .characterize = {.parallel_grain = 1},
                            .threads = shape.threads,
                            .component_fanout = 1,
                            .shards = shape.shards});
    (void)engine.observe(snapshots[0], DeviceSet{});
    for (std::size_t k = 1; k < snapshots.size(); ++k) {
      const std::optional<FrameEngine::Result> result =
          engine.observe(snapshots[k], abnormal[k]);
      ASSERT_TRUE(result.has_value());

      const StatePair scratch_state(snapshots[k - 1], snapshots[k], abnormal[k]);
      Characterizer scratch(scratch_state, model);
      const std::vector<Decision> expected = scratch.decide_all();
      expect_identical_decisions(result->decisions, expected, abnormal[k], k);

      // The bucketed sets follow the decisions deterministically.
      const CharacterizationSets sets = [&] {
        Characterizer again(scratch_state, model);
        return again.characterize_all();
      }();
      EXPECT_EQ(result->sets.isolated, sets.isolated) << "interval " << k;
      EXPECT_EQ(result->sets.massive, sets.massive) << "interval " << k;
      EXPECT_EQ(result->sets.unresolved, sets.unresolved) << "interval " << k;
    }
  }
}

TEST(FrameEquivalence, RandomizedScenarioSweep) {
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    for (const bool r3 : {true, false}) {
      ScenarioParams params;
      params.n = 400;
      params.errors_per_step = 24;
      params.seed = seed;
      params.enforce_r3 = r3;

      ScenarioGenerator generator(params);
      std::vector<Snapshot> snapshots;
      std::vector<DeviceSet> abnormal;
      snapshots.emplace_back(generator.positions());
      abnormal.emplace_back();
      for (int k = 0; k < 6; ++k) {
        const ScenarioStep step = generator.advance();
        snapshots.push_back(step.state.curr());
        abnormal.push_back(step.truth.abnormal);
      }
      sweep_stream(snapshots, abnormal, params.model);
    }
  }
}

TEST(FrameEquivalence, DeviceTeleportAcrossTheSpace) {
  // Device 0 teleports corner to corner every interval (the largest
  // possible grid re-bucket) while a small cluster drifts coherently; every
  // affected device is abnormal each round.
  const Params model{.r = 0.05, .tau = 2};
  std::vector<Snapshot> snapshots;
  std::vector<DeviceSet> abnormal;
  const auto build = [](double teleport_x, double drift) {
    std::vector<Point> positions;
    positions.push_back(Point{teleport_x, teleport_x});
    for (int c = 0; c < 4; ++c) {
      positions.push_back(
          Point{0.40 + 0.01 * static_cast<double>(c) + drift, 0.50 + drift});
    }
    for (int q = 0; q < 3; ++q) {
      positions.push_back(Point{0.90, 0.05 + 0.3 * static_cast<double>(q)});
    }
    return Snapshot(positions);
  };
  snapshots.push_back(build(0.02, 0.0));
  abnormal.emplace_back();
  const double hops[] = {0.95, 0.03, 0.55, 0.97};
  for (int k = 0; k < 4; ++k) {
    snapshots.push_back(build(hops[k], 0.02 * static_cast<double>(k + 1)));
    abnormal.push_back(DeviceSet({0, 1, 2, 3, 4}));
  }
  sweep_stream(snapshots, abnormal, model);
}

TEST(FrameEquivalence, AllAbnormalEveryInterval) {
  // Every device abnormal every interval: the plane covers the whole fleet
  // and the mask filter of the fleet grid passes everything.
  const Params model{.r = 0.03, .tau = 3};
  Rng rng(7);
  const std::size_t n = 60;
  std::vector<Point> positions;
  positions.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    positions.push_back(Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  std::vector<DeviceId> everyone;
  for (std::size_t j = 0; j < n; ++j) everyone.push_back(static_cast<DeviceId>(j));

  std::vector<Snapshot> snapshots;
  std::vector<DeviceSet> abnormal;
  snapshots.emplace_back(positions);
  abnormal.emplace_back();
  for (int k = 0; k < 5; ++k) {
    // A third of the fleet jumps somewhere uniform, the rest stays put.
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.33) {
        positions[j] = Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
      }
    }
    snapshots.emplace_back(positions);
    abnormal.push_back(DeviceSet::from_sorted(everyone));
  }
  sweep_stream(snapshots, abnormal, model);
}

TEST(FrameEquivalence, ShardBoundaryStraddle) {
  // With r=0.05 the grid cell is 0.1, so stripe boundaries fall on dim-0
  // multiples of 0.1. Two clusters sit astride x=0.3 and x=0.7 with members
  // on both sides at distances within the 2r joint window, and every
  // interval each cluster's members hop across their boundary (swap sides)
  // while a courier walks the full axis one stripe per interval. Any halo
  // mistake — a neighbour snapshot missing a just-moved device, a double
  // insert at the new owner, a stale bucket at the old — changes a dense
  // ball population and with it a verdict.
  const Params model{.r = 0.05, .tau = 2};
  const auto build = [](bool flipped, double courier_x) {
    std::vector<Point> positions;
    for (const double centre : {0.3, 0.7}) {
      const double side = flipped ? -0.02 : 0.02;
      positions.push_back(Point{centre - side, 0.5});
      positions.push_back(Point{centre + side, 0.5});
      positions.push_back(Point{centre - side, 0.53});
      positions.push_back(Point{centre + side, 0.53});
    }
    positions.push_back(Point{courier_x, 0.5});
    return Snapshot(positions);
  };
  std::vector<DeviceId> everyone;
  for (DeviceId j = 0; j < 9; ++j) everyone.push_back(j);

  std::vector<Snapshot> snapshots;
  std::vector<DeviceSet> abnormal;
  snapshots.push_back(build(false, 0.05));
  abnormal.emplace_back();
  for (int k = 1; k <= 6; ++k) {
    snapshots.push_back(build(k % 2 != 0, 0.05 + 0.1 * static_cast<double>(k)));
    abnormal.push_back(DeviceSet::from_sorted(everyone));
  }
  sweep_stream(snapshots, abnormal, model);
}

TEST(FrameEquivalence, RosterChurnShardedMatchesUnsharded) {
  // Churn under sharding: gateways join and leave mid-stream while others
  // report fresh positions, so admits/retires land as grid inserts/removes
  // routed to owner shards and parked slots must stay invisible to halo
  // queries. A sharded pooled monitor must produce byte-identical interval
  // reports to the unsharded serial one.
  const auto make_monitor = [](unsigned threads, unsigned shards) {
    return OnlineMonitor(OnlineMonitor::Config{
        .model = Params{.r = 0.05, .tau = 2},
        .characterize = {.parallel_grain = 1},
        .characterize_threads = threads,
        .shards = shards,
        .roster_capacity = 32,
        .roster_dim = 2});
  };
  OnlineMonitor reference = make_monitor(1, 1);
  OnlineMonitor sharded = make_monitor(4, 3);

  Rng rng(29);
  std::vector<GatewayKey> active;
  GatewayKey next_key = 1;
  const auto random_point = [&rng] {
    return Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
  };
  // Seed roster.
  for (int i = 0; i < 12; ++i) {
    const Point p = random_point();
    (void)reference.admit(next_key, p);
    (void)sharded.admit(next_key, p);
    active.push_back(next_key++);
  }
  for (int k = 0; k < 8; ++k) {
    // A few departures (never below 6 gateways) and a few arrivals.
    for (int d = 0; d < 2 && active.size() > 6; ++d) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(active.size()) - 0.001));
      reference.retire(active[pick]);
      sharded.retire(active[pick]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    for (int a = 0; a < 3; ++a) {
      const Point p = random_point();
      (void)reference.admit(next_key, p);
      (void)sharded.admit(next_key, p);
      active.push_back(next_key++);
    }
    // Half the survivors move, some far enough to change owner shard.
    for (const GatewayKey key : active) {
      if (rng.uniform(0.0, 1.0) < 0.5) {
        const Point p = random_point();
        reference.report(key, p);
        sharded.report(key, p);
      }
    }
    // A random third of the active gateways are flagged abnormal.
    std::vector<GatewayKey> flagged;
    for (const GatewayKey key : active) {
      if (rng.uniform(0.0, 1.0) < 0.33) flagged.push_back(key);
    }
    const IntervalReport want = reference.close_interval(flagged);
    const IntervalReport got = sharded.close_interval(flagged);
    EXPECT_EQ(got.abnormal, want.abnormal) << "interval " << k;
    EXPECT_EQ(got.isolated, want.isolated) << "interval " << k;
    EXPECT_EQ(got.massive, want.massive) << "interval " << k;
    EXPECT_EQ(got.unresolved, want.unresolved) << "interval " << k;
    ASSERT_EQ(got.decisions.size(), want.decisions.size()) << "interval " << k;
    for (const auto& [device, decision] : want.decisions) {
      const auto it = got.decisions.find(device);
      ASSERT_NE(it, got.decisions.end()) << "interval " << k << " device " << device;
      EXPECT_TRUE(it->second.cls == decision.cls &&
                  it->second.rule == decision.rule &&
                  it->second.exact == decision.exact &&
                  it->second.maximal_motion_count == decision.maximal_motion_count &&
                  it->second.dense_motion_count == decision.dense_motion_count &&
                  it->second.collections_tested == decision.collections_tested)
          << "interval " << k << " device " << device;
    }
  }
}

TEST(FrameEquivalence, RejectsFleetShapeChanges) {
  FrameEngine engine(FrameEngine::Config{.model = Params{}});
  (void)engine.observe(Snapshot({Point{0.1, 0.1}, Point{0.2, 0.2}}), DeviceSet{});
  EXPECT_THROW(
      (void)engine.observe(Snapshot({Point{0.1, 0.1}}), DeviceSet{}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)engine.observe(Snapshot({Point{0.1}, Point{0.2}}), DeviceSet{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace acn
