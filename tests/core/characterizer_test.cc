#include "core/characterizer.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"

namespace acn {
namespace {

// ---------------------------------------------------------------------------
// Theorem 5: isolated devices.
// ---------------------------------------------------------------------------

TEST(Theorem5Test, LonelyDeviceIsIsolated) {
  const StatePair state = test::make_state_1d({{0.1, 0.9}, {0.5, 0.2}});
  Characterizer characterizer(state, {.r = 0.05, .tau = 1});
  const Decision d = characterizer.characterize(0);
  EXPECT_EQ(d.cls, AnomalyClass::kIsolated);
  EXPECT_EQ(d.rule, DecisionRule::kTheorem5);
  EXPECT_TRUE(d.exact);
}

TEST(Theorem5Test, SparseClusterIsIsolated) {
  // Three devices moving together but tau = 3: the motion is sparse.
  const StatePair state =
      test::make_state_1d({{0.1, 0.5}, {0.12, 0.52}, {0.14, 0.54}});
  Characterizer characterizer(state, {.r = 0.05, .tau = 3});
  for (DeviceId j = 0; j < 3; ++j) {
    const Decision d = characterizer.characterize(j);
    EXPECT_EQ(d.cls, AnomalyClass::kIsolated);
    EXPECT_EQ(d.rule, DecisionRule::kTheorem5);
  }
}

TEST(Theorem5Test, NormalDeviceThrows) {
  const StatePair state = test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}}, DeviceSet({0}));
  Characterizer characterizer(state, {.r = 0.05, .tau = 1});
  EXPECT_THROW((void)characterizer.characterize(1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Theorem 6: the cheap massive condition.
// ---------------------------------------------------------------------------

TEST(Theorem6Test, TightClusterIsMassive) {
  const StatePair state = test::make_state_1d(
      {{0.1, 0.5}, {0.11, 0.51}, {0.12, 0.52}, {0.13, 0.53}, {0.14, 0.54}});
  Characterizer characterizer(state, {.r = 0.05, .tau = 3});
  for (DeviceId j = 0; j < 5; ++j) {
    const Decision d = characterizer.characterize(j);
    EXPECT_EQ(d.cls, AnomalyClass::kMassive) << "device " << j;
    EXPECT_EQ(d.rule, DecisionRule::kTheorem6) << "device " << j;
  }
}

// Figure 4 of the paper: the split of D_k(4) into J_k(4) and L_k(4), tau=2.
// Paper ids 1..7 map to indices 0..6; "device 4" is index 3.
class Figure4aTest : public ::testing::Test {
 protected:
  Figure4aTest()
      : state_(test::make_state_1d({
            {0.10, 0.80},  // 1
            {0.20, 0.78},  // 2
            {0.12, 0.70},  // 3
            {0.22, 0.72},  // 4
            {0.38, 0.74},  // 5
        })),
        characterizer_(state_, {.r = 0.10, .tau = 2}) {}

  StatePair state_;
  Characterizer characterizer_;
};

TEST_F(Figure4aTest, NeighbourhoodSplitMatchesPaper) {
  // D_k(4) = {1,2,3,4,5}, J_k(4) = {1,2,3,4,5}, L_k(4) = {} (paper ids).
  EXPECT_EQ(characterizer_.neighbourhood_d(3), DeviceSet({0, 1, 2, 3, 4}));
  EXPECT_EQ(characterizer_.neighbourhood_j(3), DeviceSet({0, 1, 2, 3, 4}));
  EXPECT_TRUE(characterizer_.neighbourhood_l(3).empty());
}

TEST_F(Figure4aTest, Device4MassiveByTheorem6) {
  const Decision d = characterizer_.characterize(3);
  EXPECT_EQ(d.cls, AnomalyClass::kMassive);
  EXPECT_EQ(d.rule, DecisionRule::kTheorem6);
}

class Figure4bTest : public ::testing::Test {
 protected:
  Figure4bTest()
      : state_(test::make_state_1d({
            {0.10, 0.80},  // 1
            {0.20, 0.78},  // 2
            {0.12, 0.70},  // 3
            {0.22, 0.72},  // 4
            {0.38, 0.74},  // 5
            {0.52, 0.76},  // 6
            {0.54, 0.78},  // 7
        })),
        characterizer_(state_, {.r = 0.10, .tau = 2}) {}

  StatePair state_;
  Characterizer characterizer_;
};

TEST_F(Figure4bTest, NeighbourhoodSplitMatchesPaper) {
  // D_k(4) = {1,2,3,4,5}, J_k(4) = {1,2,3,4}, L_k(4) = {5} (paper ids).
  EXPECT_EQ(characterizer_.neighbourhood_d(3), DeviceSet({0, 1, 2, 3, 4}));
  EXPECT_EQ(characterizer_.neighbourhood_j(3), DeviceSet({0, 1, 2, 3}));
  EXPECT_EQ(characterizer_.neighbourhood_l(3), DeviceSet({4}));
}

TEST_F(Figure4bTest, Device4StillMassiveByTheorem6) {
  const Decision d = characterizer_.characterize(3);
  EXPECT_EQ(d.cls, AnomalyClass::kMassive);
  EXPECT_EQ(d.rule, DecisionRule::kTheorem6);
}

TEST_F(Figure4bTest, Device5HasMotionsOnBothSides) {
  // Device 5 (index 4) belongs to C2={2,4,5} and C3={5,6,7}.
  const auto dense = characterizer_.oracle().dense_motions(4);
  ASSERT_EQ(dense.size(), 2u);
  EXPECT_EQ(dense[0], DeviceSet({1, 3, 4}));
  EXPECT_EQ(dense[1], DeviceSet({4, 5, 6}));
}

// ---------------------------------------------------------------------------
// Figure 3: unresolved configuration. Devices 1 and 5 (indices 0, 4) are
// unresolved; 2, 3, 4 are massive.
// ---------------------------------------------------------------------------
class Figure3CharacterizerTest : public ::testing::Test {
 protected:
  Figure3CharacterizerTest()
      : state_(test::make_state_1d({
            {0.10, 0.50},
            {0.14, 0.51},
            {0.16, 0.52},
            {0.18, 0.53},
            {0.22, 0.54},
        })),
        characterizer_(state_, {.r = 0.05, .tau = 3}) {}

  StatePair state_;
  Characterizer characterizer_;
};

TEST_F(Figure3CharacterizerTest, EndpointsUnresolvedByCorollary8) {
  for (const DeviceId j : {DeviceId{0}, DeviceId{4}}) {
    const Decision d = characterizer_.characterize(j);
    EXPECT_EQ(d.cls, AnomalyClass::kUnresolved) << "device " << j;
    EXPECT_EQ(d.rule, DecisionRule::kCorollary8) << "device " << j;
    EXPECT_TRUE(d.exact);
    EXPECT_GE(d.collections_tested, 1u);
  }
}

TEST_F(Figure3CharacterizerTest, CoreDevicesMassive) {
  for (const DeviceId j : {DeviceId{1}, DeviceId{2}, DeviceId{3}}) {
    const Decision d = characterizer_.characterize(j);
    EXPECT_EQ(d.cls, AnomalyClass::kMassive) << "device " << j;
    EXPECT_EQ(d.rule, DecisionRule::kTheorem6) << "device " << j;
  }
}

TEST_F(Figure3CharacterizerTest, WithoutFullNscEndpointsReportUnresolved) {
  Characterizer cheap(state_, {.r = 0.05, .tau = 3},
                      CharacterizeOptions{.run_full_nsc = false});
  const Decision d = cheap.characterize(0);
  EXPECT_EQ(d.cls, AnomalyClass::kUnresolved);
  EXPECT_EQ(d.rule, DecisionRule::kTheorem6Only);
}

// ---------------------------------------------------------------------------
// Figure 5: the ring of four pairs, tau = 3. Theorem 6 is insufficient for
// every device, yet all are massive — only Theorem 7 decides. Pairs (paper
// ids): {1,2}, {3,4}, {5,6}, {7,8} at the four corners of an l-infinity
// diamond; adjacent pairs are within 2r, opposite pairs are not.
// ---------------------------------------------------------------------------
class Figure5Test : public ::testing::Test {
 protected:
  Figure5Test()
      : state_(test::make_state_1d({
            {0.10, 0.01},  // 1   bottom pair
            {0.11, 0.00},  // 2
            {0.20, 0.10},  // 3   right pair
            {0.21, 0.11},  // 4
            {0.10, 0.20},  // 5   top pair
            {0.11, 0.21},  // 6
            {0.00, 0.10},  // 7   left pair
            {0.01, 0.11},  // 8
        })),
        characterizer_(state_, {.r = 0.075, .tau = 3}) {}

  StatePair state_;
  Characterizer characterizer_;
};

TEST_F(Figure5Test, MaximalDenseMotionsOfDevice1MatchPaper) {
  const auto dense = characterizer_.oracle().dense_motions(0);
  ASSERT_EQ(dense.size(), 2u);
  EXPECT_EQ(dense[0], DeviceSet({0, 1, 2, 3}));  // {1,2,3,4} in paper ids
  EXPECT_EQ(dense[1], DeviceSet({0, 1, 6, 7}));  // {1,2,7,8} in paper ids
}

TEST_F(Figure5Test, NeighbourhoodSplitMatchesPaper) {
  // J_k(1) = {1,2}, L_k(1) = {3,4,7,8} (paper ids).
  EXPECT_EQ(characterizer_.neighbourhood_j(0), DeviceSet({0, 1}));
  EXPECT_EQ(characterizer_.neighbourhood_l(0), DeviceSet({2, 3, 6, 7}));
}

TEST_F(Figure5Test, EveryDeviceMassiveViaTheorem7) {
  for (DeviceId j = 0; j < 8; ++j) {
    const Decision d = characterizer_.characterize(j);
    EXPECT_EQ(d.cls, AnomalyClass::kMassive) << "device " << j;
    EXPECT_EQ(d.rule, DecisionRule::kTheorem7) << "device " << j;
    EXPECT_TRUE(d.exact);
  }
}

TEST_F(Figure5Test, TheoremSixAloneLeavesRingUnresolved) {
  Characterizer cheap(state_, {.r = 0.075, .tau = 3},
                      CharacterizeOptions{.run_full_nsc = false});
  for (DeviceId j = 0; j < 8; ++j) {
    EXPECT_EQ(cheap.characterize(j).cls, AnomalyClass::kUnresolved);
  }
}

TEST_F(Figure5Test, BudgetExhaustionIsReportedNotSilent) {
  Characterizer tiny(state_, {.r = 0.075, .tau = 3},
                     CharacterizeOptions{.node_budget = 1});
  const Decision d = tiny.characterize(0);
  EXPECT_FALSE(d.exact);
  EXPECT_EQ(d.rule, DecisionRule::kBudgetExhausted);
  EXPECT_EQ(d.cls, AnomalyClass::kUnresolved);  // safe side
}

// ---------------------------------------------------------------------------
// characterize_all: bulk classification equals per-device classification.
// ---------------------------------------------------------------------------

TEST(CharacterizeAllTest, BucketsMatchPerDeviceDecisions) {
  const StatePair state = test::make_state_1d({
      {0.10, 0.50}, {0.14, 0.51}, {0.16, 0.52}, {0.18, 0.53}, {0.22, 0.54},
      {0.90, 0.10},
  });
  Characterizer characterizer(state, {.r = 0.05, .tau = 3});
  const CharacterizationSets sets = characterizer.characterize_all();
  EXPECT_EQ(sets.massive, DeviceSet({1, 2, 3}));
  EXPECT_EQ(sets.unresolved, DeviceSet({0, 4}));
  EXPECT_EQ(sets.isolated, DeviceSet({5}));
}

}  // namespace
}  // namespace acn
