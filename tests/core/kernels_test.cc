// The quantized kernel layer's contract: (1) the fixed-point map Q is
// monotone and the hybrid window test (quantized lane compare + exact
// double resolution of boundary ties) classifies EVERY input exactly like
// the double predicate — including coordinates sitting exactly on, or one
// ulp off, a window boundary, for representable and non-representable
// window widths alike; (2) forcing the dispatch to scalar or AVX2 yields
// byte-identical Decisions over whole scenario streams; (3) an adversarial
// arena blow-up surfaces as ArenaBudgetExceeded out of observe() with the
// engine still usable — a verdict-safe error, not an OOM kill.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "core/kernels/kernels.hpp"
#include "core/kernels/quantize.hpp"
#include "core/motion_plane.hpp"
#include "sim/scenario.hpp"

namespace acn {
namespace {

// Restores automatic dispatch selection however a test exits.
struct DispatchGuard {
  ~DispatchGuard() { kernels::force("auto"); }
};

TEST(QuantizeTest, MonotoneOverAdversarialAndRandomInputs) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.uniform());
  // Grid points, their neighbours one ulp away, and the box corners: the
  // inputs where floor(x * 2^30 + 0.5) is most likely to go wrong.
  for (int k = 0; k <= 32; ++k) {
    const double g = static_cast<double>(k) / 32.0;
    xs.push_back(g);
    xs.push_back(std::nextafter(g, 2.0));
    xs.push_back(std::nextafter(g, -1.0));
  }
  std::sort(xs.begin(), xs.end());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    ASSERT_LE(kernels::quantize(xs[i - 1]), kernels::quantize(xs[i]))
        << "Q not monotone at x=" << xs[i];
  }
  // Q stays within 1 of the ideal scaling, so a quantized gap of k certifies
  // a real gap of (k - 2) * 2^-30 — the slop-band argument's premise.
  for (const double x : xs) {
    if (x < 0.0 || x > 1.0) continue;
    const double ideal = x * kernels::kScale;
    EXPECT_LT(std::fabs(static_cast<double>(kernels::quantize(x)) - ideal), 1.0);
  }
}

// The hybrid window filter must agree with the exact double predicate on
// every id — especially the boundary-tie lanes. Swept over a representable
// width (2r = 2^-4: bounds land exactly on the grid, every boundary value
// is a tie) and a non-representable one (2r = 0.06).
TEST(QuantizeTest, WindowFilterMatchesExactPredicate) {
  const DispatchGuard guard;
  struct Window {
    double lower;
    double width;
  };
  const Window windows[] = {{0.40625, 0.0625}, {0.37, 0.06}, {0.0, 0.03},
                            {0.97, 0.06}};
  Rng rng(23);
  for (const Window win : windows) {
    const kernels::WindowBoundsQ wb =
        kernels::window_bounds(win.lower, win.lower + win.width);
    std::vector<double> col;
    for (int i = 0; i < 2000; ++i) col.push_back(rng.uniform());
    for (const double b : {wb.lower, wb.upper}) {
      col.push_back(b);
      col.push_back(std::nextafter(b, 2.0));
      col.push_back(std::nextafter(b, -1.0));
      col.push_back(b + std::ldexp(1.0, -31));  // inside the tie band
      col.push_back(b - std::ldexp(1.0, -31));
    }
    std::vector<std::uint32_t> qcol(col.size());
    std::vector<std::uint32_t> ids(col.size());
    for (std::size_t i = 0; i < col.size(); ++i) {
      qcol[i] = kernels::quantize(std::clamp(col[i], 0.0, 1.0));
      col[i] = std::clamp(col[i], 0.0, 1.0);
      ids[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (kernels::in_window(col[i], wb)) {
        expected.push_back(static_cast<std::uint32_t>(i));
      }
    }
    for (const char* variant : {"scalar", "avx2"}) {
      if (!kernels::force(variant)) continue;
      SCOPED_TRACE(variant);
      std::vector<std::uint32_t> out(col.size());
      const std::size_t n = kernels::dispatch().filter_in_window(
          qcol.data(), col.data(), ids.data(), ids.size(), wb, out.data());
      ASSERT_EQ(n, expected.size()) << "lower=" << win.lower;
      EXPECT_EQ(0, std::memcmp(out.data(), expected.data(),
                               n * sizeof(std::uint32_t)));
    }
  }
}

// The AVX2 Chebyshev-ball prefilter resolves to exactly the scalar member
// set once its slop-band ids are settled with the exact predicate.
TEST(QuantizeTest, RadiusPrefilterResolvesToExactMembers) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const DispatchGuard guard;
  Rng rng(37);
  const std::size_t n = 3000;
  const std::size_t dims = 4;
  std::vector<double> cols(dims * n);
  std::vector<std::uint32_t> qcols(dims * n);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    cols[i] = rng.uniform();
    qcols[i] = kernels::quantize(cols[i]);
  }
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  const std::vector<double> centre(dims, 0.5);
  const double radius = 0.06;

  const auto exact_in = [&](std::uint32_t id) {
    for (std::size_t t = 0; t < dims; ++t) {
      if (std::fabs(cols[t * n + id] - centre[t]) > radius) return false;
    }
    return true;
  };

  ASSERT_TRUE(kernels::force("avx2"));
  std::vector<std::uint32_t> out(n);
  std::vector<std::uint32_t> maybe(n);
  const auto r = kernels::dispatch().filter_in_radius(
      qcols.data(), cols.data(), n, dims, centre.data(), radius, ids.data(), n,
      out.data(), maybe.data());
  std::vector<std::uint32_t> resolved(out.begin(), out.begin() + r.in_count);
  for (std::size_t i = 0; i < r.maybe_count; ++i) {
    if (exact_in(maybe[i])) resolved.push_back(maybe[i]);
  }
  std::sort(resolved.begin(), resolved.end());

  std::vector<std::uint32_t> expected;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (exact_in(id)) expected.push_back(id);
  }
  EXPECT_EQ(resolved, expected);
}

// Decisions over whole scenario streams are byte-identical whichever table
// the dispatcher picks — the end-to-end form of the per-kernel guarantee.
TEST(KernelDispatchTest, ForcedScalarAndAvx2DecisionsAreByteIdentical) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const DispatchGuard guard;
  ScenarioParams params;
  params.n = 3000;
  params.errors_per_step = 60;
  params.seed = 5;
  const Params model = params.model;

  const auto run = [&](const char* variant) {
    EXPECT_TRUE(kernels::force(variant));
    ScenarioGenerator generator(params);
    std::vector<std::vector<Decision>> all;
    for (int step = 0; step < 3; ++step) {
      const ScenarioStep s = generator.advance();
      Characterizer characterizer(s.state, model);
      std::vector<Decision> decisions;
      for (const DeviceId j : s.state.abnormal()) {
        decisions.push_back(characterizer.characterize(j));
      }
      all.push_back(std::move(decisions));
    }
    return all;
  };

  const auto scalar = run("scalar");
  const auto avx2 = run("avx2");
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t k = 0; k < scalar.size(); ++k) {
    ASSERT_EQ(scalar[k].size(), avx2[k].size()) << "step " << k;
    for (std::size_t i = 0; i < scalar[k].size(); ++i) {
      const Decision& a = scalar[k][i];
      const Decision& b = avx2[k][i];
      EXPECT_EQ(a.cls, b.cls) << "step " << k << " device " << i;
      EXPECT_EQ(a.rule, b.rule) << "step " << k << " device " << i;
      EXPECT_EQ(a.exact, b.exact) << "step " << k << " device " << i;
      EXPECT_EQ(a.maximal_motion_count, b.maximal_motion_count)
          << "step " << k << " device " << i;
      EXPECT_EQ(a.dense_motion_count, b.dense_motion_count)
          << "step " << k << " device " << i;
      EXPECT_EQ(a.collections_tested, b.collections_tested)
          << "step " << k << " device " << i;
    }
  }
}

// An over-tight arena budget must surface as ArenaBudgetExceeded out of
// observe() — with the engine state untouched, so the stream continues.
TEST(ArenaBudgetTest, OverflowIsVerdictSafe) {
  ScenarioParams params;
  params.n = 1000;
  params.errors_per_step = 40;
  params.seed = 9;
  ScenarioGenerator generator(params);
  const ScenarioStep s1 = generator.advance();
  const ScenarioStep s2 = generator.advance();

  FrameEngine engine(FrameEngine::Config{.model = params.model,
                                         .plane_arena_budget = 64});
  EXPECT_FALSE(engine.observe(s1.state.prev(), DeviceSet{}).has_value());
  try {
    (void)engine.observe(s1.state.curr(), s1.state.abnormal());
    FAIL() << "expected ArenaBudgetExceeded";
  } catch (const ArenaBudgetExceeded& e) {
    EXPECT_GT(e.attempted_bytes(), e.limit_bytes());
    EXPECT_EQ(e.limit_bytes(), 64u);
  }
  // The engine survived: the next interval (nothing abnormal, so the plane
  // build parks nothing in its arenas) still characterizes cleanly.
  const auto result = engine.observe(s2.state.curr(), DeviceSet{});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->decisions.empty());

  // The same stream under the default (ample) budget is unaffected.
  FrameEngine ample(FrameEngine::Config{.model = params.model});
  EXPECT_FALSE(ample.observe(s1.state.prev(), DeviceSet{}).has_value());
  const auto ok = ample.observe(s1.state.curr(), s1.state.abnormal());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->decisions.size(), s1.state.abnormal().size());
}

}  // namespace
}  // namespace acn
