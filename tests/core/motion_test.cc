#include "core/motion.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"

namespace acn {
namespace {

// ---------------------------------------------------------------------------
// Figure 1 of the paper: six devices in a one-dimensional QoS space; the two
// maximal r-consistent sets containing device 1 are B1 = {1,2,3,4} and
// B2 = {1,2,3,5,6}. (Paper ids 1..6 map to indices 0..5 here.)
// ---------------------------------------------------------------------------
class Figure1Test : public ::testing::Test {
 protected:
  // positions at time k; device 4 sits left of the {1,2,3} cluster, devices
  // 5 and 6 right of it, 2r = 0.1.
  Figure1Test()
      : state_(test::make_static_1d({0.45, 0.47, 0.49, 0.40, 0.52, 0.53})),
        r_(0.05) {}

  StatePair state_;
  double r_;
};

TEST_F(Figure1Test, B1IsConsistent) {
  EXPECT_TRUE(is_r_consistent(state_.curr(), DeviceSet({0, 1, 2, 3}), r_));
}

TEST_F(Figure1Test, B2IsConsistent) {
  EXPECT_TRUE(is_r_consistent(state_.curr(), DeviceSet({0, 1, 2, 4, 5}), r_));
}

TEST_F(Figure1Test, B1PlusAnyOfB2TailIsNot) {
  EXPECT_FALSE(is_r_consistent(state_.curr(), DeviceSet({0, 1, 2, 3, 4}), r_));
  EXPECT_FALSE(is_r_consistent(state_.curr(), DeviceSet({0, 1, 2, 3, 5}), r_));
}

TEST_F(Figure1Test, B2Plus4IsNot) {
  EXPECT_FALSE(is_r_consistent(state_.curr(), DeviceSet({0, 1, 2, 3, 4, 5}), r_));
}

TEST_F(Figure1Test, SubsetsOfConsistentSetsAreConsistent) {
  // "Any subset of B1 and any subset of B2 is an r-consistent set."
  EXPECT_TRUE(is_r_consistent(state_.curr(), DeviceSet({0, 3}), r_));
  EXPECT_TRUE(is_r_consistent(state_.curr(), DeviceSet({1, 4, 5}), r_));
  EXPECT_TRUE(is_r_consistent(state_.curr(), DeviceSet({2}), r_));
}

TEST_F(Figure1Test, MaximalityPredicate) {
  const std::vector<DeviceId> universe = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(is_maximal_motion_in(state_, DeviceSet({0, 1, 2, 3}), universe, r_));
  EXPECT_TRUE(is_maximal_motion_in(state_, DeviceSet({0, 1, 2, 4, 5}), universe, r_));
  // {1,2,3} extends with 4 (paper ids): not maximal.
  EXPECT_FALSE(is_maximal_motion_in(state_, DeviceSet({0, 1, 2}), universe, r_));
}

// ---------------------------------------------------------------------------
// Motion predicates on trajectories (both instants matter).
// ---------------------------------------------------------------------------

TEST(MotionTest, ConsistentAtBothInstantsIsMotion) {
  const StatePair state = test::make_state_1d({{0.1, 0.5}, {0.12, 0.53}});
  EXPECT_TRUE(has_consistent_motion(state, DeviceSet({0, 1}), 0.02));
}

TEST(MotionTest, ConsistentOnlyAtOneInstantIsNotMotion) {
  // Close at k-1, far at k.
  const StatePair state = test::make_state_1d({{0.1, 0.2}, {0.12, 0.8}});
  EXPECT_TRUE(is_r_consistent(state.prev(), DeviceSet({0, 1}), 0.02));
  EXPECT_FALSE(is_r_consistent(state.curr(), DeviceSet({0, 1}), 0.02));
  EXPECT_FALSE(has_consistent_motion(state, DeviceSet({0, 1}), 0.02));
}

TEST(MotionTest, SingletonAndEmptyAreAlwaysMotions) {
  const StatePair state = test::make_state_1d({{0.1, 0.9}});
  EXPECT_TRUE(has_consistent_motion(state, DeviceSet({0}), 0.0));
  EXPECT_TRUE(has_consistent_motion(state, DeviceSet{}, 0.0));
}

TEST(MotionTest, BoundaryDistanceExactly2rIsConsistent) {
  // Definition 1 uses <= 2r.
  const StatePair state = test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}});
  EXPECT_TRUE(has_consistent_motion(state, DeviceSet({0, 1}), 0.05));
  EXPECT_FALSE(has_consistent_motion(state, DeviceSet({0, 1}), 0.0499));
}

TEST(MotionTest, JointDiameter) {
  const StatePair state = test::make_state_1d({{0.1, 0.5}, {0.3, 0.52}, {0.2, 0.58}});
  EXPECT_NEAR(joint_diameter(state, DeviceSet({0, 1, 2})), 0.2, 1e-12);
  EXPECT_EQ(joint_diameter(state, DeviceSet({0})), 0.0);
}

TEST(MotionTest, MotionWithExtra) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.5}, {0.12, 0.52}, {0.3, 0.54}});
  EXPECT_TRUE(motion_with_extra(state, DeviceSet({0, 1}), 2, 0.12));
  EXPECT_FALSE(motion_with_extra(state, DeviceSet({0, 1}), 2, 0.05));
  // Extra already in the set: no-op.
  EXPECT_TRUE(motion_with_extra(state, DeviceSet({0, 1}), 1, 0.05));
}

TEST(MotionTest, DensityThreshold) {
  EXPECT_TRUE(is_dense(DeviceSet({1, 2, 3, 4}), 3));
  EXPECT_FALSE(is_dense(DeviceSet({1, 2, 3}), 3));
  EXPECT_FALSE(is_dense(DeviceSet{}, 1));
}

TEST(JointBoxTest, TracksExtents) {
  JointBox box(2);
  EXPECT_TRUE(box.empty());
  box.add(Point{0.1, 0.5});
  box.add(Point{0.3, 0.6});
  EXPECT_EQ(box.count(), 2u);
  EXPECT_NEAR(box.side(), 0.2, 1e-12);
  EXPECT_TRUE(box.within(0.2));
  EXPECT_FALSE(box.within(0.19));
}

TEST(JointBoxTest, WouldFit) {
  JointBox box(2);
  box.add(Point{0.1, 0.1});
  EXPECT_TRUE(box.would_fit(Point{0.3, 0.1}, 0.2));
  EXPECT_FALSE(box.would_fit(Point{0.31, 0.1}, 0.2));
  // Empty box fits anything.
  JointBox empty(2);
  EXPECT_TRUE(empty.would_fit(Point{0.9, 0.9}, 0.0));
}

TEST(JointBoxTest, SinglePointHasZeroSide) {
  JointBox box(2);
  box.add(Point{0.4, 0.7});
  EXPECT_EQ(box.side(), 0.0);
  EXPECT_TRUE(box.within(0.0));
}

}  // namespace
}  // namespace acn
