#include "core/grid_index.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/worker_pool.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

TEST(GridIndexTest, FindsSelf) {
  const StatePair state = test::make_static_1d({0.5});
  const GridIndex grid(state, state.abnormal(), 0.1);
  EXPECT_EQ(grid.within(0, 0.1), (std::vector<DeviceId>{0}));
}

TEST(GridIndexTest, RejectsNonPositiveCell) {
  const StatePair state = test::make_static_1d({0.5});
  EXPECT_THROW(GridIndex(state, state.abnormal(), 0.0), std::invalid_argument);
}

TEST(GridIndexTest, RadiusFiltersByJointDistance) {
  // Device 1 close at k, far at k-1: joint distance is large.
  const StatePair state = test::make_state_1d({{0.5, 0.5}, {0.9, 0.52}});
  const GridIndex grid(state, state.abnormal(), 0.1);
  EXPECT_EQ(grid.within(0, 0.1), (std::vector<DeviceId>{0}));
  EXPECT_EQ(grid.within(0, 0.4), (std::vector<DeviceId>{0, 1}));
}

TEST(GridIndexTest, OnlyIndexedMembersReturned) {
  const StatePair state =
      test::make_static_1d({0.50, 0.52, 0.54});
  const GridIndex grid(state, DeviceSet({0, 2}), 0.1);
  EXPECT_EQ(grid.within(0, 0.1), (std::vector<DeviceId>{0, 2}));
}

TEST(GridIndexTest, LargerRadiusThanCellWorks) {
  // 4r query on a 2r grid (the L_k(j) second hop).
  const StatePair state = test::make_static_1d({0.10, 0.25, 0.40, 0.70});
  const GridIndex grid(state, state.abnormal(), 0.1);
  EXPECT_EQ(grid.within(0, 0.2), (std::vector<DeviceId>{0, 1}));
  EXPECT_EQ(grid.within(0, 0.31), (std::vector<DeviceId>{0, 1, 2}));
}

TEST(GridIndexTest, BoundaryDistanceIncluded) {
  // Exactly representable doubles: distance is exactly the radius.
  const StatePair state = test::make_static_1d({0.25, 0.375});
  const GridIndex grid(state, state.abnormal(), 0.125);
  EXPECT_EQ(grid.within(0, 0.125), (std::vector<DeviceId>{0, 1}));
}

class GridRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridRandomSweep, MatchesLinearScan) {
  Rng rng(GetParam());
  const std::size_t n = 40;
  const std::size_t d = 1 + GetParam() % 3;
  std::vector<std::vector<double>> prev(n, std::vector<double>(d));
  std::vector<std::vector<double>> curr(n, std::vector<double>(d));
  for (auto& p : prev)
    for (auto& x : p) x = rng.uniform();
  for (auto& c : curr)
    for (auto& x : c) x = rng.uniform();
  const StatePair state = test::make_state(prev, curr);
  const double cell = 0.05 + 0.1 * rng.uniform();
  const GridIndex grid(state, state.abnormal(), cell);

  for (const double radius : {cell * 0.5, cell, cell * 2.0}) {
    for (DeviceId j = 0; j < n; j += 7) {
      std::vector<DeviceId> expected;
      for (DeviceId other = 0; other < n; ++other) {
        if (state.joint_distance(j, other) <= radius) expected.push_back(other);
      }
      EXPECT_EQ(grid.within(j, radius), expected)
          << "j=" << j << " radius=" << radius << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridRandomSweep,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{12}));

class ShardedGridSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardedGridSweep, MatchesUnshardedAcrossRollsAndChurn) {
  // The sharded grid's whole contract: for any shard count, after any
  // sequence of rolls (stage + apply_staged) and churn (insert/remove),
  // every query returns byte-identical results to an unsharded FleetGrid
  // fed the same operations.
  const unsigned shard_count = GetParam();
  Rng rng(40 + shard_count);
  const std::size_t n = 60;
  std::vector<Point> positions;
  positions.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    positions.push_back(Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  StatePair state{Snapshot(positions), Snapshot(positions), DeviceSet{}};

  const double cell = 0.1;
  FleetGrid reference(cell);
  ShardedFleetGrid sharded(cell, shard_count);
  WorkerPool pool(4);
  reference.rebuild(state);
  sharded.rebuild(state, &pool);

  std::vector<std::uint8_t> all(n, 1);
  std::vector<DeviceId> got;
  std::vector<DeviceId> want;
  const auto expect_same_queries = [&](const char* where, int round) {
    for (DeviceId j = 0; j < n; j += 5) {
      for (const double radius : {cell * 0.5, cell, cell * 2.0}) {
        reference.within_into(state, j, radius, all, want);
        sharded.within_into(state, j, radius, all, got);
        EXPECT_EQ(got, want) << where << " round=" << round << " j=" << j
                             << " radius=" << radius << " shards=" << shard_count;
      }
    }
  };
  expect_same_queries("rebuild", -1);

  std::vector<DeviceId> moved;
  for (int round = 0; round < 5; ++round) {
    // A third of the fleet jumps uniformly (stripe-crossing moves included),
    // the rest stays put — so staged queues mix inserts, removes, and
    // same-cell drops.
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.33) {
        positions[j] = Point{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
      }
    }
    state.advance(Snapshot(positions), DeviceSet{}, &moved);
    reference.apply(state, moved);
    sharded.stage(state, moved);
    sharded.apply_staged(state, &pool);
    EXPECT_EQ(sharded.staged_op_count(), 0u);
    EXPECT_EQ(sharded.device_count(), reference.device_count());
    expect_same_queries("roll", round);

    // Churn: retire two devices, verify both grids drop them, re-admit.
    const DeviceId parked[] = {static_cast<DeviceId>((7 * round) % n),
                               static_cast<DeviceId>((11 * round + 3) % n)};
    for (const DeviceId j : parked) {
      reference.remove(state, j);
      sharded.remove(state, j);
    }
    expect_same_queries("churn-out", round);
    for (const DeviceId j : parked) {
      reference.insert(state, j);
      sharded.insert(state, j);
    }
    expect_same_queries("churn-in", round);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedGridSweep,
                         ::testing::Values(1u, 2u, 4u, 7u));

}  // namespace
}  // namespace acn
