// MotionPlane / oracle equivalence: the snapshot-level plane must be an
// invisible optimization. Across randomized §VII-A workloads and degenerate
// geometries, the per-device characterize() path, the batch
// characterize_all() path, and the thread-pool characterize_all_parallel()
// path must produce byte-identical CharacterizationSets — same devices, same
// buckets, independent of scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "core/characterizer.hpp"
#include "core/motion_plane.hpp"
#include "sim/scenario.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

/// Buckets per-device characterize() calls on a fresh characterizer — the
/// seed's characterize_all loop, kept as the reference shape.
CharacterizationSets per_device_reference(const StatePair& state, Params params) {
  Characterizer characterizer(state, params);
  CharacterizationSets sets;
  for (const DeviceId j : state.abnormal()) {
    switch (characterizer.characterize(j).cls) {
      case AnomalyClass::kIsolated:
        sets.isolated = sets.isolated.with(j);
        break;
      case AnomalyClass::kMassive:
        sets.massive = sets.massive.with(j);
        break;
      case AnomalyClass::kUnresolved:
        sets.unresolved = sets.unresolved.with(j);
        break;
    }
  }
  return sets;
}

void expect_all_paths_agree(const StatePair& state, Params params,
                            const std::string& label) {
  const CharacterizationSets reference = per_device_reference(state, params);

  Characterizer serial(state, params);
  const CharacterizationSets bulk = serial.characterize_all();
  EXPECT_EQ(bulk.isolated, reference.isolated) << label;
  EXPECT_EQ(bulk.massive, reference.massive) << label;
  EXPECT_EQ(bulk.unresolved, reference.unresolved) << label;

  // Shared plane, 4 pool lanes regardless of core count, and a parallel
  // grain of 1 so the worker-pool fan-out genuinely runs even though these
  // fleets sit far below the production fall-back-to-serial threshold.
  const CharacterizeOptions pooled_options{.parallel_grain = 1};
  const MotionPlane plane(state, params);
  Characterizer parallel(plane, pooled_options);
  const CharacterizationSets pooled = parallel.characterize_all_parallel(4);
  EXPECT_EQ(pooled.isolated, reference.isolated) << label;
  EXPECT_EQ(pooled.massive, reference.massive) << label;
  EXPECT_EQ(pooled.unresolved, reference.unresolved) << label;

  // Decisions (not just buckets) must match field for field.
  Characterizer again(plane);
  const std::vector<Decision> serial_decisions = again.decide_all();
  Characterizer once_more(plane, pooled_options);
  const std::vector<Decision> parallel_decisions = once_more.decide_all_parallel(4);
  ASSERT_EQ(serial_decisions.size(), parallel_decisions.size()) << label;
  for (std::size_t i = 0; i < serial_decisions.size(); ++i) {
    EXPECT_EQ(serial_decisions[i].cls, parallel_decisions[i].cls) << label;
    EXPECT_EQ(serial_decisions[i].rule, parallel_decisions[i].rule) << label;
    EXPECT_EQ(serial_decisions[i].exact, parallel_decisions[i].exact) << label;
    EXPECT_EQ(serial_decisions[i].maximal_motion_count,
              parallel_decisions[i].maximal_motion_count)
        << label;
    EXPECT_EQ(serial_decisions[i].dense_motion_count,
              parallel_decisions[i].dense_motion_count)
        << label;
    EXPECT_EQ(serial_decisions[i].collections_tested,
              parallel_decisions[i].collections_tested)
        << label;
  }
}

// ---------------------------------------------------------------------------
// Randomized §VII-A sweep across the paper's G axis (Figure 7's parameter).
// ---------------------------------------------------------------------------

struct SweepCase {
  std::uint64_t seed;
  double isolated_probability;  // G
};

class PlaneEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PlaneEquivalenceSweep, AllPathsByteIdentical) {
  const auto& param = GetParam();
  ScenarioParams scenario;
  scenario.n = 400;
  scenario.errors_per_step = 12;
  scenario.isolated_probability = param.isolated_probability;
  scenario.seed = param.seed;

  ScenarioGenerator generator(scenario);
  for (int step_index = 0; step_index < 3; ++step_index) {
    const ScenarioStep step = generator.advance();
    expect_all_paths_agree(
        step.state, scenario.model,
        "seed=" + std::to_string(param.seed) +
            " G=" + std::to_string(param.isolated_probability) +
            " step=" + std::to_string(step_index));
  }
}

INSTANTIATE_TEST_SUITE_P(GAxis, PlaneEquivalenceSweep,
                         ::testing::Values(SweepCase{11, 0.0},   //
                                           SweepCase{12, 0.3},   //
                                           SweepCase{13, 0.5},   //
                                           SweepCase{14, 0.7},   //
                                           SweepCase{15, 1.0},   //
                                           SweepCase{16, 0.5},   //
                                           SweepCase{17, 0.0},   //
                                           SweepCase{18, 1.0}));

// ---------------------------------------------------------------------------
// Degenerate geometries.
// ---------------------------------------------------------------------------

TEST(PlaneEquivalenceDegenerateTest, EmptyAbnormalSet) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.1}, {0.5, 0.5}}, DeviceSet{});
  const Params params{.r = 0.05, .tau = 2};

  const MotionPlane plane(state, params);
  EXPECT_EQ(plane.device_count(), 0u);
  EXPECT_EQ(plane.motion_count(), 0u);

  Characterizer characterizer(plane);
  const CharacterizationSets serial = characterizer.characterize_all();
  EXPECT_TRUE(serial.isolated.empty());
  EXPECT_TRUE(serial.massive.empty());
  EXPECT_TRUE(serial.unresolved.empty());
  const CharacterizationSets parallel = characterizer.characterize_all_parallel(4);
  EXPECT_TRUE(parallel.isolated.empty());
  EXPECT_TRUE(parallel.massive.empty());
  EXPECT_TRUE(parallel.unresolved.empty());
}

TEST(PlaneEquivalenceDegenerateTest, AllIsolatedDevices) {
  // Far-apart devices: every family is a singleton, everyone Theorem-5.
  const StatePair state = test::make_state_1d(
      {{0.05, 0.90}, {0.25, 0.10}, {0.50, 0.45}, {0.75, 0.20}, {0.95, 0.60}});
  const Params params{.r = 0.02, .tau = 1};
  expect_all_paths_agree(state, params, "all-isolated");

  Characterizer characterizer(state, params);
  const CharacterizationSets sets = characterizer.characterize_all();
  EXPECT_EQ(sets.isolated.size(), 5u);
}

TEST(PlaneEquivalenceDegenerateTest, DenseBlobAcrossGridCellBoundaries) {
  // One tau-dense blob straddling the 2r grid-cell boundary at 0.1 (cell
  // side = window = 0.1): members land in different cells at k, and the
  // common displacement keeps them one motion. Every path must call the
  // whole blob massive.
  const StatePair state = test::make_state_1d({
      {0.095, 0.595},
      {0.098, 0.598},
      {0.100, 0.600},
      {0.102, 0.602},
      {0.105, 0.605},
      {0.108, 0.608},
  });
  const Params params{.r = 0.05, .tau = 3};
  expect_all_paths_agree(state, params, "blob-across-cells");

  Characterizer characterizer(state, params);
  const CharacterizationSets sets = characterizer.characterize_all();
  EXPECT_EQ(sets.massive.size(), 6u);

  // The blob's family is one interned motion shared by all six devices.
  const MotionPlane plane(state, params);
  EXPECT_EQ(plane.motion_count(), 1u);
  EXPECT_EQ(plane.counters().motions_shared, 5u);
}

// ---------------------------------------------------------------------------
// Plane internals visible through the public surface.
// ---------------------------------------------------------------------------

TEST(MotionPlaneTest, InterningSharesMotionsAcrossDevices) {
  // Two overlapping pairs (chain): device 1's family {0,1} and {1,2};
  // device 0 contributes {0,1} again — interned once.
  const StatePair state = test::make_static_1d({0.10, 0.18, 0.26});
  const MotionPlane plane(state, {.r = 0.05, .tau = 1});
  EXPECT_EQ(plane.motion_count(), 2u);
  ASSERT_EQ(plane.maximal(1).size(), 2u);
  EXPECT_EQ(plane.maximal(0).size(), 1u);
  EXPECT_EQ(plane.maximal(0)[0], plane.maximal(1)[0]);  // same interned run
}

TEST(MotionPlaneTest, ThrowsForNormalDevice) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}}, DeviceSet({0}));
  const MotionPlane plane(state, {.r = 0.05, .tau = 1});
  EXPECT_FALSE(plane.covers(1));
  EXPECT_THROW((void)plane.maximal(1), std::invalid_argument);
  EXPECT_THROW((void)plane.dense(1), std::invalid_argument);
  EXPECT_THROW((void)plane.neighbourhood(1), std::invalid_argument);
}

}  // namespace
}  // namespace acn
