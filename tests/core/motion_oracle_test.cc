#include "core/motion_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

// ---------------------------------------------------------------------------
// Exact configurations.
// ---------------------------------------------------------------------------

TEST(MotionOracleTest, SingleIsolatedDevice) {
  const StatePair state = test::make_state_1d({{0.1, 0.9}});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto motions = oracle.maximal_motions(0);
  ASSERT_EQ(motions.size(), 1u);
  EXPECT_EQ(motions[0], DeviceSet({0}));
}

TEST(MotionOracleTest, TwoOverlappingMaximalMotions) {
  // 1-D static chain: windows {0,1} and {1,2} are both maximal (0-2 too far).
  const StatePair state = test::make_static_1d({0.10, 0.18, 0.26});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto motions = oracle.maximal_motions(1);
  ASSERT_EQ(motions.size(), 2u);
  EXPECT_EQ(motions[0], DeviceSet({0, 1}));
  EXPECT_EQ(motions[1], DeviceSet({1, 2}));
}

TEST(MotionOracleTest, MotionNeedsConsistencyAtBothInstants) {
  // Devices adjacent at k-1 but torn apart at k: no common motion.
  const StatePair state = test::make_state_1d({{0.1, 0.2}, {0.11, 0.9}});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto motions = oracle.maximal_motions(0);
  ASSERT_EQ(motions.size(), 1u);
  EXPECT_EQ(motions[0], DeviceSet({0}));
}

TEST(MotionOracleTest, OnlyAbnormalDevicesParticipate) {
  // Device 1 is normal; motions must ignore it.
  const StatePair state =
      test::make_state_1d({{0.10, 0.10}, {0.12, 0.12}, {0.14, 0.14}},
                          DeviceSet({0, 2}));
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto motions = oracle.maximal_motions(0);
  ASSERT_EQ(motions.size(), 1u);
  EXPECT_EQ(motions[0], DeviceSet({0, 2}));
}

TEST(MotionOracleTest, RequestingNormalDeviceThrows) {
  const StatePair state = test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}}, DeviceSet({0}));
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  EXPECT_THROW((void)oracle.maximal_motions(1), std::invalid_argument);
}

TEST(MotionOracleTest, DenseMotionsFilterByTau) {
  // Four devices in one tight cluster.
  const StatePair state = test::make_static_1d({0.10, 0.11, 0.12, 0.13});
  MotionOracle oracle(state, {.r = 0.05, .tau = 3});
  ASSERT_EQ(oracle.maximal_motions(0).size(), 1u);
  EXPECT_EQ(oracle.dense_motions(0).size(), 1u);  // size 4 > tau = 3

  MotionOracle stricter(state, {.r = 0.05, .tau = 4});
  EXPECT_TRUE(stricter.dense_motions(0).empty());  // size 4 is not > 4
}

TEST(MotionOracleTest, ExcludingRemovedDevices) {
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14, 0.16});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto restricted = oracle.maximal_motions_excluding(0, DeviceSet({1, 2}));
  ASSERT_EQ(restricted.size(), 1u);
  EXPECT_EQ(restricted[0], DeviceSet({0, 3}));
}

TEST(MotionOracleTest, HasDenseMotionAvoiding) {
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14, 0.16});
  MotionOracle oracle(state, {.r = 0.05, .tau = 2});
  EXPECT_TRUE(oracle.has_dense_motion_avoiding(0, DeviceSet{}));       // {0,1,2,3}
  EXPECT_TRUE(oracle.has_dense_motion_avoiding(0, DeviceSet({3})));    // {0,1,2}
  EXPECT_FALSE(oracle.has_dense_motion_avoiding(0, DeviceSet({1, 3})));
}

TEST(MotionOracleTest, PoolEnumerationFindsAllMaximalMotions) {
  // Same geometry as the greedy counterexample in partition.hpp.
  const StatePair state = test::make_static_1d({0.0, 0.225, 0.3, 0.325});
  MotionOracle oracle(state, {.r = 0.125, .tau = 2});
  const auto motions = oracle.maximal_motions_of_pool({0, 1, 2, 3});
  ASSERT_EQ(motions.size(), 2u);
  EXPECT_EQ(motions[0], DeviceSet({0, 1}));
  EXPECT_EQ(motions[1], DeviceSet({1, 2, 3}));
}

TEST(MotionOracleTest, PoolEnumerationRespectsPoolRestriction) {
  const StatePair state = test::make_static_1d({0.0, 0.225, 0.3, 0.325});
  MotionOracle oracle(state, {.r = 0.125, .tau = 2});
  const auto motions = oracle.maximal_motions_in_pool(1, {1, 2});
  ASSERT_EQ(motions.size(), 1u);
  EXPECT_EQ(motions[0], DeviceSet({1, 2}));
  EXPECT_THROW((void)oracle.maximal_motions_in_pool(0, {1, 2}), std::invalid_argument);
}

TEST(MotionOracleTest, NeighbourhoodIsSymmetricAndWithin2r) {
  const StatePair state = test::make_static_1d({0.10, 0.15, 0.50});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto n0 = oracle.neighbourhood(0);
  EXPECT_EQ(std::vector<DeviceId>(n0.begin(), n0.end()),
            (std::vector<DeviceId>{0, 1}));
  const auto n2 = oracle.neighbourhood(2);
  EXPECT_EQ(std::vector<DeviceId>(n2.begin(), n2.end()),
            (std::vector<DeviceId>{2}));
}

TEST(MotionOracleTest, CountersAdvance) {
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  (void)oracle.maximal_motions(0);
  EXPECT_GE(oracle.counters().enumeration_calls, 1u);
  EXPECT_GE(oracle.counters().windows_explored, 1u);
  EXPECT_GE(oracle.counters().covers_generated, 1u);
}

TEST(MotionOracleTest, MemoizationReturnsSameObject) {
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14});
  MotionOracle oracle(state, {.r = 0.05, .tau = 1});
  const auto& first = oracle.maximal_motions(0);
  const auto calls = oracle.counters().enumeration_calls;
  const auto& second = oracle.maximal_motions(0);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(oracle.counters().enumeration_calls, calls);
}

TEST(MotionOracleTest, ZeroRadiusGroupsIdenticalTrajectoriesOnly) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.5}, {0.1, 0.5}, {0.1, 0.500001}});
  MotionOracle oracle(state, {.r = 0.0, .tau = 1});
  const auto motions = oracle.maximal_motions(0);
  ASSERT_EQ(motions.size(), 1u);
  EXPECT_EQ(motions[0], DeviceSet({0, 1}));
}

// ---------------------------------------------------------------------------
// Property: canonical-window enumeration equals brute-force subset search.
// Randomized over geometry, dimension, radius and density.
// ---------------------------------------------------------------------------

struct OracleSweepCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t d;
  double r;
  double spread;  // points are sampled in [0, spread]^d to control density
};

class OracleBruteForceSweep : public ::testing::TestWithParam<OracleSweepCase> {};

TEST_P(OracleBruteForceSweep, MatchesBruteForce) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  std::vector<std::vector<double>> prev(param.n, std::vector<double>(param.d));
  std::vector<std::vector<double>> curr(param.n, std::vector<double>(param.d));
  for (std::size_t j = 0; j < param.n; ++j) {
    for (std::size_t i = 0; i < param.d; ++i) {
      prev[j][i] = rng.uniform(0.0, param.spread);
      curr[j][i] = rng.uniform(0.0, param.spread);
    }
  }
  const StatePair state = test::make_state(prev, curr);
  MotionOracle oracle(state, {.r = param.r, .tau = 1});

  std::vector<DeviceId> all(param.n);
  for (std::size_t j = 0; j < param.n; ++j) all[j] = static_cast<DeviceId>(j);

  for (DeviceId j = 0; j < param.n; ++j) {
    auto expected = test::brute_force_maximal_motions(state, param.r, all, j);
    auto actual = oracle.maximal_motions(j);
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(actual.size(), expected.size())
        << "device " << j << " seed " << param.seed;
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]) << "device " << j << " seed " << param.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGeometries, OracleBruteForceSweep,
    ::testing::Values(
        OracleSweepCase{1, 8, 1, 0.05, 0.3},   //
        OracleSweepCase{2, 10, 1, 0.1, 0.5},   //
        OracleSweepCase{3, 12, 1, 0.02, 0.2},  //
        OracleSweepCase{4, 8, 2, 0.08, 0.4},   //
        OracleSweepCase{5, 10, 2, 0.12, 0.5},  //
        OracleSweepCase{6, 12, 2, 0.05, 0.25}, //
        OracleSweepCase{7, 9, 3, 0.1, 0.4},    //
        OracleSweepCase{8, 11, 2, 0.15, 0.4},  //
        OracleSweepCase{9, 13, 1, 0.08, 0.25}, //
        OracleSweepCase{10, 14, 2, 0.1, 0.45}, //
        OracleSweepCase{11, 10, 2, 0.2, 0.5},  //
        OracleSweepCase{12, 12, 3, 0.07, 0.3}));

}  // namespace
}  // namespace acn
