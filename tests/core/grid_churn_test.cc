// Property test: a FleetGrid carried across intervals through random
// insert / remove / move churn answers every masked neighbourhood query
// bit-identically to a GridIndex rebuilt from scratch over the surviving
// members. This is the invariant the streaming engine's churn path (roster
// mode) rests on.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/grid_index.hpp"
#include "core/state.hpp"

namespace acn {
namespace {

Point random_point(Rng& rng) { return Point{rng.uniform(), rng.uniform()}; }

TEST(GridChurn, IncrementalMatchesScratchUnderChurn) {
  const double cell = std::max(2.0 * 0.05, kMinGridCell);
  for (const std::uint64_t seed : {5ull, 23ull, 71ull}) {
    Rng rng(seed);
    const std::size_t n = 120;
    std::vector<Point> positions;
    positions.reserve(n);
    for (std::size_t j = 0; j < n; ++j) positions.push_back(random_point(rng));

    StatePair state{Snapshot(positions), Snapshot(positions), DeviceSet{}};
    FleetGrid grid(cell);
    grid.rebuild(state);
    std::vector<bool> present(n, true);

    std::vector<DeviceId> moved;
    std::vector<DeviceId> out;
    for (int k = 0; k < 12; ++k) {
      // Plan the interval's churn: present devices retire w.p. 0.08, parked
      // ones re-enter w.p. 0.3 (at a fresh position — the slot-splice jump).
      std::vector<DeviceId> retiring;
      std::vector<DeviceId> admitting;
      for (DeviceId j = 0; j < n; ++j) {
        if (present[j] && rng.bernoulli(0.08)) {
          retiring.push_back(j);
        } else if (!present[j] && rng.bernoulli(0.3)) {
          admitting.push_back(j);
        }
      }
      std::vector<bool> retiring_now(n, false);
      for (const DeviceId j : retiring) retiring_now[j] = true;

      std::vector<Point> next = state.curr().positions();
      for (DeviceId j = 0; j < n; ++j) {
        if (present[j] && !retiring_now[j] && rng.bernoulli(0.4)) {
          next[j] = random_point(rng);  // surviving member moves
        }
      }
      for (const DeviceId j : admitting) next[j] = random_point(rng);

      state.advance(Snapshot(std::move(next)), DeviceSet{}, &moved);

      // Devices absent from the grid must not go through apply() — they are
      // re-inserted explicitly (the documented FleetGrid churn contract).
      std::vector<DeviceId> moved_present;
      for (const DeviceId j : moved) {
        if (present[j]) moved_present.push_back(j);
      }
      grid.apply(state, moved_present);
      for (const DeviceId j : admitting) {
        grid.insert(state, j);
        present[j] = true;
      }
      for (const DeviceId j : retiring) {
        grid.remove(state, j);
        present[j] = false;
      }

      // Full-membership comparison: every device as query centre, two radii.
      std::vector<DeviceId> member_ids;
      std::vector<std::uint8_t> member_flag(n, 0);
      for (DeviceId j = 0; j < n; ++j) {
        if (present[j]) {
          member_ids.push_back(j);
          member_flag[j] = 1;
        }
      }
      ASSERT_EQ(grid.device_count(), member_ids.size()) << "interval " << k;
      const GridIndex scratch(state, DeviceSet(member_ids), cell);
      for (DeviceId j = 0; j < n; ++j) {
        for (const double radius : {cell, 2.0 * cell}) {
          grid.within_into(state, j, radius, member_flag, out);
          EXPECT_EQ(out, scratch.within(j, radius))
              << "seed " << seed << " interval " << k << " query " << j
              << " radius " << radius;
        }
      }

      // Sub-mask comparison (the abnormal-mask path the engine uses).
      std::vector<DeviceId> sub_ids;
      std::vector<std::uint8_t> sub_flag(n, 0);
      for (DeviceId j = 0; j < n; ++j) {
        if (present[j] && rng.bernoulli(0.3)) {
          sub_ids.push_back(j);
          sub_flag[j] = 1;
        }
      }
      const GridIndex scratch_sub(state, DeviceSet(sub_ids), cell);
      for (DeviceId j = 0; j < n; j += 7) {
        grid.within_into(state, j, 2.0 * cell, sub_flag, out);
        EXPECT_EQ(out, scratch_sub.within(j, 2.0 * cell))
            << "seed " << seed << " interval " << k << " query " << j;
      }
    }
  }
}

TEST(GridChurn, RemoveThrowsWhenAbsentAndRoundTrips) {
  const std::vector<Point> positions = {Point{0.1, 0.1}, Point{0.5, 0.5},
                                        Point{0.9, 0.9}};
  const StatePair state{Snapshot(positions), Snapshot(positions), DeviceSet{}};
  FleetGrid grid(0.1);
  grid.rebuild(state);
  ASSERT_EQ(grid.device_count(), 3u);

  grid.remove(state, 1);
  EXPECT_EQ(grid.device_count(), 2u);
  EXPECT_THROW(grid.remove(state, 1), std::logic_error);

  grid.insert(state, 1);
  EXPECT_EQ(grid.device_count(), 3u);
  std::vector<DeviceId> out;
  grid.within_into(state, 1, 0.05, {}, out);
  EXPECT_EQ(out, (std::vector<DeviceId>{1}));
  grid.remove(state, 1);
  EXPECT_EQ(grid.device_count(), 2u);
}

}  // namespace
}  // namespace acn
