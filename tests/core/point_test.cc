#include "core/point.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acn {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  const Point p{0.1, 0.2, 0.3};
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_EQ(p[0], 0.1);
  EXPECT_EQ(p[2], 0.3);
}

TEST(PointTest, RejectsEmptyAndOversized) {
  EXPECT_THROW(Point(std::initializer_list<double>{}), std::invalid_argument);
  std::vector<double> too_big(Point::kMaxDim + 1, 0.0);
  EXPECT_THROW(Point(std::span<const double>(too_big)), std::invalid_argument);
}

TEST(PointTest, ZeroFactory) {
  const Point z = Point::zero(4);
  EXPECT_EQ(z.dim(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(z[i], 0.0);
  EXPECT_THROW((void)Point::zero(0), std::invalid_argument);
}

TEST(PointTest, InUnitBox) {
  EXPECT_TRUE((Point{0.0, 1.0, 0.5}).in_unit_box());
  EXPECT_FALSE((Point{-0.01, 0.5}).in_unit_box());
  EXPECT_FALSE((Point{0.5, 1.01}).in_unit_box());
}

TEST(PointTest, Concat) {
  const Point a{0.1, 0.2};
  const Point b{0.3, 0.4};
  const Point joint = Point::concat(a, b);
  ASSERT_EQ(joint.dim(), 4u);
  EXPECT_EQ(joint[0], 0.1);
  EXPECT_EQ(joint[1], 0.2);
  EXPECT_EQ(joint[2], 0.3);
  EXPECT_EQ(joint[3], 0.4);
}

TEST(PointTest, ChebyshevDistance) {
  const Point a{0.0, 0.0};
  const Point b{0.3, -0.7};
  EXPECT_NEAR(chebyshev(a, b), 0.7, 1e-12);
  EXPECT_EQ(chebyshev(a, a), 0.0);
}

TEST(PointTest, ChebyshevIsSymmetricAndTriangular) {
  const Point a{0.1, 0.9};
  const Point b{0.4, 0.2};
  const Point c{0.8, 0.5};
  EXPECT_EQ(chebyshev(a, b), chebyshev(b, a));
  EXPECT_LE(chebyshev(a, c), chebyshev(a, b) + chebyshev(b, c));
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{0.1, 0.2}), (Point{0.1, 0.2}));
  EXPECT_FALSE((Point{0.1, 0.2}) == (Point{0.1, 0.3}));
  EXPECT_FALSE((Point{0.1}) == (Point{0.1, 0.1}));
}

}  // namespace
}  // namespace acn
