// The paper's central correctness claim (Theorems 5, 6, 7, Corollary 8 and
// the locality discussion closing §V): the *local* characterization —
// computed from trajectories within 4r of each device — coincides exactly
// with what an omniscient observer deduces by quantifying over all anomaly
// partitions. This file checks that equivalence exhaustively on randomized
// instances: Characterizer (local) vs PartitionEnumerator (omniscient).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/characterizer.hpp"
#include "core/partition_enumerator.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

struct EquivalenceCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t d;       // services per device
  double r;
  std::uint32_t tau;
  double spread;       // sampling box side; smaller = denser instance
  bool grouped;        // also inject correlated group motions
};

/// Generates an instance: uniform initial positions in [0, spread]^d; when
/// `grouped`, a few groups get a common displacement (correlated motions,
/// like the paper's error model), the rest move independently.
StatePair generate(const EquivalenceCase& c) {
  Rng rng(c.seed);
  std::vector<std::vector<double>> prev(c.n, std::vector<double>(c.d));
  std::vector<std::vector<double>> curr(c.n, std::vector<double>(c.d));
  for (std::size_t j = 0; j < c.n; ++j) {
    for (std::size_t i = 0; i < c.d; ++i) {
      prev[j][i] = rng.uniform(0.0, c.spread);
      curr[j][i] = rng.uniform(0.0, c.spread);
    }
  }
  if (c.grouped) {
    // Two correlated groups: members start within a ball of radius r around
    // a seed device and share one displacement.
    for (int g = 0; g < 2; ++g) {
      const auto leader = static_cast<std::size_t>(rng.uniform_int(c.n));
      std::vector<double> target(c.d);
      for (std::size_t i = 0; i < c.d; ++i) target[i] = rng.uniform(0.0, c.spread);
      const std::size_t group_size = 2 + rng.uniform_int(std::uint64_t{4});
      for (std::size_t m = 0; m < group_size; ++m) {
        const std::size_t member = (leader + m) % c.n;
        for (std::size_t i = 0; i < c.d; ++i) {
          prev[member][i] = prev[leader][i] +
                            rng.uniform(-c.r, c.r) * (m == 0 ? 0.0 : 1.0);
          prev[member][i] = std::min(std::max(prev[member][i], 0.0), c.spread);
          curr[member][i] = std::min(
              std::max(target[i] + (prev[member][i] - prev[leader][i]), 0.0),
              c.spread);
        }
      }
    }
  }
  return test::make_state(prev, curr);
}

class ObserverEquivalenceSweep : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ObserverEquivalenceSweep, LocalEqualsOmniscient) {
  const EquivalenceCase c = GetParam();
  const StatePair state = generate(c);
  const Params params{.r = c.r, .tau = c.tau};

  CharacterizationSets omniscient;
  try {
    const PartitionEnumerator enumerator(state, params);
    omniscient = enumerator.characterize_all();
  } catch (const EnumerationLimitError&) {
    GTEST_SKIP() << "instance too dense for the exhaustive observer";
  }

  Characterizer characterizer(state, params);
  const CharacterizationSets local = characterizer.characterize_all();

  EXPECT_EQ(local.isolated, omniscient.isolated)
      << "I_k mismatch at seed " << c.seed << "\n local     "
      << local.isolated.to_string() << "\n observer  "
      << omniscient.isolated.to_string();
  EXPECT_EQ(local.massive, omniscient.massive)
      << "M_k mismatch at seed " << c.seed << "\n local     "
      << local.massive.to_string() << "\n observer  "
      << omniscient.massive.to_string();
  EXPECT_EQ(local.unresolved, omniscient.unresolved)
      << "U_k mismatch at seed " << c.seed << "\n local     "
      << local.unresolved.to_string() << "\n observer  "
      << omniscient.unresolved.to_string();
}

std::vector<EquivalenceCase> make_cases() {
  std::vector<EquivalenceCase> cases;
  // Scattered instances across dimensions, radii and thresholds.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    cases.push_back({seed, 14 + (seed % 7), 1 + (seed % 2), 0.03 + 0.01 * (seed % 5),
                     static_cast<std::uint32_t>(1 + seed % 4), 0.45, false});
  }
  // Correlated-group instances (denser, more dense motions, more unresolved
  // configurations — the interesting regime for Theorem 7 / Corollary 8).
  for (std::uint64_t seed = 100; seed < 124; ++seed) {
    cases.push_back({seed, 12 + (seed % 6), 1 + (seed % 2), 0.04 + 0.01 * (seed % 4),
                     static_cast<std::uint32_t>(2 + seed % 3), 0.3, true});
  }
  // Tight 1-D chains: maximal overlap structure (Figure 3-like and worse).
  for (std::uint64_t seed = 200; seed < 216; ++seed) {
    cases.push_back({seed, 10 + (seed % 4), 1, 0.06, 3, 0.15, false});
  }
  // Dense 2-D blobs with small tau: many overlapping maximal dense motions,
  // the regime where Theorem 7's search must consider *subsets* of motions
  // (overlapping bases trimmed to disjoint parts).
  for (std::uint64_t seed = 300; seed < 316; ++seed) {
    cases.push_back({seed, 10 + (seed % 5), 2, 0.05, 2, 0.13, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ObserverEquivalenceSweep,
                         ::testing::ValuesIn(make_cases()));

// ---------------------------------------------------------------------------
// Figure 5 cross-check: observer agrees that the whole ring is massive, i.e.
// Theorem 7 adds devices Theorem 6 cannot catch, and both match the ground
// truth enumeration.
// ---------------------------------------------------------------------------

TEST(ObserverEquivalenceTest, Figure5RingObserverAgrees) {
  const StatePair state = test::make_state_1d({
      {0.10, 0.01}, {0.11, 0.00},   // pair a
      {0.20, 0.10}, {0.21, 0.11},   // pair b
      {0.10, 0.20}, {0.11, 0.21},   // pair c
      {0.00, 0.10}, {0.01, 0.11},   // pair d
  });
  const Params params{.r = 0.075, .tau = 3};
  const PartitionEnumerator enumerator(state, params);
  const auto sets = enumerator.characterize_all();
  EXPECT_EQ(sets.massive, DeviceSet({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(sets.unresolved.empty());
  // Exactly the two partitions named in the paper.
  EXPECT_EQ(enumerator.count_partitions(), 2u);
}

}  // namespace
}  // namespace acn
