#include "core/state.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "support/test_util.hpp"

namespace acn {
namespace {

TEST(SnapshotTest, ValidatesUnitBox) {
  EXPECT_THROW(Snapshot({Point{1.2}}), std::invalid_argument);
  EXPECT_THROW(Snapshot({Point{-0.1, 0.5}}), std::invalid_argument);
  EXPECT_NO_THROW(Snapshot({Point{0.0}, Point{1.0}}));
}

TEST(SnapshotTest, ValidatesConsistentDimensions) {
  EXPECT_THROW(Snapshot({Point{0.1}, Point{0.1, 0.2}}), std::invalid_argument);
}

TEST(SnapshotTest, RejectsEmpty) {
  EXPECT_THROW(Snapshot({}), std::invalid_argument);
}

TEST(StatePairTest, ValidatesMatchingShapes) {
  Snapshot one({Point{0.1}});
  Snapshot two({Point{0.1}, Point{0.2}});
  EXPECT_THROW(StatePair(one, two, DeviceSet{}), std::invalid_argument);
}

TEST(StatePairTest, ValidatesAbnormalRange) {
  Snapshot s({Point{0.1}, Point{0.2}});
  EXPECT_THROW(StatePair(s, s, DeviceSet({5})), std::invalid_argument);
  EXPECT_NO_THROW(StatePair(s, s, DeviceSet({1})));
}

TEST(StatePairTest, JointPositionsConcatenatePrevAndCurr) {
  const StatePair state = test::make_state_1d({{0.1, 0.8}, {0.2, 0.9}});
  EXPECT_EQ(state.joint(0), (Point{0.1, 0.8}));
  EXPECT_EQ(state.joint(1), (Point{0.2, 0.9}));
  EXPECT_EQ(state.joint_dim(), 2u);
}

TEST(StatePairTest, JointDistanceIsMaxOverInstants) {
  // Devices close at k-1 (0.02 apart) but far at k (0.5 apart).
  const StatePair state = test::make_state_1d({{0.10, 0.2}, {0.12, 0.7}});
  EXPECT_NEAR(state.joint_distance(0, 1), 0.5, 1e-12);
}

TEST(StatePairTest, AbnormalMembership) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}}, DeviceSet({0, 2}));
  EXPECT_TRUE(state.is_abnormal(0));
  EXPECT_FALSE(state.is_abnormal(1));
  EXPECT_TRUE(state.is_abnormal(2));
  EXPECT_EQ(state.abnormal(), DeviceSet({0, 2}));
}

TEST(StatePairTest, MultiDimensionalJointDistance) {
  const StatePair state = test::make_state({{0.1, 0.2}, {0.15, 0.6}},
                                           {{0.5, 0.5}, {0.55, 0.52}});
  // prev distance = max(.05, .4) = .4; curr distance = max(.05, .02) = .05.
  EXPECT_NEAR(state.joint_distance(0, 1), 0.4, 1e-12);
}

}  // namespace
}  // namespace acn
