#include "net/qos_network.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

Topology small_topo() {
  return Topology({.regions = 2,
                   .aggregations_per_region = 2,
                   .gateways_per_aggregation = 3,
                   .services = 2});
}

TEST(FaultInjectorTest, DegradationOnlyWhileActive) {
  const Topology topo = small_topo();
  FaultInjector faults;
  faults.inject({FaultSite::kGateway, 1, 0.4, 10, 5});
  EXPECT_EQ(faults.degradation(topo, 1, 0, 9), 0.0);
  EXPECT_EQ(faults.degradation(topo, 1, 0, 10), 0.4);
  EXPECT_EQ(faults.degradation(topo, 1, 0, 14), 0.4);
  EXPECT_EQ(faults.degradation(topo, 1, 0, 15), 0.0);
}

TEST(FaultInjectorTest, OverlappingFaultsAccumulateAndSaturate) {
  const Topology topo = small_topo();
  FaultInjector faults;
  faults.inject({FaultSite::kGateway, 0, 0.7, 0, 10});
  faults.inject({FaultSite::kServiceBackend, 0, 0.6, 0, 10});
  EXPECT_EQ(faults.degradation(topo, 0, 0, 5), 1.0);   // saturated
  EXPECT_EQ(faults.degradation(topo, 0, 1, 5), 0.7);   // only the gateway fault
  EXPECT_EQ(faults.degradation(topo, 3, 0, 5), 0.6);   // only the backend fault
}

TEST(FaultInjectorTest, ImpactedGatewaysGroundTruth) {
  const Topology topo = small_topo();
  FaultInjector faults;
  faults.inject({FaultSite::kAggregation, 1, 0.5, 0, 10});
  const DeviceSet impacted = faults.impacted_gateways(topo, 5);
  EXPECT_EQ(impacted, DeviceSet({3, 4, 5}));
  EXPECT_TRUE(faults.impacted_gateways(topo, 20).empty());
}

TEST(FaultInjectorTest, ValidatesFaults) {
  FaultInjector faults;
  EXPECT_THROW(faults.inject({FaultSite::kGateway, 0, 0.0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(faults.inject({FaultSite::kGateway, 0, 1.5, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(faults.inject({FaultSite::kGateway, 0, 0.5, 0, 0}),
               std::invalid_argument);
}

TEST(QosNetworkTest, TrueQosReflectsFaults) {
  const Topology topo = small_topo();
  QosNetwork network(topo, {.base_qos = 0.9, .noise_sigma = 0.0}, 1);
  FaultInjector faults;
  faults.inject({FaultSite::kRegion, 0, 0.3, 0, 10});
  EXPECT_NEAR(network.true_qos(faults, 0, 0, 5), 0.6, 1e-12);
  EXPECT_NEAR(network.true_qos(faults, 11, 0, 5), 0.9, 1e-12);  // other region
}

TEST(QosNetworkTest, SamplesStayInUnitInterval) {
  const Topology topo = small_topo();
  QosNetwork network(topo, {.base_qos = 0.95, .noise_sigma = 0.2}, 2);
  const FaultInjector faults;
  for (int i = 0; i < 500; ++i) {
    const double s = network.sample(faults, 0, 0, i);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(QosNetworkTest, NoiseAveragesOut) {
  const Topology topo = small_topo();
  QosNetwork network(topo, {.base_qos = 0.9, .noise_sigma = 0.02}, 3);
  const FaultInjector faults;
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += network.sample(faults, 2, 1, i);
  EXPECT_NEAR(sum / n, 0.9, 0.005);
}

TEST(QosNetworkTest, ValidatesConfig) {
  const Topology topo = small_topo();
  EXPECT_THROW(QosNetwork(topo, {.base_qos = 0.0}, 1), std::invalid_argument);
  EXPECT_THROW(QosNetwork(topo, {.base_qos = 0.9, .noise_sigma = -0.1}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace acn
