#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

TEST(TopologyTest, SizesMultiplyOut) {
  const Topology topo({.regions = 3,
                       .aggregations_per_region = 4,
                       .gateways_per_aggregation = 5,
                       .services = 2});
  EXPECT_EQ(topo.gateway_count(), 60u);
  EXPECT_EQ(topo.aggregation_count(), 12u);
  EXPECT_EQ(topo.service_count(), 2u);
}

TEST(TopologyTest, TreeStructureIsConsistent) {
  const Topology topo({.regions = 2,
                       .aggregations_per_region = 3,
                       .gateways_per_aggregation = 4,
                       .services = 1});
  for (DeviceId g = 0; g < topo.gateway_count(); ++g) {
    const std::size_t agg = topo.aggregation_of(g);
    const std::size_t region = topo.region_of(g);
    EXPECT_EQ(region, agg / 3);
    const auto siblings = topo.gateways_under_aggregation(agg);
    EXPECT_NE(std::find(siblings.begin(), siblings.end(), g), siblings.end());
    const auto cousins = topo.gateways_under_region(region);
    EXPECT_NE(std::find(cousins.begin(), cousins.end(), g), cousins.end());
  }
}

TEST(TopologyTest, SubtreeSizes) {
  const Topology topo({.regions = 2,
                       .aggregations_per_region = 3,
                       .gateways_per_aggregation = 4,
                       .services = 1});
  EXPECT_EQ(topo.gateways_under_aggregation(0).size(), 4u);
  EXPECT_EQ(topo.gateways_under_region(1).size(), 12u);
}

TEST(TopologyTest, OnPathSemantics) {
  const Topology topo({.regions = 2,
                       .aggregations_per_region = 2,
                       .gateways_per_aggregation = 2,
                       .services = 2});
  // Gateway fault touches only that gateway, all its services.
  EXPECT_TRUE(topo.on_path(FaultSite::kGateway, 3, 3, 0));
  EXPECT_TRUE(topo.on_path(FaultSite::kGateway, 3, 3, 1));
  EXPECT_FALSE(topo.on_path(FaultSite::kGateway, 3, 2, 0));
  // Aggregation fault touches its subtree only.
  EXPECT_TRUE(topo.on_path(FaultSite::kAggregation, 1, 2, 0));
  EXPECT_TRUE(topo.on_path(FaultSite::kAggregation, 1, 3, 1));
  EXPECT_FALSE(topo.on_path(FaultSite::kAggregation, 1, 4, 0));
  // Region fault.
  EXPECT_TRUE(topo.on_path(FaultSite::kRegion, 0, 0, 0));
  EXPECT_FALSE(topo.on_path(FaultSite::kRegion, 0, 7, 0));
  // Service backend fault touches one service everywhere.
  EXPECT_TRUE(topo.on_path(FaultSite::kServiceBackend, 1, 5, 1));
  EXPECT_FALSE(topo.on_path(FaultSite::kServiceBackend, 1, 5, 0));
  // Core fault touches everything.
  EXPECT_TRUE(topo.on_path(FaultSite::kCore, 0, 7, 1));
}

TEST(TopologyTest, ValidatesConfigAndRanges) {
  EXPECT_THROW(Topology({.regions = 0}), std::invalid_argument);
  const Topology topo({.regions = 1,
                       .aggregations_per_region = 1,
                       .gateways_per_aggregation = 2,
                       .services = 1});
  EXPECT_THROW((void)topo.aggregation_of(99), std::out_of_range);
  EXPECT_THROW((void)topo.gateways_under_region(5), std::out_of_range);
}

}  // namespace
}  // namespace acn
