// End-to-end behaviour of the gateway swarm: detectors catch injected
// faults, snapshots carry them into the characterizer, and the verdicts
// separate local faults from subtree outages.
#include "net/monitoring.hpp"

#include <gtest/gtest.h>

#include "detect/ewma.hpp"

namespace acn {
namespace {

struct Fixture {
  Fixture()
      : topology({.regions = 2,
                  .aggregations_per_region = 2,
                  .gateways_per_aggregation = 8,
                  .services = 2}),
        network(topology, {.base_qos = 0.9, .noise_sigma = 0.005}, 42),
        prototype({.alpha = 0.3, .k_sigma = 6.0, .warmup = 12}) {}

  Topology topology;  // 32 gateways
  QosNetwork network;
  EwmaDetector prototype;
};

SwarmConfig swarm_config() {
  SwarmConfig config;
  config.model = {.r = 0.04, .tau = 3};
  config.snapshot_interval = 8;
  return config;
}

TEST(MonitoringSwarmTest, QuietNetworkStaysEssentiallySilent) {
  Fixture f;
  MonitoringSwarm swarm(f.topology, swarm_config(), f.prototype);
  const FaultInjector faults;  // none
  std::size_t abnormal_total = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    const auto outcome = swarm.tick(f.network, faults);
    if (outcome.has_value()) abnormal_total += outcome->abnormal.size();
  }
  // 32 gateways x 2 services x 64 ticks of pure noise: spurious alarms must
  // stay in the per-mille range (here: <= 8 of 4096 samples).
  EXPECT_LE(abnormal_total, 8u);
}

TEST(MonitoringSwarmTest, SnapshotCadence) {
  Fixture f;
  MonitoringSwarm swarm(f.topology, swarm_config(), f.prototype);
  const FaultInjector faults;
  int snapshots = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    if (swarm.tick(f.network, faults).has_value()) ++snapshots;
  }
  EXPECT_EQ(snapshots, 8);
}

TEST(MonitoringSwarmTest, GatewayFaultClassifiedIsolated) {
  Fixture f;
  MonitoringSwarm swarm(f.topology, swarm_config(), f.prototype);
  FaultInjector faults;
  faults.inject({FaultSite::kGateway, 7, 0.5, 20, 8});
  bool saw_isolated_7 = false;
  for (std::uint64_t t = 0; t < 48; ++t) {
    const auto outcome = swarm.tick(f.network, faults);
    if (outcome.has_value() && outcome->isolated.contains(7)) saw_isolated_7 = true;
  }
  EXPECT_TRUE(saw_isolated_7);
}

TEST(MonitoringSwarmTest, AggregationOutageClassifiedMassive) {
  Fixture f;
  MonitoringSwarm swarm(f.topology, swarm_config(), f.prototype);
  FaultInjector faults;
  faults.inject({FaultSite::kAggregation, 1, 0.5, 20, 8});  // gateways 8..15
  std::size_t massive_hits = 0;
  for (std::uint64_t t = 0; t < 48; ++t) {
    const auto outcome = swarm.tick(f.network, faults);
    if (!outcome.has_value()) continue;
    for (DeviceId g = 8; g < 16; ++g) {
      if (outcome->massive.contains(g)) ++massive_hits;
    }
  }
  EXPECT_GE(massive_hits, 6u);  // the bulk of the subtree flagged massive
}

TEST(MonitoringSwarmTest, MixedFaultsSeparated) {
  Fixture f;
  MonitoringSwarm swarm(f.topology, swarm_config(), f.prototype);
  FaultInjector faults;
  faults.inject({FaultSite::kAggregation, 0, 0.5, 20, 8});  // gateways 0..7
  faults.inject({FaultSite::kGateway, 30, 0.6, 20, 8});     // lone gateway
  bool lone_isolated = false;
  bool subtree_massive = false;
  for (std::uint64_t t = 0; t < 48; ++t) {
    const auto outcome = swarm.tick(f.network, faults);
    if (!outcome.has_value()) continue;
    lone_isolated = lone_isolated || outcome->isolated.contains(30);
    subtree_massive = subtree_massive || outcome->massive.contains(3);
  }
  EXPECT_TRUE(lone_isolated);
  EXPECT_TRUE(subtree_massive);
}

TEST(MonitoringSwarmTest, TruthImpactedMatchesInjection) {
  Fixture f;
  MonitoringSwarm swarm(f.topology, swarm_config(), f.prototype);
  FaultInjector faults;
  faults.inject({FaultSite::kGateway, 3, 0.5, 0, 1000});
  for (std::uint64_t t = 0; t < 16; ++t) {
    const auto outcome = swarm.tick(f.network, faults);
    if (outcome.has_value()) {
      EXPECT_EQ(outcome->truth_impacted, DeviceSet({3}));
    }
  }
}

TEST(ReportCenterTest, TalliesAndSuppression) {
  ReportCenter centre;
  SnapshotOutcome outcome;
  outcome.abnormal = DeviceSet({1, 2, 3, 4, 5});
  outcome.isolated = DeviceSet({5});
  outcome.massive = DeviceSet({1, 2, 3, 4});
  centre.ingest(outcome);
  EXPECT_EQ(centre.naive_calls(), 5u);
  EXPECT_EQ(centre.filtered_calls(), 1u);
  EXPECT_EQ(centre.network_alerts(), 1u);
  EXPECT_NEAR(centre.suppression_ratio(), 0.8, 1e-12);

  SnapshotOutcome quiet;
  centre.ingest(quiet);
  EXPECT_EQ(centre.network_alerts(), 1u);
  EXPECT_EQ(centre.snapshots(), 2u);
}

TEST(SwarmConfigTest, Validation) {
  SwarmConfig config;
  config.snapshot_interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace acn
