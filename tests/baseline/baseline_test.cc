// Baseline comparators: mechanism tests plus the bucket-size dilemma the
// paper describes for tessellation approaches (§II).
#include <gtest/gtest.h>

#include "baseline/central_kmeans.hpp"
#include "baseline/tessellation.hpp"
#include "sim/scenario.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

TEST(TessellationTest, CoLocatedClusterIsMassive) {
  // Five devices in one bucket signature before and after.
  const StatePair state = test::make_state_1d(
      {{0.11, 0.51}, {0.12, 0.52}, {0.13, 0.53}, {0.14, 0.54}, {0.15, 0.55}});
  const TessellationBaseline baseline(0.2, 3);
  const auto sets = baseline.classify(state);
  EXPECT_EQ(sets.massive.size(), 5u);
  EXPECT_TRUE(sets.isolated.empty());
}

TEST(TessellationTest, SmallBucketsFragmentRealGroups) {
  // The same correlated group straddles bucket borders once buckets shrink:
  // false "isolated" verdicts (the paper's criticism, small-bucket side).
  const StatePair state = test::make_state_1d(
      {{0.11, 0.51}, {0.12, 0.52}, {0.13, 0.53}, {0.14, 0.54}, {0.15, 0.55}});
  const TessellationBaseline baseline(0.01, 3);
  const auto sets = baseline.classify(state);
  EXPECT_TRUE(sets.massive.empty());
  EXPECT_EQ(sets.isolated.size(), 5u);
}

TEST(TessellationTest, LargeBucketsMergeUnrelatedAnomalies) {
  // Distant isolated anomalies share one huge bucket: false "massive"
  // verdicts (the large-bucket side of the dilemma).
  const StatePair state = test::make_state_1d(
      {{0.05, 0.81}, {0.15, 0.85}, {0.25, 0.9}, {0.35, 0.95}});
  const TessellationBaseline baseline(0.5, 3);
  const auto sets = baseline.classify(state);
  EXPECT_EQ(sets.massive.size(), 4u);
}

TEST(TessellationTest, NoUnresolvedClassEver) {
  const StatePair state = test::make_state_1d({{0.1, 0.9}, {0.5, 0.2}});
  const TessellationBaseline baseline(0.1, 1);
  const auto sets = baseline.classify(state);
  EXPECT_TRUE(sets.unresolved.empty());
  EXPECT_EQ(sets.massive.size() + sets.isolated.size(), 2u);
}

TEST(TessellationTest, Validation) {
  EXPECT_THROW(TessellationBaseline(0.0, 3), std::invalid_argument);
  EXPECT_THROW(TessellationBaseline(0.1, 0), std::invalid_argument);
}

TEST(CentralKmeansTest, SeparatesDenseClusterFromLoners) {
  const StatePair state = test::make_state_1d({
      {0.10, 0.50}, {0.11, 0.51}, {0.12, 0.52}, {0.13, 0.53}, {0.14, 0.54},
      {0.80, 0.10},  // loner
  });
  const CentralKmeansBaseline baseline({.tau = 3, .cluster_divisor = 3, .seed = 5});
  const auto sets = baseline.classify(state);
  EXPECT_TRUE(sets.massive.contains(0));
  EXPECT_TRUE(sets.massive.contains(4));
  EXPECT_TRUE(sets.isolated.contains(5));
}

TEST(CentralKmeansTest, EmptyAbnormalSet) {
  const StatePair state =
      test::make_state_1d({{0.1, 0.1}, {0.2, 0.2}}, DeviceSet{});
  const CentralKmeansBaseline baseline({.tau = 3});
  const auto sets = baseline.classify(state);
  EXPECT_TRUE(sets.massive.empty());
  EXPECT_TRUE(sets.isolated.empty());
}

TEST(CentralKmeansTest, CommunicationCostScalesWithAbnormal) {
  const StatePair state = test::make_state_1d(
      {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}});
  const CentralKmeansBaseline baseline({.tau = 1});
  EXPECT_EQ(baseline.communication_cost(state), 3u * 2u);
}

TEST(CentralKmeansTest, DeterministicForSeed) {
  ScenarioParams params;
  params.n = 300;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 6;
  params.seed = 9;
  ScenarioGenerator generator(params);
  const ScenarioStep step = generator.advance();
  const CentralKmeansBaseline a({.tau = 3, .seed = 77});
  const CentralKmeansBaseline b({.tau = 3, .seed = 77});
  EXPECT_EQ(a.classify(step.state).massive, b.classify(step.state).massive);
}

TEST(CentralKmeansTest, Validation) {
  EXPECT_THROW(CentralKmeansBaseline({.tau = 0}), std::invalid_argument);
  EXPECT_THROW(CentralKmeansBaseline({.tau = 3, .cluster_divisor = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace acn
