#include "analysis/dimensioning.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

TEST(VicinityProbabilityTest, InteriorModel) {
  // d = 1: a 2r-vicinity spans 4r of the unit interval.
  EXPECT_NEAR(vicinity_probability(0.05, 1, VicinityModel::kInterior), 0.2, 1e-12);
  // d = 2: squared.
  EXPECT_NEAR(vicinity_probability(0.05, 2, VicinityModel::kInterior), 0.04, 1e-12);
}

TEST(VicinityProbabilityTest, UniformAverageAccountsForBoundary) {
  const double interior = vicinity_probability(0.05, 2, VicinityModel::kInterior);
  const double averaged = vicinity_probability(0.05, 2, VicinityModel::kUniformAverage);
  EXPECT_LT(averaged, interior);  // clipping can only shrink the window
  EXPECT_NEAR(averaged, (0.2 - 0.01) * (0.2 - 0.01), 1e-12);
}

TEST(VicinityProbabilityTest, ValidatesDomain) {
  EXPECT_THROW((void)vicinity_probability(0.3, 2, VicinityModel::kInterior),
               std::invalid_argument);
  EXPECT_THROW((void)vicinity_probability(-0.1, 2, VicinityModel::kInterior),
               std::invalid_argument);
  EXPECT_THROW((void)vicinity_probability(0.05, 0, VicinityModel::kInterior),
               std::invalid_argument);
}

TEST(VicinityCdfTest, MonotoneInM) {
  double last = 0.0;
  for (std::uint64_t m = 0; m <= 100; m += 10) {
    const double c = vicinity_cdf(1000, 0.03, 2, m, VicinityModel::kUniformAverage);
    EXPECT_GE(c, last);
    last = c;
  }
  EXPECT_NEAR(vicinity_cdf(1000, 0.03, 2, 999, VicinityModel::kUniformAverage), 1.0,
              1e-12);
}

TEST(VicinityCdfTest, SmallerRadiusConcentratesLower) {
  // Figure 6(a)'s visual: smaller r pushes the CDF towards small m.
  const double tight = vicinity_cdf(1000, 0.02, 2, 10, VicinityModel::kUniformAverage);
  const double wide = vicinity_cdf(1000, 0.1, 2, 10, VicinityModel::kUniformAverage);
  EXPECT_GT(tight, wide);
}

TEST(VicinityCdfTest, ExactIntegrationMatchesMonteCarlo) {
  // The position-integrated CDF must match simulation tightly (the count is
  // a binomial *mixture*; the single-q formula is only an approximation).
  Rng rng(123);
  for (const double r : {0.03, 0.05}) {
    for (const std::uint64_t m : {std::uint64_t{5}, std::uint64_t{15}}) {
      const double exact = vicinity_cdf_exact(300, r, 2, m);
      const double mc = vicinity_cdf_monte_carlo(300, r, 2, m, 6000, rng);
      EXPECT_NEAR(exact, mc, 0.02) << "r=" << r << " m=" << m;
    }
  }
}

TEST(VicinityCdfTest, SingleQApproximationIsClose) {
  // The paper's closed form tracks the exact mixture within a few percent
  // at the Fig 6(a) operating points.
  for (const std::uint64_t m : {std::uint64_t{10}, std::uint64_t{20}}) {
    const double approx = vicinity_cdf(1000, 0.03, 2, m, VicinityModel::kUniformAverage);
    const double exact = vicinity_cdf_exact(1000, 0.03, 2, m);
    EXPECT_NEAR(approx, exact, 0.06) << "m=" << m;
  }
}

TEST(IsolatedOverloadTest, MatchesPaperRegime) {
  // Fig 6(b): with r=0.03, b=0.005, curves stay above 0.997 up to n=15000.
  // Only the consistency-window vicinity reproduces this — see the
  // VicinityModel doc comment and EXPERIMENTS.md.
  for (const std::size_t n : {1000, 5000, 15000}) {
    for (const std::uint32_t tau : {2u, 3u, 4u, 5u}) {
      const double p = isolated_overload_cdf(n, 0.03, 2, tau, 0.005,
                                             VicinityModel::kWindowAverage);
      EXPECT_GT(p, 0.997) << "n=" << n << " tau=" << tau;
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(IsolatedOverloadTest, Radius2rVicinityDipsBelowPaperAxis) {
  // The companion fact: with the paper's literal radius-2r vicinity the
  // tau = 2 curve falls well below the 0.997 figure floor at n = 15000.
  const double p = isolated_overload_cdf(15000, 0.03, 2, 2, 0.005,
                                         VicinityModel::kUniformAverage);
  EXPECT_LT(p, 0.95);
}

TEST(IsolatedOverloadTest, MonotoneInTauAndDecreasingInN) {
  const auto at = [](std::size_t n, std::uint32_t tau) {
    return isolated_overload_cdf(n, 0.03, 2, tau, 0.005,
                                 VicinityModel::kUniformAverage);
  };
  EXPECT_LT(at(5000, 2), at(5000, 3));
  EXPECT_LT(at(5000, 3), at(5000, 4));
  EXPECT_GT(at(1000, 3), at(15000, 3));  // larger n => denser vicinity => worse
}

TEST(IsolatedOverloadTest, DegenerateB) {
  EXPECT_NEAR(isolated_overload_cdf(1000, 0.03, 2, 3, 0.0,
                                    VicinityModel::kUniformAverage),
              1.0, 1e-12);
}

TEST(RecommendTauTest, MatchesCdfInversion) {
  const std::uint32_t tau = recommend_tau(1000, 0.03, 2, 0.005, 1e-3,
                                          VicinityModel::kUniformAverage);
  // The recommended tau must satisfy the epsilon bound ...
  EXPECT_GT(1.0 - isolated_overload_cdf(1000, 0.03, 2, tau, 0.005,
                                        VicinityModel::kUniformAverage),
            0.0);
  EXPECT_LT(1.0 - isolated_overload_cdf(1000, 0.03, 2, tau, 0.005,
                                        VicinityModel::kUniformAverage),
            1e-3);
  // ... and be minimal.
  if (tau > 1) {
    EXPECT_GE(1.0 - isolated_overload_cdf(1000, 0.03, 2, tau - 1, 0.005,
                                          VicinityModel::kUniformAverage),
              1e-3);
  }
}

TEST(RecommendTauTest, TighterEpsilonNeedsLargerTau) {
  const auto loose = recommend_tau(10000, 0.03, 2, 0.01, 1e-2,
                                   VicinityModel::kUniformAverage);
  const auto tight = recommend_tau(10000, 0.03, 2, 0.01, 1e-6,
                                   VicinityModel::kUniformAverage);
  EXPECT_LE(loose, tight);
}

}  // namespace
}  // namespace acn
