// FleetRoster: sparse gateway keys over a fixed dense slot universe —
// FIFO slot recycling, parked positions, and the just-assigned abnormality
// guard that keeps slot splices away from the characterizer.
#include <vector>

#include <gtest/gtest.h>

#include "online/roster.hpp"

namespace acn {
namespace {

TEST(FleetRoster, AdmitAssignsFifoSlotsAndValidates) {
  FleetRoster roster(3, 2);
  EXPECT_EQ(roster.capacity(), 3u);
  EXPECT_EQ(roster.admit(101, Point{0.1, 0.1}), 0u);
  EXPECT_EQ(roster.admit(102, Point{0.2, 0.2}), 1u);
  EXPECT_EQ(roster.admit(103, Point{0.3, 0.3}), 2u);
  EXPECT_EQ(roster.active_count(), 3u);

  EXPECT_THROW((void)roster.admit(101, Point{0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW((void)roster.admit(104, Point{0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW((void)roster.admit(105, Point{1.5, 0.5}), std::invalid_argument);
  EXPECT_THROW((void)roster.admit(106, Point{0.5}), std::invalid_argument);
}

TEST(FleetRoster, RetireParksAndRecyclesLeastRecentlyRetired) {
  FleetRoster roster(3, 2);
  (void)roster.admit(101, Point{0.1, 0.1});
  (void)roster.admit(102, Point{0.2, 0.2});
  (void)roster.admit(103, Point{0.3, 0.3});
  roster.end_interval();

  roster.report(102, Point{0.25, 0.25});
  roster.retire(102);
  roster.retire(101);
  EXPECT_THROW(roster.retire(102), std::invalid_argument);
  EXPECT_THROW(roster.report(102, Point{0.6, 0.6}), std::invalid_argument);
  EXPECT_EQ(roster.active_count(), 1u);

  // Parked slots stay frozen at the last reported position.
  const Snapshot parked = roster.snapshot();
  EXPECT_EQ(parked[1], (Point{0.25, 0.25}));
  EXPECT_EQ(parked[0], (Point{0.1, 0.1}));

  // FIFO: 102's slot (retired first) is recycled before 101's.
  EXPECT_EQ(roster.admit(201, Point{0.7, 0.7}), 1u);
  EXPECT_EQ(roster.admit(202, Point{0.8, 0.8}), 0u);
}

TEST(FleetRoster, AbnormalSlotsDropsUnknownAndJustAssigned) {
  FleetRoster roster(4, 2);
  (void)roster.admit(101, Point{0.1, 0.1});
  (void)roster.admit(102, Point{0.2, 0.2});
  roster.end_interval();
  (void)roster.admit(103, Point{0.3, 0.3});  // just assigned this interval

  const std::vector<GatewayKey> keys = {101, 103, 999};
  const DeviceSet slots = roster.abnormal_slots(keys);
  EXPECT_EQ(slots, DeviceSet({0}));  // 103 has no trajectory yet; 999 unknown

  // After the interval closes, 103 becomes eligible.
  roster.end_interval();
  EXPECT_EQ(roster.abnormal_slots(keys), DeviceSet({0, 2}));
}

TEST(FleetRoster, RecycledSlotIsIneligibleInItsSpliceInterval) {
  FleetRoster roster(1, 2);
  (void)roster.admit(101, Point{0.1, 0.1});
  roster.end_interval();
  roster.retire(101);
  // New occupant of slot 0: its apparent trajectory this interval is the
  // splice (101's parked position -> 201's position) and must not reach the
  // characterizer.
  const DeviceId slot = roster.admit(201, Point{0.9, 0.9});
  EXPECT_EQ(slot, 0u);
  const std::vector<GatewayKey> keys = {201};
  EXPECT_TRUE(roster.abnormal_slots(keys).empty());
  roster.end_interval();
  EXPECT_EQ(roster.abnormal_slots(keys), DeviceSet({0}));
}

// Retire + admit inside ONE interval: FIFO recycling must hand the new
// gateways the just-vacated slots in retirement order, and every recycled
// slot must be splice-ineligible until the interval closes — even though
// the retire and the admit happened with no end_interval() between them.
TEST(FleetRoster, SameIntervalRetireAdmitRecyclesFifoAndStaysIneligible) {
  FleetRoster roster(3, 2);
  (void)roster.admit(101, Point{0.1, 0.1});
  (void)roster.admit(102, Point{0.2, 0.2});
  (void)roster.admit(103, Point{0.3, 0.3});
  roster.end_interval();

  // Mid-interval churn: two gateways leave, two join, all before the close.
  roster.retire(102);
  roster.retire(101);
  EXPECT_EQ(roster.admit(201, Point{0.7, 0.7}), 1u);  // 102's slot, FIFO
  EXPECT_EQ(roster.admit(202, Point{0.8, 0.8}), 0u);  // then 101's
  EXPECT_EQ(roster.active_count(), 3u);

  // The snapshot already shows the recruits (an admit IS a report)...
  const Snapshot mid = roster.snapshot();
  EXPECT_EQ(mid[1], (Point{0.7, 0.7}));
  EXPECT_EQ(mid[0], (Point{0.8, 0.8}));

  // ...but their slots' apparent trajectories are splices (departed
  // gateway's position -> recruit's position), so neither recruit may be
  // abnormal this interval. The untouched gateway still can.
  const std::vector<GatewayKey> keys = {201, 202, 103};
  EXPECT_EQ(roster.abnormal_slots(keys), DeviceSet({2}));

  // From the next interval on the recruits have real trajectories.
  roster.end_interval();
  EXPECT_EQ(roster.abnormal_slots(keys), DeviceSet({0, 1, 2}));

  // A recruit retired in ITS join interval parks at its admit position and
  // re-enters the FIFO queue at the back.
  roster.retire(103);
  roster.retire(201);
  EXPECT_EQ(roster.admit(301, Point{0.5, 0.5}), 2u);  // 103 left first
  EXPECT_EQ(roster.admit(302, Point{0.6, 0.6}), 1u);
}

TEST(FleetRoster, ConstructorValidates) {
  EXPECT_THROW(FleetRoster(0, 2), std::invalid_argument);
  EXPECT_THROW(FleetRoster(4, 0), std::invalid_argument);
  EXPECT_THROW(FleetRoster(4, Point::kMaxDim), std::invalid_argument);
}

}  // namespace
}  // namespace acn
