#include "online/monitor.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace acn {
namespace {

OnlineMonitor::Config monitor_config() {
  OnlineMonitor::Config config;
  config.model = {.r = 0.03, .tau = 3};
  return config;
}

TEST(OnlineMonitorTest, FirstIntervalYieldsNoVerdicts) {
  OnlineMonitor monitor(monitor_config());
  const Snapshot s({Point{0.1}, Point{0.2}});
  const IntervalReport report = monitor.observe(s, DeviceSet({0}));
  EXPECT_TRUE(report.decisions.empty());
  EXPECT_EQ(report.abnormal, DeviceSet({0}));
}

TEST(OnlineMonitorTest, CharacterizesFromSecondIntervalOn) {
  OnlineMonitor monitor(monitor_config());
  const Snapshot before({Point{0.90}, Point{0.91}, Point{0.92}, Point{0.93},
                         Point{0.94}, Point{0.50}});
  const Snapshot after({Point{0.30}, Point{0.31}, Point{0.32}, Point{0.33},
                        Point{0.34}, Point{0.10}});
  (void)monitor.observe(before, DeviceSet{});
  const IntervalReport report =
      monitor.observe(after, DeviceSet({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(report.massive, DeviceSet({0, 1, 2, 3, 4}));
  EXPECT_EQ(report.isolated, DeviceSet({5}));
  EXPECT_TRUE(report.unresolved.empty());
}

TEST(OnlineMonitorTest, RejectsShapeChanges) {
  OnlineMonitor monitor(monitor_config());
  (void)monitor.observe(Snapshot({Point{0.1}, Point{0.2}}), DeviceSet{});
  EXPECT_THROW((void)monitor.observe(Snapshot({Point{0.1}}), DeviceSet{}),
               std::invalid_argument);
}

TEST(OnlineMonitorTest, EpisodesAccumulateAcrossIntervals) {
  auto config = monitor_config();
  config.episode_quiet_intervals = 1;
  OnlineMonitor monitor(config);
  const Snapshot a({Point{0.90}, Point{0.91}, Point{0.92}, Point{0.93}, Point{0.94}});
  const Snapshot b({Point{0.40}, Point{0.41}, Point{0.42}, Point{0.43}, Point{0.44}});
  const Snapshot c({Point{0.40}, Point{0.41}, Point{0.42}, Point{0.43}, Point{0.44}});
  (void)monitor.observe(a, DeviceSet{});
  (void)monitor.observe(b, DeviceSet({0, 1, 2, 3, 4}));  // massive episode
  (void)monitor.observe(c, DeviceSet{});                 // quiet: closes
  monitor.finish();
  EXPECT_EQ(monitor.episodes().closed().size(), 5u);
  for (const Episode& episode : monitor.episodes().closed()) {
    EXPECT_EQ(episode.final_verdict(), AnomalyClass::kMassive);
    EXPECT_EQ(episode.duration(), 1u);
  }
}

TEST(OnlineMonitorTest, AdaptiveSamplerReactsToAnomalies) {
  auto config = monitor_config();
  config.adaptive = AdaptiveSampler::Config{.min_interval = 1,
                                            .max_interval = 32,
                                            .initial_interval = 8,
                                            .decrease = 0.5,
                                            .increase = 2.0};
  OnlineMonitor monitor(config);
  const Snapshot a({Point{0.9}, Point{0.8}});
  (void)monitor.observe(a, DeviceSet{});
  EXPECT_EQ(monitor.next_sampling_interval(), 16u);  // quiet: grew
  const Snapshot b({Point{0.2}, Point{0.8}});
  (void)monitor.observe(b, DeviceSet({0}));
  EXPECT_EQ(monitor.next_sampling_interval(), 8u);  // anomaly: shrank
}

TEST(OnlineMonitorTest, DrivesGeneratedWorkload) {
  ScenarioParams params;
  params.n = 300;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 6;
  params.isolated_probability = 0.5;
  params.seed = 77;
  params.massive_anchor_retries = 8;
  ScenarioGenerator generator(params);

  OnlineMonitor::Config config;
  config.model = params.model;
  OnlineMonitor monitor(config);

  // Prime with the initial state, then stream generated intervals.
  (void)monitor.observe(Snapshot(generator.positions()), DeviceSet{});
  std::size_t verdicts = 0;
  for (int k = 0; k < 6; ++k) {
    const ScenarioStep step = generator.advance();
    const IntervalReport report =
        monitor.observe(step.state.curr(), step.truth.abnormal);
    verdicts += report.decisions.size();
    // Certainty verdicts must respect ground truth (R3 on by default).
    EXPECT_TRUE(report.massive.is_subset_of(step.truth.truly_massive));
    EXPECT_TRUE(report.isolated.is_subset_of(step.truth.truly_isolated));
  }
  EXPECT_GT(verdicts, 0u);
  monitor.finish();
  EXPECT_GT(monitor.episodes().closed().size(), 0u);
}

TEST(OnlineMonitorTest, RosterChurnFrontDoor) {
  auto config = monitor_config();
  config.roster_capacity = 6;
  config.roster_dim = 1;
  OnlineMonitor monitor(config);

  // Interval 0 (prime): five clustered gateways plus one loner join.
  for (GatewayKey g = 1; g <= 5; ++g) {
    (void)monitor.admit(g, Point{0.90 + 0.01 * static_cast<double>(g - 1)});
  }
  (void)monitor.admit(6, Point{0.50});
  const IntervalReport r0 = monitor.close_interval({});
  EXPECT_TRUE(r0.decisions.empty());

  // Interval 1: the cluster crashes together, the loner crashes alone.
  for (GatewayKey g = 1; g <= 5; ++g) {
    monitor.report(g, Point{0.30 + 0.01 * static_cast<double>(g - 1)});
  }
  monitor.report(6, Point{0.10});
  const std::vector<GatewayKey> all_abnormal = {1, 2, 3, 4, 5, 6};
  const IntervalReport r1 = monitor.close_interval(all_abnormal);
  EXPECT_EQ(r1.massive, DeviceSet({0, 1, 2, 3, 4}));
  EXPECT_EQ(r1.isolated, DeviceSet({5}));

  // Interval 2: gateway 6 leaves (its open episode force-closes) and
  // gateway 7 recycles slot 5. The recruit is flagged abnormal but has no
  // trajectory yet, so the splice never reaches the characterizer.
  monitor.retire(6);
  ASSERT_EQ(monitor.episodes().closed().size(), 1u);
  EXPECT_EQ(monitor.episodes().closed()[0].device, 5u);
  EXPECT_EQ(monitor.episodes().closed()[0].final_verdict(),
            AnomalyClass::kIsolated);
  EXPECT_EQ(monitor.admit(7, Point{0.80}), 5u);
  const std::vector<GatewayKey> recruit = {7};
  const IntervalReport r2 = monitor.close_interval(recruit);
  EXPECT_TRUE(r2.decisions.empty());

  // Interval 3: the recruit now has a trajectory and crashes alone.
  monitor.report(7, Point{0.20});
  const IntervalReport r3 = monitor.close_interval(recruit);
  EXPECT_EQ(r3.isolated, DeviceSet({5}));
  EXPECT_TRUE(r3.massive.empty());

  // The recycled slot carries TWO independent episodes: the departed
  // gateway's and the recruit's.
  monitor.finish();
  std::size_t slot5_episodes = 0;
  for (const Episode& episode : monitor.episodes().closed()) {
    if (episode.device == 5) ++slot5_episodes;
  }
  EXPECT_EQ(slot5_episodes, 2u);
  EXPECT_EQ(monitor.roster().active_count(), 6u);
}

// Regression: an explicit retirement followed by a late force-close of the
// same gateway (operator removal racing the ingestion layer's liveness
// expiry) must be idempotent — one parked slot, one closed episode, no
// throw. A recycled slot's new occupant must be untouched by the replay.
TEST(OnlineMonitorTest, RetireIsIdempotentUnderLateForceClose) {
  auto config = monitor_config();
  config.roster_capacity = 3;
  config.roster_dim = 1;
  OnlineMonitor monitor(config);
  (void)monitor.admit(1, Point{0.90});
  (void)monitor.admit(2, Point{0.91});
  (void)monitor.admit(3, Point{0.50});
  (void)monitor.close_interval({});
  monitor.report(3, Point{0.10});
  const std::vector<GatewayKey> abnormal = {3};
  (void)monitor.close_interval(abnormal);  // gateway 3 opens an episode

  monitor.retire(3);
  ASSERT_EQ(monitor.episodes().closed().size(), 1u);
  monitor.retire(3);  // late force-close replays: no-op
  monitor.retire(99);  // never admitted: equally a no-op
  EXPECT_EQ(monitor.episodes().closed().size(), 1u);
  EXPECT_EQ(monitor.roster().active_count(), 2u);

  // The slot recycles; the departed gateway's late force-close must not
  // close the NEW occupant's episode or evict it.
  (void)monitor.admit(4, Point{0.80});
  monitor.retire(3);
  EXPECT_TRUE(monitor.roster().active(4));
  EXPECT_EQ(monitor.episodes().closed().size(), 1u);
  EXPECT_EQ(monitor.roster().active_count(), 3u);
}

TEST(OnlineMonitorTest, RosterCallsThrowInFixedFleetMode) {
  OnlineMonitor monitor(monitor_config());
  EXPECT_THROW((void)monitor.admit(1, Point{0.1}), std::logic_error);
  EXPECT_THROW(monitor.retire(1), std::logic_error);
  EXPECT_THROW(monitor.report(1, Point{0.1}), std::logic_error);
  EXPECT_THROW((void)monitor.close_interval({}), std::logic_error);
  EXPECT_THROW((void)monitor.roster(), std::logic_error);
}

}  // namespace
}  // namespace acn
