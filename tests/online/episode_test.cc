#include "online/episode.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

TEST(EpisodeTest, FinalVerdictIsLastDecided) {
  Episode e;
  e.verdicts = {AnomalyClass::kUnresolved, AnomalyClass::kMassive,
                AnomalyClass::kUnresolved};
  EXPECT_EQ(e.final_verdict(), AnomalyClass::kMassive);
  e.verdicts = {AnomalyClass::kUnresolved};
  EXPECT_EQ(e.final_verdict(), AnomalyClass::kUnresolved);
}

TEST(EpisodeTest, FlappedDetectsClassSwitch) {
  Episode e;
  e.verdicts = {AnomalyClass::kIsolated, AnomalyClass::kMassive};
  EXPECT_TRUE(e.flapped());
  e.verdicts = {AnomalyClass::kMassive, AnomalyClass::kUnresolved,
                AnomalyClass::kMassive};
  EXPECT_FALSE(e.flapped());
}

TEST(EpisodeTest, SharpenedDetectsLateDecision) {
  Episode e;
  e.verdicts = {AnomalyClass::kUnresolved, AnomalyClass::kMassive};
  EXPECT_TRUE(e.sharpened());
  e.verdicts = {AnomalyClass::kMassive, AnomalyClass::kUnresolved};
  EXPECT_FALSE(e.sharpened());
}

TEST(EpisodeTest, Duration) {
  Episode e;
  e.first_interval = 3;
  e.last_interval = 7;
  EXPECT_EQ(e.duration(), 5u);
}

TEST(EpisodeTrackerTest, OpensExtendsAndCloses) {
  EpisodeTracker tracker(/*quiet_intervals=*/2);
  tracker.observe(0, {{7, AnomalyClass::kMassive}});
  tracker.observe(1, {{7, AnomalyClass::kMassive}});
  EXPECT_EQ(tracker.open_count(), 1u);
  tracker.observe(2, {});  // quiet 1
  EXPECT_EQ(tracker.open_count(), 1u);
  tracker.observe(3, {});  // quiet 2 -> closes
  EXPECT_EQ(tracker.open_count(), 0u);
  ASSERT_EQ(tracker.closed().size(), 1u);
  const Episode& episode = tracker.closed()[0];
  EXPECT_EQ(episode.device, 7u);
  EXPECT_EQ(episode.first_interval, 0u);
  EXPECT_EQ(episode.last_interval, 1u);
  EXPECT_EQ(episode.verdicts.size(), 2u);
}

TEST(EpisodeTrackerTest, ReappearanceResetsQuietStreak) {
  EpisodeTracker tracker(/*quiet_intervals=*/2);
  tracker.observe(0, {{1, AnomalyClass::kIsolated}});
  tracker.observe(1, {});  // quiet 1
  tracker.observe(2, {{1, AnomalyClass::kIsolated}});  // back: same episode
  tracker.observe(3, {});
  tracker.observe(4, {});
  ASSERT_EQ(tracker.closed().size(), 1u);
  EXPECT_EQ(tracker.closed()[0].last_interval, 2u);
  EXPECT_EQ(tracker.closed()[0].verdicts.size(), 2u);
}

TEST(EpisodeTrackerTest, IndependentDevices) {
  EpisodeTracker tracker(1);
  tracker.observe(0, {{1, AnomalyClass::kMassive}, {2, AnomalyClass::kIsolated}});
  tracker.observe(1, {{1, AnomalyClass::kMassive}});
  tracker.observe(2, {});
  tracker.flush();
  EXPECT_EQ(tracker.closed().size(), 2u);
}

TEST(EpisodeTrackerTest, FlushClosesOpenEpisodes) {
  EpisodeTracker tracker(5);
  tracker.observe(0, {{3, AnomalyClass::kUnresolved}});
  EXPECT_EQ(tracker.open_count(), 1u);
  tracker.flush();
  EXPECT_EQ(tracker.open_count(), 0u);
  EXPECT_EQ(tracker.closed().size(), 1u);
}

TEST(EpisodeTrackerTest, RejectsZeroQuiet) {
  EXPECT_THROW(EpisodeTracker(0), std::invalid_argument);
}

TEST(EpisodeTrackerTest, CloseForcesOneDeviceOut) {
  EpisodeTracker tracker(5);
  tracker.observe(0, {{5, AnomalyClass::kMassive}});
  tracker.close(9);  // no open episode: no-op
  EXPECT_EQ(tracker.open_count(), 1u);
  tracker.close(5);  // churn: device 5's gateway left the fleet
  EXPECT_EQ(tracker.open_count(), 0u);
  ASSERT_EQ(tracker.closed().size(), 1u);
  EXPECT_EQ(tracker.closed()[0].device, 5u);
  tracker.close(5);  // already closed: no-op
  EXPECT_EQ(tracker.closed().size(), 1u);

  // The recycled slot opens a FRESH episode — the new gateway's verdicts
  // must not extend the departed gateway's incident.
  tracker.observe(1, {{5, AnomalyClass::kIsolated}});
  tracker.close(5);
  ASSERT_EQ(tracker.closed().size(), 2u);
  EXPECT_EQ(tracker.closed()[1].first_interval, 1u);
  EXPECT_EQ(tracker.closed()[1].verdicts.size(), 1u);
  EXPECT_EQ(tracker.closed()[1].final_verdict(), AnomalyClass::kIsolated);
}

// Regression: a force-close followed by any later close path — a second
// close(), the quiet-streak expiry, or the end-of-run flush — must never
// record the same episode twice.
TEST(EpisodeTrackerTest, DoubleCloseNeverDuplicatesAnEpisode) {
  EpisodeTracker tracker(2);
  tracker.observe(0, {{3, AnomalyClass::kMassive}});
  tracker.close(3);   // retire path
  tracker.close(3);   // late force-close replays
  ASSERT_EQ(tracker.closed().size(), 1u);
  tracker.observe(1, {});
  tracker.observe(2, {});  // quiet expiry finds nothing left to close
  tracker.flush();         // neither does the end-of-run flush
  EXPECT_EQ(tracker.closed().size(), 1u);
  EXPECT_EQ(tracker.open_count(), 0u);
}

TEST(EpisodeTrackerTest, GapBeyondQuietToleranceSplitsEpisodes) {
  EpisodeTracker tracker(2);
  tracker.observe(0, {{4, AnomalyClass::kUnresolved}});
  tracker.observe(1, {});
  tracker.observe(2, {});  // quiet streak hits 2: episode closes
  tracker.observe(3, {{4, AnomalyClass::kMassive}});
  tracker.flush();
  ASSERT_EQ(tracker.closed().size(), 2u);
  EXPECT_EQ(tracker.closed()[0].last_interval, 0u);
  EXPECT_EQ(tracker.closed()[0].verdicts.size(), 1u);
  EXPECT_EQ(tracker.closed()[1].first_interval, 3u);
}

TEST(EpisodeTrackerTest, FlappingVerdictStreamAcrossAGap) {
  EpisodeTracker tracker(2);
  tracker.observe(0, {{2, AnomalyClass::kMassive}});
  tracker.observe(1, {});  // gap inside the quiet tolerance: same episode
  tracker.observe(2, {{2, AnomalyClass::kUnresolved}});
  tracker.observe(3, {{2, AnomalyClass::kIsolated}});
  tracker.flush();
  ASSERT_EQ(tracker.closed().size(), 1u);
  const Episode& episode = tracker.closed()[0];
  EXPECT_EQ(episode.verdicts,
            (std::vector<AnomalyClass>{AnomalyClass::kMassive,
                                       AnomalyClass::kUnresolved,
                                       AnomalyClass::kIsolated}));
  EXPECT_TRUE(episode.flapped());
  EXPECT_TRUE(episode.sharpened());
  EXPECT_EQ(episode.final_verdict(), AnomalyClass::kIsolated);
  EXPECT_EQ(episode.duration(), 4u);  // the quiet gap counts into the span
}

}  // namespace
}  // namespace acn
