#include "online/adaptive.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

AdaptiveSampler::Config base_config() {
  return {.min_interval = 1,
          .max_interval = 64,
          .initial_interval = 16,
          .decrease = 0.5,
          .increase = 1.5};
}

TEST(AdaptiveSamplerTest, AnomaliesShrinkTheInterval) {
  AdaptiveSampler sampler(base_config());
  EXPECT_EQ(sampler.next_interval(true), 8u);
  EXPECT_EQ(sampler.next_interval(true), 4u);
  EXPECT_EQ(sampler.next_interval(true), 2u);
  EXPECT_EQ(sampler.next_interval(true), 1u);
  EXPECT_EQ(sampler.next_interval(true), 1u);  // floor
}

TEST(AdaptiveSamplerTest, QuietGrowsTheInterval) {
  AdaptiveSampler sampler(base_config());
  EXPECT_EQ(sampler.next_interval(false), 24u);
  EXPECT_EQ(sampler.next_interval(false), 36u);
  EXPECT_EQ(sampler.next_interval(false), 54u);
  EXPECT_EQ(sampler.next_interval(false), 64u);  // ceiling
  EXPECT_EQ(sampler.next_interval(false), 64u);
}

TEST(AdaptiveSamplerTest, RecoversAfterBurst) {
  AdaptiveSampler sampler(base_config());
  for (int i = 0; i < 5; ++i) (void)sampler.next_interval(true);
  EXPECT_EQ(sampler.current(), 1u);
  for (int i = 0; i < 20; ++i) (void)sampler.next_interval(false);
  EXPECT_EQ(sampler.current(), 64u);
}

TEST(AdaptiveSamplerTest, ResetRestoresInitial) {
  AdaptiveSampler sampler(base_config());
  (void)sampler.next_interval(true);
  sampler.reset();
  EXPECT_EQ(sampler.current(), 16u);
}

TEST(AdaptiveSamplerTest, FlappingSignalStaysBoundedAndDeterministic) {
  AdaptiveSampler sampler(base_config());
  // A verdict stream flapping anomaly/quiet every interval: the controller
  // must neither diverge nor collapse, and the trajectory is fully
  // deterministic (llround half-away-from-zero).
  EXPECT_EQ(sampler.next_interval(true), 8u);
  EXPECT_EQ(sampler.next_interval(false), 12u);
  EXPECT_EQ(sampler.next_interval(true), 6u);
  EXPECT_EQ(sampler.next_interval(false), 9u);
  EXPECT_EQ(sampler.next_interval(true), 5u);   // llround(4.5)
  EXPECT_EQ(sampler.next_interval(false), 8u);  // llround(7.5)
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t next = sampler.next_interval(i % 2 == 0);
    EXPECT_GE(next, 1u);
    EXPECT_LE(next, 64u);
  }
}

TEST(AdaptiveSamplerTest, GappyBurstsRecoverTheCeiling) {
  // Anomaly bursts separated by long quiet gaps — the §VII-C shape: pin the
  // alarm floor during each burst, recover the idle ceiling in the gap.
  AdaptiveSampler sampler(base_config());
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 6; ++i) (void)sampler.next_interval(true);
    EXPECT_EQ(sampler.current(), 1u);
    for (int i = 0; i < 15; ++i) (void)sampler.next_interval(false);
    EXPECT_EQ(sampler.current(), 64u);
  }
}

TEST(AdaptiveSamplerTest, Validation) {
  auto config = base_config();
  config.min_interval = 0;
  EXPECT_THROW(AdaptiveSampler{config}, std::invalid_argument);
  config = base_config();
  config.initial_interval = 100;
  EXPECT_THROW(AdaptiveSampler{config}, std::invalid_argument);
  config = base_config();
  config.decrease = 1.2;
  EXPECT_THROW(AdaptiveSampler{config}, std::invalid_argument);
  config = base_config();
  config.increase = 0.9;
  EXPECT_THROW(AdaptiveSampler{config}, std::invalid_argument);
}

}  // namespace
}  // namespace acn
