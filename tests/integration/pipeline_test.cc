// Cross-module integration: generator -> characterizer -> ground truth, and
// the full claim chain of the paper on simulated workloads:
//  * with R1-R3 enforced, every *decided* verdict matches the real scenario
//    R_k (M_k subset of M_{R_k}, I_k subset of I_{R_k} — relaxed ACP);
//  * the local characterizer equals the omniscient observer on generated
//    workloads too (not just uniform random geometry);
//  * verdict monotonicity: everything Theorem 6 decides, Theorem 7 confirms.
#include <gtest/gtest.h>

#include "core/partition_enumerator.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace acn {
namespace {

ScenarioParams params_for(std::uint64_t seed, double g, bool r3) {
  ScenarioParams params;
  params.n = 500;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 10;
  params.isolated_probability = g;
  params.enforce_r3 = r3;
  params.massive_anchor_retries = 16;
  params.seed = seed;
  return params;
}

class RelaxedAcpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelaxedAcpSweep, DecidedVerdictsMatchGroundTruthUnderR3) {
  const auto params = params_for(GetParam(), 0.4, /*r3=*/true);
  ScenarioGenerator generator(params);
  for (int k = 0; k < 4; ++k) {
    const ScenarioStep step = generator.advance();
    if (step.truth.abnormal.empty()) continue;
    Characterizer characterizer(step.state, params.model);
    const CharacterizationSets sets = characterizer.characterize_all();
    // Relaxed ACP: certainty sets are subsets of the real scenario's sets.
    EXPECT_TRUE(sets.massive.is_subset_of(step.truth.truly_massive))
        << "M_k over-claims at seed " << GetParam();
    EXPECT_TRUE(sets.isolated.is_subset_of(step.truth.truly_isolated))
        << "I_k over-claims at seed " << GetParam();
    // Everything is bucketed somewhere.
    EXPECT_EQ(sets.massive.set_union(sets.isolated).set_union(sets.unresolved),
              step.truth.abnormal);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxedAcpSweep,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{12}));

class GeneratedObserverSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedObserverSweep, LocalEqualsOmniscientOnWorkloads) {
  // Small, dense workloads so the exhaustive observer stays tractable.
  ScenarioParams params = params_for(GetParam(), 0.3, /*r3=*/false);
  params.n = 200;
  params.errors_per_step = 5;
  params.concomitance = 0.6;  // provoke superposition on purpose
  ScenarioGenerator generator(params);
  for (int k = 0; k < 3; ++k) {
    const ScenarioStep step = generator.advance();
    if (step.truth.abnormal.empty()) continue;
    CharacterizationSets omniscient;
    try {
      omniscient = PartitionEnumerator(step.state, params.model).characterize_all();
    } catch (const EnumerationLimitError&) {
      continue;  // component too large for the test oracle
    }
    Characterizer characterizer(step.state, params.model);
    const CharacterizationSets local = characterizer.characterize_all();
    EXPECT_EQ(local.massive, omniscient.massive) << "seed " << GetParam();
    EXPECT_EQ(local.isolated, omniscient.isolated) << "seed " << GetParam();
    EXPECT_EQ(local.unresolved, omniscient.unresolved) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedObserverSweep,
                         ::testing::Range(std::uint64_t{100}, std::uint64_t{116}));

TEST(VerdictMonotonicityTest, Theorem6ImpliesTheorem7) {
  const auto params = params_for(77, 0.2, false);
  ScenarioGenerator generator(params);
  const ScenarioStep step = generator.advance();
  Characterizer cheap(step.state, params.model,
                      CharacterizeOptions{.run_full_nsc = false});
  Characterizer full(step.state, params.model);
  for (const DeviceId j : step.truth.abnormal) {
    const Decision quick = cheap.characterize(j);
    const Decision deep = full.characterize(j);
    if (quick.cls == AnomalyClass::kMassive) {
      EXPECT_EQ(deep.cls, AnomalyClass::kMassive);
    }
    if (quick.cls == AnomalyClass::kIsolated) {
      EXPECT_EQ(deep.cls, AnomalyClass::kIsolated);
    }
  }
}

TEST(MetricsIntegrationTest, UnresolvedGrowsWithConcomitance) {
  const auto ratio = [](double q) {
    ScenarioParams params = params_for(31, 0.0, true);
    params.n = 1000;
    params.errors_per_step = 20;
    params.concomitance = q;
    ScenarioGenerator generator(params);
    RunMetrics run;
    for (int k = 0; k < 6; ++k) {
      run.add(evaluate_step(generator.advance(), params.model));
    }
    return run.unresolved_ratio.mean();
  };
  EXPECT_GT(ratio(0.8), ratio(0.0));
}

}  // namespace
}  // namespace acn
