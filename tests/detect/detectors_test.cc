// Behavioural tests for the statistical detectors: each must stay quiet on
// its learned regime, fire on the kind of change it is built for, and not
// let an alarm poison its model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "detect/cusum.hpp"
#include "detect/ewma.hpp"
#include "detect/holt_winters.hpp"
#include "detect/kalman.hpp"

namespace acn {
namespace {

TEST(EwmaDetectorTest, QuietOnStationaryNoise) {
  EwmaDetector detector({.alpha = 0.2, .k_sigma = 6.0, .warmup = 10});
  Rng rng(1);
  int alarms = 0;
  for (int i = 0; i < 500; ++i) {
    alarms += detector.observe(0.9 + rng.normal(0.0, 0.01)) ? 1 : 0;
  }
  EXPECT_LE(alarms, 2);
}

TEST(EwmaDetectorTest, FiresOnStepChange) {
  EwmaDetector detector({.alpha = 0.2, .k_sigma = 4.0, .warmup = 10});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) (void)detector.observe(0.9 + rng.normal(0.0, 0.01));
  EXPECT_TRUE(detector.observe(0.4));
}

TEST(EwmaDetectorTest, AlarmDoesNotPoisonLevel) {
  EwmaDetector detector({.alpha = 0.2, .k_sigma = 4.0, .warmup = 10});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) (void)detector.observe(0.9 + rng.normal(0.0, 0.01));
  const double level_before = detector.level();
  (void)detector.observe(0.2);  // outlier
  EXPECT_NEAR(detector.level(), level_before, 1e-9);
}

TEST(EwmaDetectorTest, RejectsBadConfig) {
  EXPECT_THROW(EwmaDetector({.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(EwmaDetector({.alpha = 1.5}), std::invalid_argument);
  EXPECT_THROW(EwmaDetector({.alpha = 0.2, .k_sigma = -1.0}), std::invalid_argument);
}

TEST(CusumDetectorTest, QuietOnStationaryNoise) {
  CusumDetector detector({.slack = 0.5, .threshold = 5.0, .warmup = 30});
  Rng rng(4);
  int alarms = 0;
  for (int i = 0; i < 1000; ++i) {
    alarms += detector.observe(0.5 + rng.normal(0.0, 0.02)) ? 1 : 0;
  }
  EXPECT_LE(alarms, 3);
}

TEST(CusumDetectorTest, DetectsSlowDrift) {
  // A drift far below any single-sample threshold: CUSUM's home turf.
  CusumDetector detector({.slack = 0.25, .threshold = 5.0, .warmup = 30});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) (void)detector.observe(0.5 + rng.normal(0.0, 0.02));
  bool fired = false;
  double level = 0.5;
  for (int i = 0; i < 300 && !fired; ++i) {
    level -= 0.0015;  // ~0.075 sigma per step
    fired = detector.observe(level + rng.normal(0.0, 0.02));
  }
  EXPECT_TRUE(fired);
}

TEST(CusumDetectorTest, SumsResetAfterAlarm) {
  CusumDetector detector({.slack = 0.5, .threshold = 3.0, .warmup = 10});
  Rng rng(6);
  for (int i = 0; i < 20; ++i) (void)detector.observe(0.5 + rng.normal(0.0, 0.01));
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) fired = detector.observe(0.3);
  ASSERT_TRUE(fired);
  EXPECT_EQ(detector.positive_sum(), 0.0);
  EXPECT_EQ(detector.negative_sum(), 0.0);
}

TEST(CusumDetectorTest, RejectsBadConfig) {
  EXPECT_THROW(CusumDetector({.slack = -0.1}), std::invalid_argument);
  EXPECT_THROW(CusumDetector({.threshold = 0.0}), std::invalid_argument);
  EXPECT_THROW(CusumDetector({.warmup = 1}), std::invalid_argument);
}

TEST(HoltWintersDetectorTest, TracksTrendWithoutAlarm) {
  HoltWintersDetector detector({.alpha = 0.3, .beta = 0.2, .k_sigma = 6.0, .warmup = 20});
  Rng rng(7);
  int alarms = 0;
  for (int i = 0; i < 300; ++i) {
    const double level = 0.3 + 0.001 * i;  // steady ramp
    alarms += detector.observe(level + rng.normal(0.0, 0.005)) ? 1 : 0;
  }
  EXPECT_LE(alarms, 3);  // the trend term absorbs the ramp
}

TEST(HoltWintersDetectorTest, FiresOnTrendBreak) {
  HoltWintersDetector detector({.alpha = 0.3, .beta = 0.2, .k_sigma = 5.0, .warmup = 20});
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    (void)detector.observe(0.3 + 0.001 * i + rng.normal(0.0, 0.005));
  }
  EXPECT_TRUE(detector.observe(0.1));
}

TEST(HoltWintersDetectorTest, SeasonalSignalAbsorbed) {
  HoltWintersDetector seasonal({.alpha = 0.2,
                                .beta = 0.05,
                                .gamma = 0.3,
                                .period = 8,
                                .k_sigma = 6.0,
                                .warmup = 32});
  Rng rng(9);
  int alarms = 0;
  for (int i = 0; i < 400; ++i) {
    const double wave = 0.6 + 0.1 * std::sin(2.0 * 3.14159265 * i / 8.0);
    alarms += seasonal.observe(wave + rng.normal(0.0, 0.005)) ? 1 : 0;
  }
  EXPECT_LE(alarms, 4);
}

TEST(HoltWintersDetectorTest, RejectsBadConfig) {
  EXPECT_THROW(HoltWintersDetector({.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(HoltWintersDetector({.gamma = 0.5, .period = 1}), std::invalid_argument);
  EXPECT_THROW(HoltWintersDetector({.period = -2}), std::invalid_argument);
}

TEST(KalmanDetectorTest, QuietOnStationaryNoise) {
  KalmanDetector detector({.process_noise = 1e-5,
                           .observation_noise = 1e-3,
                           .gate = 6.0,
                           .warmup = 10});
  Rng rng(10);
  int alarms = 0;
  for (int i = 0; i < 500; ++i) {
    alarms += detector.observe(0.8 + rng.normal(0.0, 0.02)) ? 1 : 0;
  }
  EXPECT_LE(alarms, 2);
}

TEST(KalmanDetectorTest, FiresOnJump) {
  KalmanDetector detector({.process_noise = 1e-5,
                           .observation_noise = 1e-3,
                           .gate = 4.0,
                           .warmup = 10});
  Rng rng(11);
  for (int i = 0; i < 100; ++i) (void)detector.observe(0.8 + rng.normal(0.0, 0.01));
  EXPECT_TRUE(detector.observe(0.3));
  EXPECT_NEAR(detector.estimate(), 0.8, 0.05);  // alarm did not poison x
}

TEST(KalmanDetectorTest, EstimateConvergesToMean) {
  KalmanDetector detector({.process_noise = 1e-6,
                           .observation_noise = 1e-2,
                           .gate = 8.0,
                           .warmup = 5});
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) (void)detector.observe(0.65 + rng.normal(0.0, 0.05));
  EXPECT_NEAR(detector.estimate(), 0.65, 0.02);
}

TEST(KalmanDetectorTest, RejectsBadConfig) {
  EXPECT_THROW(KalmanDetector({.process_noise = 0.0}), std::invalid_argument);
  EXPECT_THROW(KalmanDetector({.observation_noise = -1.0}), std::invalid_argument);
  EXPECT_THROW(
      KalmanDetector({.process_noise = 1e-4, .observation_noise = 1e-3, .gate = 0.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace acn
