#include "detect/threshold.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

TEST(StepThresholdTest, FiresOnLargeVariationOnly) {
  StepThresholdDetector detector(0.1);
  EXPECT_FALSE(detector.observe(0.9));   // first sample: no variation yet
  EXPECT_FALSE(detector.observe(0.95));  // small move
  EXPECT_TRUE(detector.observe(0.5));    // crash
  EXPECT_FALSE(detector.observe(0.52));  // settled
}

TEST(StepThresholdTest, BoundaryIsNotAnAlarm) {
  StepThresholdDetector detector(0.1);
  (void)detector.observe(0.5);
  EXPECT_FALSE(detector.observe(0.6));   // exactly threshold: not >
  EXPECT_TRUE(detector.observe(0.701));  // just above
}

TEST(StepThresholdTest, ResetForgetsHistory) {
  StepThresholdDetector detector(0.1);
  (void)detector.observe(0.9);
  detector.reset();
  EXPECT_FALSE(detector.observe(0.1));  // no last sample after reset
}

TEST(StepThresholdTest, RejectsBadThreshold) {
  EXPECT_THROW(StepThresholdDetector(0.0), std::invalid_argument);
  EXPECT_THROW(StepThresholdDetector(-1.0), std::invalid_argument);
}

TEST(StepThresholdTest, CloneIsIndependent) {
  StepThresholdDetector detector(0.1);
  (void)detector.observe(0.9);
  auto clone = detector.clone();
  EXPECT_FALSE(clone->observe(0.1));  // clone starts from the prototype config
  EXPECT_TRUE(detector.observe(0.1));
}

TEST(BandThresholdTest, FiresOutsideBand) {
  BandThresholdDetector detector(0.3, 0.8);
  EXPECT_FALSE(detector.observe(0.5));
  EXPECT_FALSE(detector.observe(0.3));
  EXPECT_FALSE(detector.observe(0.8));
  EXPECT_TRUE(detector.observe(0.29));
  EXPECT_TRUE(detector.observe(0.81));
}

TEST(BandThresholdTest, RejectsInvertedBand) {
  EXPECT_THROW(BandThresholdDetector(0.8, 0.3), std::invalid_argument);
}

TEST(DetectorNamesAreInformative, Names) {
  EXPECT_NE(StepThresholdDetector(0.1).name().find("step"), std::string::npos);
  EXPECT_NE(BandThresholdDetector(0.1, 0.9).name().find("band"), std::string::npos);
}

}  // namespace
}  // namespace acn
