#include "detect/detector_bank.hpp"

#include <gtest/gtest.h>

#include "detect/threshold.hpp"

namespace acn {
namespace {

TEST(DetectorBankTest, FiresWhenAnyServiceFires) {
  // Definition 5: a_k(j) = true if at least one service is abnormal.
  const StepThresholdDetector prototype(0.1);
  DetectorBank bank(prototype, 3);
  EXPECT_FALSE(bank.observe(std::vector<double>{0.9, 0.9, 0.9}));
  EXPECT_FALSE(bank.observe(std::vector<double>{0.9, 0.9, 0.9}));
  EXPECT_TRUE(bank.observe(std::vector<double>{0.9, 0.4, 0.9}));
  ASSERT_EQ(bank.fired_services().size(), 1u);
  EXPECT_EQ(bank.fired_services()[0], 1u);
}

TEST(DetectorBankTest, MultipleServicesCanFireTogether) {
  const StepThresholdDetector prototype(0.1);
  DetectorBank bank(prototype, 2);
  (void)bank.observe(std::vector<double>{0.9, 0.9});
  EXPECT_TRUE(bank.observe(std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(bank.fired_services().size(), 2u);
}

TEST(DetectorBankTest, ServicesAreIndependent) {
  const StepThresholdDetector prototype(0.1);
  DetectorBank bank(prototype, 2);
  (void)bank.observe(std::vector<double>{0.9, 0.1});
  // Each service compares against its own last value.
  EXPECT_FALSE(bank.observe(std::vector<double>{0.92, 0.12}));
}

TEST(DetectorBankTest, ValidatesArity) {
  const StepThresholdDetector prototype(0.1);
  DetectorBank bank(prototype, 2);
  EXPECT_THROW((void)bank.observe(std::vector<double>{0.9}), std::invalid_argument);
  EXPECT_THROW(DetectorBank(prototype, 0), std::invalid_argument);
}

TEST(DetectorBankTest, ResetClearsAllServices) {
  const StepThresholdDetector prototype(0.1);
  DetectorBank bank(prototype, 2);
  (void)bank.observe(std::vector<double>{0.9, 0.9});
  bank.reset();
  // After reset the step detectors have no last sample: no alarm possible.
  EXPECT_FALSE(bank.observe(std::vector<double>{0.1, 0.1}));
  EXPECT_TRUE(bank.fired_services().empty());
}

}  // namespace
}  // namespace acn
