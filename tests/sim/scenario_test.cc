// Invariants of the §VII-A workload generator: groups honour R1/R2 (and R3
// when enforced), ground truth is consistent, positions stay in E, and the
// statistics land where the paper's setup expects them.
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "core/motion.hpp"
#include "core/motion_oracle.hpp"

namespace acn {
namespace {

ScenarioParams base_params(std::uint64_t seed) {
  ScenarioParams params;
  params.n = 400;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 10;
  params.isolated_probability = 0.4;
  params.seed = seed;
  return params;
}

TEST(ScenarioGeneratorTest, PositionsStayInUnitBox) {
  ScenarioGenerator generator(base_params(1));
  for (int k = 0; k < 20; ++k) {
    (void)generator.advance();
    for (const Point& p : generator.positions()) EXPECT_TRUE(p.in_unit_box());
  }
}

TEST(ScenarioGeneratorTest, AbnormalSetMatchesEvents) {
  ScenarioGenerator generator(base_params(2));
  const ScenarioStep step = generator.advance();
  DeviceSet from_events;
  for (const ErrorEvent& event : step.truth.events) {
    from_events = from_events.set_union(event.devices);
  }
  EXPECT_EQ(from_events, step.truth.abnormal);
  EXPECT_EQ(step.state.abnormal(), step.truth.abnormal);
  EXPECT_EQ(step.truth.truly_isolated.set_union(step.truth.truly_massive),
            step.truth.abnormal);
  EXPECT_TRUE(step.truth.truly_isolated.is_disjoint_from(step.truth.truly_massive));
}

TEST(ScenarioGeneratorTest, R1EventsAreDisjoint) {
  ScenarioGenerator generator(base_params(3));
  for (int k = 0; k < 10; ++k) {
    const ScenarioStep step = generator.advance();
    DeviceSet seen;
    for (const ErrorEvent& event : step.truth.events) {
      EXPECT_TRUE(seen.is_disjoint_from(event.devices));
      seen = seen.set_union(event.devices);
    }
  }
}

TEST(ScenarioGeneratorTest, R2GroupsKeepConsistentMotion) {
  // Every injected group sat in a ball of radius r at k-1 and moved with a
  // common displacement: it must form an r-consistent motion.
  auto params = base_params(4);
  ScenarioGenerator generator(params);
  for (int k = 0; k < 10; ++k) {
    const ScenarioStep step = generator.advance();
    for (const ErrorEvent& event : step.truth.events) {
      EXPECT_TRUE(has_consistent_motion(step.state, event.devices, params.model.r))
          << event.devices.to_string();
    }
  }
}

TEST(ScenarioGeneratorTest, TruthLabelsFollowGroupSize) {
  ScenarioGenerator generator(base_params(5));
  const ScenarioStep step = generator.advance();
  for (const ErrorEvent& event : step.truth.events) {
    EXPECT_EQ(event.massive, event.devices.size() > 3u);
    for (const DeviceId j : event.devices) {
      EXPECT_EQ(event.massive, step.truth.truly_massive.contains(j));
    }
  }
}

TEST(ScenarioGeneratorTest, OnlyImpactedDevicesMove) {
  auto params = base_params(6);
  ScenarioGenerator generator(params);
  const std::vector<Point> before = generator.positions();
  const ScenarioStep step = generator.advance();
  for (DeviceId j = 0; j < params.n; ++j) {
    if (!step.truth.abnormal.contains(j)) {
      EXPECT_EQ(generator.positions()[j], before[j]) << "device " << j;
    }
  }
}

TEST(ScenarioGeneratorTest, R3KeepsIsolatedGroupsOutOfDenseMotions) {
  auto params = base_params(7);
  params.enforce_r3 = true;
  params.errors_per_step = 20;
  ScenarioGenerator generator(params);
  for (int k = 0; k < 10; ++k) {
    const ScenarioStep step = generator.advance();
    if (step.truth.abnormal.empty()) continue;
    MotionOracle oracle(step.state, params.model);
    for (const DeviceId j : step.truth.truly_isolated) {
      EXPECT_TRUE(oracle.dense_motions(j).empty())
          << "R3 violated for device " << j << " at step " << k;
    }
  }
}

TEST(ScenarioGeneratorTest, DeterministicForSameSeed) {
  ScenarioGenerator a(base_params(8));
  ScenarioGenerator b(base_params(8));
  for (int k = 0; k < 5; ++k) {
    const ScenarioStep sa = a.advance();
    const ScenarioStep sb = b.advance();
    EXPECT_EQ(sa.truth.abnormal, sb.truth.abnormal);
    EXPECT_EQ(sa.state.curr().positions(), sb.state.curr().positions());
  }
}

TEST(ScenarioGeneratorTest, IsolatedOnlyWorkloadHasNoMassiveTruth) {
  auto params = base_params(9);
  params.isolated_probability = 1.0;
  ScenarioGenerator generator(params);
  for (int k = 0; k < 5; ++k) {
    EXPECT_TRUE(generator.advance().truth.truly_massive.empty());
  }
}

TEST(ScenarioGeneratorTest, MassiveAnchorRetriesRaiseMassiveShare) {
  auto sparse = base_params(10);
  sparse.n = 150;  // sparse space: balls frequently underfull
  sparse.isolated_probability = 0.0;
  auto retried = sparse;
  retried.massive_anchor_retries = 16;

  std::size_t massive_without = 0;
  std::size_t massive_with = 0;
  ScenarioGenerator g1(sparse);
  ScenarioGenerator g2(retried);
  for (int k = 0; k < 10; ++k) {
    massive_without += g1.advance().truth.truly_massive.size();
    massive_with += g2.advance().truth.truly_massive.size();
  }
  EXPECT_GT(massive_with, massive_without);
}

TEST(ScenarioGeneratorTest, CalibratedProfileValidates) {
  auto params = base_params(11);
  params.apply_calibrated_profile();
  EXPECT_NO_THROW(params.validate());
  ScenarioGenerator generator(params);
  EXPECT_NO_THROW((void)generator.advance());
}

TEST(ScenarioGeneratorTest, ValidationRejectsBadParameters) {
  auto params = base_params(12);
  params.isolated_probability = 1.5;
  EXPECT_THROW(ScenarioGenerator{params}, std::invalid_argument);
  params = base_params(12);
  params.errors_per_step = 0;
  EXPECT_THROW(ScenarioGenerator{params}, std::invalid_argument);
  params = base_params(12);
  params.concomitance = -0.1;
  EXPECT_THROW(ScenarioGenerator{params}, std::invalid_argument);
}

// Concomitance is the superposition dial: more concomitant errors must mean
// more unresolved configurations (measured through the characterizer in the
// metrics test); here we check the geometric precondition — concomitant
// steps produce more cross-error joint adjacency.
TEST(ScenarioGeneratorTest, ConcomitanceIncreasesCrossErrorAdjacency) {
  const auto adjacency = [](double q, std::uint64_t seed) {
    auto params = base_params(seed);
    params.n = 1000;
    params.errors_per_step = 20;
    params.isolated_probability = 0.0;
    params.concomitance = q;
    params.massive_anchor_retries = 16;
    ScenarioGenerator generator(params);
    std::size_t close_pairs = 0;
    for (int k = 0; k < 8; ++k) {
      const ScenarioStep step = generator.advance();
      const auto& events = step.truth.events;
      for (std::size_t a = 0; a < events.size(); ++a) {
        for (std::size_t b = a + 1; b < events.size(); ++b) {
          bool close = false;
          for (const DeviceId x : events[a].devices) {
            for (const DeviceId y : events[b].devices) {
              if (step.state.joint_distance(x, y) <= 2.0 * params.model.window()) {
                close = true;
              }
            }
          }
          close_pairs += close ? 1 : 0;
        }
      }
    }
    return close_pairs;
  };
  EXPECT_GT(adjacency(0.8, 13), adjacency(0.0, 13) * 2);
}

}  // namespace
}  // namespace acn
