// HostileScenario: each perturbation layer honours its contract — the
// all-off configuration reproduces the clean §VII-A stream bit-for-bit,
// churn respects the active floor, lost reports replay the previous claim
// and punch recall holes, stale reports deliver their flag one interval
// late, regional outages converge truly-massive groups onto one point, and
// the shadow-crowd adversary fabricates an r-consistent dense motion around
// the victim (defeating Theorem 5 — the paper's §VIII attack).
#include <vector>

#include <gtest/gtest.h>

#include "core/characterizer.hpp"
#include "sim/hostile.hpp"

namespace acn {
namespace {

HostileParams small_base(std::uint64_t seed) {
  HostileParams params;
  params.base.n = 200;
  params.base.errors_per_step = 8;
  params.base.seed = seed;
  params.seed = seed * 31 + 7;
  return params;
}

TEST(HostileScenario, AllLayersOffReproducesCleanStream) {
  const HostileParams params = small_base(9);
  HostileScenario hostile(params);
  ScenarioGenerator clean(params.base);
  EXPECT_EQ(hostile.initial().positions(), clean.positions());
  for (int k = 0; k < 5; ++k) {
    const HostileStep step = hostile.advance();
    const ScenarioStep reference = clean.advance();
    EXPECT_EQ(step.observed.positions(), reference.state.curr().positions())
        << "interval " << k;
    EXPECT_EQ(step.abnormal, reference.truth.abnormal) << "interval " << k;
    EXPECT_TRUE(step.fabricated.empty());
    EXPECT_TRUE(step.suppressed.empty());
    EXPECT_EQ(step.active, params.base.n);
  }
}

TEST(HostileScenario, DeterministicAcrossInstances) {
  for (const HostileSpec& spec : standard_hostile_suite(200, 11)) {
    HostileScenario a(spec.params);
    HostileScenario b(spec.params);
    ASSERT_EQ(a.initial().positions(), b.initial().positions()) << spec.name;
    for (int k = 0; k < 2; ++k) {
      const HostileStep sa = a.advance();
      const HostileStep sb = b.advance();
      EXPECT_EQ(sa.observed.positions(), sb.observed.positions())
          << spec.name << " interval " << k;
      EXPECT_EQ(sa.abnormal, sb.abnormal) << spec.name << " interval " << k;
    }
  }
}

TEST(HostileScenario, ChurnVariesTheFleetAboveTheFloor) {
  HostileParams params = small_base(13);
  params.churn.rate = 0.05;
  HostileScenario hostile(params);
  bool shrank = false;
  for (int k = 0; k < 30; ++k) {
    const HostileStep step = hostile.advance();
    EXPECT_GE(step.active, params.base.n / 2);
    EXPECT_LE(step.active, params.base.n);
    if (step.active < params.base.n) shrank = true;
  }
  EXPECT_TRUE(shrank);
}

TEST(HostileScenario, LostReportsReplayPreviousClaimAndSuppressFlags) {
  HostileParams params = small_base(17);
  params.reports.loss = 0.5;
  HostileScenario hostile(params);
  std::vector<Point> previous = hostile.initial().positions();
  std::size_t suppressed_total = 0;
  for (int k = 0; k < 10; ++k) {
    const HostileStep step = hostile.advance();
    for (const DeviceId j : step.suppressed) {
      EXPECT_TRUE(step.truth.abnormal.contains(j));
      EXPECT_FALSE(step.abnormal.contains(j)) << "interval " << k;
      EXPECT_EQ(step.observed[j], previous[j]) << "interval " << k;
      ++suppressed_total;
    }
    previous = step.observed.positions();
  }
  EXPECT_GT(suppressed_total, 0u);
}

TEST(HostileScenario, StaleReportsDeliverTheFlagOneIntervalLate) {
  HostileParams params = small_base(19);
  params.reports.stale = 0.6;
  HostileScenario hostile(params);
  DeviceSet pending;
  std::size_t late_total = 0;
  for (int k = 0; k < 10; ++k) {
    const HostileStep step = hostile.advance();
    for (const DeviceId j : pending) {
      EXPECT_TRUE(step.abnormal.contains(j))
          << "interval " << k << " device " << j;
      ++late_total;
    }
    pending = step.suppressed;
  }
  EXPECT_GT(late_total, 0u);
}

TEST(HostileScenario, RegionalOutageConvergesATrulyMassiveGroup) {
  HostileParams params = small_base(23);
  params.regional.outage_rate = 1.0;
  HostileScenario hostile(params);
  std::size_t converged_events = 0;
  for (int k = 0; k < 6; ++k) {
    const HostileStep step = hostile.advance();
    for (const ErrorEvent& event : step.truth.events) {
      if (event.devices.size() <= params.base.model.tau) continue;
      // An outage event: all members within outage_jitter * r of the
      // degraded point, i.e. pairwise within 2 * jitter * r.
      double diameter = 0.0;
      for (std::size_t a = 0; a < event.devices.size(); ++a) {
        for (std::size_t b = a + 1; b < event.devices.size(); ++b) {
          diameter = std::max(
              diameter, chebyshev(step.observed[event.devices[a]],
                                  step.observed[event.devices[b]]));
        }
      }
      if (diameter <=
          2.0 * params.regional.outage_jitter * params.base.model.r + 1e-12) {
        ++converged_events;
        EXPECT_TRUE(event.devices.is_subset_of(step.truth.truly_massive));
      }
    }
  }
  EXPECT_GT(converged_events, 0u);
}

TEST(HostileScenario, ShadowCrowdFabricatesADenseMotionAroundTheVictim) {
  HostileParams params = small_base(29);
  params.adversary.attack = TrajectoryAttack::kShadowCrowd;
  params.adversary.colluders = 5;
  params.adversary.victim_crash_rate = 1.0;
  params.adversary.claim_jitter = 0.3;
  HostileScenario hostile(params);
  ASSERT_TRUE(hostile.victim().has_value());
  const DeviceId victim = *hostile.victim();
  const double jitter =
      params.adversary.claim_jitter * params.base.model.r + 1e-12;

  std::vector<Point> previous = hostile.initial().positions();
  for (int k = 0; k < 6; ++k) {
    const HostileStep step = hostile.advance();
    EXPECT_TRUE(step.truth.truly_isolated.contains(victim));
    EXPECT_TRUE(step.abnormal.contains(victim));
    EXPECT_EQ(step.fabricated, DeviceSet(hostile.colluders()));
    for (const DeviceId c : hostile.colluders()) {
      EXPECT_LE(chebyshev(step.observed[c], step.observed[victim]), jitter)
          << "interval " << k << " colluder " << c;
    }

    // From the second interval on the colluders' previous claims were
    // already shadowing the victim, so {victim} + colluders is a tau-dense
    // r-consistent motion: Theorem 5 cannot classify the victim isolated —
    // the fabricated crowd flipped a genuinely isolated anomaly.
    if (k >= 1) {
      const StatePair state(Snapshot(previous), Snapshot(step.observed.positions()),
                            step.abnormal);
      Characterizer characterizer(state, params.base.model);
      const Decision decision = characterizer.characterize(victim);
      EXPECT_NE(decision.cls, AnomalyClass::kIsolated) << "interval " << k;
    }
    previous = step.observed.positions();
  }
}

TEST(HostileSuite, WellFormedAndDistinct) {
  const std::vector<HostileSpec> suite = standard_hostile_suite(300, 7);
  EXPECT_GE(suite.size(), 6u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_FALSE(suite[i].name.empty());
    EXPECT_FALSE(suite[i].violates.empty());
    EXPECT_NO_THROW(suite[i].params.validate()) << suite[i].name;
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
}

TEST(HostileParamsValidation, RejectsBadLayerSettings) {
  HostileParams params = small_base(1);
  params.churn.rate = 1.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = small_base(1);
  params.reports.loss = -0.1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = small_base(1);
  params.adversary.attack = TrajectoryAttack::kShadowCrowd;
  params.adversary.colluders = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.adversary.colluders = params.base.n;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace acn
