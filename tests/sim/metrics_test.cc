#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

ScenarioParams small_params(std::uint64_t seed) {
  ScenarioParams params;
  params.n = 400;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 8;
  params.isolated_probability = 0.5;
  params.seed = seed;
  params.massive_anchor_retries = 16;
  return params;
}

TEST(EvaluateStepTest, BucketsPartitionAbnormalSet) {
  const auto params = small_params(1);
  ScenarioGenerator generator(params);
  const ScenarioStep step = generator.advance();
  const StepMetrics m = evaluate_step(step, params.model);
  EXPECT_EQ(m.abnormal, step.truth.abnormal.size());
  EXPECT_EQ(m.isolated_thm5 + m.massive_thm6 + m.massive_thm7 + m.unresolved_cor8,
            m.abnormal);
  EXPECT_EQ(m.truly_isolated, step.truth.truly_isolated.size());
}

TEST(EvaluateStepTest, R3OnWorkloadHasNoMissedDetections) {
  // With R3 enforced, truly isolated devices never join dense motions, so
  // classifying them massive is impossible.
  auto params = small_params(2);
  params.enforce_r3 = true;
  ScenarioGenerator generator(params);
  for (int k = 0; k < 8; ++k) {
    const StepMetrics m = evaluate_step(generator.advance(), params.model);
    EXPECT_EQ(m.missed_detection, 0u);
  }
}

TEST(EvaluateStepTest, CostMetricsPopulatedPerBucket) {
  const auto params = small_params(3);
  ScenarioGenerator generator(params);
  StepMetrics m;
  for (int k = 0; k < 5; ++k) m = evaluate_step(generator.advance(), params.model);
  // Whenever a bucket is non-empty its cost accumulator has samples.
  EXPECT_EQ(m.motions_isolated.count(), m.isolated_thm5);
  EXPECT_EQ(m.dense_motions_massive6.count(), m.massive_thm6);
}

TEST(EvaluateStepTest, RatiosAreBounded) {
  const auto params = small_params(4);
  ScenarioGenerator generator(params);
  for (int k = 0; k < 5; ++k) {
    const StepMetrics m = evaluate_step(generator.advance(), params.model);
    EXPECT_GE(m.unresolved_ratio(), 0.0);
    EXPECT_LE(m.unresolved_ratio(), 1.0);
    EXPECT_GE(m.missed_detection_rate(), 0.0);
    EXPECT_LE(m.missed_detection_rate(), 1.0);
  }
}

TEST(RunMetricsTest, AggregatesShares) {
  const auto params = small_params(5);
  ScenarioGenerator generator(params);
  RunMetrics run;
  for (int k = 0; k < 6; ++k) {
    run.add(evaluate_step(generator.advance(), params.model));
  }
  EXPECT_EQ(run.abnormal.count(), 6u);
  // Shares are percentages of |A_k| and must sum to ~100 per step.
  EXPECT_NEAR(run.isolated_share.mean() + run.massive6_share.mean() +
                  run.massive7_share.mean() + run.unresolved_share.mean(),
              100.0, 1e-9);
}

TEST(RunMetricsTest, EmptyStepsDoNotPolluteShares) {
  RunMetrics run;
  StepMetrics empty;
  run.add(empty);
  EXPECT_EQ(run.isolated_share.count(), 0u);
  EXPECT_EQ(run.abnormal.count(), 1u);
}

}  // namespace
}  // namespace acn
