// The per-interval error-count override used by the adaptive-sampling
// studies (generator contract: overriding A must not disturb determinism
// or invariants).
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace acn {
namespace {

ScenarioParams params_with_seed(std::uint64_t seed) {
  ScenarioParams params;
  params.n = 300;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 7;
  params.isolated_probability = 0.5;
  params.seed = seed;
  return params;
}

TEST(AdvanceOverrideTest, ZeroErrorsYieldsQuietInterval) {
  ScenarioGenerator generator(params_with_seed(1));
  const ScenarioStep step = generator.advance(0);
  EXPECT_TRUE(step.truth.abnormal.empty());
  EXPECT_TRUE(step.truth.events.empty());
  EXPECT_EQ(step.state.abnormal().size(), 0u);
}

TEST(AdvanceOverrideTest, QuietIntervalKeepsPositions) {
  ScenarioGenerator generator(params_with_seed(2));
  const auto before = generator.positions();
  (void)generator.advance(0);
  EXPECT_EQ(generator.positions(), before);
}

TEST(AdvanceOverrideTest, OverrideControlsEventCount) {
  ScenarioGenerator generator(params_with_seed(3));
  const ScenarioStep small = generator.advance(2);
  EXPECT_LE(small.truth.events.size(), 2u);
  const ScenarioStep large = generator.advance(40);
  EXPECT_GT(large.truth.events.size(), small.truth.events.size());
}

TEST(AdvanceOverrideTest, DefaultAdvanceUsesConfiguredCount) {
  ScenarioGenerator a(params_with_seed(4));
  ScenarioGenerator b(params_with_seed(4));
  const ScenarioStep sa = a.advance();
  const ScenarioStep sb = b.advance(7);
  EXPECT_EQ(sa.truth.abnormal, sb.truth.abnormal);
}

TEST(AdvanceOverrideTest, OverrideAboveNClamps) {
  ScenarioGenerator generator(params_with_seed(5));
  EXPECT_NO_THROW((void)generator.advance(100'000));
}

TEST(AdvanceOverrideTest, StepCountAdvancesEitherWay) {
  ScenarioGenerator generator(params_with_seed(6));
  (void)generator.advance();
  (void)generator.advance(0);
  (void)generator.advance(3);
  EXPECT_EQ(generator.step_count(), 3u);
}

}  // namespace
}  // namespace acn
