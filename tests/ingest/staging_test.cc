// Unit tests for the ingest building blocks: StagingFrame's commutative
// last-write-wins rule, the LivenessTracker retry ladder, and the
// OverloadController's two verdict-safety-aware sheds.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/liveness.hpp"
#include "ingest/overload.hpp"
#include "ingest/staging.hpp"

namespace acn {
namespace {

QosReport make_report(GatewayKey device, std::uint64_t interval, double x,
                      std::uint64_t seq, bool abnormal = false) {
  QosReport report;
  report.device = device;
  report.interval = interval;
  report.claim = Point{x, x};
  report.abnormal = abnormal;
  report.arrival_seq = seq;
  return report;
}

TEST(StagingFrame, LastWriteWinsBySeq) {
  StagingFrame frame;
  EXPECT_EQ(frame.apply(make_report(7, 3, 0.1, 3)), StagingFrame::Apply::kAccepted);
  // A correction with a higher seq replaces the claim.
  EXPECT_EQ(frame.apply(make_report(7, 3, 0.2, 5)), StagingFrame::Apply::kSuperseded);
  // An exact retransmission of the winner is a duplicate.
  EXPECT_EQ(frame.apply(make_report(7, 3, 0.2, 5)), StagingFrame::Apply::kDuplicate);
  // A straggler with an older seq loses, whatever its arrival order.
  EXPECT_EQ(frame.apply(make_report(7, 3, 0.9, 4)), StagingFrame::Apply::kStale);

  ASSERT_EQ(frame.device_count(), 1u);
  EXPECT_EQ(frame.volume(), 4u);
  const auto cell = frame.find(7);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->seq, 5u);
  EXPECT_DOUBLE_EQ(cell->claim[0], 0.2);
  EXPECT_FALSE(frame.find(8).has_value());
}

TEST(StagingFrame, StagedStateIsDeliveryOrderIndependent) {
  std::vector<QosReport> reports;
  for (GatewayKey d = 0; d < 10; ++d) {
    reports.push_back(make_report(d, 1, 0.01 * static_cast<double>(d), 1));
    reports.push_back(make_report(d, 1, 0.02 * static_cast<double>(d), 2,
                                  d % 3 == 0));
    reports.push_back(make_report(d, 1, 0.01 * static_cast<double>(d), 1));
  }
  StagingFrame forward;
  for (const QosReport& r : reports) (void)forward.apply(r);
  StagingFrame backward;
  for (auto it = reports.rbegin(); it != reports.rend(); ++it) {
    (void)backward.apply(*it);
  }
  const auto a = forward.sorted();
  const auto b = backward.sorted();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second.seq, b[i].second.seq);
    EXPECT_EQ(a[i].second.flagged, b[i].second.flagged);
    EXPECT_TRUE(a[i].second.claim == b[i].second.claim);
  }
}

TEST(StagingFrame, SortedIsAscendingByKey) {
  StagingFrame frame;
  for (const GatewayKey d : {9ULL, 2ULL, 41ULL, 0ULL, 17ULL}) {
    (void)frame.apply(make_report(d, 1, 0.5, 1));
  }
  const auto entries = frame.sorted();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_TRUE(std::is_sorted(
      entries.begin(), entries.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(StagingFrame, DenseLaneSpillAndResetKeepSemantics) {
  StagingFrame frame;
  frame.configure(8, 2);  // keys < 8 take the flat lane; 41 and 100 spill
  (void)frame.apply(make_report(5, 1, 0.5, 1));
  (void)frame.apply(make_report(100, 1, 0.9, 1, true));
  (void)frame.apply(make_report(2, 1, 0.2, 1));
  (void)frame.apply(make_report(41, 1, 0.4, 1));
  EXPECT_EQ(frame.device_count(), 4u);

  // Seal order is ascending across both lanes.
  const auto entries = frame.sorted();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].first, 2u);
  EXPECT_EQ(entries[1].first, 5u);
  EXPECT_EQ(entries[2].first, 41u);
  EXPECT_EQ(entries[3].first, 100u);
  EXPECT_TRUE(entries[3].second.flagged);

  // Last-write-wins works identically in the lane and the spill.
  EXPECT_EQ(frame.apply(make_report(5, 1, 0.7, 3)),
            StagingFrame::Apply::kSuperseded);
  EXPECT_EQ(frame.apply(make_report(100, 1, 0.9, 1)),
            StagingFrame::Apply::kDuplicate);
  ASSERT_TRUE(frame.find(5).has_value());
  EXPECT_EQ(frame.find(5)->seq, 3u);

  // reset() empties the frame but keeps the lane (the pipeline pools
  // sealed frames), so a reused frame behaves like a fresh one.
  frame.shed_engaged = true;
  frame.reset();
  EXPECT_EQ(frame.device_count(), 0u);
  EXPECT_EQ(frame.volume(), 0u);
  EXPECT_FALSE(frame.shed_engaged);
  EXPECT_FALSE(frame.find(5).has_value());
  EXPECT_FALSE(frame.find(100).has_value());
  EXPECT_EQ(frame.apply(make_report(5, 2, 0.1, 1)),
            StagingFrame::Apply::kAccepted);
  EXPECT_EQ(frame.device_count(), 1u);
}

TEST(LivenessTracker, DisabledTracksNothing) {
  LivenessTracker tracker(LivenessConfig{});  // silent_intervals = 0: off
  tracker.admitted(1, 0);
  EXPECT_FALSE(tracker.enabled());
  EXPECT_EQ(tracker.tracked_count(), 0u);
  EXPECT_TRUE(tracker.sealed(5).empty());
}

TEST(LivenessTracker, RetryLadderThenExpiry) {
  LivenessTracker tracker(LivenessConfig{
      .silent_intervals = 1, .retry_backoff = 2, .max_retries = 3});
  tracker.admitted(42, 0);

  // Seal 1: first threshold crossing -> suspect, probe scheduled at 3.
  EXPECT_TRUE(tracker.sealed(1).empty());
  EXPECT_EQ(tracker.suspect_count(), 1u);
  // Seal 2: probe not due yet.
  EXPECT_TRUE(tracker.sealed(2).empty());
  // Seal 3: retry 1 consumed, next probe at 3 + 4.
  EXPECT_TRUE(tracker.sealed(3).empty());
  for (std::uint64_t k = 4; k <= 6; ++k) EXPECT_TRUE(tracker.sealed(k).empty());
  // Seal 7: retry 2 consumed, next probe at 7 + 8.
  EXPECT_TRUE(tracker.sealed(7).empty());
  for (std::uint64_t k = 8; k <= 14; ++k) {
    EXPECT_TRUE(tracker.sealed(k).empty()) << "interval " << k;
  }
  // Seal 15: ladder exhausted.
  const std::vector<GatewayKey> expired = tracker.sealed(15);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired.front(), 42u);
  // The tracker never retires on its own; the caller forgets explicitly.
  tracker.forget(42);
  EXPECT_EQ(tracker.tracked_count(), 0u);
  EXPECT_EQ(tracker.suspect_count(), 0u);
}

TEST(LivenessTracker, ReportRevivesSuspect) {
  LivenessTracker tracker(LivenessConfig{
      .silent_intervals = 1, .retry_backoff = 1, .max_retries = 1});
  tracker.admitted(9, 0);
  EXPECT_TRUE(tracker.sealed(1).empty());  // suspect now
  EXPECT_EQ(tracker.suspect_count(), 1u);
  EXPECT_TRUE(tracker.reported(9, 2));  // revived
  EXPECT_EQ(tracker.suspect_count(), 0u);
  // The ladder restarts from scratch after a revival.
  EXPECT_TRUE(tracker.sealed(3).empty());  // suspect again, probe at 4
  const std::vector<GatewayKey> expired = tracker.sealed(4);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired.front(), 9u);
}

TEST(OverloadController, ShedEngagesOnlyPastThreshold) {
  OverloadController controller(OverloadConfig{
      .shed_claim_threshold = 100, .shed_sample_stride = 4});
  // Below the threshold nothing is shed.
  for (GatewayKey d = 0; d < 50; ++d) {
    EXPECT_FALSE(controller.shed_claim(d, 1, 99));
  }
  // Past it, roughly 1 in stride survives and the decision is a pure
  // function of (device, interval) — delivery order cannot matter.
  std::size_t kept = 0;
  for (GatewayKey d = 0; d < 1000; ++d) {
    const bool shed = controller.shed_claim(d, 7, 100);
    EXPECT_EQ(shed, controller.shed_claim(d, 7, 5000));
    if (!shed) ++kept;
  }
  EXPECT_GT(kept, 150u);
  EXPECT_LT(kept, 350u);
}

TEST(OverloadController, DeferSelectsExactlyTheIsolatedFlagged) {
  OverloadController controller(OverloadConfig{.defer_abnormal_cap = 3});
  const double window = 0.06;  // 2r with r = 0.03
  // Two clusters within the window, two loners far from everything.
  const std::vector<Point> claims = {
      Point{0.10, 0.10}, Point{0.12, 0.10},  // cluster A (indices 0, 1)
      Point{0.90, 0.90},                     // loner (index 2)
      Point{0.50, 0.50}, Point{0.50, 0.54},  // cluster B (indices 3, 4)
      Point{0.10, 0.90},                     // loner (index 5)
  };
  const std::vector<std::size_t> deferred =
      controller.defer_candidates(claims, window);
  EXPECT_EQ(deferred, (std::vector<std::size_t>{2, 5}));
}

TEST(OverloadController, DeferDisengagedAtOrBelowCap) {
  OverloadController controller(OverloadConfig{.defer_abnormal_cap = 6});
  const std::vector<Point> claims = {Point{0.1, 0.1}, Point{0.9, 0.9}};
  EXPECT_TRUE(controller.defer_candidates(claims, 0.06).empty());
}

}  // namespace
}  // namespace acn
