// IngestPipeline behaviour: watermark seal timing, late/duplicate/future
// handling, stall timeout, interval-flood marking, overload sheds, the
// liveness retire path, and alignment with the monitor it feeds.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/pipeline.hpp"

namespace acn {
namespace {

// Eight well-separated devices in [0,1]^2 (pairwise chebyshev >> 2r).
std::vector<Point> fleet_positions() {
  return {Point{0.10, 0.10}, Point{0.30, 0.10}, Point{0.50, 0.10},
          Point{0.70, 0.10}, Point{0.10, 0.50}, Point{0.30, 0.50},
          Point{0.50, 0.50}, Point{0.70, 0.50}};
}

IngestPipeline::Config base_config(std::size_t capacity = 8) {
  IngestPipeline::Config config;
  config.capacity = capacity;
  config.dim = 2;
  return config;
}

QosReport make_report(GatewayKey device, std::uint64_t interval,
                      const Point& claim, bool abnormal = false,
                      std::uint64_t seq = 0) {
  QosReport report;
  report.device = device;
  report.interval = interval;
  report.claim = claim;
  report.abnormal = abnormal;
  report.arrival_seq = seq == 0 ? interval : seq;
  return report;
}

/// Pushes one in-place report per device for interval k.
void push_interval(IngestPipeline& pipeline, std::uint64_t k) {
  const std::vector<Point> fleet = fleet_positions();
  for (GatewayKey d = 0; d < fleet.size(); ++d) {
    pipeline.push(make_report(d, k, fleet[d]));
  }
}

TEST(IngestPipeline, ConfigAndPrimeGuards) {
  EXPECT_THROW(IngestPipeline(base_config(0)), std::invalid_argument);
  {
    IngestPipeline::Config config = base_config();
    config.watermark.allowed_lag = 0;
    EXPECT_THROW(IngestPipeline{config}, std::invalid_argument);
  }
  {
    IngestPipeline::Config config = base_config();
    config.watermark.max_watermark_jump = 0;
    EXPECT_THROW(IngestPipeline{config}, std::invalid_argument);
  }
  IngestPipeline pipeline(base_config());
  EXPECT_THROW(pipeline.push(make_report(0, 1, Point{0.1, 0.1})),
               std::logic_error);
  pipeline.prime(Snapshot(fleet_positions()));
  EXPECT_THROW(pipeline.prime(Snapshot(fleet_positions())), std::logic_error);
}

TEST(IngestPipeline, WatermarkSealsAtAllowedLag) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 2;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));

  push_interval(pipeline, 1);
  push_interval(pipeline, 2);
  EXPECT_TRUE(pipeline.drain_ready().empty());  // watermark at 2: 1 still open
  EXPECT_EQ(pipeline.open_intervals(), 2u);

  pipeline.push(make_report(0, 3, fleet_positions()[0]));
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed.front().interval, 1u);
  EXPECT_FALSE(closed.front().forced);
  EXPECT_FALSE(closed.front().degraded);
  EXPECT_EQ(closed.front().reported, 8u);
  EXPECT_EQ(closed.front().replayed, 0u);
  // Monitor intervals align with event intervals (prime sealed interval 0).
  EXPECT_EQ(closed.front().report.interval, 1u);
  EXPECT_EQ(pipeline.next_to_seal(), 2u);
}

TEST(IngestPipeline, LateToSealedIsCountedAndDropped) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 1;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  push_interval(pipeline, 1);
  push_interval(pipeline, 2);  // seals 1
  ASSERT_EQ(pipeline.next_to_seal(), 2u);
  pipeline.push(make_report(3, 1, Point{0.99, 0.99}));
  EXPECT_EQ(pipeline.counters().late_sealed, 1u);
  // The straggler's claim never reaches the roster.
  EXPECT_TRUE(pipeline.monitor().roster().snapshot()[3] ==
              fleet_positions()[3]);
}

TEST(IngestPipeline, GapIntervalsSealEmptyAndReplay) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 2;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  push_interval(pipeline, 1);
  pipeline.push(make_report(0, 5, fleet_positions()[0]));  // watermark jumps
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 3u);  // 1, 2, 3 sealed; 4 and 5 within the lag
  EXPECT_EQ(closed[0].reported, 8u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(closed[i].interval, i + 1);
    EXPECT_EQ(closed[i].reported, 0u);
    EXPECT_EQ(closed[i].replayed, 8u);  // every device replays its last claim
  }
  EXPECT_EQ(pipeline.counters().replayed_claims, 16u);
}

TEST(IngestPipeline, FutureEventTimesAreRejected) {
  IngestPipeline::Config config = base_config();
  config.watermark.max_future_skip = 10;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  push_interval(pipeline, 1);
  pipeline.push(make_report(0, 12, fleet_positions()[0]));  // 1 + 10 = 11 max
  EXPECT_EQ(pipeline.counters().future_rejected, 1u);
  EXPECT_EQ(pipeline.max_seen_interval(), 1u);  // the watermark never moved
  pipeline.push(make_report(0, 11, fleet_positions()[0]));  // plausible
  EXPECT_EQ(pipeline.counters().future_rejected, 1u);
  EXPECT_EQ(pipeline.max_seen_interval(), 11u);
}

TEST(IngestPipeline, StallTimeoutForceSealsOldestInterval) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 100;  // the watermark alone would never seal
  config.watermark.timeout_ticks = 3;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  push_interval(pipeline, 1);
  pipeline.tick();
  pipeline.tick();
  EXPECT_TRUE(pipeline.drain_ready().empty());
  pipeline.tick();  // age 3 >= timeout
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed.front().forced);
  EXPECT_TRUE(closed.front().degraded);
  EXPECT_TRUE(closed.front().report.degraded);
  EXPECT_EQ(pipeline.counters().forced_closes, 1u);
}

TEST(IngestPipeline, WatermarkJumpFloodMarksExcessSealsForced) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 2;
  config.watermark.max_watermark_jump = 2;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  push_interval(pipeline, 1);
  pipeline.push(make_report(0, 9, fleet_positions()[0]));  // flood: seals 1..7
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 7u);
  // Sealing k with the watermark at 9 leaves 8 - k still pending; the
  // excess (pending > jump) seals are the forced ones.
  for (const ClosedInterval& c : closed) {
    const bool expect_forced = (8 - c.interval) > 2;
    EXPECT_EQ(c.forced, expect_forced) << "interval " << c.interval;
    EXPECT_EQ(c.degraded, expect_forced) << "interval " << c.interval;
  }
  EXPECT_EQ(pipeline.counters().forced_closes, 5u);
}

TEST(IngestPipeline, DuplicatesAndSupersessionsResolveBySeq) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 1;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  const Point original{0.11, 0.11};
  const Point corrected{0.12, 0.12};
  pipeline.push(make_report(0, 1, original, false, 10));
  pipeline.push(make_report(0, 1, original, false, 10));     // retransmission
  pipeline.push(make_report(0, 1, corrected, false, 11));    // correction
  pipeline.push(make_report(0, 1, original, false, 9));      // stale straggler
  EXPECT_EQ(pipeline.counters().duplicates, 1u);
  EXPECT_EQ(pipeline.counters().superseded, 2u);
  push_interval(pipeline, 2);  // seals 1
  ASSERT_EQ(pipeline.next_to_seal(), 2u);
  EXPECT_TRUE(pipeline.monitor().roster().snapshot()[0] == corrected);
}

TEST(IngestPipeline, FirstSeenKeysAutoAdmitUntilCapacity) {
  IngestPipeline::Config config = base_config(/*capacity=*/9);
  config.watermark.allowed_lag = 1;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  push_interval(pipeline, 1);
  pipeline.push(make_report(100, 1, Point{0.9, 0.9}));  // never primed
  push_interval(pipeline, 2);                           // seals 1
  EXPECT_EQ(pipeline.counters().admitted_devices, 1u);
  EXPECT_TRUE(pipeline.monitor().roster().active(100));

  // The tenth key finds no free slot: refused, interval marked degraded.
  pipeline.push(make_report(200, 2, Point{0.8, 0.8}));
  pipeline.push(make_report(0, 3, fleet_positions()[0]));  // seals 2
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(pipeline.counters().admit_rejected, 1u);
  EXPECT_TRUE(closed.back().degraded);
  EXPECT_FALSE(pipeline.monitor().roster().active(200));
}

TEST(IngestPipeline, ShedEngagesAndMarksDegraded) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 1;
  config.overload.shed_claim_threshold = 0;  // shed from the first report
  config.overload.shed_sample_stride = 2;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  for (GatewayKey d = 0; d < 8; ++d) {
    pipeline.push(make_report(d, 1, Point{0.25, 0.25}));
  }
  // Advance the watermark with an abnormal report (never shed), so the
  // shed counter below reflects interval 1 alone.
  pipeline.push(make_report(0, 2, fleet_positions()[0], /*abnormal=*/true));
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed.front().degraded);
  EXPECT_TRUE(closed.front().report.degraded);
  EXPECT_GT(pipeline.counters().shed_claims, 0u);
  EXPECT_LT(pipeline.counters().shed_claims, 8u);  // 1-in-2 sampling keeps some
  // A shed device replays its prime claim; a kept one moved to 0.25.
  const Snapshot snapshot = pipeline.monitor().roster().snapshot();
  std::size_t moved = 0;
  for (DeviceId d = 0; d < 8; ++d) {
    if (snapshot[d] == Point{0.25, 0.25}) ++moved;
  }
  EXPECT_EQ(moved + pipeline.counters().shed_claims, 8u);
}

TEST(IngestPipeline, AbnormalReportsAreNeverShed) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 1;
  config.overload.shed_claim_threshold = 0;
  config.overload.shed_sample_stride = 1000;  // shed everything sheddable
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  for (GatewayKey d = 0; d < 8; ++d) {
    pipeline.push(make_report(d, 1, Point{0.25, 0.25}, /*abnormal=*/true));
  }
  push_interval(pipeline, 2);
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed.front().reported, 8u);  // every flagged report landed
  EXPECT_EQ(closed.front().report.abnormal.size(), 8u);
}

TEST(IngestPipeline, DeferralDropsOnlyIsolatedFlaggedAndPreservesVerdicts) {
  const std::vector<Point> fleet = fleet_positions();
  // Interval 1: devices 0 and 1 converge within 2r of each other (a
  // 2-member motion, <= tau -> isolated); device 7 crashes alone far away.
  std::vector<std::pair<GatewayKey, Point>> moves = {
      {0, Point{0.20, 0.10}}, {1, Point{0.21, 0.10}}, {7, Point{0.95, 0.95}}};

  auto run = [&](std::size_t cap) {
    IngestPipeline::Config config = base_config();
    config.watermark.allowed_lag = 1;
    config.overload.defer_abnormal_cap = cap;
    IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
    for (GatewayKey d = 0; d < fleet.size(); ++d) {
      Point claim = fleet[d];
      bool abnormal = false;
      for (const auto& [key, to] : moves) {
        if (key == d) {
          claim = to;
          abnormal = true;
        }
      }
      pipeline.push(make_report(d, 1, claim, abnormal));
    }
    push_interval(pipeline, 2);  // seals 1
    std::vector<ClosedInterval> closed = pipeline.drain_ready();
    EXPECT_EQ(closed.size(), 1u);
    return std::move(closed.front());
  };

  const ClosedInterval baseline = run(/*cap=*/SIZE_MAX);
  EXPECT_FALSE(baseline.degraded);
  EXPECT_TRUE(baseline.deferred.empty());
  ASSERT_EQ(baseline.report.decisions.size(), 3u);

  const ClosedInterval capped = run(/*cap=*/2);
  EXPECT_TRUE(capped.degraded);
  ASSERT_EQ(capped.deferred.size(), 1u);
  EXPECT_EQ(capped.deferred.front(), 7u);  // the loner, never the cluster
  ASSERT_EQ(capped.report.decisions.size(), 2u);
  for (const auto& [device, decision] : capped.report.decisions) {
    const Decision& want = baseline.report.decisions.at(device);
    EXPECT_TRUE(decision.cls == want.cls && decision.rule == want.rule &&
                decision.exact == want.exact &&
                decision.maximal_motion_count == want.maximal_motion_count &&
                decision.dense_motion_count == want.dense_motion_count &&
                decision.collections_tested == want.collections_tested)
        << "device " << device;
  }
}

TEST(IngestPipeline, LivenessRetiresSilentDeviceAndReadmitsOnReturn) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 1;
  config.liveness = LivenessConfig{
      .silent_intervals = 1, .retry_backoff = 1, .max_retries = 1};
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  const std::vector<Point> fleet = fleet_positions();

  // Device 0 reports only interval 1, then goes dark until interval 5.
  for (std::uint64_t k = 1; k <= 6; ++k) {
    for (GatewayKey d = 0; d < fleet.size(); ++d) {
      if (d == 0 && k > 1 && k != 5) continue;
      pipeline.push(make_report(d, k, fleet[d]));
    }
  }
  pipeline.finish();
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 6u);

  // Suspect after seal 2, probe exhausted at seal 3 -> retired there.
  EXPECT_TRUE(closed[1].retired.empty());
  ASSERT_EQ(closed[2].retired.size(), 1u);
  EXPECT_EQ(closed[2].retired.front(), 0u);
  EXPECT_EQ(pipeline.counters().retired_devices, 1u);
  // Its interval-5 report auto-admits it back into the parked slot.
  EXPECT_EQ(pipeline.counters().admitted_devices, 1u);
  EXPECT_TRUE(pipeline.monitor().roster().active(0));
}

TEST(IngestPipeline, FinishSealsEveryOpenInterval) {
  IngestPipeline::Config config = base_config();
  config.watermark.allowed_lag = 5;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet_positions()));
  for (std::uint64_t k = 1; k <= 3; ++k) push_interval(pipeline, k);
  EXPECT_TRUE(pipeline.drain_ready().empty());
  pipeline.finish();
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 3u);
  for (const ClosedInterval& c : closed) {
    EXPECT_FALSE(c.forced);  // end of stream is a complete close
    EXPECT_FALSE(c.degraded);
    EXPECT_EQ(c.reported, 8u);
  }
}

}  // namespace
}  // namespace acn
