// Fault injection: hostile delivery schedules (stall, kill, duplicate
// flood, interval flood, overload) driven through the pipeline — including
// through the bounded queue from real producer threads. The suite asserts
// the robustness contract: the pipeline always completes (no deadlock, no
// crash), every pushed report lands in exactly one counter, degradation is
// explicitly marked, and silent sources retire through the roster path.
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/pipeline.hpp"
#include "ingest/queue.hpp"
#include "sim/hostile.hpp"
#include "sim/report_source.hpp"

namespace acn {
namespace {

struct Materialized {
  Snapshot initial;
  std::vector<ObservedInterval> intervals;
};

Materialized materialize(std::size_t n, std::uint64_t seed, int intervals) {
  // The combined-stress family exercises every hostile layer at once.
  const std::vector<HostileSpec> suite = standard_hostile_suite(n, seed);
  HostileScenario scenario(suite.back().params);
  Materialized m{scenario.initial(), {}};
  for (int k = 0; k < intervals; ++k) {
    HostileStep step = scenario.advance();
    m.intervals.push_back(
        ObservedInterval{std::move(step.observed), std::move(step.abnormal)});
  }
  return m;
}

IngestPipeline::Config pipeline_config(const Materialized& m) {
  IngestPipeline::Config config;
  config.monitor.characterize = CharacterizeOptions{.parallel_grain = 1};
  config.capacity = m.initial.size();
  config.dim = m.initial[0].dim();
  config.watermark.allowed_lag = 2;
  return config;
}

std::uint64_t counted_total(const IngestCounters& c) {
  return c.accepted + c.duplicates + c.superseded + c.late_sealed +
         c.future_rejected + c.shed_claims;
}

TEST(FaultInjection, SourceStallsAreAbsorbedWithoutDeadlock) {
  const Materialized m = materialize(60, 77, 20);
  DeliveryFaults faults;
  faults.stall_rate = 0.15;
  faults.stall_intervals = 4;  // stalls outlast the lateness budget
  faults.seed = 5;
  const std::vector<QosReport> schedule = delivery_schedule(m.intervals, faults);

  IngestPipeline::Config config = pipeline_config(m);
  config.watermark.timeout_ticks = 5;
  IngestPipeline pipeline(config);
  pipeline.prime(m.initial);
  std::size_t pushed = 0;
  for (const QosReport& report : schedule) {
    pipeline.push(report);
    if (++pushed % m.initial.size() == 0) pipeline.tick();
  }
  pipeline.finish();

  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  EXPECT_EQ(closed.size(), m.intervals.size());
  const IngestCounters& counters = pipeline.counters();
  // Every push landed in exactly one bucket.
  EXPECT_EQ(counted_total(counters), schedule.size());
  // A 4-interval stall against a 2-interval budget: some reports burst out
  // after their interval sealed, and those seals replayed the last claim.
  EXPECT_GT(counters.late_sealed, 0u);
  EXPECT_GT(counters.replayed_claims, 0u);
}

TEST(FaultInjection, KilledSourcesRetireThroughLiveness) {
  const int kIntervals = 24;
  const Materialized m = materialize(40, 99, kIntervals);
  DeliveryFaults faults;
  faults.kill_rate = 0.05;
  faults.seed = 11;
  std::vector<std::uint64_t> killed_from;
  const std::vector<QosReport> schedule =
      delivery_schedule(m.intervals, faults, &killed_from);

  IngestPipeline::Config config = pipeline_config(m);
  config.watermark.allowed_lag = 1;
  config.liveness = LivenessConfig{
      .silent_intervals = 2, .retry_backoff = 1, .max_retries = 1};
  IngestPipeline pipeline(config);
  pipeline.prime(m.initial);
  for (const QosReport& report : schedule) pipeline.push(report);
  pipeline.finish();

  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), m.intervals.size());
  constexpr std::uint64_t kAlive = static_cast<std::uint64_t>(-1);
  std::unordered_set<GatewayKey> retired;
  for (const ClosedInterval& c : closed) {
    for (const GatewayKey key : c.retired) {
      // Only genuinely dead sources walk the retire path.
      EXPECT_TRUE(retired.insert(key).second) << "double retire of " << key;
      ASSERT_LT(key, killed_from.size());
      EXPECT_NE(killed_from[key], kAlive) << "retired a live device " << key;
    }
  }
  EXPECT_GT(pipeline.counters().retired_devices, 0u);
  EXPECT_EQ(pipeline.counters().retired_devices, retired.size());
  // Every device killed early enough to exhaust the ladder is retired and
  // its slot parked (suspect at kill+2, probe exhausted at kill+3).
  for (GatewayKey key = 0; key < killed_from.size(); ++key) {
    if (killed_from[key] != kAlive &&
        killed_from[key] + 4 <= static_cast<std::uint64_t>(kIntervals)) {
      EXPECT_TRUE(retired.contains(key)) << "device " << key;
      EXPECT_FALSE(pipeline.monitor().roster().active(key));
    }
  }
}

TEST(FaultInjection, DuplicateFloodIsAbsorbedByteIdentically) {
  const Materialized m = materialize(40, 123, 8);

  auto run = [&](const DeliveryFaults& faults,
                 std::vector<ClosedInterval>& out) {
    IngestPipeline pipeline(pipeline_config(m));
    pipeline.prime(m.initial);
    for (const QosReport& report : delivery_schedule(m.intervals, faults)) {
      pipeline.push(report);
    }
    pipeline.finish();
    out = pipeline.drain_ready();
    ASSERT_EQ(out.size(), m.intervals.size());
    EXPECT_EQ(pipeline.counters().duplicates,
              3u * pipeline.counters().accepted);
  };

  std::vector<ClosedInterval> clean;
  {
    IngestPipeline pipeline(pipeline_config(m));
    pipeline.prime(m.initial);
    for (const QosReport& r : delivery_schedule(m.intervals, {})) {
      pipeline.push(r);
    }
    pipeline.finish();
    clean = pipeline.drain_ready();
  }

  DeliveryFaults flood;
  flood.duplicate_rate = 1.0;  // every report retransmitted...
  flood.duplicate_copies = 3;  // ...three more times
  flood.seed = 17;
  std::vector<ClosedInterval> flooded;
  run(flood, flooded);
  if (HasFatalFailure()) return;

  for (std::size_t k = 0; k < clean.size(); ++k) {
    EXPECT_FALSE(flooded[k].degraded);
    ASSERT_EQ(flooded[k].report.decisions.size(),
              clean[k].report.decisions.size())
        << "interval " << k + 1;
    auto it = clean[k].report.decisions.begin();
    for (const auto& [device, a] : flooded[k].report.decisions) {
      const Decision& b = it->second;
      ASSERT_EQ(device, it->first) << "interval " << k + 1;
      EXPECT_TRUE(a.cls == b.cls && a.rule == b.rule && a.exact == b.exact &&
                  a.maximal_motion_count == b.maximal_motion_count &&
                  a.dense_motion_count == b.dense_motion_count &&
                  a.collections_tested == b.collections_tested)
          << "interval " << k + 1 << " device " << device;
      ++it;
    }
  }
}

TEST(FaultInjection, IntervalFloodIsBoundedRejectedAndMarked) {
  const std::vector<Point> fleet = {
      Point{0.10, 0.10}, Point{0.30, 0.10}, Point{0.50, 0.10},
      Point{0.70, 0.10}, Point{0.10, 0.50}, Point{0.30, 0.50},
      Point{0.50, 0.50}, Point{0.70, 0.50}};
  IngestPipeline::Config config;
  config.capacity = fleet.size();
  config.dim = 2;
  config.watermark.allowed_lag = 2;
  config.watermark.max_watermark_jump = 4;
  config.watermark.max_future_skip = 100;
  IngestPipeline pipeline(config);
  pipeline.prime(Snapshot(fleet));

  QosReport report;
  report.claim = fleet[0];
  for (GatewayKey d = 0; d < fleet.size(); ++d) {
    report.device = d;
    report.interval = 1;
    report.arrival_seq = 1;
    pipeline.push(report);
  }
  // An absurd event time must not move the watermark at all.
  report.device = 0;
  report.interval = 5000;
  pipeline.push(report);
  EXPECT_EQ(pipeline.counters().future_rejected, 1u);
  EXPECT_EQ(pipeline.max_seen_interval(), 1u);

  // A plausible-but-violent jump seals everything it flushes, marking the
  // seals that never had their lateness window as forced/degraded.
  report.interval = 90;
  pipeline.push(report);
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), 88u);
  for (const ClosedInterval& c : closed) {
    const bool expect_forced = (89 - c.interval) > 4;
    EXPECT_EQ(c.forced, expect_forced) << "interval " << c.interval;
    EXPECT_EQ(c.degraded, expect_forced) << "interval " << c.interval;
    EXPECT_EQ(c.report.degraded, expect_forced) << "interval " << c.interval;
  }
  EXPECT_EQ(pipeline.counters().forced_closes, 84u);
  // Staging stays bounded by construction: the open span never exceeds the
  // lateness budget.
  EXPECT_LE(pipeline.open_intervals(),
            static_cast<std::size_t>(config.watermark.allowed_lag));
}

TEST(FaultInjection, OverloadRunEmitsMarkedDegradedIntervals) {
  const Materialized m = materialize(60, 31, 10);
  DeliveryFaults flood;
  flood.duplicate_rate = 1.0;
  flood.duplicate_copies = 2;
  flood.seed = 23;

  IngestPipeline::Config config = pipeline_config(m);
  config.overload.shed_claim_threshold = m.initial.size() / 2;
  config.overload.shed_sample_stride = 4;
  IngestPipeline pipeline(config);
  pipeline.prime(m.initial);
  for (const QosReport& report : delivery_schedule(m.intervals, flood)) {
    pipeline.push(report);
  }
  pipeline.finish();

  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), m.intervals.size());
  EXPECT_GT(pipeline.counters().shed_claims, 0u);
  std::size_t degraded = 0;
  for (const ClosedInterval& c : closed) {
    if (c.degraded) {
      ++degraded;
      EXPECT_TRUE(c.report.degraded) << "interval " << c.interval;
    }
  }
  // Degradation is explicit, never silent: the overloaded intervals say so.
  EXPECT_GT(degraded, 0u);
}

TEST(FaultInjection, ThreadedSourcesThroughBoundedQueue) {
  const Materialized m = materialize(60, 55, 12);
  DeliveryFaults faults;
  faults.reorder_window = m.initial.size() / 3;
  faults.duplicate_rate = 0.5;
  faults.duplicate_copies = 2;
  faults.stall_rate = 0.1;
  faults.stall_intervals = 3;
  faults.seed = 41;
  const std::vector<QosReport> schedule = delivery_schedule(m.intervals, faults);

  BoundedReportQueue queue(32, BoundedReportQueue::Policy::kBlock);
  constexpr std::size_t kProducers = 3;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Contiguous slices: within a slice order is preserved; across
      // slices delivery interleaves arbitrarily — more hostility, not less.
      const std::size_t begin = schedule.size() * p / kProducers;
      const std::size_t end = schedule.size() * (p + 1) / kProducers;
      for (std::size_t i = begin; i < end; ++i) {
        ASSERT_TRUE(queue.push(schedule[i]));
      }
    });
  }

  IngestPipeline::Config config = pipeline_config(m);
  config.watermark.timeout_ticks = 50;
  IngestPipeline pipeline(config);
  pipeline.prime(m.initial);
  std::uint64_t pumped = 0;
  std::thread pump([&] {
    while (const std::optional<QosReport> report = queue.pop()) {
      pipeline.push(*report);
      if (++pumped % 64 == 0) pipeline.tick();
    }
  });
  for (std::thread& t : producers) t.join();
  queue.close();
  pump.join();
  pipeline.finish();

  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  EXPECT_EQ(closed.size(), m.intervals.size());
  EXPECT_EQ(pumped, schedule.size());
  EXPECT_EQ(counted_total(pipeline.counters()), schedule.size());
  EXPECT_EQ(queue.rejected(), 0u);
  EXPECT_LE(queue.peak_depth(), 32u);
}

}  // namespace
}  // namespace acn
