// BoundedReportQueue: the backpressure boundary. Block policy must be
// lossless under a slow pump, reject policy must shed at the edge and
// count, and close() must wake everyone — producers and the pump alike.
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/queue.hpp"

namespace acn {
namespace {

QosReport make_report(GatewayKey device, std::uint64_t interval) {
  QosReport report;
  report.device = device;
  report.interval = interval;
  report.claim = Point{0.5, 0.5};
  report.arrival_seq = interval;
  return report;
}

TEST(BoundedReportQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedReportQueue(0), std::invalid_argument);
}

TEST(BoundedReportQueue, BlockPolicyIsLossless) {
  BoundedReportQueue queue(4, BoundedReportQueue::Policy::kBlock);
  constexpr std::uint64_t kReports = 500;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kReports; ++i) {
      ASSERT_TRUE(queue.push(make_report(i % 7, i)));
    }
    queue.close();
  });
  std::uint64_t received = 0;
  std::uint64_t last_seq = 0;
  bool first = true;
  while (const std::optional<QosReport> report = queue.pop()) {
    // Single producer + FIFO queue: arrival order is emission order.
    if (!first) EXPECT_EQ(report->arrival_seq, last_seq + 1);
    last_seq = report->arrival_seq;
    first = false;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kReports);
  EXPECT_EQ(queue.rejected(), 0u);
  // The producer blocked instead of overfilling: depth never passed capacity.
  EXPECT_LE(queue.peak_depth(), 4u);
}

TEST(BoundedReportQueue, RejectPolicyShedsWhenFull) {
  BoundedReportQueue queue(2, BoundedReportQueue::Policy::kReject);
  EXPECT_TRUE(queue.push(make_report(0, 1)));
  EXPECT_TRUE(queue.push(make_report(1, 1)));
  EXPECT_FALSE(queue.push(make_report(2, 1)));  // full: shed at the edge
  EXPECT_EQ(queue.rejected(), 1u);
  QosReport out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.device, 0u);
  EXPECT_TRUE(queue.push(make_report(3, 1)));  // space freed
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(BoundedReportQueue, CloseWakesBlockedProducer) {
  BoundedReportQueue queue(1, BoundedReportQueue::Policy::kBlock);
  ASSERT_TRUE(queue.push(make_report(0, 1)));
  std::atomic<int> outcome{-1};
  std::thread producer([&] {
    // Queue is full; this blocks until close() wakes it with a refusal.
    outcome.store(queue.push(make_report(1, 1)) ? 1 : 0);
  });
  queue.close();
  producer.join();
  EXPECT_EQ(outcome.load(), 0);
  EXPECT_EQ(queue.rejected(), 1u);
}

TEST(BoundedReportQueue, CloseDrainsBacklogThenSignalsEnd) {
  BoundedReportQueue queue(8);
  ASSERT_TRUE(queue.push(make_report(0, 1)));
  ASSERT_TRUE(queue.push(make_report(1, 1)));
  queue.close();
  EXPECT_FALSE(queue.push(make_report(2, 1)));  // closed: refused
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // drained: termination signal
}

TEST(BoundedReportQueue, ManyProducersOnePump) {
  BoundedReportQueue queue(16, BoundedReportQueue::Policy::kBlock);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(make_report(static_cast<GatewayKey>(p), i)));
      }
    });
  }
  std::uint64_t received = 0;
  std::vector<std::uint64_t> last(kProducers, 0);
  std::thread pump([&] {
    while (const std::optional<QosReport> report = queue.pop()) {
      // Per-producer FIFO survives interleaving.
      const auto p = static_cast<std::size_t>(report->device);
      if (report->arrival_seq > 0) EXPECT_EQ(report->arrival_seq, last[p] + 1);
      last[p] = report->arrival_seq;
      ++received;
    }
  });
  for (std::thread& t : producers) t.join();
  queue.close();
  pump.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

}  // namespace
}  // namespace acn
