// Differential ingest conformance: for every hostile family, a delivery
// schedule with reorder and duplication WITHIN the lateness budget must
// leave every interval's verdicts byte-identical (all six Decision fields)
// to in-order exactly-once delivery — serial and pooled characterization
// alike — and no interval may be marked degraded. The in-order pipeline is
// itself pinned against the fixed-fleet monitor fed the observed snapshots
// directly, so the roster path cannot silently diverge from the engine.
//
// Failures print a REPRO line naming the family, suite seed, interval, and
// path. ACN_CONFORMANCE_SEED_BUDGET / ACN_CONFORMANCE_BASE_SEED work as in
// tests/conformance.
#include <cstdlib>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/pipeline.hpp"
#include "sim/hostile.hpp"
#include "sim/report_source.hpp"

namespace acn {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

struct Materialized {
  Snapshot initial;
  std::vector<ObservedInterval> intervals;
};

Materialized materialize(const HostileSpec& spec, int intervals) {
  HostileScenario scenario(spec.params);
  Materialized m{scenario.initial(), {}};
  for (int k = 0; k < intervals; ++k) {
    HostileStep step = scenario.advance();
    m.intervals.push_back(
        ObservedInterval{std::move(step.observed), std::move(step.abnormal)});
  }
  return m;
}

void run_pipeline(const Params& model, const Materialized& m,
                  const DeliveryFaults& faults, unsigned threads,
                  std::vector<IntervalReport>& out) {
  IngestPipeline::Config config;
  config.monitor.model = model;
  config.monitor.characterize = CharacterizeOptions{.parallel_grain = 1};
  config.monitor.characterize_threads = threads;
  config.capacity = m.initial.size();
  config.dim = m.initial[0].dim();
  config.watermark.allowed_lag = 2;
  IngestPipeline pipeline(config);
  pipeline.prime(m.initial);
  for (const QosReport& report : delivery_schedule(m.intervals, faults)) {
    pipeline.push(report);
  }
  pipeline.finish();
  const std::vector<ClosedInterval> closed = pipeline.drain_ready();
  ASSERT_EQ(closed.size(), m.intervals.size());
  out.clear();
  for (const ClosedInterval& c : closed) {
    // Within the budget nothing is forced, shed, deferred, or refused.
    EXPECT_FALSE(c.degraded) << "interval " << c.interval;
    EXPECT_FALSE(c.forced) << "interval " << c.interval;
    out.push_back(c.report);
  }
}

void expect_identical(const std::map<DeviceId, Decision>& got,
                      const std::map<DeviceId, Decision>& want,
                      const char* path, const HostileSpec& spec,
                      std::uint64_t seed, std::size_t interval) {
  ASSERT_EQ(got.size(), want.size())
      << "REPRO: family=" << spec.name << " suite-seed=" << seed
      << " interval=" << interval << " path=" << path;
  auto it = want.begin();
  for (const auto& [device, a] : got) {
    ASSERT_EQ(device, it->first)
        << "REPRO: family=" << spec.name << " suite-seed=" << seed
        << " interval=" << interval << " path=" << path;
    const Decision& b = it->second;
    EXPECT_TRUE(a.cls == b.cls && a.rule == b.rule && a.exact == b.exact &&
                a.maximal_motion_count == b.maximal_motion_count &&
                a.dense_motion_count == b.dense_motion_count &&
                a.collections_tested == b.collections_tested)
        << "REPRO: family=" << spec.name << " suite-seed=" << seed
        << " interval=" << interval << " path=" << path << " device=" << device
        << " (got cls=" << static_cast<int>(a.cls) << " rule="
        << to_string(a.rule) << " exact=" << a.exact
        << ", want cls=" << static_cast<int>(b.cls)
        << " rule=" << to_string(b.rule) << " exact=" << b.exact << ")";
    ++it;
  }
}

void run_family(const HostileSpec& spec, std::uint64_t seed, int intervals,
                std::size_t& decisions_seen) {
  const Materialized m = materialize(spec, intervals);
  const Params model = spec.params.base.model;
  const std::size_t n = m.initial.size();

  // In-order exactly-once through the pipeline, serial: the reference.
  std::vector<IntervalReport> reference;
  run_pipeline(model, m, DeliveryFaults{}, /*threads=*/1, reference);
  if (testing::Test::HasFatalFailure()) return;
  for (const IntervalReport& report : reference) {
    decisions_seen += report.decisions.size();
  }

  // Pin the reference against the fixed-fleet monitor fed directly.
  {
    OnlineMonitor::Config config;
    config.model = model;
    config.characterize = CharacterizeOptions{.parallel_grain = 1};
    OnlineMonitor direct(config);
    (void)direct.observe(m.initial, DeviceSet{});
    for (std::size_t k = 0; k < m.intervals.size(); ++k) {
      const IntervalReport want =
          direct.observe(m.intervals[k].positions, m.intervals[k].abnormal);
      expect_identical(reference[k].decisions, want.decisions, "direct-feed",
                       spec, seed, k + 1);
      if (testing::Test::HasFatalFailure()) return;
    }
  }

  // Faulted deliveries within the lateness budget: displacement under a
  // stable sort is at most reorder_window slots, and with allowed_lag = 2
  // anything under (lag - 1) * n + 1 slots cannot cross a sealing boundary.
  DeliveryFaults reorder;
  reorder.reorder_window = n / 2;
  reorder.seed = seed + 1;
  DeliveryFaults reorder_dup = reorder;
  reorder_dup.duplicate_rate = 0.3;
  reorder_dup.duplicate_copies = 2;
  reorder_dup.seed = seed + 2;

  const struct {
    const char* name;
    const DeliveryFaults* faults;
    unsigned threads;
  } paths[] = {
      {"reorder-serial", &reorder, 1},
      {"reorder-dup-serial", &reorder_dup, 1},
      {"in-order-pooled", nullptr, 4},
      {"reorder-dup-pooled", &reorder_dup, 4},
  };
  for (const auto& path : paths) {
    std::vector<IntervalReport> got;
    run_pipeline(model, m, path.faults ? *path.faults : DeliveryFaults{},
                 path.threads, got);
    if (testing::Test::HasFatalFailure()) return;
    for (std::size_t k = 0; k < reference.size(); ++k) {
      expect_identical(got[k].decisions, reference[k].decisions, path.name,
                       spec, seed, k + 1);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IngestConformance, FaultedDeliveryWithinBudgetIsByteIdentical) {
  const std::size_t budget = env_size("ACN_CONFORMANCE_SEED_BUDGET", 1);
  const std::uint64_t base_seed = env_size("ACN_CONFORMANCE_BASE_SEED", 2000);
  std::size_t decisions_seen = 0;
  for (std::size_t s = 0; s < budget; ++s) {
    const std::uint64_t seed = base_seed + 7919 * s;
    for (const HostileSpec& spec : standard_hostile_suite(200, seed)) {
      run_family(spec, seed, 6, decisions_seen);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
  // Guard against a vacuous pass: the suite must actually produce verdicts
  // for the byte-identity comparison to mean anything.
  EXPECT_GT(decisions_seen, 100u);
}

}  // namespace
}  // namespace acn
