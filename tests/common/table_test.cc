#include "common/table.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TableTest, PadsColumnsToWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell"});
  const std::string s = t.to_string();
  // Each data line must be as long as the widest cell plus framing.
  const auto first_newline = s.find('\n');
  const auto second_newline = s.find('\n', first_newline + 1);
  const auto third_newline = s.find('\n', second_newline + 1);
  const std::string header_line = s.substr(0, first_newline);
  const std::string data_line =
      s.substr(second_newline + 1, third_newline - second_newline - 1);
  EXPECT_EQ(header_line.size(), data_line.size());
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace acn
