#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acn {
namespace {

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesPooled) {
  RunningStat a;
  RunningStat b;
  RunningStat pooled;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.add(x);
    pooled.add(x);
  }
  for (int i = 0; i < 80; ++i) {
    const double x = 100.0 - i;
    b.add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_EQ(a.min(), pooled.min());
  EXPECT_EQ(a.max(), pooled.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 9.0);
  EXPECT_EQ(s.quantile(0.5), 5.0);
  EXPECT_NEAR(s.quantile(0.25), 3.0, 1e-12);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_NEAR(s.quantile(0.3), 3.0, 1e-12);
}

TEST(SampleSetTest, EmptyQuantileThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
}

TEST(SampleSetTest, MeanStddev) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_NEAR(s.mean(), 2.5, 1e-12);
  EXPECT_NEAR(s.stddev() * s.stddev(), 5.0 / 3.0, 1e-12);
}

TEST(EmpiricalCdfTest, StepFunction) {
  const EmpiricalCdf cdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_EQ(cdf.at(0.5), 0.0);
  EXPECT_EQ(cdf.at(1.0), 0.25);
  EXPECT_EQ(cdf.at(2.0), 0.75);
  EXPECT_EQ(cdf.at(3.9), 0.75);
  EXPECT_EQ(cdf.at(4.0), 1.0);
  EXPECT_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdfTest, Empty) {
  const EmpiricalCdf cdf({});
  EXPECT_EQ(cdf.at(0.0), 0.0);
}

}  // namespace
}  // namespace acn
