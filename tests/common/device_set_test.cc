#include "common/device_set.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

TEST(DeviceSetTest, ConstructionSortsAndDeduplicates) {
  const DeviceSet s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.to_string(), "{1, 3, 5}");
}

TEST(DeviceSetTest, EmptySetBehaviour) {
  const DeviceSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.contains(0));
  EXPECT_TRUE(empty.is_subset_of(DeviceSet({1, 2})));
  EXPECT_TRUE(empty.is_disjoint_from(DeviceSet({1})));
  EXPECT_TRUE(empty.is_disjoint_from(empty));
}

TEST(DeviceSetTest, Contains) {
  const DeviceSet s({2, 4, 6});
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_TRUE(s.contains(6));
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(7));
}

TEST(DeviceSetTest, SubsetRelations) {
  const DeviceSet small({1, 3});
  const DeviceSet big({1, 2, 3, 4});
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(big.is_subset_of(big));
}

TEST(DeviceSetTest, Disjointness) {
  EXPECT_TRUE(DeviceSet({1, 2}).is_disjoint_from(DeviceSet({3, 4})));
  EXPECT_FALSE(DeviceSet({1, 2}).is_disjoint_from(DeviceSet({2, 3})));
}

TEST(DeviceSetTest, IntersectionSize) {
  EXPECT_EQ(DeviceSet({1, 2, 3}).intersection_size(DeviceSet({2, 3, 4})), 2u);
  EXPECT_EQ(DeviceSet({1, 2}).intersection_size(DeviceSet({3})), 0u);
}

TEST(DeviceSetTest, SetAlgebra) {
  const DeviceSet a({1, 2, 3});
  const DeviceSet b({3, 4});
  EXPECT_EQ(a.set_union(b), DeviceSet({1, 2, 3, 4}));
  EXPECT_EQ(a.set_intersection(b), DeviceSet({3}));
  EXPECT_EQ(a.set_difference(b), DeviceSet({1, 2}));
  EXPECT_EQ(b.set_difference(a), DeviceSet({4}));
}

TEST(DeviceSetTest, WithAndWithout) {
  const DeviceSet s({1, 3});
  EXPECT_EQ(s.with(2), DeviceSet({1, 2, 3}));
  EXPECT_EQ(s.with(1), s);
  EXPECT_EQ(s.without(3), DeviceSet({1}));
  EXPECT_EQ(s.without(9), s);
}

TEST(DeviceSetTest, HashIsOrderInsensitiveAndDiscriminates) {
  EXPECT_EQ(DeviceSet({3, 1, 2}).hash(), DeviceSet({1, 2, 3}).hash());
  EXPECT_NE(DeviceSet({1, 2}).hash(), DeviceSet({1, 3}).hash());
}

TEST(DeviceSetTest, OrderingIsLexicographic) {
  EXPECT_LT(DeviceSet({1, 2}), DeviceSet({1, 3}));
  EXPECT_LT(DeviceSet({1}), DeviceSet({1, 2}));
}

TEST(KeepMaximalTest, RemovesSubsetsAndDuplicates) {
  const std::vector<DeviceSet> family = {
      DeviceSet({1, 2}), DeviceSet({1, 2, 3}), DeviceSet({1, 2}),
      DeviceSet({4}),    DeviceSet({3, 4}),
  };
  const auto maximal = keep_maximal(family);
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0], DeviceSet({1, 2, 3}));
  EXPECT_EQ(maximal[1], DeviceSet({3, 4}));
}

TEST(KeepMaximalTest, KeepsIncomparableSets) {
  const auto maximal = keep_maximal({DeviceSet({1, 2}), DeviceSet({2, 3})});
  EXPECT_EQ(maximal.size(), 2u);
}

TEST(KeepMaximalTest, EmptyFamily) {
  EXPECT_TRUE(keep_maximal({}).empty());
}

}  // namespace
}  // namespace acn
