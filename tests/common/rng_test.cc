#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace acn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformMeanCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = rng.uniform_int(std::uint64_t{7});
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.uniform_int(std::int64_t{-3}, std::int64_t{3});
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto id : sample) EXPECT_LT(id, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleClampsOverdraw) {
  Rng rng(31);
  EXPECT_EQ(rng.sample_without_replacement(5, 9).size(), 5u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // Parent and child should not mirror each other.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace acn
