#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace acn {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_numeric_row({3.5, 4.25}, 2);
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3.50,4.25\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"x"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  EXPECT_EQ(csv.to_string(), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvWriterTest, ShortRowsPadded) {
  CsvWriter csv({"a", "b", "c"});
  csv.add_row({"1"});
  EXPECT_EQ(csv.to_string(), "a,b,c\n1,,\n");
}

TEST(ParseCsvTest, BasicRows) {
  const auto rows = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsvTest, QuotedFields) {
  const auto rows = parse_csv("\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x,y");
  EXPECT_EQ(rows[0][1], "he said \"hi\"");
}

TEST(ParseCsvTest, ToleratesCrlfAndMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\r\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(ParseCsvTest, EmptyFields) {
  const auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(ParseCsvTest, MalformedQuotingThrows) {
  EXPECT_THROW((void)parse_csv("\"unterminated\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_csv("ab\"cd\n"), std::invalid_argument);
}

TEST(CsvRoundTripTest, WriteThenRead) {
  CsvWriter csv({"id", "name"});
  csv.add_row({"1", "alpha,beta"});
  const auto rows = parse_csv(csv.to_string());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "alpha,beta");
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = "/tmp/acn_csv_test.csv";
  CsvWriter csv({"k", "v"});
  csv.add_row({"a", "1"});
  csv.write_file(path);
  const auto rows = read_csv_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "a");
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/definitely/not.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace acn
