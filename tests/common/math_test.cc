#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace acn {
namespace {

TEST(LogBinomialTest, SmallValuesExact) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(log_binomial(4, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial(4, 4)), 1.0, 1e-12);
}

TEST(LogBinomialTest, OutOfRangeIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_binomial(3, 5)));
  EXPECT_LT(log_binomial(3, 5), 0);
}

TEST(LogBinomialTest, SymmetricInK) {
  EXPECT_NEAR(log_binomial(20, 7), log_binomial(20, 13), 1e-9);
}

TEST(LogBinomialTest, LargeValuesFinite) {
  const double v = log_binomial(15000, 7500);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(BinomialPmfTest, MatchesHandComputed) {
  // X ~ Bin(4, 0.5): P{X=2} = 6/16.
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 0.375, 1e-12);
  // X ~ Bin(3, 0.2): P{X=0} = 0.512.
  EXPECT_NEAR(binomial_pmf(3, 0, 0.2), 0.512, 1e-12);
}

TEST(BinomialPmfTest, DegenerateProbabilities) {
  EXPECT_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 1, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmfTest, SumsToOne) {
  double sum = 0.0;
  for (std::uint64_t k = 0; k <= 30; ++k) sum += binomial_pmf(30, k, 0.37);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(BinomialCdfTest, MonotoneAndBounded) {
  double last = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) {
    const double c = binomial_cdf(20, k, 0.3);
    EXPECT_GE(c, last);
    EXPECT_LE(c, 1.0);
    last = c;
  }
  EXPECT_NEAR(binomial_cdf(20, 20, 0.3), 1.0, 1e-12);
}

TEST(BinomialCdfTest, MatchesPmfAccumulation) {
  double acc = 0.0;
  for (std::uint64_t k = 0; k <= 7; ++k) acc += binomial_pmf(12, k, 0.45);
  EXPECT_NEAR(binomial_cdf(12, 7, 0.45), acc, 1e-12);
}

TEST(BinomialCdfTest, LargeNStable) {
  // Bin(10000, 0.001): mean 10; CDF at 10 must be around 0.58 and finite.
  const double c = binomial_cdf(10000, 10, 0.001);
  EXPECT_GT(c, 0.5);
  EXPECT_LT(c, 0.7);
}

TEST(LogAddExpTest, Basic) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
}

TEST(LogAddExpTest, HandlesMinusInfinity) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(log_add_exp(neg_inf, 1.5), 1.5, 1e-12);
  EXPECT_NEAR(log_add_exp(1.5, neg_inf), 1.5, 1e-12);
}

TEST(LogAddExpTest, NoOverflowForLargeInputs) {
  const double v = log_add_exp(800.0, 800.0);
  EXPECT_NEAR(v, 800.0 + std::log(2.0), 1e-9);
}

TEST(ClampTest, Clamps) {
  EXPECT_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(NearlyEqualTest, Tolerances) {
  EXPECT_TRUE(nearly_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(nearly_equal(1.0, 1.0001));
  EXPECT_TRUE(nearly_equal(1.0, 1.01, 0.1));
}

}  // namespace
}  // namespace acn
