// WorkerPool: persistent lanes, inline fallback below the fan-out
// threshold, lane capping, back-to-back sections, exception propagation.
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/worker_pool.hpp"

namespace acn {
namespace {

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each(hits.size(), 1, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(WorkerPoolTest, BackToBackSectionsReuseTheLanes) {
  WorkerPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_each(64, 1, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 64u * 65u / 2u);
  }
}

TEST(WorkerPoolTest, DisjointSlotWritesNeedNoSynchronization) {
  WorkerPool pool(4);
  std::vector<std::size_t> out(512, 0);
  pool.for_each(out.size(), 1, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(WorkerPoolTest, BelowFanoutThresholdRunsInline) {
  WorkerPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> lanes;
  std::mutex mutex;
  pool.for_each(8, /*min_fanout=*/64, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    lanes.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(lanes, std::set<std::thread::id>{caller});
}

TEST(WorkerPoolTest, MaxLanesOneRunsInline) {
  WorkerPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> lanes;
  std::mutex mutex;
  pool.for_each(
      256, 1,
      [&](std::size_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        lanes.insert(std::this_thread::get_id());
      },
      /*max_lanes=*/1);
  EXPECT_EQ(lanes, std::set<std::thread::id>{caller});
}

TEST(WorkerPoolTest, SingleLanePoolSpawnsNothingAndStillWorks) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::size_t sum = 0;
  pool.for_each(100, 1, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(WorkerPoolTest, FirstExceptionPropagatesAndSectionQuiesces) {
  WorkerPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.for_each(128, 1,
                      [&](std::size_t i) {
                        if (i == 37) throw std::runtime_error("lane failure");
                      }),
        std::runtime_error);
    // The pool stays usable after a failed section.
    std::atomic<std::size_t> count{0};
    pool.for_each(32, 1, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32u);
  }
}

TEST(WorkerPoolTest, SharedPoolIsProcessWide) {
  WorkerPool& a = WorkerPool::shared();
  WorkerPool& b = WorkerPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<std::size_t> count{0};
  a.for_each(10, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

}  // namespace
}  // namespace acn
