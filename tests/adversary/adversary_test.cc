// The §VIII future-work attack surface: collusion can flip verdicts, and
// the clone filter claws the fake-crowd attack back.
#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "adversary/defense.hpp"
#include "core/characterizer.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

const Params kModel{.r = 0.05, .tau = 3};

/// Victim (device 0) suffers an isolated crash; devices 1..6 are healthy
/// bystanders scattered far away.
StatePair honest_scene() {
  return test::make_state_1d(
      {
          {0.90, 0.20},  // victim: genuine isolated anomaly
          {0.40, 0.40},
          {0.45, 0.45},
          {0.50, 0.50},
          {0.55, 0.55},
          {0.60, 0.60},
          {0.65, 0.65},
      },
      DeviceSet({0}));
}

TEST(FakeCrowdAttackTest, FlipsIsolatedVictimToMassive) {
  const StatePair honest = honest_scene();
  Characterizer before(honest, kModel);
  ASSERT_EQ(before.characterize(0).cls, AnomalyClass::kIsolated);

  AttackConfig attack;
  attack.strategy = AttackStrategy::kFakeCrowd;
  attack.colluders = {1, 2, 3};  // tau colluders + victim = dense motion
  attack.target = 0;
  const CompromisedState compromised = apply_attack(honest, kModel, attack);

  Characterizer after(compromised.observed, kModel);
  EXPECT_EQ(after.characterize(0).cls, AnomalyClass::kMassive)
      << "the paper's anticipated attack: the victim now believes the whole "
         "neighbourhood crashed and never calls support";
  EXPECT_EQ(compromised.fabricated_abnormal.size(), 3u);
}

TEST(FakeCrowdAttackTest, TooFewColludersFail) {
  const StatePair honest = honest_scene();
  AttackConfig attack;
  attack.strategy = AttackStrategy::kFakeCrowd;
  attack.colluders = {1, 2};  // tau - 1: motion stays sparse
  attack.target = 0;
  const CompromisedState compromised = apply_attack(honest, kModel, attack);
  Characterizer after(compromised.observed, kModel);
  EXPECT_EQ(after.characterize(0).cls, AnomalyClass::kIsolated);
}

TEST(CloneFilterTest, RecoversTheVictim) {
  const StatePair honest = honest_scene();
  AttackConfig attack;
  attack.strategy = AttackStrategy::kFakeCrowd;
  attack.colluders = {1, 2, 3, 4};
  attack.target = 0;
  attack.claim_jitter = 0.05;  // tight collusion, as the attack needs
  const CompromisedState compromised = apply_attack(honest, kModel, attack);

  const CloneFilter filter({.suspicion_factor = 0.2, .min_group = 3});
  const DeviceSet dropped = filter.suspicious(compromised.observed, kModel);
  // The clone group is the victim + colluders; all but one member dropped.
  EXPECT_GE(dropped.size(), 3u);
  EXPECT_TRUE(dropped.is_subset_of(
      compromised.colluders.with(0)));

  const StatePair cleaned = filter.filtered(compromised.observed, kModel);
  // After filtering, whoever survived of the clone group decides isolated.
  Characterizer after(cleaned, kModel);
  for (const DeviceId j : cleaned.abnormal()) {
    EXPECT_EQ(after.characterize(j).cls, AnomalyClass::kIsolated);
  }
}

TEST(CloneFilterTest, HonestTightGroupsBelowMinGroupSurvive) {
  // Two honestly co-moving devices are not a crowd; nothing is dropped.
  const StatePair state = test::make_state_1d(
      {{0.90, 0.20}, {0.901, 0.201}}, DeviceSet({0, 1}));
  const CloneFilter filter({.suspicion_factor = 0.2, .min_group = 3});
  EXPECT_TRUE(filter.suspicious(state, kModel).empty());
}

TEST(CloneFilterTest, HonestMassiveGroupSurvives) {
  // A genuine error group keeps its natural intra-ball spread (~r), well
  // above the suspicion radius: no honest device is dropped.
  const StatePair state = test::make_state_1d(
      {
          {0.10, 0.60}, {0.14, 0.64}, {0.18, 0.68}, {0.12, 0.62}, {0.16, 0.66},
      },
      DeviceSet({0, 1, 2, 3, 4}));
  const CloneFilter filter({.suspicion_factor = 0.2, .min_group = 3});
  EXPECT_TRUE(filter.suspicious(state, kModel).empty());
  Characterizer characterizer(state, kModel);
  EXPECT_EQ(characterizer.characterize(0).cls, AnomalyClass::kMassive);
}

TEST(ScatterCoverAttackTest, HidesAMassiveEvent) {
  // Five devices genuinely crash together; three of them are colluders who
  // scatter their claims: the two honest victims lose their dense motion.
  const StatePair honest = test::make_state_1d(
      {
          {0.10, 0.60}, {0.12, 0.62}, {0.14, 0.64}, {0.16, 0.66}, {0.18, 0.68},
      },
      DeviceSet({0, 1, 2, 3, 4}));
  Characterizer before(honest, kModel);
  ASSERT_EQ(before.characterize(0).cls, AnomalyClass::kMassive);

  AttackConfig attack;
  attack.strategy = AttackStrategy::kScatterCover;
  attack.colluders = {2, 3, 4};
  attack.target = 0;
  const CompromisedState compromised = apply_attack(honest, kModel, attack);
  Characterizer after(compromised.observed, kModel);
  EXPECT_EQ(after.characterize(0).cls, AnomalyClass::kIsolated)
      << "the honest victims now flood the support desk";
}

TEST(MimicNoiseAttackTest, InflatesTheAbnormalSet) {
  const StatePair honest = honest_scene();
  AttackConfig attack;
  attack.strategy = AttackStrategy::kMimicNoise;
  attack.colluders = {4, 5, 6};
  const CompromisedState compromised = apply_attack(honest, kModel, attack);
  EXPECT_EQ(compromised.observed.abnormal().size(),
            honest.abnormal().size() + 3u);
}

TEST(AttackValidationTest, RejectsBadIds) {
  const StatePair honest = honest_scene();
  AttackConfig attack;
  attack.colluders = {99};
  EXPECT_THROW((void)apply_attack(honest, kModel, attack), std::invalid_argument);
  attack.colluders = {1};
  attack.target = 99;
  EXPECT_THROW((void)apply_attack(honest, kModel, attack), std::invalid_argument);
}

TEST(CloneFilterTest, Validation) {
  EXPECT_THROW(CloneFilter({.suspicion_factor = 0.0}), std::invalid_argument);
  EXPECT_THROW(CloneFilter({.suspicion_factor = 1.0}), std::invalid_argument);
  EXPECT_THROW(CloneFilter({.suspicion_factor = 0.2, .min_group = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace acn
