// Shared builders for tests: compact construction of StatePairs from
// coordinate lists, and a brute-force motion enumerator used as ground truth
// against the oracle's canonical-window enumeration.
#pragma once

#include <utility>
#include <vector>

#include "common/device_set.hpp"
#include "core/motion.hpp"
#include "core/state.hpp"

namespace acn::test {

/// One service per device: device j moves from prev_curr[j].first to
/// prev_curr[j].second. All devices abnormal unless a set is given.
inline StatePair make_state_1d(const std::vector<std::pair<double, double>>& prev_curr) {
  std::vector<Point> prev;
  std::vector<Point> curr;
  std::vector<DeviceId> all;
  for (std::size_t j = 0; j < prev_curr.size(); ++j) {
    prev.push_back(Point{prev_curr[j].first});
    curr.push_back(Point{prev_curr[j].second});
    all.push_back(static_cast<DeviceId>(j));
  }
  return StatePair(Snapshot(std::move(prev)), Snapshot(std::move(curr)),
                   DeviceSet(std::move(all)));
}

inline StatePair make_state_1d(const std::vector<std::pair<double, double>>& prev_curr,
                               DeviceSet abnormal) {
  std::vector<Point> prev;
  std::vector<Point> curr;
  for (const auto& [p, c] : prev_curr) {
    prev.push_back(Point{p});
    curr.push_back(Point{c});
  }
  return StatePair(Snapshot(std::move(prev)), Snapshot(std::move(curr)),
                   std::move(abnormal));
}

/// Devices that do not move: prev == curr == positions[j].
inline StatePair make_static_1d(const std::vector<double>& positions) {
  std::vector<std::pair<double, double>> pc;
  pc.reserve(positions.size());
  for (const double x : positions) pc.emplace_back(x, x);
  return make_state_1d(pc);
}

/// d-dimensional variant: each device given (prev, curr) coordinate vectors.
inline StatePair make_state(const std::vector<std::vector<double>>& prev,
                            const std::vector<std::vector<double>>& curr) {
  std::vector<Point> p;
  std::vector<Point> c;
  std::vector<DeviceId> all;
  for (std::size_t j = 0; j < prev.size(); ++j) {
    p.emplace_back(std::span<const double>(prev[j]));
    c.emplace_back(std::span<const double>(curr[j]));
    all.push_back(static_cast<DeviceId>(j));
  }
  return StatePair(Snapshot(std::move(p)), Snapshot(std::move(c)),
                   DeviceSet(std::move(all)));
}

/// Brute force: all maximal r-consistent motions containing `anchor` within
/// `pool`, by full subset enumeration. Pool must be small (< ~20).
inline std::vector<DeviceSet> brute_force_maximal_motions(
    const StatePair& state, double r, const std::vector<DeviceId>& pool,
    DeviceId anchor) {
  std::vector<DeviceSet> motions;
  const std::size_t n = pool.size();
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    std::vector<DeviceId> members;
    bool has_anchor = false;
    for (std::size_t b = 0; b < n; ++b) {
      if ((mask & (1ULL << b)) != 0) {
        members.push_back(pool[b]);
        has_anchor = has_anchor || pool[b] == anchor;
      }
    }
    if (!has_anchor) continue;
    DeviceSet candidate(std::move(members));
    if (has_consistent_motion(state, candidate, r)) motions.push_back(candidate);
  }
  return keep_maximal(std::move(motions));
}

}  // namespace acn::test
