#include "proto/network.hpp"

#include <gtest/gtest.h>

namespace acn {
namespace {

Message make_message(DeviceId from, DeviceId to) {
  Message m;
  m.type = MessageType::kTrajectoryQuery;
  m.from = from;
  m.to = to;
  return m;
}

TEST(SimulatedNetworkTest, DeliversAfterLatency) {
  SimulatedNetwork net(4, {.min_latency = 2, .max_latency = 2}, 1);
  net.send(make_message(0, 1));
  EXPECT_TRUE(net.deliver(1).empty());  // t = 0
  net.tick();
  EXPECT_TRUE(net.deliver(1).empty());  // t = 1
  net.tick();
  const auto delivered = net.deliver(1);  // t = 2
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].from, 0u);
  EXPECT_TRUE(net.idle());
}

TEST(SimulatedNetworkTest, LatencyWithinBounds) {
  SimulatedNetwork net(2, {.min_latency = 1, .max_latency = 5}, 7);
  for (int i = 0; i < 50; ++i) net.send(make_message(0, 1));
  std::size_t received = 0;
  for (int t = 0; t <= 5; ++t) {
    net.tick();
    received += net.deliver(1).size();
  }
  EXPECT_EQ(received, 50u);  // everything arrives within max latency
}

TEST(SimulatedNetworkTest, TrafficAccounting) {
  SimulatedNetwork net(3, {.min_latency = 1, .max_latency = 1}, 2);
  net.send(make_message(0, 1));
  net.send(make_message(0, 2));
  net.tick();
  (void)net.deliver(1);
  (void)net.deliver(2);
  EXPECT_EQ(net.traffic(0).messages_sent, 2u);
  EXPECT_EQ(net.traffic(1).messages_received, 1u);
  EXPECT_GT(net.traffic(0).bytes_sent, 0u);
  EXPECT_EQ(net.total_traffic().messages_sent, 2u);
  EXPECT_EQ(net.total_traffic().messages_received, 2u);
}

TEST(SimulatedNetworkTest, LossDropsMessages) {
  SimulatedNetwork net(2, {.min_latency = 1, .max_latency = 1, .loss_rate = 1.0}, 3);
  net.send(make_message(0, 1));
  net.tick();
  EXPECT_TRUE(net.deliver(1).empty());
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_TRUE(net.idle());  // dropped messages are not in flight
}

TEST(SimulatedNetworkTest, Validation) {
  EXPECT_THROW(SimulatedNetwork(0, {}, 1), std::invalid_argument);
  EXPECT_THROW(SimulatedNetwork(2, {.min_latency = 5, .max_latency = 1}, 1),
               std::invalid_argument);
  EXPECT_THROW(SimulatedNetwork(2, {.loss_rate = 1.5}, 1), std::invalid_argument);
  SimulatedNetwork net(2, {}, 1);
  EXPECT_THROW(net.send(make_message(0, 9)), std::out_of_range);
}

TEST(MessageTest, WireSizeReflectsPayload) {
  Message query = make_message(0, 1);
  Message reply;
  reply.type = MessageType::kTrajectoryReply;
  reply.prev_position = Point{0.1, 0.2};
  reply.curr_position = Point{0.3, 0.4};
  EXPECT_GT(reply.wire_bytes(), query.wire_bytes());

  Message neighbours;
  neighbours.type = MessageType::kNeighbourReply;
  neighbours.neighbour_ids = {1, 2, 3, 4};
  EXPECT_EQ(neighbours.wire_bytes(), 16u + 4u * 4u);
}

}  // namespace
}  // namespace acn
