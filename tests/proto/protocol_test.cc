// The distributed protocol must reach the same verdicts as the centralized
// characterizer — the 4r-locality theorem, executed over a real message
// exchange with latency (and, separately, with loss).
#include "proto/protocol.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "support/test_util.hpp"

namespace acn {
namespace {

ProtocolDriver::Config driver_config(Params model) {
  ProtocolDriver::Config config;
  config.model = model;
  config.network = {.min_latency = 1, .max_latency = 3};
  return config;
}

TEST(ProtocolTest, LonelyDeviceDecidesWithoutNeighbours) {
  const StatePair state = test::make_state_1d({{0.1, 0.9}});
  ProtocolDriver driver(state, driver_config({.r = 0.05, .tau = 1}), 1);
  const auto decisions = driver.run();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].cls, AnomalyClass::kIsolated);
  EXPECT_EQ(decisions[0].view_size, 1u);
}

TEST(ProtocolTest, Figure3VerdictsMatchCentralized) {
  const StatePair state = test::make_state_1d({
      {0.10, 0.50}, {0.14, 0.51}, {0.16, 0.52}, {0.18, 0.53}, {0.22, 0.54},
  });
  const Params model{.r = 0.05, .tau = 3};
  ProtocolDriver driver(state, driver_config(model), 2);
  const auto decisions = driver.run();
  ASSERT_EQ(decisions.size(), 5u);
  Characterizer central(state, model);
  for (const auto& decision : decisions) {
    EXPECT_EQ(decision.cls, central.characterize(decision.device).cls)
        << "device " << decision.device;
  }
  EXPECT_EQ(driver.timed_out(), 0u);
}

class ProtocolEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolEquivalenceSweep, DistributedEqualsCentralizedOnWorkloads) {
  ScenarioParams params;
  params.n = 300;
  params.d = 2;
  params.model = {.r = 0.04, .tau = 3};
  params.errors_per_step = 8;
  params.isolated_probability = 0.4;
  params.concomitance = 0.4;  // provoke Theorem-7 territory too
  params.massive_anchor_retries = 8;
  params.seed = GetParam();
  ScenarioGenerator generator(params);
  const ScenarioStep step = generator.advance();
  if (step.truth.abnormal.empty()) GTEST_SKIP();

  ProtocolDriver driver(step.state, driver_config(params.model), GetParam());
  const auto decisions = driver.run();
  ASSERT_EQ(decisions.size(), step.truth.abnormal.size());

  Characterizer central(step.state, params.model);
  for (const auto& decision : decisions) {
    const Decision expected = central.characterize(decision.device);
    EXPECT_EQ(decision.cls, expected.cls) << "device " << decision.device
                                          << " seed " << GetParam();
    EXPECT_EQ(decision.rule, expected.rule) << "device " << decision.device;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolEquivalenceSweep,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{13}));

TEST(ProtocolTest, ViewIsBoundedBy4rShell) {
  // Every queried trajectory sits within 4r of the decider.
  const StatePair state = test::make_static_1d(
      {0.10, 0.12, 0.14, 0.16, 0.30, 0.50, 0.52, 0.54, 0.56, 0.90});
  const Params model{.r = 0.05, .tau = 2};
  ProtocolDriver driver(state, driver_config(model), 5);
  const auto decisions = driver.run();
  for (const auto& decision : decisions) {
    // view_size - 1 trajectories, all within 4r (directory guarantees it;
    // re-check geometrically through the state).
    std::size_t within = 0;
    for (const DeviceId other : state.abnormal()) {
      if (state.joint_distance(decision.device, other) <= 2.0 * model.window()) {
        ++within;
      }
    }
    EXPECT_LE(decision.view_size, within + 1);
  }
}

TEST(ProtocolTest, TrafficScalesWithNeighbourhoodNotFleet) {
  // Doubling the fleet with *far-away* devices must not change a decider's
  // traffic: the protocol is local by construction.
  const auto run_traffic = [](const std::vector<double>& positions) {
    StatePair state = test::make_static_1d(positions);
    ProtocolDriver driver(state, driver_config({.r = 0.05, .tau = 2}), 3);
    const auto decisions = driver.run();
    for (const auto& d : decisions) {
      if (d.device == 0) return d.trajectories;
    }
    return std::uint64_t{0};
  };
  const auto small = run_traffic({0.10, 0.12, 0.14});
  const auto large =
      run_traffic({0.10, 0.12, 0.14, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90});
  EXPECT_EQ(small, large);
}

TEST(ProtocolTest, LossyNetworkTimesOutHonestly) {
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14, 0.16});
  auto config = driver_config({.r = 0.05, .tau = 2});
  config.network.loss_rate = 1.0;  // nothing ever arrives
  config.max_ticks = 50;
  ProtocolDriver driver(state, config, 4);
  const auto decisions = driver.run();
  EXPECT_EQ(driver.timed_out(), decisions.size());
  for (const auto& decision : decisions) {
    EXPECT_EQ(decision.cls, AnomalyClass::kUnresolved);  // never over-claims
  }
}

TEST(ProtocolTest, DecisionLatencyIsBounded) {
  const StatePair state = test::make_static_1d({0.10, 0.12, 0.14, 0.16});
  auto config = driver_config({.r = 0.05, .tau = 2});
  config.network = {.min_latency = 1, .max_latency = 4};
  ProtocolDriver driver(state, config, 6);
  const auto decisions = driver.run();
  for (const auto& decision : decisions) {
    // Two query/reply rounds at max 4 ticks per hop = 16 ticks worst case.
    EXPECT_LE(decision.decided_at, 16u);
  }
}

}  // namespace
}  // namespace acn
