// Differential conformance over the hostile suite: every hostile family's
// observed stream is replayed through three independent characterization
// paths — the from-scratch Characterizer (private plane per interval), an
// externally owned snapshot MotionPlane, and the incremental FrameEngine —
// each in a serial and a parallel flavour, and every decision of every
// interval must be byte-identical across all of them. Failures print a
// REPRO line naming the family, the suite seed, the interval, and the path,
// so any divergence reproduces with one environment variable.
//
// ACN_CONFORMANCE_SEED_BUDGET multiplies the number of suite seeds swept
// (nightly CI sets 10); ACN_CONFORMANCE_BASE_SEED pins the first seed.
#include <cstdlib>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "core/motion_plane.hpp"
#include "sim/hostile.hpp"

namespace acn {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

struct Stream {
  std::vector<Snapshot> snapshots;  ///< [0] primes; [k] closes interval k
  std::vector<DeviceSet> abnormal;
};

Stream materialize(const HostileSpec& spec, int intervals) {
  HostileScenario scenario(spec.params);
  Stream stream;
  stream.snapshots.push_back(scenario.initial());
  stream.abnormal.emplace_back();
  for (int k = 0; k < intervals; ++k) {
    HostileStep step = scenario.advance();
    stream.snapshots.push_back(std::move(step.observed));
    stream.abnormal.push_back(std::move(step.abnormal));
  }
  return stream;
}

void expect_identical(const std::vector<Decision>& got,
                      const std::vector<Decision>& want, const char* path,
                      const HostileSpec& spec, std::uint64_t seed,
                      std::size_t interval, const DeviceSet& abnormal) {
  ASSERT_EQ(got.size(), want.size())
      << "REPRO: family=" << spec.name << " suite-seed=" << seed
      << " interval=" << interval << " path=" << path;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Decision& a = got[i];
    const Decision& b = want[i];
    EXPECT_TRUE(a.cls == b.cls && a.rule == b.rule && a.exact == b.exact &&
                a.maximal_motion_count == b.maximal_motion_count &&
                a.dense_motion_count == b.dense_motion_count &&
                a.collections_tested == b.collections_tested)
        << "REPRO: family=" << spec.name << " suite-seed=" << seed
        << " interval=" << interval << " path=" << path
        << " device=" << abnormal[i] << " (got cls=" << static_cast<int>(a.cls)
        << " rule=" << to_string(a.rule) << " exact=" << a.exact
        << ", want cls=" << static_cast<int>(b.cls)
        << " rule=" << to_string(b.rule) << " exact=" << b.exact << ")";
  }
}

void run_family(const HostileSpec& spec, std::uint64_t seed, int intervals) {
  const Stream stream = materialize(spec, intervals);
  const Params model = spec.params.base.model;
  // parallel_grain = 1 pins the pooled code paths even on small intervals.
  const CharacterizeOptions options{.parallel_grain = 1};

  FrameEngine engine_serial(FrameEngine::Config{.model = model,
                                                .characterize = options,
                                                .threads = 1,
                                                .component_fanout = 1});
  // 3 shards over a 4-lane pool: stripes and lanes deliberately misaligned,
  // so halo routing and cross-shard reads run on every hostile family.
  FrameEngine engine_parallel(FrameEngine::Config{.model = model,
                                                  .characterize = options,
                                                  .threads = 4,
                                                  .component_fanout = 1,
                                                  .shards = 3});
  (void)engine_serial.observe(stream.snapshots[0], DeviceSet{});
  (void)engine_parallel.observe(stream.snapshots[0], DeviceSet{});

  for (std::size_t k = 1; k < stream.snapshots.size(); ++k) {
    const StatePair state(stream.snapshots[k - 1], stream.snapshots[k],
                          stream.abnormal[k]);

    // Path 1 (reference): from-scratch characterizer, serial + pooled.
    Characterizer reference(state, model, options);
    const std::vector<Decision> expected = reference.decide_all();
    {
      Characterizer scratch(state, model, options);
      expect_identical(scratch.decide_all_parallel(4), expected,
                       "scratch-parallel", spec, seed, k, stream.abnormal[k]);
    }

    // Path 2: externally owned snapshot plane, serial + pooled readers.
    {
      const MotionPlane plane(state, model);
      Characterizer serial(plane, options);
      expect_identical(serial.decide_all(), expected, "plane-serial", spec,
                       seed, k, stream.abnormal[k]);
      Characterizer parallel(plane, options);
      expect_identical(parallel.decide_all_parallel(4), expected,
                       "plane-parallel", spec, seed, k, stream.abnormal[k]);
    }

    // Path 3: the incremental streaming engine, serial + pooled.
    {
      const std::optional<FrameEngine::Result> result =
          engine_serial.observe(stream.snapshots[k], stream.abnormal[k]);
      ASSERT_TRUE(result.has_value())
          << "REPRO: family=" << spec.name << " suite-seed=" << seed
          << " interval=" << k << " path=engine-serial";
      expect_identical(result->decisions, expected, "engine-serial", spec,
                       seed, k, stream.abnormal[k]);
    }
    {
      const std::optional<FrameEngine::Result> result =
          engine_parallel.observe(stream.snapshots[k], stream.abnormal[k]);
      ASSERT_TRUE(result.has_value())
          << "REPRO: family=" << spec.name << " suite-seed=" << seed
          << " interval=" << k << " path=engine-parallel";
      expect_identical(result->decisions, expected, "engine-parallel", spec,
                       seed, k, stream.abnormal[k]);
    }
  }
}

TEST(Conformance, HostileSuiteAllPathsByteIdentical) {
  const std::size_t budget = env_size("ACN_CONFORMANCE_SEED_BUDGET", 1);
  const std::uint64_t base_seed = env_size("ACN_CONFORMANCE_BASE_SEED", 1000);
  for (std::size_t s = 0; s < budget; ++s) {
    const std::uint64_t seed = base_seed + 7919 * s;
    for (const HostileSpec& spec : standard_hostile_suite(300, seed)) {
      run_family(spec, seed, 6);
      if (HasFatalFailure()) return;
    }
  }
}

// The suite must actually exercise the monitor: every family (except the
// pathologies that only suppress) produces abnormal intervals, and the
// adversarial families produce fabricated flags.
TEST(Conformance, HostileSuiteProducesWork) {
  const std::vector<HostileSpec> suite = standard_hostile_suite(300, 42);
  ASSERT_GE(suite.size(), 6u);
  for (const HostileSpec& spec : suite) {
    HostileScenario scenario(spec.params);
    std::size_t abnormal_total = 0;
    std::size_t truth_total = 0;
    for (int k = 0; k < 6; ++k) {
      const HostileStep step = scenario.advance();
      abnormal_total += step.abnormal.size();
      truth_total += step.truth.abnormal.size();
    }
    EXPECT_GT(truth_total, 0u) << "family " << spec.name;
    EXPECT_GT(abnormal_total, 0u) << "family " << spec.name;
  }
}

}  // namespace
}  // namespace acn
