// Figure 6(a): cumulative distribution P{N_r(j) <= m} of the 2r-vicinity
// population, as a function of m for r in {0.1, 0.05, 0.033, 0.025, 0.02}
// and n = 1000 devices (d = 2 services).
//
// Prints the analytic curve (binomial model of §VII-A) at the same sampling
// points as the paper's plot, next to a Monte-Carlo estimate to show the
// model matches simulation. The paper reads off this figure that r = 0.03
// keeps the vicinity logarithmic in n.
#include <cstdio>
#include <vector>

#include "analysis/dimensioning.hpp"
#include "common/table.hpp"

int main() {
  const std::size_t n = 1000;
  const std::size_t d = 2;
  const std::vector<double> radii = {0.1, 0.05, 0.033, 0.025, 0.02};
  const std::vector<std::uint64_t> ms = {0, 5, 10, 15, 20, 30, 40, 50, 75, 100, 150, 200};

  std::printf("# Figure 6(a): P{N_r(j) <= m} vs m, n=%zu, d=%zu (uniform placement)\n", n, d);
  std::printf("# closed form = single-q binomial (the paper's formula);\n");
  std::printf("# exact = position-integrated mixture; mc = 2000 trials, seed 42\n\n");

  acn::Rng rng(42);
  for (const double r : radii) {
    acn::Table table({"m", "closed form", "exact (integrated)", "monte carlo"});
    for (const std::uint64_t m : ms) {
      const double closed_form =
          acn::vicinity_cdf(n, r, d, m, acn::VicinityModel::kUniformAverage);
      const double exact = acn::vicinity_cdf_exact(n, r, d, m);
      const double mc = acn::vicinity_cdf_monte_carlo(n, r, d, m, 2000, rng);
      table.add_row({acn::fmt(static_cast<double>(m), 0), acn::fmt(closed_form, 4),
                     acn::fmt(exact, 4), acn::fmt(mc, 4)});
    }
    std::printf("r = %.3f\n", r);
    table.print();
    std::printf("\n");
  }
  return 0;
}
