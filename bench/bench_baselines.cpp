// Extension bench (motivated by §II, Related Work): accuracy of the paper's
// local characterization against the two families it criticizes —
//   * FixMe-style tessellation [1] at several bucket sizes, reproducing the
//     bucket-size dilemma the paper describes (big buckets inflate massive
//     verdicts, small buckets inflate isolated/false alarms);
//   * a centralized k-means monitor in the style of [15], plus its
//     communication bill.
//
// Ground truth comes from the generator (R_k). Devices in U_k are excluded
// from the accuracy tally of our method (they are *certified* undecidable;
// the baselines happily guess on them, which is the point).
#include <cstdio>
#include <vector>

#include "baseline/central_kmeans.hpp"
#include "baseline/tessellation.hpp"
#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "sim/scenario.hpp"

namespace {

struct Accuracy {
  std::uint64_t correct = 0;
  std::uint64_t wrong = 0;
  std::uint64_t undecided = 0;

  [[nodiscard]] double rate() const {
    const auto total = correct + wrong;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(correct) / total;
  }
};

void tally(const acn::CharacterizationSets& verdicts, const acn::StepTruth& truth,
           Accuracy& acc) {
  for (const acn::DeviceId j : truth.abnormal) {
    if (verdicts.unresolved.contains(j)) {
      ++acc.undecided;
    } else if (verdicts.massive.contains(j)) {
      truth.truly_massive.contains(j) ? ++acc.correct : ++acc.wrong;
    } else {
      truth.truly_isolated.contains(j) ? ++acc.correct : ++acc.wrong;
    }
  }
}

}  // namespace

int main() {
  acn::ScenarioParams params;
  params.n = 1000;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 20;
  params.isolated_probability = 0.5;
  params.enforce_r3 = true;
  params.seed = 424242;
  const std::uint64_t steps = 30;

  std::printf("# Baseline comparison; n=%zu A=%u G=%.1f steps=%llu seed=%llu\n\n",
              params.n, params.errors_per_step, params.isolated_probability,
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(params.seed));

  const std::vector<double> buckets = {0.015, 0.03, 0.06, 0.12, 0.24};

  Accuracy ours;
  std::vector<Accuracy> tess(buckets.size());
  Accuracy kmeans;
  std::uint64_t kmeans_comm = 0;

  acn::ScenarioGenerator generator(params);
  for (std::uint64_t k = 0; k < steps; ++k) {
    const acn::ScenarioStep step = generator.advance();

    acn::Characterizer characterizer(step.state, params.model);
    tally(characterizer.characterize_all(), step.truth, ours);

    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const acn::TessellationBaseline baseline(buckets[b], params.model.tau);
      tally(baseline.classify(step.state), step.truth, tess[b]);
    }

    const acn::CentralKmeansBaseline baseline(
        {.tau = params.model.tau, .cluster_divisor = 6, .seed = 11 + k});
    tally(baseline.classify(step.state), step.truth, kmeans);
    kmeans_comm += baseline.communication_cost(step.state);
  }

  acn::Table table({"method", "accuracy (%)", "wrong", "undecided (certified)"});
  table.add_row({"local NSC (this paper)", acn::fmt(ours.rate(), 2),
                 acn::fmt(static_cast<double>(ours.wrong), 0),
                 acn::fmt(static_cast<double>(ours.undecided), 0)});
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    table.add_row({"tessellation bucket=" + acn::fmt(buckets[b], 3),
                   acn::fmt(tess[b].rate(), 2),
                   acn::fmt(static_cast<double>(tess[b].wrong), 0), "0"});
  }
  table.add_row({"central k-means [15]", acn::fmt(kmeans.rate(), 2),
                 acn::fmt(static_cast<double>(kmeans.wrong), 0), "0"});
  table.print();

  std::printf("\n# k-means ships %llu doubles to the management node (%llu per step);\n",
              static_cast<unsigned long long>(kmeans_comm),
              static_cast<unsigned long long>(kmeans_comm / steps));
  std::printf("# the local algorithm exchanges trajectories only within 4r.\n");
  std::printf(
      "# Shape checks: our accuracy ~100%% on decided devices; tessellation\n"
      "# degrades away from bucket ~ 2r = %.2f in both directions.\n",
      params.model.window());
  return 0;
}
