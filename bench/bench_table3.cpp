// Table III: average computational cost incurred by each decision class
// (same workload as Table II):
//   I_k   — number of maximal motions the device belongs to        (paper 1.85)
//   M_k   — number of maximal dense motions (Theorem 6 devices)    (paper 1.17)
//   U_k   — collections of dense motions tested until the witness  (paper 31,107.9)
//   M_k 7 — collections tested by the exhaustive Theorem-7 search  (paper 2,450,150)
//
// Absolute counts depend on the authors' exact search order; the shape to
// reproduce is the hierarchy: O(1) motions for Theorems 5/6, then a jump of
// several orders of magnitude from Corollary-8 witnesses to the exhaustive
// Theorem-7 sweep.
#include <cstdio>

#include "common/table.hpp"
#include "sim_harness.hpp"

int main() {
  acn::ScenarioParams params;
  params.n = 1000;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 20;
  params.isolated_probability = 0.05;
  params.enforce_r3 = true;
  params.seed = 20140622;  // same workload as Table II
  params.apply_calibrated_profile();

  const std::uint64_t steps = 60;
  acn::bench::print_seed_banner("Table III", params, steps);

  const acn::bench::HarnessResult result = acn::bench::run_scenario(params, steps);
  const auto& m = result.metrics;

  std::printf("\n");
  acn::Table table({"class", "cost metric", "this repro (avg)", "paper (avg)"});
  table.add_row({"I_k (Thm 5)", "maximal motions |M(j)|",
                 acn::fmt(m.motions_isolated.mean(), 2), "1.85"});
  table.add_row({"M_k (Thm 6)", "maximal dense motions |W(j)|",
                 acn::fmt(m.dense_motions_massive6.mean(), 2), "1.17"});
  table.add_row({"U_k (Cor 8)", "collections tested (early exit)",
                 acn::fmt(m.collections_unresolved.mean(), 1), "31107.9"});
  table.add_row({"M_k (Thm 7)", "collections tested (exhaustive)",
                 acn::fmt(m.collections_massive7.mean(), 1), "2450150"});
  table.print();

  std::printf(
      "\n# Notes: devices decided by Theorems 5/6 touch only their own maximal\n"
      "# motions; the full NSC pays an exponential search. Sample counts:\n"
      "#   I_k decisions: %zu, Thm6: %zu, Cor8: %zu, Thm7: %zu\n",
      m.motions_isolated.count(), m.dense_motions_massive6.count(),
      m.collections_unresolved.count(), m.collections_massive7.count());
  return 0;
}
