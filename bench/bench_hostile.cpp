// Hostile-suite accuracy bench: runs every standard hostile family (churn,
// report loss/staleness, baseline drift, topology-correlated outages and
// flash crowds, trajectory-shaping adversaries) and records, per scenario,
// detection precision/recall of the observed abnormal stream against the
// injected ground truth, per-class verdict precision/recall, the
// BudgetExhausted rate, and the characterization cost in ms/interval.
//
// Usage: bench_hostile [--smoke] [--json]
//   --smoke  6 intervals per family instead of 40 (CI-friendly)
//   --json   emit ONLY the machine-readable JSON payload
//
// tools/record_bench.sh wraps stdout into BENCH_hostile.json; the payload
// below is embedded so the artifact is parseable either way.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "sim/hostile.hpp"

namespace {

struct FamilyResult {
  std::string name;
  std::string violates;
  std::uint64_t flagged = 0;          ///< devices in the observed A_k
  std::uint64_t flagged_true = 0;     ///< ... that are truly anomalous
  std::uint64_t truth_abnormal = 0;   ///< injected anomalies (post-suppression
                                      ///< ground truth still counts them)
  std::uint64_t isolated_verdicts = 0;
  std::uint64_t isolated_correct = 0;
  std::uint64_t truly_isolated_flagged = 0;
  std::uint64_t isolated_recalled = 0;
  std::uint64_t massive_verdicts = 0;
  std::uint64_t massive_correct = 0;
  std::uint64_t truly_massive_flagged = 0;
  std::uint64_t massive_recalled = 0;
  std::uint64_t unresolved_verdicts = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t decisions = 0;
  double total_ms = 0.0;
  std::uint64_t intervals = 0;
};

double ratio(std::uint64_t hits, std::uint64_t total) {
  return total == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(total);
}

FamilyResult run_family(const acn::HostileSpec& spec, int intervals) {
  FamilyResult result;
  result.name = spec.name;
  result.violates = spec.violates;

  acn::HostileScenario scenario(spec.params);
  const acn::Params model = spec.params.base.model;
  std::vector<acn::Point> previous = scenario.initial().positions();

  for (int k = 0; k < intervals; ++k) {
    const acn::HostileStep step = scenario.advance();

    // Detection layer: what the monitor was told vs what actually happened.
    // Fabricated flags cost precision; suppressed reports cost recall.
    result.truth_abnormal += step.truth.abnormal.size();
    result.flagged += step.abnormal.size();
    for (const acn::DeviceId j : step.abnormal) {
      if (step.truth.abnormal.contains(j)) ++result.flagged_true;
    }

    // Characterization layer, timed: from-scratch plane + all verdicts.
    const auto start = std::chrono::steady_clock::now();
    const acn::StatePair state{acn::Snapshot(previous),
                               acn::Snapshot(step.observed.positions()),
                               step.abnormal};
    acn::Characterizer characterizer(state, model);
    const std::vector<acn::Decision> decisions = characterizer.decide_all();
    result.total_ms += std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    ++result.intervals;

    for (std::size_t i = 0; i < decisions.size(); ++i) {
      const acn::DeviceId j = step.abnormal[i];
      const acn::Decision& decision = decisions[i];
      const bool truly_isolated = step.truth.truly_isolated.contains(j);
      const bool truly_massive = step.truth.truly_massive.contains(j);
      ++result.decisions;
      if (decision.rule == acn::DecisionRule::kBudgetExhausted) {
        ++result.budget_exhausted;
      }
      switch (decision.cls) {
        case acn::AnomalyClass::kIsolated:
          ++result.isolated_verdicts;
          if (truly_isolated) ++result.isolated_correct;
          break;
        case acn::AnomalyClass::kMassive:
          ++result.massive_verdicts;
          if (truly_massive) ++result.massive_correct;
          break;
        case acn::AnomalyClass::kUnresolved:
          ++result.unresolved_verdicts;
          break;
      }
      if (truly_isolated) {
        ++result.truly_isolated_flagged;
        if (decision.cls == acn::AnomalyClass::kIsolated) {
          ++result.isolated_recalled;
        }
      }
      if (truly_massive) {
        ++result.truly_massive_flagged;
        if (decision.cls == acn::AnomalyClass::kMassive) {
          ++result.massive_recalled;
        }
      }
    }
    previous = step.observed.positions();
  }
  return result;
}

void print_json(const std::vector<FamilyResult>& results, std::size_t n,
                int intervals, std::uint64_t seed) {
  std::printf("{\"bench\":\"hostile\",\"n\":%zu,\"intervals\":%d,\"seed\":%llu,",
              n, intervals, static_cast<unsigned long long>(seed));
  std::printf("\"scenarios\":[");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FamilyResult& r = results[i];
    std::printf(
        "%s{\"name\":\"%s\",\"violates\":\"%s\","
        "\"detection_precision\":%.4f,\"detection_recall\":%.4f,"
        "\"isolated_precision\":%.4f,\"isolated_recall\":%.4f,"
        "\"massive_precision\":%.4f,\"massive_recall\":%.4f,"
        "\"unresolved_rate\":%.4f,\"budget_exhausted_rate\":%.4f,"
        "\"decisions\":%llu,\"ms_per_step\":%.3f}",
        i == 0 ? "" : ",", r.name.c_str(), r.violates.c_str(),
        ratio(r.flagged_true, r.flagged),
        ratio(r.flagged_true, r.truth_abnormal),
        ratio(r.isolated_correct, r.isolated_verdicts),
        ratio(r.isolated_recalled, r.truly_isolated_flagged),
        ratio(r.massive_correct, r.massive_verdicts),
        ratio(r.massive_recalled, r.truly_massive_flagged),
        ratio(r.unresolved_verdicts, r.decisions),
        ratio(r.budget_exhausted, r.decisions),
        static_cast<unsigned long long>(r.decisions),
        r.intervals == 0 ? 0.0 : r.total_ms / static_cast<double>(r.intervals));
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0) json_only = true;
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t n = 400;
  const std::uint64_t seed = 2014;
  const int intervals = smoke ? 6 : 40;

  std::vector<FamilyResult> results;
  for (const acn::HostileSpec& spec : acn::standard_hostile_suite(n, seed)) {
    results.push_back(run_family(spec, intervals));
  }

  if (!json_only) {
    std::printf(
        "# Hostile-suite accuracy (n=%zu, %d intervals/family, seed=%llu)\n"
        "# det P/R: observed abnormal stream vs injected truth;\n"
        "# iso/mas P/R: verdict class vs injected truth over flagged devices.\n\n",
        n, intervals, static_cast<unsigned long long>(seed));
    acn::Table table({"scenario", "det P", "det R", "iso P", "iso R", "mas P",
                      "mas R", "unres %", "budget %", "ms/step"});
    for (const FamilyResult& r : results) {
      table.add_row(
          {r.name, acn::fmt(ratio(r.flagged_true, r.flagged), 3),
           acn::fmt(ratio(r.flagged_true, r.truth_abnormal), 3),
           acn::fmt(ratio(r.isolated_correct, r.isolated_verdicts), 3),
           acn::fmt(ratio(r.isolated_recalled, r.truly_isolated_flagged), 3),
           acn::fmt(ratio(r.massive_correct, r.massive_verdicts), 3),
           acn::fmt(ratio(r.massive_recalled, r.truly_massive_flagged), 3),
           acn::fmt(100.0 * ratio(r.unresolved_verdicts, r.decisions), 1),
           acn::fmt(100.0 * ratio(r.budget_exhausted, r.decisions), 1),
           acn::fmt(r.intervals == 0
                        ? 0.0
                        : r.total_ms / static_cast<double>(r.intervals),
                    3)});
    }
    table.print();
    std::printf(
        "\n# Shape checks: the clean control keeps every P/R at ~1.0; report\n"
        "# loss trades detection recall, never precision; shadow-crowd tanks\n"
        "# isolated recall (the Theorem-5 flip); regional outages lose massive\n"
        "# recall because converging is not an r-consistent motion (R2).\n\n");
  }
  print_json(results, n, intervals, seed);
  return 0;
}
