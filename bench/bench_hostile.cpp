// Hostile-suite accuracy bench: runs every standard hostile family (churn,
// report loss/staleness, baseline drift, topology-correlated outages and
// flash crowds, trajectory-shaping adversaries) and records, per scenario,
// detection precision/recall of the observed abnormal stream against the
// injected ground truth, per-class verdict precision/recall, the
// BudgetExhausted rate, and the characterization cost in ms/interval.
//
// Usage: bench_hostile [--smoke] [--json] [--telemetry <path>]
//   --smoke            6 intervals per family instead of 40 (CI-friendly)
//   --json             emit ONLY the machine-readable JSON payload
//   --telemetry <path> additionally replay every family through a
//                      telemetry-enabled monitor and write the per-family
//                      acn.telemetry.v1 dumps to <path> (the nightly
//                      pipeline uploads this as an artifact)
//
// A budget-sweep section reruns the superposition-bomb family (the family
// built to blow through Corollary 8's search budget) across a node_budget
// ladder, recording how verdict quality and ms/step move with the Theorem-7
// search allowance — the data behind the default budget's calibration.
//
// A second section benches the DELIVERY layer: the clean-control stream is
// flattened into per-device reports and replayed through the IngestPipeline
// under in-order, reorder, duplicate-flood, and stall schedules, against a
// direct-snapshot-push baseline. Content is identical across rows, so the
// ms/step deltas are pure ingestion overhead and the counter columns show
// what each fault family cost (duplicates absorbed, late claims replayed).
//
// tools/record_bench.sh wraps stdout into BENCH_hostile.json; the payload
// below is embedded so the artifact is parseable either way.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "ingest/pipeline.hpp"
#include "obs/export.hpp"
#include "sim/hostile.hpp"
#include "sim/metrics.hpp"
#include "sim/report_source.hpp"

namespace {

struct FamilyResult {
  std::string name;
  std::string violates;
  std::uint64_t flagged = 0;          ///< devices in the observed A_k
  std::uint64_t flagged_true = 0;     ///< ... that are truly anomalous
  std::uint64_t truth_abnormal = 0;   ///< injected anomalies (post-suppression
                                      ///< ground truth still counts them)
  std::uint64_t isolated_verdicts = 0;
  std::uint64_t isolated_correct = 0;
  std::uint64_t truly_isolated_flagged = 0;
  std::uint64_t isolated_recalled = 0;
  std::uint64_t massive_verdicts = 0;
  std::uint64_t massive_correct = 0;
  std::uint64_t truly_massive_flagged = 0;
  std::uint64_t massive_recalled = 0;
  std::uint64_t unresolved_verdicts = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t decisions = 0;
  double total_ms = 0.0;
  std::uint64_t intervals = 0;
};

// Precision/recall denominators CAN be zero here (a family that fabricates
// no flags, a budget row with no truly-isolated device in its window):
// safe_ratio makes that an explicit null/"n/a" instead of a fake 1.0 or a
// NaN that would break the JSON payload.
using acn::fmt_ratio;
using acn::json_ratio;
using acn::safe_ratio;

FamilyResult run_family(const acn::HostileSpec& spec, int intervals,
                        const acn::CharacterizeOptions& options = {}) {
  FamilyResult result;
  result.name = spec.name;
  result.violates = spec.violates;

  acn::HostileScenario scenario(spec.params);
  const acn::Params model = spec.params.base.model;
  std::vector<acn::Point> previous = scenario.initial().positions();

  for (int k = 0; k < intervals; ++k) {
    const acn::HostileStep step = scenario.advance();

    // Detection layer: what the monitor was told vs what actually happened.
    // Fabricated flags cost precision; suppressed reports cost recall.
    result.truth_abnormal += step.truth.abnormal.size();
    result.flagged += step.abnormal.size();
    for (const acn::DeviceId j : step.abnormal) {
      if (step.truth.abnormal.contains(j)) ++result.flagged_true;
    }

    // Characterization layer, timed: from-scratch plane + all verdicts.
    const auto start = std::chrono::steady_clock::now();
    const acn::StatePair state{acn::Snapshot(previous),
                               acn::Snapshot(step.observed.positions()),
                               step.abnormal};
    acn::Characterizer characterizer(state, model, options);
    const std::vector<acn::Decision> decisions = characterizer.decide_all();
    result.total_ms += std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    ++result.intervals;

    for (std::size_t i = 0; i < decisions.size(); ++i) {
      const acn::DeviceId j = step.abnormal[i];
      const acn::Decision& decision = decisions[i];
      const bool truly_isolated = step.truth.truly_isolated.contains(j);
      const bool truly_massive = step.truth.truly_massive.contains(j);
      ++result.decisions;
      if (decision.rule == acn::DecisionRule::kBudgetExhausted) {
        ++result.budget_exhausted;
      }
      switch (decision.cls) {
        case acn::AnomalyClass::kIsolated:
          ++result.isolated_verdicts;
          if (truly_isolated) ++result.isolated_correct;
          break;
        case acn::AnomalyClass::kMassive:
          ++result.massive_verdicts;
          if (truly_massive) ++result.massive_correct;
          break;
        case acn::AnomalyClass::kUnresolved:
          ++result.unresolved_verdicts;
          break;
      }
      if (truly_isolated) {
        ++result.truly_isolated_flagged;
        if (decision.cls == acn::AnomalyClass::kIsolated) {
          ++result.isolated_recalled;
        }
      }
      if (truly_massive) {
        ++result.truly_massive_flagged;
        if (decision.cls == acn::AnomalyClass::kMassive) {
          ++result.massive_recalled;
        }
      }
    }
    previous = step.observed.positions();
  }
  return result;
}

// --- Theorem-7 budget sweep ----------------------------------------------

/// One superposition-bomb run at a fixed node_budget. The bomb chains
/// overlapping dense motions so the Theorem-7 search is the cost driver:
/// sweeping the budget ladder shows where verdicts stop changing (the knee
/// where kBudgetExhausted dies out) and what each extra decade of search
/// costs in ms/step.
struct BudgetRow {
  std::uint64_t node_budget = 0;
  FamilyResult result;
};

std::vector<BudgetRow> run_budget_sweep(std::size_t n, std::uint64_t seed,
                                        int intervals) {
  constexpr std::uint64_t kLadder[] = {4'096, 16'384, 65'536, 262'144,
                                       1'048'576};
  std::vector<BudgetRow> rows;
  for (const acn::HostileSpec& spec : acn::standard_hostile_suite(n, seed)) {
    if (spec.name != "superposition-bomb") continue;
    for (const std::uint64_t budget : kLadder) {
      acn::CharacterizeOptions options;
      options.node_budget = budget;
      rows.push_back(BudgetRow{budget, run_family(spec, intervals, options)});
    }
    return rows;
  }
  std::fprintf(stderr, "superposition-bomb family missing from the suite\n");
  std::exit(2);
}

// --- delivery-layer rows -------------------------------------------------

struct DeliveryResult {
  std::string name;
  double total_ms = 0.0;
  std::uint64_t intervals = 0;
  std::uint64_t decisions = 0;
  std::uint64_t degraded = 0;   ///< intervals sealed with the degraded mark
  acn::IngestCounters counters; ///< all-zero for the direct-feed baseline
};

double ms_per_step(const DeliveryResult& r) {
  return r.intervals == 0 ? 0.0
                          : r.total_ms / static_cast<double>(r.intervals);
}

struct CleanStream {
  acn::Snapshot initial;
  std::vector<acn::ObservedInterval> intervals;
  acn::Params model;
};

CleanStream materialize_clean(std::size_t n, std::uint64_t seed,
                              int intervals) {
  for (const acn::HostileSpec& spec : acn::standard_hostile_suite(n, seed)) {
    if (spec.name != "clean-control") continue;
    acn::HostileScenario scenario(spec.params);
    CleanStream stream{scenario.initial(), {}, spec.params.base.model};
    for (int k = 0; k < intervals; ++k) {
      acn::HostileStep step = scenario.advance();
      stream.intervals.push_back(acn::ObservedInterval{
          std::move(step.observed), std::move(step.abnormal)});
    }
    return stream;
  }
  std::fprintf(stderr, "clean-control family missing from the suite\n");
  std::exit(2);
}

/// Timing repetitions for the delivery section: the rows compare ms/step
/// numbers a few microseconds apart, far below this machine's run-to-run
/// jitter, so the section runs every row once per rep (interleaved, so all
/// rows see the same machine conditions) and each row reports its minimum.
constexpr int kTimingReps = 7;

/// Baseline: the same stream pushed straight into the monitor as closed
/// snapshots — the paper's delivery assumptions granted for free.
DeliveryResult run_direct(const acn::Params& model,
                          const CleanStream& stream) {
  DeliveryResult result;
  result.name = "direct-feed";
  acn::OnlineMonitor::Config config;
  config.model = model;
  acn::OnlineMonitor monitor(config);
  (void)monitor.observe(stream.initial, acn::DeviceSet{});
  const auto start = std::chrono::steady_clock::now();
  for (const acn::ObservedInterval& interval : stream.intervals) {
    const acn::IntervalReport report =
        monitor.observe(interval.positions, interval.abnormal);
    ++result.intervals;
    result.decisions += report.decisions.size();
  }
  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return result;
}

DeliveryResult run_delivery(const std::string& name, const acn::Params& model,
                            const CleanStream& stream,
                            const acn::DeliveryFaults& faults) {
  DeliveryResult result;
  result.name = name;
  // Schedule construction is simulation cost, not pipeline cost.
  const std::vector<acn::QosReport> schedule =
      acn::delivery_schedule(stream.intervals, faults);

  acn::IngestPipeline::Config config;
  config.monitor.model = model;
  config.capacity = stream.initial.size();
  config.dim = stream.initial[0].dim();
  config.watermark.allowed_lag = 2;
  acn::IngestPipeline pipeline(config);
  pipeline.prime(stream.initial);

  const auto start = std::chrono::steady_clock::now();
  pipeline.push_all(schedule);
  pipeline.finish();
  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  for (const acn::ClosedInterval& closed : pipeline.drain_ready()) {
    ++result.intervals;
    result.decisions += closed.report.decisions.size();
    if (closed.degraded) ++result.degraded;
  }
  result.counters = pipeline.counters();
  return result;
}

std::vector<DeliveryResult> run_delivery_section(std::size_t n,
                                                 std::uint64_t seed,
                                                 int intervals) {
  const CleanStream stream = materialize_clean(n, seed, intervals);
  const acn::Params model = stream.model;

  acn::DeliveryFaults reorder;
  reorder.reorder_window = n / 2;  // within the allowed_lag = 2 budget
  reorder.seed = seed + 1;
  acn::DeliveryFaults duplicate;
  duplicate.duplicate_rate = 0.5;
  duplicate.duplicate_copies = 2;
  duplicate.seed = seed + 2;
  acn::DeliveryFaults stall;
  stall.stall_rate = 0.1;  // 3-interval stalls overrun the budget: claims
  stall.stall_intervals = 3;  // replay, the burst lands late_sealed
  stall.seed = seed + 3;

  std::vector<DeliveryResult> results;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    std::vector<DeliveryResult> pass;
    pass.push_back(run_direct(model, stream));
    pass.push_back(run_delivery("pipe-clean", model, stream, {}));
    pass.push_back(run_delivery("pipe-reorder", model, stream, reorder));
    pass.push_back(run_delivery("pipe-duplicate", model, stream, duplicate));
    pass.push_back(run_delivery("pipe-stall", model, stream, stall));
    if (rep == 0) {
      results = std::move(pass);
      continue;
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (pass[i].total_ms < results[i].total_ms) {
        results[i].total_ms = pass[i].total_ms;
      }
    }
  }
  return results;
}

// --- telemetry dump ------------------------------------------------------

/// Replays every hostile family through a telemetry-enabled OnlineMonitor
/// and renders the per-family acn.telemetry.v1 documents into one JSON
/// file — the artifact the nightly pipeline uploads, and the quickest way
/// to eyeball what the telemetry layer sees under each fault family.
void write_telemetry_dump(const char* path, std::size_t n, std::uint64_t seed,
                          int intervals) {
  std::string out = "{\"bench\":\"hostile-telemetry\",\"families\":[";
  bool first = true;
  for (const acn::HostileSpec& spec : acn::standard_hostile_suite(n, seed)) {
    acn::HostileScenario scenario(spec.params);
    acn::OnlineMonitor::Config config;
    config.model = spec.params.base.model;
    config.telemetry = acn::obs::TelemetryConfig{.history = 128, .regions = 8};
    acn::OnlineMonitor monitor(config);
    (void)monitor.observe(scenario.initial(), acn::DeviceSet{});
    for (int k = 0; k < intervals; ++k) {
      acn::HostileStep step = scenario.advance();
      (void)monitor.observe(std::move(step.observed), step.abnormal);
    }
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + spec.name + "\",\"telemetry\":";
    out += acn::obs::to_json(*monitor.telemetry());
    out += '}';
  }
  out += "]}\n";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
}

void print_json(const std::vector<FamilyResult>& results,
                const std::vector<BudgetRow>& budget_sweep,
                const std::vector<DeliveryResult>& delivery, std::size_t n,
                int intervals, std::uint64_t seed) {
  std::printf("{\"bench\":\"hostile\",\"n\":%zu,\"intervals\":%d,\"seed\":%llu,",
              n, intervals, static_cast<unsigned long long>(seed));
  std::printf("\"scenarios\":[");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FamilyResult& r = results[i];
    std::printf(
        "%s{\"name\":\"%s\",\"violates\":\"%s\","
        "\"detection_precision\":%s,\"detection_recall\":%s,"
        "\"isolated_precision\":%s,\"isolated_recall\":%s,"
        "\"massive_precision\":%s,\"massive_recall\":%s,"
        "\"unresolved_rate\":%s,\"budget_exhausted_rate\":%s,"
        "\"decisions\":%llu,\"ms_per_step\":%.3f}",
        i == 0 ? "" : ",", r.name.c_str(), r.violates.c_str(),
        json_ratio(safe_ratio(r.flagged_true, r.flagged)).c_str(),
        json_ratio(safe_ratio(r.flagged_true, r.truth_abnormal)).c_str(),
        json_ratio(safe_ratio(r.isolated_correct, r.isolated_verdicts)).c_str(),
        json_ratio(safe_ratio(r.isolated_recalled, r.truly_isolated_flagged))
            .c_str(),
        json_ratio(safe_ratio(r.massive_correct, r.massive_verdicts)).c_str(),
        json_ratio(safe_ratio(r.massive_recalled, r.truly_massive_flagged))
            .c_str(),
        json_ratio(safe_ratio(r.unresolved_verdicts, r.decisions)).c_str(),
        json_ratio(safe_ratio(r.budget_exhausted, r.decisions)).c_str(),
        static_cast<unsigned long long>(r.decisions),
        r.intervals == 0 ? 0.0 : r.total_ms / static_cast<double>(r.intervals));
  }
  std::printf("],\"budget_sweep\":[");
  for (std::size_t i = 0; i < budget_sweep.size(); ++i) {
    const BudgetRow& row = budget_sweep[i];
    const FamilyResult& r = row.result;
    std::printf(
        "%s{\"node_budget\":%llu,"
        "\"unresolved_rate\":%s,\"budget_exhausted_rate\":%s,"
        "\"isolated_recall\":%s,\"massive_recall\":%s,"
        "\"ms_per_step\":%.3f}",
        i == 0 ? "" : ",", static_cast<unsigned long long>(row.node_budget),
        json_ratio(safe_ratio(r.unresolved_verdicts, r.decisions)).c_str(),
        json_ratio(safe_ratio(r.budget_exhausted, r.decisions)).c_str(),
        json_ratio(safe_ratio(r.isolated_recalled, r.truly_isolated_flagged))
            .c_str(),
        json_ratio(safe_ratio(r.massive_recalled, r.truly_massive_flagged))
            .c_str(),
        r.intervals == 0 ? 0.0 : r.total_ms / static_cast<double>(r.intervals));
  }
  std::printf("],\"delivery\":[");
  const double direct_ms = ms_per_step(delivery.front());
  for (std::size_t i = 0; i < delivery.size(); ++i) {
    const DeliveryResult& d = delivery[i];
    const acn::IngestCounters& c = d.counters;
    std::printf(
        "%s{\"name\":\"%s\",\"ms_per_step\":%.3f,\"overhead_pct\":%.2f,"
        "\"decisions\":%llu,\"degraded_intervals\":%llu,"
        "\"accepted\":%llu,\"duplicates\":%llu,\"late_sealed\":%llu,"
        "\"replayed_claims\":%llu}",
        i == 0 ? "" : ",", d.name.c_str(), ms_per_step(d),
        direct_ms == 0.0 ? 0.0
                         : 100.0 * (ms_per_step(d) - direct_ms) / direct_ms,
        static_cast<unsigned long long>(d.decisions),
        static_cast<unsigned long long>(d.degraded),
        static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.duplicates),
        static_cast<unsigned long long>(c.late_sealed),
        static_cast<unsigned long long>(c.replayed_claims));
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json_only = false;
  const char* telemetry_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0) json_only = true;
    else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json] [--telemetry <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t n = 400;
  const std::uint64_t seed = 2014;
  const int intervals = smoke ? 6 : 40;

  std::vector<FamilyResult> results;
  for (const acn::HostileSpec& spec : acn::standard_hostile_suite(n, seed)) {
    results.push_back(run_family(spec, intervals));
  }
  const std::vector<BudgetRow> budget_sweep = run_budget_sweep(n, seed, intervals);
  const std::vector<DeliveryResult> delivery =
      run_delivery_section(n, seed, intervals);
  if (telemetry_path != nullptr) {
    write_telemetry_dump(telemetry_path, n, seed, intervals);
  }

  if (!json_only) {
    std::printf(
        "# Hostile-suite accuracy (n=%zu, %d intervals/family, seed=%llu)\n"
        "# det P/R: observed abnormal stream vs injected truth;\n"
        "# iso/mas P/R: verdict class vs injected truth over flagged devices.\n\n",
        n, intervals, static_cast<unsigned long long>(seed));
    acn::Table table({"scenario", "det P", "det R", "iso P", "iso R", "mas P",
                      "mas R", "unres %", "budget %", "ms/step"});
    for (const FamilyResult& r : results) {
      table.add_row(
          {r.name, fmt_ratio(safe_ratio(r.flagged_true, r.flagged)),
           fmt_ratio(safe_ratio(r.flagged_true, r.truth_abnormal)),
           fmt_ratio(safe_ratio(r.isolated_correct, r.isolated_verdicts)),
           fmt_ratio(safe_ratio(r.isolated_recalled, r.truly_isolated_flagged)),
           fmt_ratio(safe_ratio(r.massive_correct, r.massive_verdicts)),
           fmt_ratio(safe_ratio(r.massive_recalled, r.truly_massive_flagged)),
           fmt_ratio(safe_ratio(r.unresolved_verdicts, r.decisions), 1, 100.0),
           fmt_ratio(safe_ratio(r.budget_exhausted, r.decisions), 1, 100.0),
           acn::fmt(r.intervals == 0
                        ? 0.0
                        : r.total_ms / static_cast<double>(r.intervals),
                    3)});
    }
    table.print();
    std::printf(
        "\n# Shape checks: the clean control keeps every P/R at ~1.0; report\n"
        "# loss trades detection recall, never precision; shadow-crowd tanks\n"
        "# isolated recall (the Theorem-5 flip); regional outages lose massive\n"
        "# recall because converging is not an r-consistent motion (R2).\n\n");

    std::printf(
        "# Theorem-7 budget sweep over the superposition-bomb family (the\n"
        "# worst-case search load): node_budget ladder vs verdict quality\n"
        "# and cost. The knee where budget %% hits 0 is the budget the\n"
        "# default must clear.\n\n");
    acn::Table budget_table({"node_budget", "unres %", "budget %", "iso R",
                             "mas R", "ms/step"});
    for (const BudgetRow& row : budget_sweep) {
      const FamilyResult& r = row.result;
      budget_table.add_row(
          {std::to_string(row.node_budget),
           fmt_ratio(safe_ratio(r.unresolved_verdicts, r.decisions), 1, 100.0),
           fmt_ratio(safe_ratio(r.budget_exhausted, r.decisions), 1, 100.0),
           fmt_ratio(safe_ratio(r.isolated_recalled, r.truly_isolated_flagged)),
           fmt_ratio(safe_ratio(r.massive_recalled, r.truly_massive_flagged)),
           acn::fmt(r.intervals == 0
                        ? 0.0
                        : r.total_ms / static_cast<double>(r.intervals),
                    3)});
    }
    budget_table.print();
    std::printf("\n");

    std::printf(
        "# Delivery layer (clean-control stream replayed through the ingest\n"
        "# pipeline; direct-feed = snapshots pushed straight to the monitor):\n\n");
    acn::Table delivery_table({"delivery", "ms/step", "overhead %", "decisions",
                               "degraded", "dups", "late", "replayed"});
    const double direct_ms = ms_per_step(delivery.front());
    for (const DeliveryResult& d : delivery) {
      delivery_table.add_row(
          {d.name, acn::fmt(ms_per_step(d), 3),
           acn::fmt(direct_ms == 0.0 ? 0.0
                                     : 100.0 * (ms_per_step(d) - direct_ms) /
                                           direct_ms,
                    1),
           std::to_string(d.decisions), std::to_string(d.degraded),
           std::to_string(d.counters.duplicates),
           std::to_string(d.counters.late_sealed),
           std::to_string(d.counters.replayed_claims)});
    }
    delivery_table.print();
    std::printf(
        "\n# Shape checks: pipe-clean matches direct-feed's decision count;\n"
        "# its ms/step overhead is the price of consuming n per-device\n"
        "# reports instead of a pre-assembled snapshot (watermark, dedup,\n"
        "# staging, roster write-through). Reorder and duplicate rows stay\n"
        "# inside the lateness budget (no degraded intervals, verdicts\n"
        "# unchanged); pipe-stall overruns it, so claims replay and the\n"
        "# stalled bursts land late_sealed — absorbed, counted, not fatal.\n\n");
  }
  print_json(results, budget_sweep, delivery, n, intervals, seed);
  return 0;
}
