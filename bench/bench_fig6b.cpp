// Figure 6(b): P{F_r(j) <= tau} — the probability that at most tau devices
// in the 2r-vicinity of a device are hit by independent isolated errors —
// as a function of the system size n, for tau in {2, 3, 4, 5}, with
// r = 0.03 and per-device isolated-error probability b = 0.005.
//
// The paper uses this curve to justify tau = 3 at n = 1000: the probability
// of a spurious dense motion formed by independent errors is negligible.
#include <cstdio>
#include <vector>

#include "analysis/dimensioning.hpp"
#include "common/table.hpp"

int main() {
  const double r = 0.03;
  const double b = 0.005;
  const std::size_t d = 2;
  const std::vector<std::size_t> sizes = {100,  500,  1000, 2500, 5000,
                                          7500, 10000, 12500, 15000};
  const std::vector<std::uint32_t> taus = {2, 3, 4, 5};

  std::printf("# Figure 6(b): P{F_r(j) <= tau} vs n; r=%.3f b=%.3f d=%zu\n\n", r, b, d);

  acn::Table table({"n", "tau=2", "tau=3", "tau=4", "tau=5"});
  for (const std::size_t n : sizes) {
    std::vector<std::string> row = {acn::fmt(static_cast<double>(n), 0)};
    for (const std::uint32_t tau : taus) {
      row.push_back(acn::fmt(
          acn::isolated_overload_cdf(n, r, d, tau, b,
                                     acn::VicinityModel::kWindowAverage),
          6));
    }
    table.add_row(row);
  }
  table.print();

  std::printf("\n# Paper readout: curves stay above 0.997 over the whole range\n");
  std::printf("# (shape check: larger tau => closer to 1; larger n => slow decrease).\n");
  std::printf("# Note: reproduces with the consistency-window vicinity (side 2r);\n");
  std::printf("# the paper's literal radius-2r vicinity V would give, at tau=2:\n");
  for (const std::size_t n : {1000, 15000}) {
    std::printf("#   n=%zu: %.4f\n", n,
                acn::isolated_overload_cdf(n, r, d, 2, b,
                                           acn::VicinityModel::kUniformAverage));
  }

  std::printf("\n# recommended tau for epsilon = 1e-3 at selected n (rule of §VII-A):\n");
  acn::Table rec({"n", "recommended tau"});
  for (const std::size_t n : {500, 1000, 5000, 15000}) {
    rec.add_row({acn::fmt(static_cast<double>(n), 0),
                 acn::fmt(acn::recommend_tau(n, r, d, b, 1e-3,
                                             acn::VicinityModel::kWindowAverage),
                          0)});
  }
  rec.print();
  return 0;
}
