// Extension bench: the scalability claim (§VIII "by design, our approach is
// scalable"), measured. Runs the distributed protocol over the simulated
// network for growing fleet sizes and reports per-decision traffic — which
// must track the (dimensioned, ~constant) neighbourhood size, not n — next
// to the centralized baseline's per-interval shipping bill.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/central_kmeans.hpp"
#include "common/table.hpp"
#include "proto/protocol.hpp"
#include "sim/scenario.hpp"

int main() {
  const std::vector<std::size_t> sizes = {250, 500, 1000, 2000, 4000};
  const std::uint64_t steps = 4;

  std::printf("# Distributed protocol scalability; A=n/50 errors per interval,\n");
  std::printf("# G=0.3, tau=3, %llu intervals per size. Following the paper's\n",
              static_cast<unsigned long long>(steps));
  std::printf("# dimensioning, r shrinks with n to keep the expected vicinity\n");
  std::printf("# population constant: r(n) = 0.03 * sqrt(1000/n).\n\n");

  acn::Table table({"n", "|A_k| mean", "traj msgs / decision", "bytes / decision",
                    "decision latency (ticks)", "central doubles / interval"});
  for (const std::size_t n : sizes) {
    acn::ScenarioParams params;
    params.n = n;
    params.d = 2;
    params.model = {.r = 0.03 * std::sqrt(1000.0 / static_cast<double>(n)),
                    .tau = 3};
    params.errors_per_step = static_cast<std::uint32_t>(n / 50);
    params.isolated_probability = 0.3;
    params.massive_anchor_retries = 16;
    params.seed = 9000 + n;
    acn::ScenarioGenerator generator(params);

    double abnormal_sum = 0.0;
    double traj_sum = 0.0;
    double bytes_sum = 0.0;
    double latency_sum = 0.0;
    double decisions_total = 0.0;
    double central_doubles = 0.0;
    for (std::uint64_t k = 0; k < steps; ++k) {
      const acn::ScenarioStep step = generator.advance();
      if (step.truth.abnormal.empty()) continue;
      abnormal_sum += static_cast<double>(step.truth.abnormal.size());

      acn::ProtocolDriver::Config config;
      config.model = params.model;
      config.network = {.min_latency = 1, .max_latency = 3};
      acn::ProtocolDriver driver(step.state, config, params.seed + k);
      const auto decisions = driver.run();
      for (const auto& decision : decisions) {
        traj_sum += static_cast<double>(decision.trajectories);
        latency_sum += static_cast<double>(decision.decided_at);
      }
      decisions_total += static_cast<double>(decisions.size());
      bytes_sum += static_cast<double>(driver.network().total_traffic().bytes_sent);

      const acn::CentralKmeansBaseline central({.tau = params.model.tau});
      central_doubles += static_cast<double>(central.communication_cost(step.state));
    }
    if (decisions_total == 0.0) continue;
    table.add_row({acn::fmt(static_cast<double>(n), 0),
                   acn::fmt(abnormal_sum / static_cast<double>(steps), 1),
                   acn::fmt(traj_sum / decisions_total, 2),
                   acn::fmt(bytes_sum / decisions_total, 1),
                   acn::fmt(latency_sum / decisions_total, 2),
                   acn::fmt(central_doubles / static_cast<double>(steps), 0)});
  }
  table.print();
  std::printf(
      "\n# Shape checks: per-decision traffic and latency stay ~flat in n\n"
      "# (the 4r neighbourhood is dimensioned to stay small); the centralized\n"
      "# baseline's bill grows linearly with |A_k| and hits one node.\n");
  return 0;
}
