// Microbenchmarks (google-benchmark) for the core primitives: neighbourhood
// queries, maximal-motion enumeration (Algorithm 2), full characterization
// (Algorithms 3-5), greedy partition construction (Algorithm 1) and the
// baselines, across system sizes and densities.
#include <benchmark/benchmark.h>

#include "baseline/central_kmeans.hpp"
#include "baseline/tessellation.hpp"
#include "core/characterizer.hpp"
#include "core/partition.hpp"
#include "sim/scenario.hpp"

namespace {

acn::ScenarioStep make_step(std::size_t n, std::uint32_t errors, double g,
                            std::uint64_t seed) {
  acn::ScenarioParams params;
  params.n = n;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = errors;
  params.isolated_probability = g;
  params.seed = seed;
  acn::ScenarioGenerator generator(params);
  return generator.advance();
}

void BM_NeighbourhoodQuery(benchmark::State& state) {
  const auto step = make_step(static_cast<std::size_t>(state.range(0)), 20, 0.3, 1);
  const acn::Params model{.r = 0.03, .tau = 3};
  for (auto _ : state) {
    acn::MotionOracle oracle(step.state, model);
    for (const acn::DeviceId j : step.state.abnormal()) {
      benchmark::DoNotOptimize(oracle.neighbourhood(j));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(step.state.abnormal().size()));
}
BENCHMARK(BM_NeighbourhoodQuery)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000);

void BM_MaximalMotionEnumeration(benchmark::State& state) {
  const auto step = make_step(1000, static_cast<std::uint32_t>(state.range(0)), 0.2, 2);
  const acn::Params model{.r = 0.03, .tau = 3};
  for (auto _ : state) {
    acn::MotionOracle oracle(step.state, model);
    for (const acn::DeviceId j : step.state.abnormal()) {
      benchmark::DoNotOptimize(oracle.maximal_motions(j));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(step.state.abnormal().size()));
}
BENCHMARK(BM_MaximalMotionEnumeration)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_CharacterizeAll(benchmark::State& state) {
  const auto step = make_step(1000, static_cast<std::uint32_t>(state.range(0)), 0.2, 3);
  const acn::Params model{.r = 0.03, .tau = 3};
  for (auto _ : state) {
    acn::Characterizer characterizer(step.state, model);
    benchmark::DoNotOptimize(characterizer.characterize_all());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(step.state.abnormal().size()));
}
BENCHMARK(BM_CharacterizeAll)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_GreedyPartition(benchmark::State& state) {
  const auto step = make_step(1000, 20, 0.2, 4);
  const acn::Params model{.r = 0.03, .tau = 3};
  acn::Rng rng(99);
  for (auto _ : state) {
    acn::MotionOracle oracle(step.state, model);
    benchmark::DoNotOptimize(acn::build_anomaly_partition(oracle, rng));
  }
}
BENCHMARK(BM_GreedyPartition)->Unit(benchmark::kMillisecond);

void BM_TessellationBaseline(benchmark::State& state) {
  const auto step = make_step(1000, 20, 0.2, 5);
  const acn::TessellationBaseline baseline(0.06, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline.classify(step.state));
  }
}
BENCHMARK(BM_TessellationBaseline);

void BM_CentralKmeansBaseline(benchmark::State& state) {
  const auto step = make_step(1000, 20, 0.2, 6);
  const acn::CentralKmeansBaseline baseline({.tau = 3, .cluster_divisor = 6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline.classify(step.state));
  }
}
BENCHMARK(BM_CentralKmeansBaseline);

}  // namespace

BENCHMARK_MAIN();
