// Table II: average repartition of the abnormal devices A_k across
//   I_k  (decided by Theorem 5),
//   M_k  (decided by the cheap sufficient condition, Theorem 6),
//   U_k  (certified unresolved by Corollary 8),
//   M_k  (the extra devices only the full NSC of Theorem 7 catches).
//
// Paper settings: A = 20 errors per interval, n = 1000, r = 0.03, tau = 3,
// G set to a small epsilon so massive anomalies dominate (|A_k| ~ 95.7).
// Paper numbers:   2.54% | 88.34% | 8.72% | 0.4%.
#include <cstdio>

#include "common/table.hpp"
#include "sim_harness.hpp"

int main() {
  acn::ScenarioParams params;
  params.n = 1000;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 20;
  params.isolated_probability = 0.05;  // the paper's "small constant epsilon"
  params.enforce_r3 = true;
  params.seed = 20140622;
  params.apply_calibrated_profile();  // see EXPERIMENTS.md for the ladder

  const std::uint64_t steps = 60;
  acn::bench::print_seed_banner("Table II", params, steps);

  const acn::bench::HarnessResult result = acn::bench::run_scenario(params, steps);
  const auto& m = result.metrics;

  std::printf("\nmean |A_k| = %.1f devices per interval (paper: 95.7)\n\n",
              m.abnormal.mean());

  acn::Table table({"set", "decided by", "this repro (%)", "paper (%)"});
  table.add_row({"I_k", "Theorem 5", acn::fmt(m.isolated_share.mean(), 2), "2.54"});
  table.add_row({"M_k", "Theorem 6", acn::fmt(m.massive6_share.mean(), 2), "88.34"});
  table.add_row({"U_k", "Corollary 8", acn::fmt(m.unresolved_share.mean(), 2), "8.72"});
  table.add_row({"M_k extra", "Theorem 7", acn::fmt(m.massive7_share.mean(), 2), "0.4"});
  table.print();

  std::printf(
      "\n# Shape checks: Theorem 6 decides the overwhelming majority of M_k;\n"
      "# Theorem 7 adds under ~1%%; I_k stays small because G ~ epsilon.\n");
  if (m.budget_exhausted > 0) {
    std::printf("# WARNING: %llu devices hit the Theorem-7 node budget\n",
                static_cast<unsigned long long>(m.budget_exhausted));
  }
  if (result.dropped_errors > 0) {
    std::printf("# note: %llu isolated errors dropped by R3 placement\n",
                static_cast<unsigned long long>(result.dropped_errors));
  }
  return 0;
}
