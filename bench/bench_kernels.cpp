// Microbench for the quantized kernel layer (core/kernels): one row per
// kernel per dispatch variant, so the scalar-vs-AVX2 speedup of every hot
// primitive — window filter, min/max reduction, survivor popcounts, the
// Theorem-7 node scans, the Chebyshev-ball prefilter — is recorded on its
// own, independent of the surrounding search shape. Emits one embedded-JSON
// line per row ("name" + "ms_per_step"), the format tools/record_bench.sh
// keys its nightly perf-regression gate on.
//
// Flags:
//   --smoke     tiny inputs, one rep, plus a scalar/AVX2 byte-identity
//               check on every kernel's outputs (CI-friendly)
//   --json      suppress the human-readable table, JSON lines only
//   --dispatch  print the auto-selected dispatch name and exit (used by
//               record_bench.sh to stamp recordings with the kernel path)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/kernels/kernels.hpp"
#include "core/kernels/quantize.hpp"

namespace {

using acn::kernels::Ops;
using acn::kernels::WindowBoundsQ;

// Defeats dead-code elimination without perturbing the timed loop.
volatile std::uint64_t g_sink = 0;

template <typename F>
double time_ms(int reps, F&& f) {
  f();  // warmup
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() /
         static_cast<double>(reps);
}

struct Workload {
  // Window filter / minmax: one coordinate column with its quantized mirror.
  std::size_t n = 0;
  std::vector<double> col;
  std::vector<std::uint32_t> qcol;
  std::vector<std::uint32_t> ids;
  WindowBoundsQ wb;
  // Radius prefilter: joint columns, [dim][device] layout.
  std::size_t dims = 4;
  std::vector<double> cols;
  std::vector<std::uint32_t> qcols;
  std::vector<double> centre;
  double radius = 0.03;
  // Theorem-7 scans: row-major bitset matrices over a compact universe.
  std::size_t words = 2;
  std::size_t target_count = 0;
  std::vector<std::uint64_t> targets;
  std::size_t base_count = 0;
  std::vector<std::uint64_t> bases;
  std::vector<std::uint32_t> rows;
  std::vector<std::uint64_t> used;
  std::vector<std::uint64_t> far;
  std::vector<std::uint64_t> l;
  std::uint64_t tau = 3;
  // Wide popcount: the Theorem-6 |M ∩ J| reduction shape.
  std::size_t wide_words = 0;
  std::vector<std::uint64_t> wide_a;
  std::vector<std::uint64_t> wide_b;

  explicit Workload(bool smoke) {
    acn::Rng rng(7);
    n = smoke ? std::size_t{4096} : std::size_t{1} << 17;
    col.resize(n);
    qcol.resize(n);
    ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      col[i] = rng.uniform();
      qcol[i] = acn::kernels::quantize(col[i]);
      ids[i] = static_cast<std::uint32_t>(i);
    }
    // A representable window width (2r = 2^-4) lands boundaries exactly on
    // the quantization grid — the tie-band path is exercised, not dodged.
    wb = acn::kernels::window_bounds(0.40625, 0.40625 + 0.0625);
    cols.resize(dims * n);
    qcols.resize(dims * n);
    centre.assign(dims, 0.5);
    for (std::size_t t = 0; t < dims; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform();
        cols[t * n + i] = x;
        qcols[t * n + i] = acn::kernels::quantize(x);
      }
    }
    target_count = smoke ? 8 : 64;
    base_count = smoke ? 12 : 48;
    targets.resize(target_count * words);
    bases.resize(base_count * words);
    used.resize(words);
    far.resize(words);
    l.resize(words);
    for (auto& w : targets) w = rng.next_u64();
    for (auto& w : bases) w = rng.next_u64();
    for (auto& w : used) w = rng.next_u64() & rng.next_u64();  // ~25% density
    for (auto& w : far) w = rng.next_u64();
    for (auto& w : l) w = rng.next_u64();
    rows.resize(base_count);
    for (std::size_t i = 0; i < base_count; ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    // tau large enough that targets_all_below scans most rows instead of
    // bailing on the first.
    tau = 40;
    wide_words = smoke ? 64 : 4096;
    wide_a.resize(wide_words);
    wide_b.resize(wide_words);
    for (auto& w : wide_a) w = rng.next_u64();
    for (auto& w : wide_b) w = rng.next_u64();
  }
};

struct Row {
  std::string name;
  std::size_t items;
  double ms;
};

void run_variant(const char* variant, const Workload& w, bool smoke,
                 std::vector<Row>& out) {
  if (!acn::kernels::force(variant)) {
    std::printf("note: %s kernels unavailable; skipping\n", variant);
    return;
  }
  const Ops& ops = acn::kernels::dispatch_raw();
  const int reps = smoke ? 1 : 200;

  std::vector<std::uint32_t> filter_out(w.n);
  out.push_back({std::string("window:") + variant, w.n,
                 time_ms(reps, [&] {
                   g_sink = g_sink + ops.filter_in_window(w.qcol.data(), w.col.data(),
                                                  w.ids.data(), w.n, w.wb,
                                                  filter_out.data());
                 })});

  out.push_back({std::string("minmax:") + variant, w.n,
                 time_ms(reps, [&] {
                   double lo = 0.0;
                   double hi = 0.0;
                   ops.minmax_ids(w.col.data(), w.ids.data(), w.n, &lo, &hi);
                   g_sink = g_sink + static_cast<std::uint64_t>(hi > lo);
                 })});

  out.push_back({std::string("popcount_andnot:") + variant, w.wide_words,
                 time_ms(reps * 4, [&] {
                   g_sink = g_sink + ops.popcount_andnot(w.wide_a.data(), w.wide_b.data(),
                                                 w.wide_words);
                 })});

  // One call is tens of nanoseconds; batch enough iterations per rep that
  // the clock reads something real.
  const int inner = smoke ? 1 : 2000;
  out.push_back({std::string("targets_all_below:") + variant,
                 w.target_count * static_cast<std::size_t>(inner),
                 time_ms(reps, [&] {
                   for (int i = 0; i < inner; ++i) {
                     g_sink = g_sink + static_cast<std::uint64_t>(ops.targets_all_below(
                         w.targets.data(), w.target_count, w.words,
                         w.used.data(), w.tau));
                   }
                 })});

  std::vector<std::uint64_t> acc(w.words);
  std::vector<std::uint32_t> surv(w.base_count);
  out.push_back({std::string("nsc_scan_rows:") + variant,
                 w.base_count * static_cast<std::size_t>(inner),
                 time_ms(reps, [&] {
                   for (int i = 0; i < inner; ++i) {
                     std::memcpy(acc.data(), w.used.data(),
                                 w.words * sizeof(std::uint64_t));
                     g_sink = g_sink + ops.nsc_scan_rows(
                         w.bases.data(), w.rows.data(), w.base_count, w.words,
                         w.used.data(), w.far.data(), w.l.data(), w.tau,
                         acc.data(), surv.data());
                   }
                 })});

  std::vector<std::uint32_t> radius_out(w.n);
  std::vector<std::uint32_t> radius_maybe(w.n);
  out.push_back({std::string("radius:") + variant, w.n,
                 time_ms(reps, [&] {
                   const auto r = ops.filter_in_radius(
                       w.qcols.data(), w.cols.data(), w.n, w.dims,
                       w.centre.data(), w.radius, w.ids.data(), w.n,
                       radius_out.data(), radius_maybe.data());
                   g_sink = g_sink + r.in_count + r.maybe_count;
                 })});
}

// Byte-identity spot check between the two tables on the smoke inputs: the
// window filter's id list, the survivor count of the node scan, and the
// resolved radius member set must match exactly.
bool smoke_check(const Workload& w) {
  if (!acn::kernels::avx2_available()) {
    std::printf("smoke: AVX2 unavailable, scalar only — nothing to compare\n");
    return true;
  }
  bool ok = true;
  acn::kernels::force("scalar");
  const Ops& s = acn::kernels::dispatch_raw();
  std::vector<std::uint32_t> s_out(w.n);
  const std::size_t s_n = s.filter_in_window(w.qcol.data(), w.col.data(),
                                             w.ids.data(), w.n, w.wb, s_out.data());
  std::vector<std::uint64_t> s_acc(w.used);
  std::vector<std::uint32_t> s_rows(w.base_count);
  const std::size_t s_surv = s.nsc_scan_rows(
      w.bases.data(), w.rows.data(), w.base_count, w.words, w.used.data(),
      w.far.data(), w.l.data(), w.tau, s_acc.data(), s_rows.data());

  acn::kernels::force("avx2");
  const Ops& v = acn::kernels::dispatch_raw();
  std::vector<std::uint32_t> v_out(w.n);
  const std::size_t v_n = v.filter_in_window(w.qcol.data(), w.col.data(),
                                             w.ids.data(), w.n, w.wb, v_out.data());
  if (v_n != s_n ||
      std::memcmp(s_out.data(), v_out.data(), s_n * sizeof(std::uint32_t)) != 0) {
    std::printf("smoke FAIL: filter_in_window scalar/avx2 mismatch\n");
    ok = false;
  }
  std::vector<std::uint64_t> v_acc(w.used);
  std::vector<std::uint32_t> v_rows(w.base_count);
  const std::size_t v_surv = v.nsc_scan_rows(
      w.bases.data(), w.rows.data(), w.base_count, w.words, w.used.data(),
      w.far.data(), w.l.data(), w.tau, v_acc.data(), v_rows.data());
  if (v_surv != s_surv || v_acc != s_acc ||
      std::memcmp(s_rows.data(), v_rows.data(), s_surv * sizeof(std::uint32_t)) !=
          0) {
    std::printf("smoke FAIL: nsc_scan_rows scalar/avx2 mismatch\n");
    ok = false;
  }
  if (ok) std::printf("smoke: scalar/avx2 outputs byte-identical\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json_only = true;
    if (std::strcmp(argv[i], "--dispatch") == 0) {
      std::printf("%s\n", acn::kernels::dispatch_name());
      return 0;
    }
  }

  const Workload w(smoke);
  std::vector<Row> rows;
  run_variant("scalar", w, smoke, rows);
  run_variant("avx2", w, smoke, rows);
  const bool ok = smoke ? smoke_check(w) : true;
  acn::kernels::force("auto");

  if (!json_only) {
    std::printf("| kernel | items | ms/call |\n|---|---|---|\n");
    for (const Row& r : rows) {
      std::printf("| %s | %zu | %.4f |\n", r.name.c_str(), r.items, r.ms);
    }
  }
  for (const Row& r : rows) {
    std::printf("{\"name\":\"%s\",\"items\":%zu,\"ms_per_step\":%.6f}\n",
                r.name.c_str(), r.items, r.ms);
  }
  return ok ? 0 : 1;
}
