// Shared driver for the simulation-backed benches (Tables II/III, Figures
// 7-9): runs the §VII-A generator for a number of intervals and aggregates
// the characterization metrics.
#pragma once

#include <cstdio>

#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace acn::bench {

struct HarnessResult {
  RunMetrics metrics;
  std::uint64_t steps = 0;
  std::uint64_t dropped_errors = 0;
};

inline HarnessResult run_scenario(const ScenarioParams& params, std::uint64_t steps,
                                  const CharacterizeOptions& options = {},
                                  unsigned threads = 1,
                                  obs::TelemetryHub* hub = nullptr) {
  HarnessResult result;
  ScenarioGenerator generator(params);
  // One incremental engine per run: the generator's stream is contiguous,
  // so each step is a locality-bounded roll (verdicts are byte-identical
  // to the per-step from-scratch rebuild this harness used to pay).
  FrameEngine engine(FrameEngine::Config{.model = params.model,
                                         .characterize = options,
                                         .threads = threads});
  for (std::uint64_t k = 0; k < steps; ++k) {
    const ScenarioStep step = generator.advance();
    result.metrics.add(evaluate_step(engine, step));
    result.dropped_errors += step.truth.dropped_errors;
    if (hub != nullptr) {
      // Engine-side telemetry for the bench runs: the per-step spans and
      // kernel counters (verdict mix lives in result.metrics here — the
      // full record is the OnlineMonitor's job).
      const FrameStats& stats = engine.last_stats();
      obs::IntervalTelemetry record =
          obs::frame_record(k, stats.total_ms(), stats);
      record.devices = static_cast<std::uint32_t>(params.n);
      record.abnormal = static_cast<std::uint32_t>(stats.abnormal);
      hub->record(std::move(record));
    }
  }
  result.steps = steps;
  return result;
}

inline void print_seed_banner(const char* name, const ScenarioParams& params,
                              std::uint64_t steps) {
  std::printf("# %s  n=%zu d=%zu r=%.3f tau=%u A=%u G=%.2f seed=%llu steps=%llu%s\n",
              name, params.n, params.d, params.model.r, params.model.tau,
              params.errors_per_step, params.isolated_probability,
              static_cast<unsigned long long>(params.seed),
              static_cast<unsigned long long>(steps),
              params.enforce_r3 ? "" : "  (R3 relaxed)");
}

}  // namespace acn::bench
