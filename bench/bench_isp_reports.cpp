// Extension bench for the motivating use-case of §I: report-storm
// suppression over the ISP substrate. A fleet of home gateways runs the
// full pipeline (detector banks -> snapshots -> local characterization);
// faults are injected at gateways (isolated) and at aggregation/regional
// routers and service backends (massive). The report centre compares the
// naive policy (every abnormal gateway calls support) against the paper's
// policy (only isolated anomalies call; one alert per network event).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "detect/ewma.hpp"
#include "net/monitoring.hpp"

int main() {
  acn::TopologyConfig topo_config;
  topo_config.regions = 4;
  topo_config.aggregations_per_region = 4;
  topo_config.gateways_per_aggregation = 16;  // 256 gateways
  topo_config.services = 2;
  const acn::Topology topology(topo_config);

  acn::QosNetwork network(topology, {.base_qos = 0.92, .noise_sigma = 0.01},
                          /*seed=*/5150);
  acn::FaultInjector faults;
  acn::Rng rng(2014);

  // Fault plan over 400 ticks: a stream of gateway-local faults plus a few
  // subtree outages. Severities are randomized per fault.
  const std::uint64_t horizon = 400;
  std::uint64_t injected_isolated = 0;
  std::uint64_t injected_network = 0;
  for (std::uint64_t t = 16; t < horizon; t += 16) {
    for (int i = 0; i < 3; ++i) {
      faults.inject({acn::FaultSite::kGateway,
                     static_cast<std::size_t>(rng.uniform_int(
                         static_cast<std::uint64_t>(topology.gateway_count()))),
                     0.3 + 0.3 * rng.uniform(), t + rng.uniform_int(std::uint64_t{8}),
                     8});
      ++injected_isolated;
    }
  }
  for (const std::uint64_t t : {std::uint64_t{64}, std::uint64_t{192}, std::uint64_t{320}}) {
    faults.inject({acn::FaultSite::kAggregation,
                   static_cast<std::size_t>(
                       rng.uniform_int(static_cast<std::uint64_t>(topology.aggregation_count()))),
                   0.5, t, 16});
    ++injected_network;
  }
  faults.inject({acn::FaultSite::kRegion, 1, 0.45, 128, 16});
  faults.inject({acn::FaultSite::kServiceBackend, 0, 0.4, 256, 16});
  injected_network += 2;

  acn::SwarmConfig swarm_config;
  swarm_config.model = {.r = 0.04, .tau = 3};
  swarm_config.snapshot_interval = 8;
  acn::EwmaDetector prototype({.alpha = 0.3, .k_sigma = 5.0, .warmup = 6});
  acn::MonitoringSwarm swarm(topology, swarm_config, prototype);
  acn::ReportCenter centre;

  for (std::uint64_t t = 0; t < horizon; ++t) {
    if (const auto outcome = swarm.tick(network, faults)) centre.ingest(*outcome);
  }

  std::printf("# ISP report-storm suppression; %zu gateways, %llu ticks\n\n",
              topology.gateway_count(), static_cast<unsigned long long>(horizon));
  acn::Table table({"metric", "value"});
  table.add_row({"injected gateway-local faults", acn::fmt(injected_isolated, 0)});
  table.add_row({"injected network-level faults", acn::fmt(injected_network, 0)});
  table.add_row({"snapshots", acn::fmt(centre.snapshots(), 0)});
  table.add_row({"support calls, naive policy", acn::fmt(centre.naive_calls(), 0)});
  table.add_row({"support calls, paper policy", acn::fmt(centre.filtered_calls(), 0)});
  table.add_row({"network alerts to OTT", acn::fmt(centre.network_alerts(), 0)});
  table.add_row({"unresolved verdicts", acn::fmt(centre.unresolved_count(), 0)});
  table.add_row({"suppression ratio", acn::fmt(centre.suppression_ratio(), 3)});
  table.print();
  std::printf(
      "\n# Shape check: the paper policy suppresses the large majority of calls\n"
      "# during subtree outages while still surfacing gateway-local faults.\n");
  return 0;
}
