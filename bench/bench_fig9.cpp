// Figure 9: |U_k| / |A_k| as a function of A and G when restriction R3 does
// NOT hold. The paper's observation: the curves match Figure 7 — relaxing
// R3 has no visible impact on the number of unresolved configurations,
// because those are essentially caused by superposed *massive* errors.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "sim_harness.hpp"

int main() {
  const std::vector<std::uint32_t> error_counts = {1, 5, 10, 20, 30, 40, 50, 60};
  const std::vector<double> isolated_shares = {0.0, 0.3, 0.5, 0.7, 1.0};
  const std::uint64_t steps = 25;

  std::printf("# Figure 9: |U_k|/|A_k| (%%) vs A and G; R3 RELAXED\n");
  std::printf("# (compare against Figure 7: curves should be close)\n\n");

  acn::Table table({"A", "G=0.0", "G=0.3", "G=0.5", "G=0.7", "G=1.0"});
  for (const std::uint32_t a : error_counts) {
    std::vector<std::string> row = {acn::fmt(a, 0)};
    for (const double g : isolated_shares) {
      acn::ScenarioParams params;
      params.n = 1000;
      params.d = 2;
      params.model = {.r = 0.03, .tau = 3};
      params.errors_per_step = a;
      params.isolated_probability = g;
      params.enforce_r3 = false;
      params.seed = 7000 + a;  // same seeds as Figure 7 for comparability
      params.apply_calibrated_profile();
      const auto result = acn::bench::run_scenario(params, steps);
      row.push_back(acn::fmt(result.metrics.unresolved_ratio.mean() * 100.0, 2));
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\n# Shape check: columns track Figure 7 closely (R3 barely matters).\n");
  return 0;
}
