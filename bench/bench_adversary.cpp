// Extension bench (§VIII future work): collusion attacks against the
// characterization, and the clone-filter countermeasure. For a sweep of
// colluder counts, measures the fake-crowd attack's success probability
// (isolated victims silenced as "massive") and the scatter-cover attack's
// success (massive events shredded into isolated verdicts), with and
// without the defense, plus the defense's collateral damage on honest
// workloads.
#include <cstdio>
#include <vector>

#include "adversary/adversary.hpp"
#include "adversary/defense.hpp"
#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "sim/scenario.hpp"

namespace {

const acn::Params kModel{.r = 0.03, .tau = 3};
const acn::CloneFilter kFilter({.suspicion_factor = 0.2, .min_group = 3});

acn::ScenarioParams workload(std::uint64_t seed) {
  acn::ScenarioParams params;
  params.n = 600;
  params.d = 2;
  params.model = kModel;
  params.errors_per_step = 10;
  params.isolated_probability = 0.5;
  params.massive_anchor_retries = 16;
  params.seed = seed;
  return params;
}

}  // namespace

int main() {
  const std::uint64_t trials = 40;
  std::printf("# Collusion attacks vs the characterization (n=600, r=0.03, tau=3)\n");
  std::printf("# %llu trials per cell; defense = clone filter (0.2r, group >= 3)\n\n",
              static_cast<unsigned long long>(trials));

  acn::Table table({"colluders", "fake-crowd success %", "with defense %",
                    "scatter success %", "honest collateral %"});
  for (const std::size_t colluders : {2u, 3u, 4u, 6u, 8u}) {
    std::uint64_t crowd_hits = 0;
    std::uint64_t crowd_hits_defended = 0;
    std::uint64_t crowd_trials = 0;
    std::uint64_t scatter_hits = 0;
    std::uint64_t scatter_trials = 0;
    std::uint64_t honest_flips = 0;
    std::uint64_t honest_verdicts = 0;

    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      acn::ScenarioGenerator generator(workload(1000 + trial));
      const acn::ScenarioStep step = generator.advance();
      if (step.truth.abnormal.empty()) continue;

      // --- fake-crowd: silence the first truly isolated victim.
      if (!step.truth.truly_isolated.empty()) {
        ++crowd_trials;
        const acn::DeviceId victim = step.truth.truly_isolated[0];
        acn::AttackConfig attack;
        attack.strategy = acn::AttackStrategy::kFakeCrowd;
        attack.target = victim;
        attack.claim_jitter = 0.05;
        attack.seed = trial;
        // Colluders: healthy devices (never part of A_k).
        for (acn::DeviceId c = 0; c < step.state.n() && attack.colluders.size() < colluders; ++c) {
          if (!step.truth.abnormal.contains(c)) attack.colluders.push_back(c);
        }
        const auto compromised = acn::apply_attack(step.state, kModel, attack);
        acn::Characterizer attacked(compromised.observed, kModel);
        if (attacked.characterize(victim).cls == acn::AnomalyClass::kMassive) {
          ++crowd_hits;
        }
        const acn::StatePair cleaned = kFilter.filtered(compromised.observed, kModel);
        if (cleaned.is_abnormal(victim)) {
          acn::Characterizer defended(cleaned, kModel);
          if (defended.characterize(victim).cls == acn::AnomalyClass::kMassive) {
            ++crowd_hits_defended;
          }
        }
        // A victim filtered out entirely counts as not silenced-by-massive.
      }

      // --- scatter-cover: shred the first truly massive event.
      for (const auto& event : step.truth.events) {
        if (!event.massive || event.devices.size() <= colluders) continue;
        ++scatter_trials;
        acn::AttackConfig attack;
        attack.strategy = acn::AttackStrategy::kScatterCover;
        attack.target = event.devices[0];
        attack.seed = trial;
        for (std::size_t i = 0; i < colluders; ++i) {
          attack.colluders.push_back(event.devices[i + 1]);
        }
        const auto compromised = acn::apply_attack(step.state, kModel, attack);
        acn::Characterizer attacked(compromised.observed, kModel);
        if (attacked.characterize(event.devices[0]).cls ==
            acn::AnomalyClass::kIsolated) {
          ++scatter_hits;
        }
        break;  // one event per trial keeps cells comparable
      }

      // --- defense collateral on the untouched honest state.
      acn::Characterizer honest(step.state, kModel);
      const acn::StatePair cleaned = kFilter.filtered(step.state, kModel);
      acn::Characterizer filtered_chr(cleaned, kModel);
      for (const acn::DeviceId j : cleaned.abnormal()) {
        ++honest_verdicts;
        if (filtered_chr.characterize(j).cls != honest.characterize(j).cls) {
          ++honest_flips;
        }
      }
    }

    const auto pct = [](std::uint64_t hits, std::uint64_t total) {
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / total;
    };
    table.add_row({acn::fmt(static_cast<double>(colluders), 0),
                   acn::fmt(pct(crowd_hits, crowd_trials), 1),
                   acn::fmt(pct(crowd_hits_defended, crowd_trials), 1),
                   acn::fmt(pct(scatter_hits, scatter_trials), 1),
                   acn::fmt(pct(honest_flips, honest_verdicts), 2)});
  }
  table.print();
  std::printf(
      "\n# Shape checks: fake-crowd flips ~100%% once colluders >= tau and the\n"
      "# clone filter drives it back to ~0 with negligible honest collateral;\n"
      "# scatter-cover needs enough insiders to starve every dense motion.\n");
  return 0;
}
