// Ablation bench (extension): sensitivity of the characterization quality
// to the two model parameters around the paper's dimensioning point
// (r = 0.03, tau = 3 at n = 1000) — the trade-off §VII-A dimensions
// analytically, measured on the actual generator:
//   * unresolved ratio |U_k|/|A_k| (cost of ambiguity),
//   * missed-detection rate with R3 relaxed (cost of model optimism),
//   * share of massive devices Theorem 6 alone already decides (cheapness).
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "sim_harness.hpp"

int main() {
  const std::vector<double> radii = {0.01, 0.02, 0.03, 0.05, 0.08};
  const std::vector<std::uint32_t> taus = {2, 3, 4, 5};
  const std::uint64_t steps = 15;

  std::printf("# Ablation: r and tau sweeps around the dimensioning point\n");
  std::printf("# n=1000 d=2 A=20 G=0.5, %llu steps per cell\n\n",
              static_cast<unsigned long long>(steps));

  std::printf("## radius sweep (tau = 3)\n");
  acn::Table rt({"r", "|U_k|/|A_k| %", "missed % (R3 off)", "Thm6 share of massive %"});
  for (const double r : radii) {
    acn::ScenarioParams params;
    params.n = 1000;
    params.d = 2;
    params.model = {.r = r, .tau = 3};
    params.errors_per_step = 20;
    params.isolated_probability = 0.5;
    params.seed = 31337;
    const auto on = acn::bench::run_scenario(params, steps);
    params.enforce_r3 = false;
    const auto off = acn::bench::run_scenario(params, steps);
    const double massive_total =
        on.metrics.massive6_share.mean() + on.metrics.massive7_share.mean();
    rt.add_row({acn::fmt(r, 3), acn::fmt(on.metrics.unresolved_ratio.mean() * 100, 2),
                acn::fmt(off.metrics.pooled_missed_rate() * 100, 2),
                acn::fmt(massive_total <= 0.0
                             ? 0.0
                             : 100.0 * on.metrics.massive6_share.mean() / massive_total,
                         2)});
  }
  rt.print();

  std::printf("\n## tau sweep (r = 0.03)\n");
  acn::Table tt({"tau", "|U_k|/|A_k| %", "missed % (R3 off)", "isolated share %"});
  for (const std::uint32_t tau : taus) {
    acn::ScenarioParams params;
    params.n = 1000;
    params.d = 2;
    params.model = {.r = 0.03, .tau = tau};
    params.errors_per_step = 20;
    params.isolated_probability = 0.5;
    params.seed = 31338;
    const auto on = acn::bench::run_scenario(params, steps);
    params.enforce_r3 = false;
    const auto off = acn::bench::run_scenario(params, steps);
    tt.add_row({acn::fmt(tau, 0), acn::fmt(on.metrics.unresolved_ratio.mean() * 100, 2),
                acn::fmt(off.metrics.pooled_missed_rate() * 100, 2),
                acn::fmt(on.metrics.isolated_share.mean(), 2)});
  }
  tt.print();

  std::printf(
      "\n# Reading: larger r inflates spurious dense motions (more unresolved,\n"
      "# more missed detections); larger tau demands bigger groups and pushes\n"
      "# borderline errors into the isolated class.\n");
  return 0;
}
