// Figure 8: proportion of missed detections — devices hit by a *truly
// isolated* error that the model nevertheless classifies as massive —
// as a function of A and G, when restriction R3 does NOT hold (isolated
// errors may land next to other anomalies and merge into dense motions).
//
// Paper settings: n = 1000, r = 0.03, tau = 3. Shape to reproduce: the rate
// stays below ~10% in the worst case and is roughly flat in A.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "sim_harness.hpp"

int main() {
  const std::vector<std::uint32_t> error_counts = {1, 5, 10, 20, 30, 40, 50, 60};
  const std::vector<double> isolated_shares = {0.0, 0.3, 0.5, 0.7, 1.0};
  const std::uint64_t steps = 25;

  std::printf("# Figure 8: missed-detection rate (%%) vs A and G; R3 RELAXED\n");
  std::printf("# (truly isolated devices classified massive / truly isolated)\n\n");

  acn::Table table({"A", "G=0.0", "G=0.3", "G=0.5", "G=0.7", "G=1.0"});
  for (const std::uint32_t a : error_counts) {
    std::vector<std::string> row = {acn::fmt(a, 0)};
    for (const double g : isolated_shares) {
      acn::ScenarioParams params;
      params.n = 1000;
      params.d = 2;
      params.model = {.r = 0.03, .tau = 3};
      params.errors_per_step = a;
      params.isolated_probability = g;
      params.enforce_r3 = false;  // the whole point of Figure 8
      params.seed = 8000 + a;
      params.apply_calibrated_profile();
      const auto result = acn::bench::run_scenario(params, steps);
      row.push_back(acn::fmt(result.metrics.pooled_missed_rate() * 100.0, 2));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\n# Shape checks: worst case stays below ~10%%, roughly flat in A;\n"
      "# G=0.0 has no truly isolated devices unless balls are underfull.\n");
  return 0;
}
