// Figure 7: ratio of unresolved configurations |U_k| / |A_k| as a function
// of the number A of errors per interval and of the isolated-error share G
// (restrictions R1-R3 hold). Paper settings: n = 1000, r = 0.03, tau = 3,
// b = 0.005; A sweeps [0, 60]; G in {0.0, 0.3, 0.5, 0.7, 1.0}.
//
// Shape to reproduce: a single error yields no unresolved configuration;
// the ratio grows with A, and massive-heavy workloads (small G) dominate —
// unresolved configurations come from superposed massive errors.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "sim_harness.hpp"

int main() {
  const std::vector<std::uint32_t> error_counts = {1, 5, 10, 20, 30, 40, 50, 60};
  const std::vector<double> isolated_shares = {0.0, 0.3, 0.5, 0.7, 1.0};
  const std::uint64_t steps = 25;

  std::printf("# Figure 7: |U_k|/|A_k| (%%) vs A and G; n=1000 r=0.03 tau=3, R3 on\n");
  std::printf("# steps per cell = %llu, seed = 7000 + A\n\n",
              static_cast<unsigned long long>(steps));

  acn::Table table({"A", "G=0.0", "G=0.3", "G=0.5", "G=0.7", "G=1.0"});
  for (const std::uint32_t a : error_counts) {
    std::vector<std::string> row = {acn::fmt(a, 0)};
    for (const double g : isolated_shares) {
      acn::ScenarioParams params;
      params.n = 1000;
      params.d = 2;
      params.model = {.r = 0.03, .tau = 3};
      params.errors_per_step = a;
      params.isolated_probability = g;
      params.enforce_r3 = true;
      params.seed = 7000 + a;
      params.apply_calibrated_profile();
      const auto result = acn::bench::run_scenario(params, steps);
      row.push_back(acn::fmt(result.metrics.unresolved_ratio.mean() * 100.0, 2));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\n# Shape checks: row A=1 ~ 0 everywhere; ratios grow with A; G=0.0\n"
      "# (all massive) is the largest column, G=1.0 (all isolated) ~ 0.\n");
  return 0;
}
