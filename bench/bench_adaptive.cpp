// Extension bench for §VII-C (granularity of the snapshots): a fixed-rate
// monitor versus the adaptive controller. Errors arrive as a homogeneous
// stream in continuous ticks; a monitor that samples every Delta ticks sees
// ~rate*Delta errors per interval, and the unresolved ratio grows with that
// superposition (Figure 7). The adaptive sampler shortens its interval
// under anomaly pressure, buying back certainty exactly as the paper
// argues, while sampling lazily when the fleet is quiet.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "online/adaptive.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace {

struct Outcome {
  double unresolved_ratio = 0.0;
  double snapshots = 0.0;
  double mean_interval = 0.0;
};

Outcome run(double error_rate, std::uint64_t horizon, bool adaptive,
            std::uint64_t fixed_interval, std::uint64_t seed) {
  acn::ScenarioParams params;
  params.n = 1000;
  params.d = 2;
  params.model = {.r = 0.03, .tau = 3};
  params.errors_per_step = 1;  // overridden per interval
  params.isolated_probability = 0.3;
  params.massive_anchor_retries = 16;
  params.concomitance = 0.3;
  params.seed = seed;
  acn::ScenarioGenerator generator(params);

  acn::AdaptiveSampler sampler({.min_interval = 2,
                                .max_interval = 32,
                                .initial_interval = fixed_interval,
                                .decrease = 0.5,
                                .increase = 1.5});
  acn::RunMetrics metrics;
  double carried_error_mass = 0.0;
  std::uint64_t now = 0;
  std::uint64_t snapshots = 0;
  double interval_sum = 0.0;
  std::uint64_t interval = fixed_interval;
  while (now < horizon) {
    carried_error_mass += error_rate * static_cast<double>(interval);
    const auto errors = static_cast<std::uint32_t>(carried_error_mass);
    carried_error_mass -= errors;
    const acn::ScenarioStep step = generator.advance(errors);
    metrics.add(acn::evaluate_step(step, params.model));
    ++snapshots;
    interval_sum += static_cast<double>(interval);
    now += interval;
    if (adaptive) {
      interval = sampler.next_interval(!step.truth.abnormal.empty());
    }
  }
  return Outcome{metrics.unresolved_ratio.mean(),
                 static_cast<double>(snapshots),
                 interval_sum / static_cast<double>(snapshots)};
}

}  // namespace

int main() {
  const std::uint64_t horizon = 600;
  std::printf("# Adaptive vs fixed snapshot scheduling; error rate sweep,\n");
  std::printf("# horizon %llu ticks, n=1000 r=0.03 tau=3 (calibrated profile)\n\n",
              static_cast<unsigned long long>(horizon));

  acn::Table table({"errors/tick", "policy", "|U_k|/|A_k| %", "snapshots",
                    "mean interval"});
  for (const double rate : {0.5, 1.5, 3.0}) {
    const Outcome fixed = run(rate, horizon, false, 16, 4242);
    const Outcome adaptive = run(rate, horizon, true, 16, 4242);
    table.add_row({acn::fmt(rate, 1), "fixed(16)",
                   acn::fmt(fixed.unresolved_ratio * 100, 2),
                   acn::fmt(fixed.snapshots, 0), acn::fmt(fixed.mean_interval, 1)});
    table.add_row({acn::fmt(rate, 1), "adaptive",
                   acn::fmt(adaptive.unresolved_ratio * 100, 2),
                   acn::fmt(adaptive.snapshots, 0),
                   acn::fmt(adaptive.mean_interval, 1)});
  }
  table.print();
  std::printf(
      "\n# Shape checks: at higher error rates the adaptive policy samples\n"
      "# more often and cuts the unresolved ratio versus fixed(16), the\n"
      "# §VII-C argument measured end to end.\n");
  return 0;
}
