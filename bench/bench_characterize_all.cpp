// End-to-end per-interval pipeline timings over the §VII-A workload — the
// perf trajectory anchor for the snapshot-level motion plane (ISSUE 2), the
// locality-bounded incremental engine (ISSUE 3), and the shard-parallel
// pipeline (ISSUE 8).
//
// For every (n, A) cell the bench generates `steps` scenario intervals and
// streams them through a FrameEngine exactly like the online monitor does:
// per interval the engine rolls its StatePair in place, re-buckets only the
// devices that moved (halo-exchange routing + per-shard apply), rebuilds the
// motion plane over the 4r-closure of A_k, and characterizes every abnormal
// device. Timings are per observe() call and broken down by phase from the
// engine's FrameStats. Scenario generation is excluded. A `scratch ms`
// column times the seed-style from-scratch rebuild (fresh Characterizer per
// interval) whose verdicts every engine run is checked against — the
// incremental path must match it byte for byte, for every thread and shard
// count.
//
// A second table reports the pooled engine's per-phase lane skew: max vs
// mean busy ms across worker lanes for each fan-out phase, plus the serial
// halo-exchange ms — the shard-balance health check. (On a single-core
// runner the pool collapses to one lane, so max == mean there; the columns
// carry information on multi-core hosts.)
//
// The full grid ends with n=1,000,000 scale rows: the same pipeline at one
// million devices, the engine's per-interval cost staying a function of the
// 4r-closure, not n.
//
// `--smoke` runs a single small cell (CI-sized, 4-lane pool over a 3-shard
// grid) and exits non-zero if the engine (serial or pooled/sharded) ever
// disagrees with the from-scratch rebuild.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "online/monitor.hpp"
#include "sim/scenario.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct CellResult {
  double grid_ms_per_step = 0.0;   // state roll + fleet-grid re-bucketing
  double plane_ms_per_step = 0.0;  // motion-plane build (4r-closure)
  double characterize_ms_per_step = 0.0;
  double serial_ms_per_step = 0.0;    // engine, threads=1
  double parallel_ms_per_step = 0.0;  // engine, pooled + sharded
  double scratch_ms_per_step = 0.0;   // from-scratch rebuild (reference)
  double abnormal_mean = 0.0;
  bool ok = true;
};

/// Per-phase lane skew of the pooled engine, averaged over the steps.
struct ShardTiming {
  unsigned shards = 0;
  double halo_ms = 0.0;  // serial halo-exchange (staging) slice of grid_ms
  double state_max = 0.0, state_mean = 0.0;
  double grid_max = 0.0, grid_mean = 0.0;
  double plane_max = 0.0, plane_mean = 0.0;  // enumeration fan-out
  double char_max = 0.0, char_mean = 0.0;
};

/// Streams the generated intervals through one engine; returns per-step
/// verdicts, accumulating phase timings into `cell` and lane skew into
/// `shard` when given.
std::vector<acn::CharacterizationSets> run_engine(
    const std::vector<acn::ScenarioStep>& generated, const acn::ScenarioParams& params,
    unsigned threads, bool force_fanout, unsigned shards, CellResult* phases,
    ShardTiming* shard, double* total_ms) {
  // force_fanout drops the serial-fallback thresholds to 1 so the pool
  // machinery genuinely runs in the smoke cell (whose |A_k| sits below the
  // production grain) even on single-core CI.
  acn::CharacterizeOptions options;
  if (force_fanout) options.parallel_grain = 1;
  acn::FrameEngine engine(acn::FrameEngine::Config{
      .model = params.model,
      .characterize = options,
      .threads = threads,
      .component_fanout = force_fanout ? 1u : 2u,
      .shards = shards});
  (void)engine.observe(generated.front().state.prev(), acn::DeviceSet{});

  std::vector<acn::CharacterizationSets> sets;
  sets.reserve(generated.size());
  const auto start = Clock::now();
  for (const acn::ScenarioStep& step : generated) {
    auto result = engine.observe(step.state.curr(), step.state.abnormal());
    sets.push_back(std::move(result->sets));
    const acn::FrameStats& stats = engine.last_stats();
    if (phases != nullptr) {
      phases->grid_ms_per_step += stats.state_ms + stats.grid_ms;
      phases->plane_ms_per_step += stats.plane_ms;
      phases->characterize_ms_per_step += stats.characterize_ms;
    }
    if (shard != nullptr) {
      shard->shards = stats.shards;
      shard->halo_ms += stats.halo_ms;
      shard->state_max += stats.state_lanes.max_ms;
      shard->state_mean += stats.state_lanes.mean_ms;
      shard->grid_max += stats.grid_lanes.max_ms;
      shard->grid_mean += stats.grid_lanes.mean_ms;
      shard->plane_max += stats.plane_enum_lanes.max_ms;
      shard->plane_mean += stats.plane_enum_lanes.mean_ms;
      shard->char_max += stats.characterize_lanes.max_ms;
      shard->char_mean += stats.characterize_lanes.mean_ms;
    }
  }
  *total_ms = ms_since(start);
  return sets;
}

CellResult run_cell(std::size_t n, std::uint32_t errors, std::uint64_t steps,
                    bool smoke, ShardTiming* shard) {
  acn::ScenarioParams params;
  params.n = n;
  params.errors_per_step = errors;
  params.seed = 42;

  std::vector<acn::ScenarioStep> generated;
  generated.reserve(steps);
  acn::ScenarioGenerator generator(params);
  for (std::uint64_t k = 0; k < steps; ++k) generated.push_back(generator.advance());

  CellResult result;
  for (const acn::ScenarioStep& step : generated) {
    result.abnormal_mean += static_cast<double>(step.state.abnormal().size());
  }
  result.abnormal_mean /= static_cast<double>(steps);

  // Warm-up pass (page in the state, stabilize the allocator), untimed.
  {
    acn::Characterizer warm(generated[0].state, params.model);
    (void)warm.characterize_all();
  }

  // From-scratch reference: fresh Characterizer per interval — what every
  // consumer paid before the engine, and the verdict ground truth.
  std::vector<acn::CharacterizationSets> scratch_sets;
  scratch_sets.reserve(steps);
  const auto scratch_start = Clock::now();
  for (const acn::ScenarioStep& step : generated) {
    acn::Characterizer characterizer(step.state, params.model);
    scratch_sets.push_back(characterizer.characterize_all());
  }
  result.scratch_ms_per_step = ms_since(scratch_start) / static_cast<double>(steps);

  double serial_ms = 0.0;
  const std::vector<acn::CharacterizationSets> serial_sets = run_engine(
      generated, params, 1, false, 0, &result, nullptr, &serial_ms);
  result.serial_ms_per_step = serial_ms / static_cast<double>(steps);
  result.grid_ms_per_step /= static_cast<double>(steps);
  result.plane_ms_per_step /= static_cast<double>(steps);
  result.characterize_ms_per_step /= static_cast<double>(steps);

  // Pooled path: hardware concurrency, shards sized to the lane count; in
  // smoke mode an explicit 4-lane pool over 3 shards, so the pool AND the
  // cross-shard halo reads are exercised even on single-core CI.
  double parallel_ms = 0.0;
  const std::vector<acn::CharacterizationSets> parallel_sets =
      run_engine(generated, params, smoke ? 4 : 0, smoke, smoke ? 3 : 0,
                 nullptr, shard, &parallel_ms);
  result.parallel_ms_per_step = parallel_ms / static_cast<double>(steps);
  if (shard != nullptr) {
    const auto divisor = static_cast<double>(steps);
    shard->halo_ms /= divisor;
    shard->state_max /= divisor;
    shard->state_mean /= divisor;
    shard->grid_max /= divisor;
    shard->grid_mean /= divisor;
    shard->plane_max /= divisor;
    shard->plane_mean /= divisor;
    shard->char_max /= divisor;
    shard->char_mean /= divisor;
  }

  for (std::size_t k = 0; k < generated.size(); ++k) {
    const auto& truth = scratch_sets[k];
    if (truth.isolated.size() + truth.massive.size() + truth.unresolved.size() !=
        generated[k].state.abnormal().size()) {
      result.ok = false;
    }
    // Byte-identical verdicts: incremental engine (any pool size, any shard
    // count) vs the from-scratch rebuild — the pipeline's core guarantee.
    for (const auto* sets : {&serial_sets[k], &parallel_sets[k]}) {
      if (sets->isolated != truth.isolated || sets->massive != truth.massive ||
          sets->unresolved != truth.unresolved) {
        result.ok = false;
      }
    }
  }
  return result;
}

// --- telemetry on/off overhead -------------------------------------------

struct TelemetryOverhead {
  double off_ms_per_step = 0.0;  ///< min over reps
  double on_ms_per_step = 0.0;
  bool identical = true;  ///< every Decision field byte-identical on vs off
};

bool same_decision(const acn::Decision& a, const acn::Decision& b) {
  return a.cls == b.cls && a.rule == b.rule && a.exact == b.exact &&
         a.maximal_motion_count == b.maximal_motion_count &&
         a.dense_motion_count == b.dense_motion_count &&
         a.collections_tested == b.collections_tested;
}

/// Streams one generated scenario through two OnlineMonitors back to back —
/// telemetry off, then on — and times both. The telemetry layer only reads
/// interval outputs, so the verdict streams must match field for field;
/// a mismatch fails the bench (exit code), same as the scratch-vs-engine
/// conformance above.
TelemetryOverhead run_telemetry_overhead(std::size_t n, std::uint32_t errors,
                                         std::uint64_t steps, int reps) {
  acn::ScenarioParams params;
  params.n = n;
  params.errors_per_step = errors;
  params.seed = 42;
  std::vector<acn::ScenarioStep> generated;
  generated.reserve(steps);
  acn::ScenarioGenerator generator(params);
  for (std::uint64_t k = 0; k < steps; ++k) generated.push_back(generator.advance());

  const auto run = [&](bool telemetry,
                       std::vector<acn::IntervalReport>* reports) {
    acn::OnlineMonitor::Config config;
    config.model = params.model;
    if (telemetry) {
      config.telemetry = acn::obs::TelemetryConfig{.history = 64, .regions = 8};
    }
    acn::OnlineMonitor monitor(config);
    (void)monitor.observe(generated.front().state.prev(), acn::DeviceSet{});
    const auto start = Clock::now();
    for (const acn::ScenarioStep& step : generated) {
      acn::IntervalReport report =
          monitor.observe(step.state.curr(), step.state.abnormal());
      if (reports != nullptr) reports->push_back(std::move(report));
    }
    return ms_since(start) / static_cast<double>(generated.size());
  };

  TelemetryOverhead result;
  std::vector<acn::IntervalReport> off_reports;
  std::vector<acn::IntervalReport> on_reports;
  result.off_ms_per_step = run(false, &off_reports);
  result.on_ms_per_step = run(true, &on_reports);
  for (int rep = 1; rep < reps; ++rep) {
    result.off_ms_per_step = std::min(result.off_ms_per_step, run(false, nullptr));
    result.on_ms_per_step = std::min(result.on_ms_per_step, run(true, nullptr));
  }

  for (std::size_t k = 0; k < off_reports.size(); ++k) {
    const acn::IntervalReport& off = off_reports[k];
    const acn::IntervalReport& on = on_reports[k];
    if (off.isolated != on.isolated || off.massive != on.massive ||
        off.unresolved != on.unresolved ||
        off.decisions.size() != on.decisions.size()) {
      result.identical = false;
      continue;
    }
    for (const auto& [device, decision] : off.decisions) {
      const auto it = on.decisions.find(device);
      if (it == on.decisions.end() || !same_decision(decision, it->second)) {
        result.identical = false;
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::printf("# bench_characterize_all  d=2 r=0.03 tau=3 G=0.5 seed=42%s\n",
              smoke ? "  (smoke)" : "");
  std::printf(
      "| n | A | mean |A_k| | grid ms | plane ms | char ms | serial ms/step "
      "| parallel ms/step | scratch ms/step | ok |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|---|\n");

  struct Cell {
    std::size_t n;
    std::uint32_t a;
    std::uint64_t steps;
  };
  // Device density (and so ball population and family sizes) grows with n;
  // fewer repetitions keep the large cells recordable quickly. The scale
  // row runs the identical pipeline at one million devices. A=80 at n=1M
  // is deliberately absent: at 20x the n=50000 ambient density the
  // 4r-closure components' motion-family arenas exceed a 128 GB machine
  // (std::bad_alloc) — streaming the per-component arenas is future work.
  const Cell cells_full[] = {
      {1000, 10, 5},   {1000, 40, 5},   {1000, 80, 5},
      {5000, 10, 3},   {5000, 40, 3},   {5000, 80, 3},
      {20000, 10, 2},  {20000, 40, 2},  {20000, 80, 2},
      {50000, 10, 2},  {50000, 40, 2},  {50000, 80, 2},
      {1000000, 10, 2},
  };
  const Cell cells_smoke[] = {{1000, 10, 2}};
  const Cell* cells = smoke ? cells_smoke : cells_full;
  const std::size_t cell_count =
      smoke ? sizeof(cells_smoke) / sizeof(Cell) : sizeof(cells_full) / sizeof(Cell);

  std::vector<ShardTiming> shard_rows(cell_count);
  bool all_ok = true;
  for (std::size_t i = 0; i < cell_count; ++i) {
    const CellResult cell =
        run_cell(cells[i].n, cells[i].a, cells[i].steps, smoke, &shard_rows[i]);
    all_ok = all_ok && cell.ok;
    std::printf(
        "| %zu | %u | %.1f | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f | %s |\n",
        cells[i].n, cells[i].a, cell.abnormal_mean, cell.grid_ms_per_step,
        cell.plane_ms_per_step, cell.characterize_ms_per_step,
        cell.serial_ms_per_step, cell.parallel_ms_per_step,
        cell.scratch_ms_per_step, cell.ok ? "yes" : "NO");
    std::fflush(stdout);
  }

  // Lane-skew table for the pooled engine: per phase, max vs mean busy ms
  // across the lanes that ran (max/mean gap = load imbalance the LPT
  // dispatch and shard striping are there to close).
  std::printf("\n# shard-phase skew (pooled engine, per-step lane busy ms, "
              "max/mean)\n");
  std::printf(
      "| n | A | shards | halo ms | state | grid | plane | characterize |\n");
  std::printf("|---|---|---|---|---|---|---|---|\n");
  for (std::size_t i = 0; i < cell_count; ++i) {
    const ShardTiming& row = shard_rows[i];
    std::printf(
        "| %zu | %u | %u | %.3f | %.3f/%.3f | %.3f/%.3f | %.3f/%.3f | "
        "%.3f/%.3f |\n",
        cells[i].n, cells[i].a, row.shards, row.halo_ms, row.state_max,
        row.state_mean, row.grid_max, row.grid_mean, row.plane_max,
        row.plane_mean, row.char_max, row.char_mean);
  }
  // Telemetry overhead: the same stream through the OnlineMonitor with the
  // telemetry layer off, then on, back to back (min over reps). The rows
  // are embedded JSON so record_bench.sh's regression gate joins them by
  // "name" like the hostile bench's rows.
  const std::size_t tel_n = smoke ? 1000 : 20000;
  const std::uint32_t tel_a = smoke ? 10 : 80;
  const std::uint64_t tel_steps = smoke ? 2 : 4;
  const int tel_reps = smoke ? 2 : 3;
  const TelemetryOverhead tel =
      run_telemetry_overhead(tel_n, tel_a, tel_steps, tel_reps);
  const double overhead_pct =
      tel.off_ms_per_step == 0.0
          ? 0.0
          : 100.0 * (tel.on_ms_per_step - tel.off_ms_per_step) /
                tel.off_ms_per_step;
  std::printf(
      "\n# telemetry overhead (OnlineMonitor, n=%zu A=%u, back-to-back, min "
      "of %d reps; verdicts must match field for field)\n",
      tel_n, tel_a, tel_reps);
  std::printf("{\"name\":\"telemetry-off\",\"ms_per_step\":%.3f}\n",
              tel.off_ms_per_step);
  std::printf(
      "{\"name\":\"telemetry-on\",\"ms_per_step\":%.3f,\"overhead_pct\":%.2f,"
      "\"identical\":%s}\n",
      tel.on_ms_per_step, overhead_pct, tel.identical ? "true" : "false");
  all_ok = all_ok && tel.identical;

  std::fflush(stdout);
  return all_ok ? 0 : 1;
}
