// End-to-end per-interval pipeline timings over the §VII-A workload — the
// perf trajectory anchor for the snapshot-level motion plane (ISSUE 2) and
// the locality-bounded incremental engine (ISSUE 3).
//
// For every (n, A) cell the bench generates `steps` scenario intervals and
// streams them through a FrameEngine exactly like the online monitor does:
// per interval the engine rolls its StatePair in place, re-buckets only the
// devices that moved, rebuilds the motion plane over the 4r-closure of A_k,
// and characterizes every abnormal device. Timings are per observe() call
// and broken down by phase (state roll + grid update / plane build /
// characterize) from the engine's FrameStats. Scenario generation is
// excluded. A `scratch ms` column times the seed-style from-scratch rebuild
// (fresh Characterizer per interval) whose verdicts every engine run is
// checked against — the incremental path must match it byte for byte.
//
// `--smoke` runs a single small cell (CI-sized) and exits non-zero if the
// engine (serial or pooled) ever disagrees with the from-scratch rebuild.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "sim/scenario.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct CellResult {
  double grid_ms_per_step = 0.0;   // state roll + fleet-grid re-bucketing
  double plane_ms_per_step = 0.0;  // motion-plane build (4r-closure)
  double characterize_ms_per_step = 0.0;
  double serial_ms_per_step = 0.0;    // engine, threads=1
  double parallel_ms_per_step = 0.0;  // engine, pooled
  double scratch_ms_per_step = 0.0;   // from-scratch rebuild (reference)
  double abnormal_mean = 0.0;
  bool ok = true;
};

/// Streams the generated intervals through one engine; returns per-step
/// verdicts and accumulates phase timings into `cell` when `phases` is set.
std::vector<acn::CharacterizationSets> run_engine(
    const std::vector<acn::ScenarioStep>& generated, const acn::ScenarioParams& params,
    unsigned threads, bool force_fanout, CellResult* phases, double* total_ms) {
  // force_fanout drops the serial-fallback thresholds to 1 so the pool
  // machinery genuinely runs in the smoke cell (whose |A_k| sits below the
  // production grain) even on single-core CI.
  acn::CharacterizeOptions options;
  if (force_fanout) options.parallel_grain = 1;
  acn::FrameEngine engine(acn::FrameEngine::Config{
      .model = params.model,
      .characterize = options,
      .threads = threads,
      .component_fanout = force_fanout ? 1u : 2u});
  (void)engine.observe(generated.front().state.prev(), acn::DeviceSet{});

  std::vector<acn::CharacterizationSets> sets;
  sets.reserve(generated.size());
  const auto start = Clock::now();
  for (const acn::ScenarioStep& step : generated) {
    auto result = engine.observe(step.state.curr(), step.state.abnormal());
    sets.push_back(std::move(result->sets));
    if (phases != nullptr) {
      const acn::FrameStats& stats = engine.last_stats();
      phases->grid_ms_per_step += stats.state_ms + stats.grid_ms;
      phases->plane_ms_per_step += stats.plane_ms;
      phases->characterize_ms_per_step += stats.characterize_ms;
    }
  }
  *total_ms = ms_since(start);
  return sets;
}

CellResult run_cell(std::size_t n, std::uint32_t errors, std::uint64_t steps,
                    bool smoke) {
  acn::ScenarioParams params;
  params.n = n;
  params.errors_per_step = errors;
  params.seed = 42;

  std::vector<acn::ScenarioStep> generated;
  generated.reserve(steps);
  acn::ScenarioGenerator generator(params);
  for (std::uint64_t k = 0; k < steps; ++k) generated.push_back(generator.advance());

  CellResult result;
  for (const acn::ScenarioStep& step : generated) {
    result.abnormal_mean += static_cast<double>(step.state.abnormal().size());
  }
  result.abnormal_mean /= static_cast<double>(steps);

  // Warm-up pass (page in the state, stabilize the allocator), untimed.
  {
    acn::Characterizer warm(generated[0].state, params.model);
    (void)warm.characterize_all();
  }

  // From-scratch reference: fresh Characterizer per interval — what every
  // consumer paid before the engine, and the verdict ground truth.
  std::vector<acn::CharacterizationSets> scratch_sets;
  scratch_sets.reserve(steps);
  const auto scratch_start = Clock::now();
  for (const acn::ScenarioStep& step : generated) {
    acn::Characterizer characterizer(step.state, params.model);
    scratch_sets.push_back(characterizer.characterize_all());
  }
  result.scratch_ms_per_step = ms_since(scratch_start) / static_cast<double>(steps);

  double serial_ms = 0.0;
  const std::vector<acn::CharacterizationSets> serial_sets =
      run_engine(generated, params, 1, false, &result, &serial_ms);
  result.serial_ms_per_step = serial_ms / static_cast<double>(steps);
  result.grid_ms_per_step /= static_cast<double>(steps);
  result.plane_ms_per_step /= static_cast<double>(steps);
  result.characterize_ms_per_step /= static_cast<double>(steps);

  // Pooled path: hardware concurrency; in smoke mode an explicit 4-lane
  // pool, so the pool machinery is exercised even on single-core CI.
  double parallel_ms = 0.0;
  const std::vector<acn::CharacterizationSets> parallel_sets =
      run_engine(generated, params, smoke ? 4 : 0, smoke, nullptr, &parallel_ms);
  result.parallel_ms_per_step = parallel_ms / static_cast<double>(steps);

  for (std::size_t k = 0; k < generated.size(); ++k) {
    const auto& truth = scratch_sets[k];
    if (truth.isolated.size() + truth.massive.size() + truth.unresolved.size() !=
        generated[k].state.abnormal().size()) {
      result.ok = false;
    }
    // Byte-identical verdicts: incremental engine (any pool size) vs the
    // from-scratch rebuild — the pipeline's core guarantee.
    for (const auto* sets : {&serial_sets[k], &parallel_sets[k]}) {
      if (sets->isolated != truth.isolated || sets->massive != truth.massive ||
          sets->unresolved != truth.unresolved) {
        result.ok = false;
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::printf("# bench_characterize_all  d=2 r=0.03 tau=3 G=0.5 seed=42%s\n",
              smoke ? "  (smoke)" : "");
  std::printf(
      "| n | A | mean |A_k| | grid ms | plane ms | char ms | serial ms/step "
      "| parallel ms/step | scratch ms/step | ok |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|---|\n");

  const std::size_t ns_full[] = {1000, 5000, 20000, 50000};
  const std::uint32_t as_full[] = {10, 40, 80};
  const std::size_t ns_smoke[] = {1000};
  const std::uint32_t as_smoke[] = {10};

  const auto* ns = smoke ? ns_smoke : ns_full;
  const auto* as = smoke ? as_smoke : as_full;
  const std::size_t n_count = smoke ? 1 : 4;
  const std::size_t a_count = smoke ? 1 : 3;
  // Device density (and so ball population and family sizes) grows with n;
  // fewer repetitions keep the large cells recordable quickly.
  const std::uint64_t steps_full[] = {5, 3, 2, 2};

  bool all_ok = true;
  for (std::size_t i = 0; i < n_count; ++i) {
    for (std::size_t j = 0; j < a_count; ++j) {
      const std::uint64_t steps = smoke ? 2 : steps_full[i];
      const CellResult cell = run_cell(ns[i], as[j], steps, smoke);
      all_ok = all_ok && cell.ok;
      std::printf(
          "| %zu | %u | %.1f | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f | %s |\n",
          ns[i], as[j], cell.abnormal_mean, cell.grid_ms_per_step,
          cell.plane_ms_per_step, cell.characterize_ms_per_step,
          cell.serial_ms_per_step, cell.parallel_ms_per_step,
          cell.scratch_ms_per_step, cell.ok ? "yes" : "NO");
      std::fflush(stdout);
    }
  }
  return all_ok ? 0 : 1;
}
