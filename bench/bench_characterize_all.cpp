// End-to-end characterize_all timings over the §VII-A workload — the perf
// trajectory anchor for the snapshot-level motion plane (ISSUE 2).
//
// For every (n, A) cell the bench generates `steps` scenario intervals,
// then times a full characterize_all per interval. Timings exclude
// scenario generation; each timed run constructs its own Characterizer,
// so per-snapshot precomputation (grid build, motion-family enumeration)
// is charged to the run — exactly what the online monitor pays per
// interval.
//
// `--smoke` runs a single small cell (CI-sized) and exits non-zero if the
// serial and parallel paths ever disagree.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/characterizer.hpp"
#include "sim/scenario.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct CellResult {
  double serial_ms_per_step = 0.0;
  double parallel_ms_per_step = 0.0;
  double abnormal_mean = 0.0;
  bool ok = true;
};

CellResult run_cell(std::size_t n, std::uint32_t errors, std::uint64_t steps,
                    bool smoke) {
  acn::ScenarioParams params;
  params.n = n;
  params.errors_per_step = errors;
  params.seed = 42;

  std::vector<acn::ScenarioStep> generated;
  generated.reserve(steps);
  acn::ScenarioGenerator generator(params);
  for (std::uint64_t k = 0; k < steps; ++k) generated.push_back(generator.advance());

  CellResult result;
  for (const acn::ScenarioStep& step : generated) {
    result.abnormal_mean += static_cast<double>(step.state.abnormal().size());
  }
  result.abnormal_mean /= static_cast<double>(steps);

  // Warm-up pass (page in the state, stabilize the allocator), untimed.
  {
    acn::Characterizer warm(generated[0].state, params.model);
    (void)warm.characterize_all();
  }

  const auto serial_start = Clock::now();
  std::vector<acn::CharacterizationSets> serial_sets;
  serial_sets.reserve(steps);
  for (const acn::ScenarioStep& step : generated) {
    acn::Characterizer characterizer(step.state, params.model);
    serial_sets.push_back(characterizer.characterize_all());
  }
  result.serial_ms_per_step = ms_since(serial_start) / static_cast<double>(steps);

  // Parallel path: hardware concurrency; in smoke mode an explicit 4-worker
  // pool, so the thread machinery is exercised even on single-core CI.
  const unsigned threads = smoke ? 4 : 0;
  const auto parallel_start = Clock::now();
  std::vector<acn::CharacterizationSets> parallel_sets;
  parallel_sets.reserve(steps);
  for (const acn::ScenarioStep& step : generated) {
    acn::Characterizer characterizer(step.state, params.model);
    parallel_sets.push_back(characterizer.characterize_all_parallel(threads));
  }
  result.parallel_ms_per_step = ms_since(parallel_start) / static_cast<double>(steps);

  for (std::size_t k = 0; k < generated.size(); ++k) {
    const auto& sets = serial_sets[k];
    if (sets.isolated.size() + sets.massive.size() + sets.unresolved.size() !=
        generated[k].state.abnormal().size()) {
      result.ok = false;
    }
    // Byte-identical serial/parallel verdicts, the plane's core guarantee.
    if (parallel_sets[k].isolated != sets.isolated ||
        parallel_sets[k].massive != sets.massive ||
        parallel_sets[k].unresolved != sets.unresolved) {
      result.ok = false;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::printf("# bench_characterize_all  d=2 r=0.03 tau=3 G=0.5 seed=42%s\n",
              smoke ? "  (smoke)" : "");
  std::printf(
      "| n | A | mean |A_k| | serial ms/step | parallel ms/step | ok |\n");
  std::printf("|---|---|---|---|---|---|\n");

  const std::size_t ns_full[] = {1000, 5000, 20000};
  const std::uint32_t as_full[] = {10, 40, 80};
  const std::size_t ns_smoke[] = {1000};
  const std::uint32_t as_smoke[] = {10};

  const auto* ns = smoke ? ns_smoke : ns_full;
  const auto* as = smoke ? as_smoke : as_full;
  const std::size_t n_count = smoke ? 1 : 3;
  const std::size_t a_count = smoke ? 1 : 3;
  // Device density (and so ball population and family sizes) grows with n;
  // fewer repetitions keep the large cells recordable at seed speed.
  const std::uint64_t steps_full[] = {5, 3, 2};

  bool all_ok = true;
  for (std::size_t i = 0; i < n_count; ++i) {
    for (std::size_t j = 0; j < a_count; ++j) {
      const std::uint64_t steps = smoke ? 2 : steps_full[i];
      const CellResult cell = run_cell(ns[i], as[j], steps, smoke);
      all_ok = all_ok && cell.ok;
      std::printf("| %zu | %u | %.1f | %.3f | %.3f | %s |\n", ns[i], as[j],
                  cell.abnormal_mean, cell.serial_ms_per_step,
                  cell.parallel_ms_per_step, cell.ok ? "yes" : "NO");
      std::fflush(stdout);
    }
  }
  return all_ok ? 0 : 1;
}
