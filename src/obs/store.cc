#include "obs/store.hpp"

#include <algorithm>
#include <stdexcept>

namespace acn::obs {

TelemetryStore::TelemetryStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TelemetryStore::push(IntervalTelemetry record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  // Overwrite the oldest slot; head_ walks the ring so from_latest() can
  // recover recency order without ever moving records.
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
}

IntervalTelemetry* TelemetryStore::find(std::uint64_t interval) noexcept {
  for (IntervalTelemetry& record : ring_) {
    if (record.interval == interval) return &record;
  }
  return nullptr;
}

const IntervalTelemetry& TelemetryStore::latest() const noexcept {
  return from_latest(0);
}

const IntervalTelemetry& TelemetryStore::from_latest(
    std::size_t i) const noexcept {
  // Newest slot is just behind head_ (or the vector back while filling).
  const std::size_t newest =
      ring_.size() < capacity_ ? ring_.size() - 1
                               : (head_ + capacity_ - 1) % capacity_;
  return ring_[(newest + ring_.size() - i) % ring_.size()];
}

TelemetryStore::VerdictMix TelemetryStore::verdict_mix(
    std::size_t window) const {
  VerdictMix mix;
  const std::size_t count = clamp(window);
  for (std::size_t i = 0; i < count; ++i) {
    const IntervalTelemetry& r = from_latest(i);
    ++mix.intervals;
    mix.abnormal += r.abnormal;
    mix.isolated += r.isolated;
    mix.massive += r.massive;
    mix.unresolved += r.unresolved;
    mix.budget_exhausted += r.budget_exhausted;
  }
  return mix;
}

double TelemetryStore::anomaly_rate(std::size_t window) const {
  std::uint64_t abnormal = 0;
  std::uint64_t devices = 0;
  const std::size_t count = clamp(window);
  for (std::size_t i = 0; i < count; ++i) {
    const IntervalTelemetry& r = from_latest(i);
    abnormal += r.abnormal;
    devices += r.devices;
  }
  return devices == 0 ? 0.0
                      : static_cast<double>(abnormal) /
                            static_cast<double>(devices);
}

double TelemetryStore::region_anomaly_rate(std::uint32_t region,
                                           std::size_t window) const {
  std::uint64_t abnormal = 0;
  std::uint64_t devices = 0;
  const std::size_t count = clamp(window);
  for (std::size_t i = 0; i < count; ++i) {
    const IntervalTelemetry& r = from_latest(i);
    if (region >= r.regions.size()) continue;
    abnormal += r.regions[region].abnormal;
    devices += r.regions[region].devices;
  }
  return devices == 0 ? 0.0
                      : static_cast<double>(abnormal) /
                            static_cast<double>(devices);
}

std::vector<RegionStats> TelemetryStore::region_totals(
    std::size_t window) const {
  std::vector<RegionStats> totals;
  const std::size_t count = clamp(window);
  for (std::size_t i = 0; i < count; ++i) {
    const IntervalTelemetry& r = from_latest(i);
    if (r.regions.size() > totals.size()) totals.resize(r.regions.size());
    for (std::size_t g = 0; g < r.regions.size(); ++g) {
      totals[g].devices += r.regions[g].devices;
      totals[g].abnormal += r.regions[g].abnormal;
      totals[g].isolated += r.regions[g].isolated;
      totals[g].massive += r.regions[g].massive;
      totals[g].unresolved += r.regions[g].unresolved;
    }
  }
  return totals;
}

double TelemetryStore::degraded_rate(std::size_t window) const {
  const std::size_t count = clamp(window);
  if (count == 0) return 0.0;
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (from_latest(i).degraded) ++degraded;
  }
  return static_cast<double>(degraded) / static_cast<double>(count);
}

double TelemetryStore::budget_exhausted_rate(std::size_t window) const {
  const VerdictMix mix = verdict_mix(window);
  return mix.abnormal == 0 ? 0.0
                           : static_cast<double>(mix.budget_exhausted) /
                                 static_cast<double>(mix.abnormal);
}

TelemetryStore::Percentiles TelemetryStore::step_ms_percentiles(
    std::size_t window) const {
  Percentiles out;
  const std::size_t count = clamp(window);
  if (count == 0) return out;
  std::vector<double> ms;
  ms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ms.push_back(from_latest(i).total_ms);
  }
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    // Nearest-rank with linear interpolation (matches SampleSet::quantile).
    const double pos = q * static_cast<double>(ms.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, ms.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return ms[lo] + (ms[hi] - ms[lo]) * frac;
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = ms.back();
  return out;
}

std::vector<std::pair<std::uint64_t, double>> TelemetryStore::series(
    std::string_view dimension, std::size_t window) const {
  double (*value)(const IntervalTelemetry&) = nullptr;
  if (dimension == "ms") {
    value = [](const IntervalTelemetry& r) { return r.total_ms; };
  } else if (dimension == "abnormal") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.abnormal);
    };
  } else if (dimension == "isolated") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.isolated);
    };
  } else if (dimension == "massive") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.massive);
    };
  } else if (dimension == "unresolved") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.unresolved);
    };
  } else if (dimension == "anomaly_rate") {
    value = [](const IntervalTelemetry& r) {
      return r.devices == 0 ? 0.0
                            : static_cast<double>(r.abnormal) /
                                  static_cast<double>(r.devices);
    };
  } else if (dimension == "degraded") {
    value = [](const IntervalTelemetry& r) { return r.degraded ? 1.0 : 0.0; };
  } else if (dimension == "moved") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.moved);
    };
  } else if (dimension == "components") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.components);
    };
  } else if (dimension == "episodes_open") {
    value = [](const IntervalTelemetry& r) {
      return static_cast<double>(r.episodes_open);
    };
  } else {
    throw std::invalid_argument("TelemetryStore::series: unknown dimension '" +
                                std::string(dimension) + "'");
  }
  const std::size_t count = clamp(window);
  std::vector<std::pair<std::uint64_t, double>> points;
  points.reserve(count);
  for (std::size_t i = count; i > 0; --i) {  // oldest first
    const IntervalTelemetry& r = from_latest(i - 1);
    points.emplace_back(r.interval, value(r));
  }
  return points;
}

}  // namespace acn::obs
