// Exporters over the telemetry hub: Prometheus text exposition and a
// stable JSON schema.
//
// Both render the same two sources — the registry's cumulative metrics and
// the store's trailing-window queries — into strings a scraper or an
// operator tool can consume. The JSON document is versioned
// ("acn.telemetry.v1") and its shape is pinned by the golden tests in
// tests/obs/export_test.cc: adding fields is a schema bump, silently
// renaming or dropping them is a test failure. Doubles are rendered with
// %.6g, integers verbatim, so identical inputs serialize identically on
// every platform.
#pragma once

#include <cstddef>
#include <string>

#include "obs/telemetry.hpp"

namespace acn::obs {

/// Prometheus text exposition format (HELP/TYPE + samples): every registry
/// metric, then the store's window-derived gauges (anomaly/degraded rates,
/// per-region anomaly rates, step-latency quantiles) labelled with the
/// window they were computed over (in intervals; 0 = everything retained).
[[nodiscard]] std::string to_prometheus(const TelemetryHub& hub,
                                        std::size_t window = 0);

/// The versioned JSON document: retention header, trailing-window rates and
/// verdict mix, step-ms percentiles, per-region totals, the latest
/// interval's full record (spans, ingest sample, episode transitions), and
/// the registry dump.
[[nodiscard]] std::string to_json(const TelemetryHub& hub,
                                  std::size_t window = 0);

}  // namespace acn::obs
