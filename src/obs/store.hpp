// TelemetryStore: the rolling per-interval history behind the query API.
//
// One IntervalTelemetry record per observed interval — the trace spans of
// the engine's phases, the verdict mix, the per-region tallies, and (when
// the interval came through the ingestion layer) what ingestion did to it —
// kept in a bounded ring of the last N intervals. Queries are netdata-shaped:
// every question is asked over a trailing window of intervals ("the last 60
// intervals", "everything retained") and answers in rates, mixes, series
// points, or latency percentiles. The store is single-writer (the thread
// that seals intervals) and read from the same thread; cross-thread export
// is snapshot-by-serialization (obs/export.hpp), not shared mutable state.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "core/kernels/kernels.hpp"

namespace acn::obs {

/// One timed phase of an interval, with the lane-skew of its fan-out (lanes
/// == 0 when the phase ran serially). Names are static literals — the five
/// engine phases are "advance", "halo", "apply_staged", "plane",
/// "characterize".
struct TraceSpan {
  const char* name = "";
  double ms = 0.0;
  double lane_max_ms = 0.0;
  double lane_mean_ms = 0.0;
  unsigned lanes = 0;
};

/// Verdict tallies of one region (a dim-0 stripe of the QoS space) in one
/// interval. devices counts every fleet member currently in the region.
struct RegionStats {
  std::uint32_t devices = 0;
  std::uint32_t abnormal = 0;
  std::uint32_t isolated = 0;
  std::uint32_t massive = 0;
  std::uint32_t unresolved = 0;
};

/// What the ingestion layer did to one interval, attached to the record by
/// IngestPipeline after the seal (absent on direct-fed intervals). Counter
/// fields are per-interval deltas of the pipeline's cumulative tallies.
struct IngestSample {
  std::uint64_t seal_lag = 0;  ///< watermark distance when the seal fired
  bool forced = false;         ///< sealed by timeout/flood, not the watermark
  std::uint64_t reported = 0;
  std::uint64_t replayed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t retired = 0;
  std::uint64_t late_sealed = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t shed_claims = 0;
  std::uint64_t open_intervals = 0;  ///< staging queue depth after the seal
};

/// Everything the telemetry layer retains about one interval.
struct IntervalTelemetry {
  std::uint64_t interval = 0;
  double total_ms = 0.0;  ///< wall clock of the whole observe() call
  std::vector<TraceSpan> spans;
  kernels::Counters kernel;  ///< SIMD-kernel deltas of this interval

  // Engine shape.
  std::uint64_t moved = 0;
  std::uint64_t components = 0;
  std::uint64_t motions = 0;
  unsigned shards = 0;

  // Verdict mix.
  std::uint32_t devices = 0;  ///< fleet size (roster capacity in roster mode)
  std::uint32_t abnormal = 0;
  std::uint32_t isolated = 0;
  std::uint32_t massive = 0;
  std::uint32_t unresolved = 0;
  std::uint32_t budget_exhausted = 0;
  bool degraded = false;

  // Episode transitions at this interval.
  std::uint32_t episodes_opened = 0;
  std::uint32_t episodes_closed = 0;
  std::uint64_t episodes_open = 0;

  std::vector<RegionStats> regions;  ///< one entry per configured region
  std::optional<IngestSample> ingest;
};

class TelemetryStore {
 public:
  /// Retains the last `capacity` intervals (>= 1 enforced).
  explicit TelemetryStore(std::size_t capacity);

  void push(IntervalTelemetry record);
  /// The record of `interval` if still retained (ingest annotation path).
  [[nodiscard]] IntervalTelemetry* find(std::uint64_t interval) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }
  /// Most recent record (requires !empty()).
  [[nodiscard]] const IntervalTelemetry& latest() const noexcept;
  /// i-th record counting back from the latest (0 = latest; i < size()).
  [[nodiscard]] const IntervalTelemetry& from_latest(std::size_t i) const noexcept;

  // --- trailing-window queries (window = number of most recent intervals;
  //     0 = everything retained; clamped to size()) ---

  struct VerdictMix {
    std::uint64_t intervals = 0;
    std::uint64_t abnormal = 0;
    std::uint64_t isolated = 0;
    std::uint64_t massive = 0;
    std::uint64_t unresolved = 0;
    std::uint64_t budget_exhausted = 0;
  };
  [[nodiscard]] VerdictMix verdict_mix(std::size_t window = 0) const;

  /// Fleet-wide abnormal device-intervals / device-intervals.
  [[nodiscard]] double anomaly_rate(std::size_t window = 0) const;
  /// Same, restricted to one region (0 when the region never had devices).
  [[nodiscard]] double region_anomaly_rate(std::uint32_t region,
                                           std::size_t window = 0) const;
  /// Per-region tallies summed over the window (indexed by region).
  [[nodiscard]] std::vector<RegionStats> region_totals(
      std::size_t window = 0) const;

  /// Share of intervals sealed degraded.
  [[nodiscard]] double degraded_rate(std::size_t window = 0) const;
  /// BudgetExhausted decisions / all decisions (0 when no decisions).
  [[nodiscard]] double budget_exhausted_rate(std::size_t window = 0) const;

  struct Percentiles {
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  /// Exact percentiles of total_ms over the window.
  [[nodiscard]] Percentiles step_ms_percentiles(std::size_t window = 0) const;

  /// Netdata-shaped series: (interval, value) points over the trailing
  /// window, oldest first. Dimensions: "ms", "abnormal", "isolated",
  /// "massive", "unresolved", "anomaly_rate", "degraded", "moved",
  /// "components", "episodes_open". Throws std::invalid_argument on an
  /// unknown dimension.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> series(
      std::string_view dimension, std::size_t window = 0) const;

 private:
  /// Window clamp: records to visit, newest `count` of them.
  [[nodiscard]] std::size_t clamp(std::size_t window) const noexcept {
    return window == 0 || window > ring_.size() ? ring_.size() : window;
  }

  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::vector<IntervalTelemetry> ring_;
};

}  // namespace acn::obs
