// TelemetryHub: the one object a deployment wires in to observe the whole
// pipeline.
//
// The hub owns the two halves of the telemetry layer — the lock-cheap
// MetricsRegistry (cumulative counters/gauges/histograms, scrape-shaped)
// and the rolling TelemetryStore (per-interval records, query-shaped) —
// plus the region partition every per-region query is asked against
// (uniform dim-0 stripes of the QoS space [0,1]^d, the same axis the
// engine's ShardMap stripes). Producers build one IntervalTelemetry per
// interval and call record(); the ingestion layer annotates the already
// recorded interval with its IngestSample after the seal. Everything here
// reads pipeline OUTPUTS (FrameStats, verdict sets, episode tallies) —
// by construction telemetry cannot change a Decision byte, and
// tests/obs/telemetry_conformance_test.cc pins that end to end.
#pragma once

#include <cstdint>

#include "common/device_set.hpp"
#include "core/frame.hpp"
#include "core/point.hpp"
#include "core/state.hpp"
#include "obs/metrics.hpp"
#include "obs/store.hpp"

namespace acn::obs {

struct TelemetryConfig {
  /// Intervals the rolling store retains.
  std::size_t history = 512;
  /// Region partition granularity: dim-0 of [0,1]^d split into this many
  /// equal stripes (>= 1 enforced).
  std::uint32_t regions = 16;
  /// Lane shards of the metrics registry (see MetricsRegistry).
  unsigned lanes = 1;
};

/// The five engine phases of one observe() call as trace spans:
/// advance (ring roll), halo (serial halo-exchange routing), apply_staged
/// (per-shard staged-op drain), plane (4r-closure build), characterize
/// (Theorems 5-7 fan-out) — ms and lane skew lifted from FrameStats.
[[nodiscard]] std::vector<TraceSpan> spans_of(const FrameStats& stats);

/// The engine-side half of a record: spans, kernel counters, and the
/// interval shape from one observe() call. The caller fills the verdict
/// mix, episodes, and regions before handing it to TelemetryHub::record().
[[nodiscard]] IntervalTelemetry frame_record(std::uint64_t interval,
                                             double total_ms,
                                             const FrameStats& stats);

class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryConfig config);

  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] TelemetryStore& store() noexcept { return store_; }
  [[nodiscard]] const TelemetryStore& store() const noexcept { return store_; }

  [[nodiscard]] std::uint32_t regions() const noexcept {
    return config_.regions;
  }
  /// Region of a QoS position: its dim-0 stripe.
  [[nodiscard]] std::uint32_t region_of(const Point& p) const noexcept;

  /// Tallies one interval's fleet and verdict sets into per-region stats
  /// (sized to regions()).
  [[nodiscard]] std::vector<RegionStats> tally_regions(
      const Snapshot& positions, const DeviceSet& abnormal,
      const DeviceSet& isolated, const DeviceSet& massive,
      const DeviceSet& unresolved) const;

  /// Stores the record and folds it into the registry's standard metric
  /// set (intervals/decisions/degraded counters, the step-latency
  /// histogram, level gauges).
  void record(IntervalTelemetry record);

  /// Attaches the ingestion layer's per-seal sample to the already
  /// recorded interval (no-op when the interval has been evicted) and
  /// bumps the ingest counters of the registry.
  void annotate_ingest(std::uint64_t interval, const IngestSample& sample);

 private:
  TelemetryConfig config_;
  MetricsRegistry registry_;
  TelemetryStore store_;

  struct StandardIds {
    MetricId intervals_total;
    MetricId degraded_total;
    MetricId abnormal_total;
    MetricId isolated_total;
    MetricId massive_total;
    MetricId unresolved_total;
    MetricId budget_exhausted_total;
    MetricId episodes_opened_total;
    MetricId episodes_closed_total;
    MetricId step_ms;
    MetricId fleet_devices;
    MetricId open_episodes;
    MetricId last_abnormal;
    MetricId ingest_late_total;
    MetricId ingest_duplicates_total;
    MetricId ingest_shed_total;
    MetricId ingest_replayed_total;
    MetricId ingest_forced_total;
    MetricId ingest_open_intervals;
  } ids_;
};

}  // namespace acn::obs
