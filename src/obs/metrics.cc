#include "obs/metrics.hpp"

#include <bit>
#include <stdexcept>

namespace acn::obs {

MetricsRegistry::MetricsRegistry(unsigned lanes) {
  if (lanes == 0) lanes = 1;
  lanes_.resize(lanes);
}

void MetricsRegistry::grow(std::size_t slots) {
  const std::size_t total = slot_count_ + slots;
  for (auto& lane : lanes_) {
    auto fresh = std::make_unique<std::atomic<std::uint64_t>[]>(total);
    for (std::size_t i = 0; i < total; ++i) {
      fresh[i].store(i < slot_count_ && lane
                         ? lane[i].load(std::memory_order_relaxed)
                         : 0,
                     std::memory_order_relaxed);
    }
    lane = std::move(fresh);
  }
  slot_count_ = total;
}

MetricId MetricsRegistry::register_metric(Metric meta, std::size_t width) {
  const MetricId id = static_cast<MetricId>(metrics_.size());
  slots_.push_back(Slot{slot_count_, width});
  grow(width);
  metrics_.push_back(std::move(meta));
  return id;
}

MetricId MetricsRegistry::counter(std::string name, std::string help) {
  return register_metric(
      Metric{std::move(name), std::move(help), MetricKind::kCounter, {}}, 1);
}

MetricId MetricsRegistry::gauge(std::string name, std::string help) {
  return register_metric(
      Metric{std::move(name), std::move(help), MetricKind::kGauge, {}}, 1);
}

MetricId MetricsRegistry::histogram(std::string name, std::string help,
                                    std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("histogram: at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument("histogram: bounds must be ascending");
    }
  }
  // Layout per lane: bounds.size()+1 bucket counts, sample count, sum bits.
  const std::size_t width = bounds.size() + 3;
  return register_metric(Metric{std::move(name), std::move(help),
                                MetricKind::kHistogram, std::move(bounds)},
                         width);
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta,
                          unsigned lane) noexcept {
  lanes_[lane % lanes_.size()][slots_[id].offset].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(MetricId id, double value) noexcept {
  // Gauges are a single level, not a per-lane accumulation: lane 0 only.
  lanes_[0][slots_[id].offset].store(std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, double value,
                              unsigned lane) noexcept {
  const Slot& slot = slots_[id];
  const std::vector<double>& bounds = metrics_[id].bounds;
  std::size_t bucket = bounds.size();  // +Inf
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  std::atomic<std::uint64_t>* base =
      &lanes_[lane % lanes_.size()][slot.offset];
  base[bucket].fetch_add(1, std::memory_order_relaxed);
  base[bounds.size() + 1].fetch_add(1, std::memory_order_relaxed);
  // Sum accumulates double bits via CAS (portable pre-C++20 fetch_add on
  // floating atomics, and identical memory semantics).
  std::atomic<std::uint64_t>& sum = base[bounds.size() + 2];
  std::uint64_t bits = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(
      bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(bits) + value),
      std::memory_order_relaxed)) {
  }
}

std::vector<MetricsRegistry::Value> MetricsRegistry::snapshot() const {
  std::vector<Value> values(metrics_.size());
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    const Slot& slot = slots_[id];
    Value& out = values[id];
    switch (metrics_[id].kind) {
      case MetricKind::kCounter:
        for (const auto& lane : lanes_) {
          out.count += lane[slot.offset].load(std::memory_order_relaxed);
        }
        break;
      case MetricKind::kGauge:
        out.value = std::bit_cast<double>(
            lanes_[0][slot.offset].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        const std::size_t buckets = metrics_[id].bounds.size() + 1;
        out.buckets.assign(buckets, 0);
        for (const auto& lane : lanes_) {
          const std::atomic<std::uint64_t>* base = &lane[slot.offset];
          for (std::size_t b = 0; b < buckets; ++b) {
            out.buckets[b] += base[b].load(std::memory_order_relaxed);
          }
          out.count += base[buckets].load(std::memory_order_relaxed);
          out.value += std::bit_cast<double>(
              base[buckets + 1].load(std::memory_order_relaxed));
        }
        break;
      }
    }
  }
  return values;
}

}  // namespace acn::obs
