// MetricsRegistry: the lock-cheap metric substrate of the telemetry layer.
//
// Three metric kinds — monotone counters, last-write gauges, and
// fixed-bucket histograms — registered once at setup time and written from
// the hot path without a lock or an allocation. Counter and histogram
// storage is sharded per lane (one shard per worker lane plus the control
// thread); every slot is a relaxed std::atomic, so concurrent writers on
// different lanes never contend on a cache line they share with a mutex,
// and the interval-close reader can merge the shards WHILE writers are
// still incrementing (TSan-clean by construction; the snapshot is a sum of
// per-slot atomic loads, monotone but not a cross-slot consistent cut —
// exactly the semantics a scrape endpoint needs). Gauges are a single
// atomic slot: they carry "current level" readings set from the sealing
// thread, not per-lane accumulations.
//
// The registration phase and the hot path are temporally separated by
// contract: register every metric before the stream starts (registration
// reallocates the slot arrays; add()/observe() index them wait-free
// afterwards). TelemetryHub registers the standard metric set in its
// constructor; deployments may add their own before the first interval.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace acn::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Dense handle assigned at registration, stable for the registry's life.
using MetricId = std::uint32_t;

class MetricsRegistry {
 public:
  /// `lanes` shards the counter/histogram storage: writers pass their lane
  /// index (< lanes) to add()/observe(); distinct lanes never touch the
  /// same slot. One lane is enough for a single-threaded producer.
  explicit MetricsRegistry(unsigned lanes = 1);

  // --- registration (setup phase; NOT safe concurrently with writes) ---

  /// Monotone counter. `name` must be a valid Prometheus metric name
  /// (conventionally ..._total); `help` becomes the # HELP line.
  MetricId counter(std::string name, std::string help);
  /// Point-in-time level, set (not accumulated) by the control thread.
  MetricId gauge(std::string name, std::string help);
  /// Fixed-bucket histogram; `bounds` are ascending upper bounds (the
  /// +Inf bucket is implicit). Throws std::invalid_argument if empty or
  /// not strictly ascending.
  MetricId histogram(std::string name, std::string help,
                     std::vector<double> bounds);

  // --- hot path (wait-free; lane < lanes()) ---

  /// Counter increment on the caller's lane shard.
  void add(MetricId id, std::uint64_t delta = 1, unsigned lane = 0) noexcept;
  /// Gauge overwrite (single slot, last write wins).
  void set(MetricId id, double value) noexcept;
  /// Histogram sample on the caller's lane shard.
  void observe(MetricId id, double value, unsigned lane = 0) noexcept;

  // --- interval-close / scrape side ---

  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;  ///< histogram upper bounds (else empty)
  };

  /// Merged value of one metric: counters fill `count`; gauges fill
  /// `value`; histograms fill per-bucket counts (bounds order, +Inf last)
  /// plus `count` (samples) and `value` (sum of samples).
  struct Value {
    std::uint64_t count = 0;
    double value = 0.0;
    std::vector<std::uint64_t> buckets;
  };

  /// Sums every lane shard; indexable by MetricId. Safe to call while
  /// writers are running (each slot is read atomically; counters are
  /// monotone between calls).
  [[nodiscard]] std::vector<Value> snapshot() const;

  [[nodiscard]] const std::vector<Metric>& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] unsigned lanes() const noexcept {
    return static_cast<unsigned>(lanes_.size());
  }

 private:
  struct Slot {
    std::size_t offset = 0;  ///< first slot in each lane's array
    std::size_t width = 0;   ///< slots: 1 counter, 1 gauge, buckets+2 histogram
  };

  MetricId register_metric(Metric meta, std::size_t width);
  void grow(std::size_t slots);

  std::vector<Metric> metrics_;
  std::vector<Slot> slots_;
  std::size_t slot_count_ = 0;
  /// Per-lane slot arrays (gauges live in lane 0 only — see set()).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> lanes_;
};

}  // namespace acn::obs
