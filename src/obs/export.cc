#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace acn::obs {

namespace {

void append_num(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += buf;
}

void append_num(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, value);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, double value,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, value);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, bool value,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
  if (comma) out += ',';
}

}  // namespace

std::string to_prometheus(const TelemetryHub& hub, std::size_t window) {
  const MetricsRegistry& registry = hub.registry();
  const std::vector<MetricsRegistry::Value> values = registry.snapshot();
  std::string out;
  out.reserve(4096);

  for (std::size_t id = 0; id < registry.metrics().size(); ++id) {
    const MetricsRegistry::Metric& meta = registry.metrics()[id];
    const MetricsRegistry::Value& value = values[id];
    out += "# HELP " + meta.name + " " + meta.help + "\n";
    switch (meta.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + meta.name + " counter\n" + meta.name + " ";
        append_num(out, value.count);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + meta.name + " gauge\n" + meta.name + " ";
        append_num(out, value.value);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + meta.name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < value.buckets.size(); ++b) {
          cumulative += value.buckets[b];
          out += meta.name + "_bucket{le=\"";
          if (b < meta.bounds.size()) {
            append_num(out, meta.bounds[b]);
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          append_num(out, cumulative);
          out += '\n';
        }
        out += meta.name + "_sum ";
        append_num(out, value.value);
        out += '\n' + meta.name + "_count ";
        append_num(out, value.count);
        out += '\n';
        break;
      }
    }
  }

  // Window-derived gauges from the rolling store (netdata-style trailing
  // questions as scrapeable samples).
  const TelemetryStore& store = hub.store();
  std::string w = "window=\"";
  append_num(w, static_cast<std::uint64_t>(window));
  w += "\"";
  const auto derived = [&](const char* name, const char* help, double value,
                           const std::string& labels) {
    out += "# HELP ";
    out += name;
    out += " ";
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += "{" + labels + "} ";
    append_num(out, value);
    out += '\n';
  };
  derived("acn_anomaly_rate",
          "Abnormal device-intervals per device-interval over the window",
          store.anomaly_rate(window), w);
  derived("acn_degraded_rate", "Share of degraded intervals over the window",
          store.degraded_rate(window), w);
  derived("acn_budget_exhausted_rate",
          "BudgetExhausted decisions per abnormal device over the window",
          store.budget_exhausted_rate(window), w);
  const std::vector<RegionStats> regions = store.region_totals(window);
  for (std::size_t g = 0; g < regions.size(); ++g) {
    std::string labels = "region=\"";
    append_num(labels, static_cast<std::uint64_t>(g));
    labels += "\"," + w;
    derived("acn_region_anomaly_rate",
            "Per-region abnormal device-intervals per device-interval",
            store.region_anomaly_rate(static_cast<std::uint32_t>(g), window),
            labels);
  }
  const TelemetryStore::Percentiles pct = store.step_ms_percentiles(window);
  derived("acn_step_ms_quantile", "Interval latency percentile (ms)", pct.p50,
          "q=\"0.5\"," + w);
  derived("acn_step_ms_quantile", "Interval latency percentile (ms)", pct.p90,
          "q=\"0.9\"," + w);
  derived("acn_step_ms_quantile", "Interval latency percentile (ms)", pct.p99,
          "q=\"0.99\"," + w);
  derived("acn_step_ms_quantile", "Interval latency percentile (ms)", pct.max,
          "q=\"1\"," + w);
  return out;
}

std::string to_json(const TelemetryHub& hub, std::size_t window) {
  const TelemetryStore& store = hub.store();
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"acn.telemetry.v1\",";
  append_kv(out, "window", static_cast<std::uint64_t>(window));

  out += "\"intervals\":{";
  append_kv(out, "retained", static_cast<std::uint64_t>(store.size()));
  append_kv(out, "capacity", static_cast<std::uint64_t>(store.capacity()));
  if (store.empty()) {
    append_kv(out, "first", std::uint64_t{0});
    append_kv(out, "last", std::uint64_t{0}, false);
  } else {
    append_kv(out, "first", store.from_latest(store.size() - 1).interval);
    append_kv(out, "last", store.latest().interval, false);
  }
  out += "},";

  out += "\"rates\":{";
  append_kv(out, "anomaly", store.anomaly_rate(window));
  append_kv(out, "degraded", store.degraded_rate(window));
  append_kv(out, "budget_exhausted", store.budget_exhausted_rate(window),
            false);
  out += "},";

  const TelemetryStore::VerdictMix mix = store.verdict_mix(window);
  out += "\"verdict_mix\":{";
  append_kv(out, "intervals", mix.intervals);
  append_kv(out, "abnormal", mix.abnormal);
  append_kv(out, "isolated", mix.isolated);
  append_kv(out, "massive", mix.massive);
  append_kv(out, "unresolved", mix.unresolved);
  append_kv(out, "budget_exhausted", mix.budget_exhausted, false);
  out += "},";

  const TelemetryStore::Percentiles pct = store.step_ms_percentiles(window);
  out += "\"step_ms\":{";
  append_kv(out, "p50", pct.p50);
  append_kv(out, "p90", pct.p90);
  append_kv(out, "p99", pct.p99);
  append_kv(out, "max", pct.max, false);
  out += "},";

  out += "\"regions\":[";
  const std::vector<RegionStats> regions = store.region_totals(window);
  for (std::size_t g = 0; g < regions.size(); ++g) {
    if (g > 0) out += ',';
    out += '{';
    append_kv(out, "region", static_cast<std::uint64_t>(g));
    append_kv(out, "devices", std::uint64_t{regions[g].devices});
    append_kv(out, "abnormal", std::uint64_t{regions[g].abnormal});
    append_kv(out, "isolated", std::uint64_t{regions[g].isolated});
    append_kv(out, "massive", std::uint64_t{regions[g].massive});
    append_kv(out, "unresolved", std::uint64_t{regions[g].unresolved});
    append_kv(out, "anomaly_rate",
              store.region_anomaly_rate(static_cast<std::uint32_t>(g), window),
              false);
    out += '}';
  }
  out += "],";

  out += "\"last_interval\":";
  if (store.empty()) {
    out += "null,";
  } else {
    const IntervalTelemetry& last = store.latest();
    out += '{';
    append_kv(out, "interval", last.interval);
    append_kv(out, "ms", last.total_ms);
    append_kv(out, "degraded", last.degraded);
    append_kv(out, "devices", std::uint64_t{last.devices});
    append_kv(out, "abnormal", std::uint64_t{last.abnormal});
    append_kv(out, "isolated", std::uint64_t{last.isolated});
    append_kv(out, "massive", std::uint64_t{last.massive});
    append_kv(out, "unresolved", std::uint64_t{last.unresolved});
    append_kv(out, "budget_exhausted", std::uint64_t{last.budget_exhausted});
    append_kv(out, "moved", last.moved);
    append_kv(out, "components", last.components);
    append_kv(out, "motions", last.motions);
    append_kv(out, "shards", std::uint64_t{last.shards});
    out += "\"spans\":[";
    for (std::size_t s = 0; s < last.spans.size(); ++s) {
      const TraceSpan& span = last.spans[s];
      if (s > 0) out += ',';
      out += "{\"name\":\"";
      out += span.name;
      out += "\",";
      append_kv(out, "ms", span.ms);
      append_kv(out, "lane_max_ms", span.lane_max_ms);
      append_kv(out, "lane_mean_ms", span.lane_mean_ms);
      append_kv(out, "lanes", std::uint64_t{span.lanes}, false);
      out += '}';
    }
    out += "],";
    out += "\"episodes\":{";
    append_kv(out, "opened", std::uint64_t{last.episodes_opened});
    append_kv(out, "closed", std::uint64_t{last.episodes_closed});
    append_kv(out, "open", last.episodes_open, false);
    out += "},";
    out += "\"ingest\":";
    if (!last.ingest.has_value()) {
      out += "null";
    } else {
      const IngestSample& ingest = *last.ingest;
      out += '{';
      append_kv(out, "seal_lag", ingest.seal_lag);
      append_kv(out, "forced", ingest.forced);
      append_kv(out, "reported", ingest.reported);
      append_kv(out, "replayed", ingest.replayed);
      append_kv(out, "deferred", ingest.deferred);
      append_kv(out, "retired", ingest.retired);
      append_kv(out, "late_sealed", ingest.late_sealed);
      append_kv(out, "duplicates", ingest.duplicates);
      append_kv(out, "shed_claims", ingest.shed_claims);
      append_kv(out, "open_intervals", ingest.open_intervals, false);
      out += '}';
    }
    out += "},";
  }

  out += "\"metrics\":[";
  const MetricsRegistry& registry = hub.registry();
  const std::vector<MetricsRegistry::Value> values = registry.snapshot();
  for (std::size_t id = 0; id < registry.metrics().size(); ++id) {
    const MetricsRegistry::Metric& meta = registry.metrics()[id];
    const MetricsRegistry::Value& value = values[id];
    if (id > 0) out += ',';
    out += "{\"name\":\"" + meta.name + "\",\"kind\":\"";
    switch (meta.kind) {
      case MetricKind::kCounter:
        out += "counter\",";
        append_kv(out, "value", value.count, false);
        break;
      case MetricKind::kGauge:
        out += "gauge\",";
        append_kv(out, "value", value.value, false);
        break;
      case MetricKind::kHistogram:
        out += "histogram\",";
        append_kv(out, "count", value.count);
        append_kv(out, "sum", value.value);
        out += "\"buckets\":[";
        for (std::size_t b = 0; b < value.buckets.size(); ++b) {
          if (b > 0) out += ',';
          out += "{\"le\":";
          if (b < meta.bounds.size()) {
            append_num(out, meta.bounds[b]);
          } else {
            out += "\"inf\"";
          }
          out += ",\"count\":";
          append_num(out, value.buckets[b]);
          out += '}';
        }
        out += ']';
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace acn::obs
