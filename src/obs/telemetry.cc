#include "obs/telemetry.hpp"

#include <algorithm>

namespace acn::obs {

std::vector<TraceSpan> spans_of(const FrameStats& stats) {
  const auto span = [](const char* name, double ms,
                       const LaneBreakdown& lanes) {
    return TraceSpan{name, ms, lanes.max_ms, lanes.mean_ms, lanes.lanes};
  };
  // grid_ms = serial halo routing + parallel staged apply; split so the
  // serial slice (the shard-scaling bottleneck) is its own span.
  return {
      span("advance", stats.state_ms, stats.state_lanes),
      span("halo", stats.halo_ms, LaneBreakdown{}),
      span("apply_staged", std::max(0.0, stats.grid_ms - stats.halo_ms),
           stats.grid_lanes),
      span("plane", stats.plane_ms, stats.plane_enum_lanes),
      span("characterize", stats.characterize_ms, stats.characterize_lanes),
  };
}

IntervalTelemetry frame_record(std::uint64_t interval, double total_ms,
                               const FrameStats& stats) {
  IntervalTelemetry record;
  record.interval = interval;
  record.total_ms = total_ms;
  record.spans = spans_of(stats);
  record.kernel = stats.kernel;
  record.moved = stats.moved;
  record.components = stats.components;
  record.motions = stats.motions;
  record.shards = stats.shards;
  return record;
}

TelemetryHub::TelemetryHub(TelemetryConfig config)
    : config_([&] {
        if (config.regions == 0) config.regions = 1;
        return config;
      }()),
      registry_(config_.lanes),
      store_(config_.history),
      ids_{} {
  ids_.intervals_total =
      registry_.counter("acn_intervals_total", "Intervals observed");
  ids_.degraded_total = registry_.counter(
      "acn_degraded_intervals_total",
      "Intervals sealed degraded (shed, deferred, or forced close)");
  ids_.abnormal_total = registry_.counter("acn_abnormal_devices_total",
                                          "Abnormal device-intervals (|A_k|)");
  ids_.isolated_total =
      registry_.counter("acn_verdict_isolated_total", "Isolated verdicts");
  ids_.massive_total =
      registry_.counter("acn_verdict_massive_total", "Massive verdicts");
  ids_.unresolved_total =
      registry_.counter("acn_verdict_unresolved_total", "Unresolved verdicts");
  ids_.budget_exhausted_total = registry_.counter(
      "acn_budget_exhausted_total",
      "Decisions that exhausted the Theorem-7 search budget (safe-side)");
  ids_.episodes_opened_total =
      registry_.counter("acn_episodes_opened_total", "Episodes opened");
  ids_.episodes_closed_total =
      registry_.counter("acn_episodes_closed_total", "Episodes closed");
  ids_.step_ms = registry_.histogram(
      "acn_step_ms", "Wall-clock milliseconds per observed interval",
      {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  ids_.fleet_devices =
      registry_.gauge("acn_fleet_devices", "Devices in the observed fleet");
  ids_.open_episodes =
      registry_.gauge("acn_open_episodes", "Episodes currently open");
  ids_.last_abnormal = registry_.gauge("acn_last_abnormal",
                                       "|A_k| of the latest interval");
  ids_.ingest_late_total = registry_.counter(
      "acn_ingest_late_sealed_total",
      "Reports for already-sealed intervals (claim replayed)");
  ids_.ingest_duplicates_total = registry_.counter(
      "acn_ingest_duplicates_total", "Duplicate report deliveries absorbed");
  ids_.ingest_shed_total = registry_.counter(
      "acn_ingest_shed_claims_total", "Claim updates shed under overload");
  ids_.ingest_replayed_total = registry_.counter(
      "acn_ingest_replayed_claims_total",
      "Active devices sealed without a report (last claim replayed)");
  ids_.ingest_forced_total = registry_.counter(
      "acn_ingest_forced_closes_total", "Timeout/flood forced seals");
  ids_.ingest_open_intervals = registry_.gauge(
      "acn_ingest_open_intervals", "Staging frames currently open");
}

std::uint32_t TelemetryHub::region_of(const Point& p) const noexcept {
  const double scaled = p[0] * static_cast<double>(config_.regions);
  const auto region = static_cast<std::uint32_t>(scaled < 0.0 ? 0.0 : scaled);
  return std::min(region, config_.regions - 1);
}

std::vector<RegionStats> TelemetryHub::tally_regions(
    const Snapshot& positions, const DeviceSet& abnormal,
    const DeviceSet& isolated, const DeviceSet& massive,
    const DeviceSet& unresolved) const {
  std::vector<RegionStats> regions(config_.regions);
  for (DeviceId j = 0; j < positions.size(); ++j) {
    ++regions[region_of(positions[j])].devices;
  }
  const auto tally = [&](const DeviceSet& set, std::uint32_t RegionStats::*member) {
    for (const DeviceId j : set.ids()) {
      regions[region_of(positions[j])].*member += 1;
    }
  };
  tally(abnormal, &RegionStats::abnormal);
  tally(isolated, &RegionStats::isolated);
  tally(massive, &RegionStats::massive);
  tally(unresolved, &RegionStats::unresolved);
  return regions;
}

void TelemetryHub::record(IntervalTelemetry record) {
  registry_.add(ids_.intervals_total);
  if (record.degraded) registry_.add(ids_.degraded_total);
  registry_.add(ids_.abnormal_total, record.abnormal);
  registry_.add(ids_.isolated_total, record.isolated);
  registry_.add(ids_.massive_total, record.massive);
  registry_.add(ids_.unresolved_total, record.unresolved);
  registry_.add(ids_.budget_exhausted_total, record.budget_exhausted);
  registry_.add(ids_.episodes_opened_total, record.episodes_opened);
  registry_.add(ids_.episodes_closed_total, record.episodes_closed);
  registry_.observe(ids_.step_ms, record.total_ms);
  registry_.set(ids_.fleet_devices, static_cast<double>(record.devices));
  registry_.set(ids_.open_episodes,
                static_cast<double>(record.episodes_open));
  registry_.set(ids_.last_abnormal, static_cast<double>(record.abnormal));
  store_.push(std::move(record));
}

void TelemetryHub::annotate_ingest(std::uint64_t interval,
                                   const IngestSample& sample) {
  registry_.add(ids_.ingest_late_total, sample.late_sealed);
  registry_.add(ids_.ingest_duplicates_total, sample.duplicates);
  registry_.add(ids_.ingest_shed_total, sample.shed_claims);
  registry_.add(ids_.ingest_replayed_total, sample.replayed);
  if (sample.forced) registry_.add(ids_.ingest_forced_total);
  registry_.set(ids_.ingest_open_intervals,
                static_cast<double>(sample.open_intervals));
  if (IntervalTelemetry* record = store_.find(interval)) {
    record->ingest = sample;
  }
}

}  // namespace acn::obs
