#include "adversary/defense.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace acn {

CloneFilter::CloneFilter(Config config) : config_(config) {
  if (config.suspicion_factor <= 0.0 || config.suspicion_factor >= 1.0) {
    throw std::invalid_argument("CloneFilter: suspicion_factor must be in (0, 1)");
  }
  if (config.min_group < 2) {
    throw std::invalid_argument("CloneFilter: min_group must be >= 2");
  }
}

DeviceSet CloneFilter::suspicious(const StatePair& state, Params model) const {
  model.validate();
  const double radius = config_.suspicion_factor * model.r;
  const std::vector<DeviceId> abnormal(state.abnormal().begin(),
                                       state.abnormal().end());

  // Union-find over clone edges (joint distance below the suspicion radius).
  std::vector<std::size_t> parent(abnormal.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t a = 0; a < abnormal.size(); ++a) {
    for (std::size_t b = a + 1; b < abnormal.size(); ++b) {
      if (state.joint_distance(abnormal[a], abnormal[b]) <= radius) {
        parent[find(a)] = find(b);
      }
    }
  }

  std::vector<std::size_t> group_size(abnormal.size(), 0);
  for (std::size_t a = 0; a < abnormal.size(); ++a) ++group_size[find(a)];

  std::vector<DeviceId> drops;
  std::vector<bool> keeper_chosen(abnormal.size(), false);
  for (std::size_t a = 0; a < abnormal.size(); ++a) {
    const std::size_t root = find(a);
    if (group_size[root] < config_.min_group) continue;
    if (!keeper_chosen[root]) {
      keeper_chosen[root] = true;  // smallest id survives (abnormal sorted)
      continue;
    }
    drops.push_back(abnormal[a]);
  }
  return DeviceSet(std::move(drops));
}

StatePair CloneFilter::filtered(const StatePair& state, Params model) const {
  const DeviceSet drops = suspicious(state, model);
  std::vector<Point> prev;
  std::vector<Point> curr;
  prev.reserve(state.n());
  curr.reserve(state.n());
  for (DeviceId j = 0; j < state.n(); ++j) {
    prev.push_back(state.prev_pos(j));
    curr.push_back(state.curr_pos(j));
  }
  return StatePair(Snapshot(std::move(prev)), Snapshot(std::move(curr)),
                   state.abnormal().set_difference(drops));
}

}  // namespace acn
