// Malicious devices — the paper's declared future work (§VIII):
//
//   "we plan to extend our characterization to take into account malicious
//    devices. In particular, we will study the presence of collusion of
//    malicious devices whose aim would be to prevent an impacted device to
//    be detected by the monitoring application."
//
// The trajectories the characterizer consumes are *claims* made by peers;
// nothing in the DSN'14 model authenticates them. This module implements
// the attack the authors anticipate, plus two variants, by rewriting the
// state a victim's characterizer observes:
//
//   kFakeCrowd — colluders claim trajectories shadowing the victim's real
//     one. The victim's genuinely *isolated* anomaly now sits inside a
//     fabricated tau-dense motion: Theorem 5 no longer applies, the victim
//     concludes "massive" and stays silent — exactly "preventing an
//     impacted device from being detected".
//   kScatterCover — colluders impacted by a real massive event claim
//     scattered positions, bleeding the event's dense motions below tau so
//     impacted devices mis-report isolated failures (support-desk flood).
//   kMimicNoise — colluders replay other devices' trajectories with small
//     perturbations (chaff; degrades precision without a specific victim).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/state.hpp"
#include "core/params.hpp"

namespace acn {

enum class AttackStrategy : std::uint8_t {
  kFakeCrowd,
  kScatterCover,
  kMimicNoise,
};

[[nodiscard]] constexpr const char* to_string(AttackStrategy s) noexcept {
  switch (s) {
    case AttackStrategy::kFakeCrowd: return "fake-crowd";
    case AttackStrategy::kScatterCover: return "scatter-cover";
    case AttackStrategy::kMimicNoise: return "mimic-noise";
  }
  return "?";
}

struct AttackConfig {
  AttackStrategy strategy = AttackStrategy::kFakeCrowd;
  /// Devices the adversary controls (their claims are rewritten).
  std::vector<DeviceId> colluders;
  /// Victim whose verdict the adversary wants to flip (kFakeCrowd) or the
  /// massive event whose devices it wants to scatter (kScatterCover: any
  /// member id). Ignored by kMimicNoise.
  DeviceId target = 0;
  /// Spatial tightness of fabricated claims, as a fraction of r.
  double claim_jitter = 0.5;
  std::uint64_t seed = 1;
};

/// The compromised state: what honest devices observe after the adversary
/// rewrites its colluders' claims. Ground truth (`honest`) is kept so the
/// benches can score the attack.
struct CompromisedState {
  StatePair observed;          ///< claims, as fed to characterizers
  DeviceSet colluders;         ///< which devices lied
  DeviceSet fabricated_abnormal;  ///< colluders that fabricated a_k = true
};

/// Applies the attack to an honest state. Colluders must be valid ids;
/// throws std::invalid_argument otherwise.
[[nodiscard]] CompromisedState apply_attack(const StatePair& honest, Params model,
                                            const AttackConfig& config);

// ---------------------------------------------------------------------------
// Streaming trajectory shaping.
//
// apply_attack rewrites ONE StatePair after the fact — fine for a single
// interval, but a streaming monitor remembers the previous snapshot, so an
// adversary that rewrites history would be caught by simple consistency
// checks. A TrajectoryShaper instead shapes the colluders' claims interval
// after interval: what a colluder reports at k becomes its honest-looking
// position at k-1 of the next interval. The fabricated structure therefore
// has to be built by FOLLOWING the victim through time, which is exactly
// what a real collusion would do. Used by the hostile scenario suite
// (sim/hostile) to target BudgetExhausted verdicts and verdict flips.
// ---------------------------------------------------------------------------

enum class TrajectoryAttack : std::uint8_t {
  /// Colluders continuously shadow the victim's reported trajectory inside
  /// a tight jitter ball. When the victim suffers a genuinely isolated
  /// anomaly, the shadows jump with it and claim a_k = true: the victim's
  /// trajectory sits inside a fabricated tau-dense motion, Theorem 5 cannot
  /// fire, and the verdict flips isolated -> massive (the §VIII attack).
  kShadowCrowd,
  /// Colluders hold a chain of tau-sized clusters trailing the victim at
  /// ~1.5r spacing: no cluster is dense alone, every adjacent pair fits one
  /// 2r window — a long run of pairwise-overlapping maximal dense motions
  /// whose disjoint-collection combinatorics is the Theorem-7 search's
  /// worst case. Targets Corollary-8/ BudgetExhausted outcomes on the
  /// victim instead of a clean flip.
  kSuperpositionBomb,
  /// Colluders claim fresh uniform positions (and a_k = true) every
  /// interval: untargeted chaff that floods A_k with fake isolated
  /// anomalies and degrades precision.
  kScatterChaff,
};

[[nodiscard]] constexpr const char* to_string(TrajectoryAttack s) noexcept {
  switch (s) {
    case TrajectoryAttack::kShadowCrowd: return "shadow-crowd";
    case TrajectoryAttack::kSuperpositionBomb: return "superposition-bomb";
    case TrajectoryAttack::kScatterChaff: return "scatter-chaff";
  }
  return "?";
}

class TrajectoryShaper {
 public:
  struct Config {
    TrajectoryAttack strategy = TrajectoryAttack::kShadowCrowd;
    /// Devices the adversary controls; their claims are rewritten in place
    /// every interval.
    std::vector<DeviceId> colluders;
    Params model;
    /// Claim tightness as a fraction of r: shadow-ball radius for
    /// kShadowCrowd, intra-cluster jitter for kSuperpositionBomb.
    double claim_jitter = 0.35;
    /// Cluster spacing of kSuperpositionBomb as a fraction of the 2r
    /// window. 0.75 puts adjacent clusters 1.5r apart: one window covers a
    /// pair, none covers a triple.
    double chain_spacing = 0.75;
    std::uint64_t seed = 1;
  };

  explicit TrajectoryShaper(Config config);

  /// Rewrites the colluders' claimed positions for the closing interval, in
  /// place. `claimed` holds the fleet's monitor-visible positions (the
  /// victim's entry is read as the shadowing target). `victim` is the
  /// device whose verdict is targeted this interval (nullopt: targeted
  /// strategies freeze their claims); `victim_abnormal` says whether the
  /// victim reported a_k = true. Returns the colluders claiming a_k = true
  /// this interval, ascending. Throws std::invalid_argument on a colluder
  /// or victim id outside `claimed`.
  std::vector<DeviceId> shape(std::optional<DeviceId> victim,
                              bool victim_abnormal,
                              std::vector<Point>& claimed);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// Per-colluder persistent offsets (chain cluster + fixed jitter), built
  /// on first use once the space dimension is known.
  void build_offsets(std::size_t dim);

  Config config_;
  Rng rng_;
  std::vector<Point> offset_;  ///< per colluder, relative to the victim
  bool offsets_built_ = false;
};

}  // namespace acn
