// Malicious devices — the paper's declared future work (§VIII):
//
//   "we plan to extend our characterization to take into account malicious
//    devices. In particular, we will study the presence of collusion of
//    malicious devices whose aim would be to prevent an impacted device to
//    be detected by the monitoring application."
//
// The trajectories the characterizer consumes are *claims* made by peers;
// nothing in the DSN'14 model authenticates them. This module implements
// the attack the authors anticipate, plus two variants, by rewriting the
// state a victim's characterizer observes:
//
//   kFakeCrowd — colluders claim trajectories shadowing the victim's real
//     one. The victim's genuinely *isolated* anomaly now sits inside a
//     fabricated tau-dense motion: Theorem 5 no longer applies, the victim
//     concludes "massive" and stays silent — exactly "preventing an
//     impacted device from being detected".
//   kScatterCover — colluders impacted by a real massive event claim
//     scattered positions, bleeding the event's dense motions below tau so
//     impacted devices mis-report isolated failures (support-desk flood).
//   kMimicNoise — colluders replay other devices' trajectories with small
//     perturbations (chaff; degrades precision without a specific victim).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/state.hpp"
#include "core/params.hpp"

namespace acn {

enum class AttackStrategy : std::uint8_t {
  kFakeCrowd,
  kScatterCover,
  kMimicNoise,
};

[[nodiscard]] constexpr const char* to_string(AttackStrategy s) noexcept {
  switch (s) {
    case AttackStrategy::kFakeCrowd: return "fake-crowd";
    case AttackStrategy::kScatterCover: return "scatter-cover";
    case AttackStrategy::kMimicNoise: return "mimic-noise";
  }
  return "?";
}

struct AttackConfig {
  AttackStrategy strategy = AttackStrategy::kFakeCrowd;
  /// Devices the adversary controls (their claims are rewritten).
  std::vector<DeviceId> colluders;
  /// Victim whose verdict the adversary wants to flip (kFakeCrowd) or the
  /// massive event whose devices it wants to scatter (kScatterCover: any
  /// member id). Ignored by kMimicNoise.
  DeviceId target = 0;
  /// Spatial tightness of fabricated claims, as a fraction of r.
  double claim_jitter = 0.5;
  std::uint64_t seed = 1;
};

/// The compromised state: what honest devices observe after the adversary
/// rewrites its colluders' claims. Ground truth (`honest`) is kept so the
/// benches can score the attack.
struct CompromisedState {
  StatePair observed;          ///< claims, as fed to characterizers
  DeviceSet colluders;         ///< which devices lied
  DeviceSet fabricated_abnormal;  ///< colluders that fabricated a_k = true
};

/// Applies the attack to an honest state. Colluders must be valid ids;
/// throws std::invalid_argument otherwise.
[[nodiscard]] CompromisedState apply_attack(const StatePair& honest, Params model,
                                            const AttackConfig& config);

}  // namespace acn
