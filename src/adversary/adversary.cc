#include "adversary/adversary.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/math.hpp"

namespace acn {
namespace {

Point jittered(const Point& base, double amplitude, Rng& rng) {
  Point out = base;
  for (std::size_t i = 0; i < out.dim(); ++i) {
    out[i] = clamp(out[i] + rng.uniform(-amplitude, amplitude), 0.0, 1.0);
  }
  return out;
}

}  // namespace

CompromisedState apply_attack(const StatePair& honest, Params model,
                              const AttackConfig& config) {
  model.validate();
  for (const DeviceId c : config.colluders) {
    if (c >= honest.n()) {
      throw std::invalid_argument("apply_attack: unknown colluder id");
    }
  }
  if (config.target >= honest.n()) {
    throw std::invalid_argument("apply_attack: unknown target id");
  }

  Rng rng(config.seed);
  std::vector<Point> prev;
  std::vector<Point> curr;
  prev.reserve(honest.n());
  curr.reserve(honest.n());
  for (DeviceId j = 0; j < honest.n(); ++j) {
    prev.push_back(honest.prev_pos(j));
    curr.push_back(honest.curr_pos(j));
  }
  DeviceSet abnormal = honest.abnormal();
  DeviceSet fabricated;

  const double jitter = config.claim_jitter * model.r;
  switch (config.strategy) {
    case AttackStrategy::kFakeCrowd: {
      // Shadow the victim's trajectory: colluders claim they started next
      // to the victim and crashed along with it, fabricating a dense motion
      // around a genuinely isolated anomaly.
      for (const DeviceId c : config.colluders) {
        prev[c] = jittered(honest.prev_pos(config.target), jitter, rng);
        curr[c] = jittered(honest.curr_pos(config.target), jitter, rng);
        if (!abnormal.contains(c)) {
          abnormal = abnormal.with(c);
          fabricated = fabricated.with(c);
        }
      }
      break;
    }
    case AttackStrategy::kScatterCover: {
      // Colluders genuinely impacted by the target's event claim uniform
      // nonsense positions, starving the event's motions below tau.
      for (const DeviceId c : config.colluders) {
        std::vector<double> coords(honest.dim());
        for (auto& x : coords) x = rng.uniform();
        curr[c] = Point{std::span<const double>(coords)};
        for (auto& x : coords) x = rng.uniform();
        prev[c] = Point{std::span<const double>(coords)};
      }
      break;
    }
    case AttackStrategy::kMimicNoise: {
      // Each colluder replays a random honest abnormal device's trajectory.
      const DeviceSet& pool = honest.abnormal();
      if (!pool.empty()) {
        for (const DeviceId c : config.colluders) {
          const DeviceId copied = pool[rng.uniform_int(pool.size())];
          prev[c] = jittered(honest.prev_pos(copied), jitter, rng);
          curr[c] = jittered(honest.curr_pos(copied), jitter, rng);
          if (!abnormal.contains(c)) {
            abnormal = abnormal.with(c);
            fabricated = fabricated.with(c);
          }
        }
      }
      break;
    }
  }

  return CompromisedState{
      StatePair(Snapshot(std::move(prev)), Snapshot(std::move(curr)),
                std::move(abnormal)),
      DeviceSet(config.colluders), std::move(fabricated)};
}

TrajectoryShaper::TrajectoryShaper(Config config)
    : config_(std::move(config)), rng_(config_.seed) {
  config_.model.validate();
  if (config_.claim_jitter < 0.0 || config_.chain_spacing <= 0.0 ||
      config_.chain_spacing > 1.0) {
    throw std::invalid_argument("TrajectoryShaper: bad jitter/spacing");
  }
}

void TrajectoryShaper::build_offsets(std::size_t dim) {
  // Cluster c of the chain sits (c+1) * chain_spacing * 2r from the victim
  // along the diagonal; each colluder keeps a FIXED jitter inside its
  // cluster so the cluster stays r-consistent when the whole chain jumps
  // with the victim. The diagonal direction is resolved per shape() call
  // (it must point into the unit box from wherever the victim is).
  const std::size_t tau = std::max<std::size_t>(config_.model.tau, 1);
  const double spacing = config_.chain_spacing * config_.model.window();
  const double jitter = config_.claim_jitter * config_.model.r;
  offset_.clear();
  offset_.reserve(config_.colluders.size());
  for (std::size_t i = 0; i < config_.colluders.size(); ++i) {
    const double along =
        static_cast<double>(i / tau + 1) * spacing;
    std::vector<double> coords(dim);
    for (auto& x : coords) x = along + rng_.uniform(-jitter, jitter);
    offset_.emplace_back(std::span<const double>(coords));
  }
  offsets_built_ = true;
}

std::vector<DeviceId> TrajectoryShaper::shape(std::optional<DeviceId> victim,
                                              bool victim_abnormal,
                                              std::vector<Point>& claimed) {
  for (const DeviceId c : config_.colluders) {
    if (c >= claimed.size()) {
      throw std::invalid_argument("TrajectoryShaper::shape: unknown colluder id");
    }
  }
  if (victim.has_value() && *victim >= claimed.size()) {
    throw std::invalid_argument("TrajectoryShaper::shape: unknown victim id");
  }

  std::vector<DeviceId> fabricated;
  const auto fabricate_all = [&] {
    fabricated.assign(config_.colluders.begin(), config_.colluders.end());
    std::sort(fabricated.begin(), fabricated.end());
  };

  switch (config_.strategy) {
    case TrajectoryAttack::kScatterChaff: {
      const std::size_t dim = claimed.empty() ? 0 : claimed.front().dim();
      for (const DeviceId c : config_.colluders) {
        std::vector<double> coords(dim);
        for (auto& x : coords) x = rng_.uniform();
        claimed[c] = Point{std::span<const double>(coords)};
      }
      fabricate_all();
      break;
    }
    case TrajectoryAttack::kShadowCrowd: {
      if (!victim.has_value()) break;  // nobody to shadow: claims freeze
      const Point target = claimed[*victim];
      const double jitter = config_.claim_jitter * config_.model.r;
      for (const DeviceId c : config_.colluders) {
        Point p = target;
        for (std::size_t i = 0; i < p.dim(); ++i) {
          p[i] = clamp(p[i] + rng_.uniform(-jitter, jitter), 0.0, 1.0);
        }
        claimed[c] = p;
      }
      if (victim_abnormal) fabricate_all();
      break;
    }
    case TrajectoryAttack::kSuperpositionBomb: {
      if (!victim.has_value()) break;
      const Point target = claimed[*victim];
      if (!offsets_built_) build_offsets(target.dim());
      for (std::size_t i = 0; i < config_.colluders.size(); ++i) {
        Point p = target;
        for (std::size_t t = 0; t < p.dim(); ++t) {
          // The chain extends toward the far half of the box per dimension
          // so it never folds back onto the victim when clamped.
          const double direction = target[t] < 0.5 ? 1.0 : -1.0;
          p[t] = clamp(p[t] + direction * offset_[i][t], 0.0, 1.0);
        }
        claimed[config_.colluders[i]] = p;
      }
      if (victim_abnormal) fabricate_all();
      break;
    }
  }
  return fabricated;
}

}  // namespace acn
