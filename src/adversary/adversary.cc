#include "adversary/adversary.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/math.hpp"

namespace acn {
namespace {

Point jittered(const Point& base, double amplitude, Rng& rng) {
  Point out = base;
  for (std::size_t i = 0; i < out.dim(); ++i) {
    out[i] = clamp(out[i] + rng.uniform(-amplitude, amplitude), 0.0, 1.0);
  }
  return out;
}

}  // namespace

CompromisedState apply_attack(const StatePair& honest, Params model,
                              const AttackConfig& config) {
  model.validate();
  for (const DeviceId c : config.colluders) {
    if (c >= honest.n()) {
      throw std::invalid_argument("apply_attack: unknown colluder id");
    }
  }
  if (config.target >= honest.n()) {
    throw std::invalid_argument("apply_attack: unknown target id");
  }

  Rng rng(config.seed);
  std::vector<Point> prev;
  std::vector<Point> curr;
  prev.reserve(honest.n());
  curr.reserve(honest.n());
  for (DeviceId j = 0; j < honest.n(); ++j) {
    prev.push_back(honest.prev_pos(j));
    curr.push_back(honest.curr_pos(j));
  }
  DeviceSet abnormal = honest.abnormal();
  DeviceSet fabricated;

  const double jitter = config.claim_jitter * model.r;
  switch (config.strategy) {
    case AttackStrategy::kFakeCrowd: {
      // Shadow the victim's trajectory: colluders claim they started next
      // to the victim and crashed along with it, fabricating a dense motion
      // around a genuinely isolated anomaly.
      for (const DeviceId c : config.colluders) {
        prev[c] = jittered(honest.prev_pos(config.target), jitter, rng);
        curr[c] = jittered(honest.curr_pos(config.target), jitter, rng);
        if (!abnormal.contains(c)) {
          abnormal = abnormal.with(c);
          fabricated = fabricated.with(c);
        }
      }
      break;
    }
    case AttackStrategy::kScatterCover: {
      // Colluders genuinely impacted by the target's event claim uniform
      // nonsense positions, starving the event's motions below tau.
      for (const DeviceId c : config.colluders) {
        std::vector<double> coords(honest.dim());
        for (auto& x : coords) x = rng.uniform();
        curr[c] = Point{std::span<const double>(coords)};
        for (auto& x : coords) x = rng.uniform();
        prev[c] = Point{std::span<const double>(coords)};
      }
      break;
    }
    case AttackStrategy::kMimicNoise: {
      // Each colluder replays a random honest abnormal device's trajectory.
      const DeviceSet& pool = honest.abnormal();
      if (!pool.empty()) {
        for (const DeviceId c : config.colluders) {
          const DeviceId copied = pool[rng.uniform_int(pool.size())];
          prev[c] = jittered(honest.prev_pos(copied), jitter, rng);
          curr[c] = jittered(honest.curr_pos(copied), jitter, rng);
          if (!abnormal.contains(c)) {
            abnormal = abnormal.with(c);
            fabricated = fabricated.with(c);
          }
        }
      }
      break;
    }
  }

  return CompromisedState{
      StatePair(Snapshot(std::move(prev)), Snapshot(std::move(curr)),
                std::move(abnormal)),
      DeviceSet(config.colluders), std::move(fabricated)};
}

}  // namespace acn
