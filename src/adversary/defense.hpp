// A first countermeasure against trajectory-claim collusion.
//
// Observation: fabricated crowds are *too* coherent. Honest devices hit by
// one error share a displacement but keep their idiosyncratic offsets
// (they were spread across a radius-r ball before the error); colluders
// shadowing a victim cluster tightly around the victim's own trajectory in
// the joint space. CloneFilter flags groups of devices whose pairwise joint
// distance is below a suspicion radius much smaller than r — legitimate
// under the model's own dimensioning only with negligible probability —
// and drops all but one representative from the abnormal set before
// characterization.
//
// This is deliberately a *heuristic* defense (the paper leaves the
// Byzantine extension to future work); the bench quantifies both its
// recovery rate and its collateral damage on honest verdicts.
#pragma once

#include <cstdint>

#include "common/device_set.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

class CloneFilter {
 public:
  struct Config {
    /// Two claims closer than suspicion_factor * r (joint Chebyshev) are
    /// clones of each other.
    double suspicion_factor = 0.2;
    /// Minimal clone-group size before anything is dropped (pairs happen
    /// honestly; crowds do not).
    std::size_t min_group = 3;
  };

  explicit CloneFilter(Config config);

  /// Returns the devices to drop from A_k: every clone-group of size >=
  /// min_group loses all members but its smallest id.
  [[nodiscard]] DeviceSet suspicious(const StatePair& state, Params model) const;

  /// Convenience: a copy of `state` with the suspicious claims removed from
  /// the abnormal set (positions untouched — they are claims either way).
  [[nodiscard]] StatePair filtered(const StatePair& state, Params model) const;

 private:
  Config config_;
};

}  // namespace acn
