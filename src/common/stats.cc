#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acn {

void RunningStat::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = x < min_ ? x : min_;
  max_ = x > max_ ? x : max_;
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("quantile of empty SampleSet");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
}

double EmpiricalCdf::at(double x) const {
  if (values_.empty()) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

}  // namespace acn
