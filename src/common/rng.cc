#include "common/rng.hpp"

#include <cmath>

namespace acn {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // consecutive zeros, but keep the guard explicit for cheap safety.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free-in-expectation bounded generation.
  if (bound == 0) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> pool(n);
  for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t i = 0; i < k && i < n; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(uniform_int(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace acn
