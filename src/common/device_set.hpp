// DeviceSet: an immutable-by-convention sorted set of device identifiers.
//
// The characterization algorithms (Theorems 5-7, Corollary 8) manipulate
// many small sets of devices: r-consistent motions, anomaly-partition
// classes, neighbourhoods. A sorted std::vector<DeviceId> beats node-based
// containers at these sizes (typically < 32 elements) and gives O(n) merge
// operations and cheap hashing for deduplication of enumerated motions.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace acn {

using DeviceId = std::uint32_t;

class DeviceSet {
 public:
  DeviceSet() = default;
  /// Builds from arbitrary order; sorts and deduplicates.
  explicit DeviceSet(std::vector<DeviceId> ids);
  /// Same, copying from a borrowed span (no intermediate vector at the call
  /// site — motion-plane slices hand out spans).
  explicit DeviceSet(std::span<const DeviceId> ids);
  DeviceSet(std::initializer_list<DeviceId> ids);

  [[nodiscard]] static DeviceSet singleton(DeviceId id);

  /// Adopts `ids` that are already sorted and duplicate-free (asserted in
  /// debug builds), skipping the sort pass of the general constructor. The
  /// enumeration hot paths produce sorted runs by construction.
  [[nodiscard]] static DeviceSet from_sorted(std::vector<DeviceId> ids);

  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool contains(DeviceId id) const noexcept;
  [[nodiscard]] bool is_subset_of(const DeviceSet& other) const noexcept;
  [[nodiscard]] bool is_disjoint_from(const DeviceSet& other) const noexcept;
  [[nodiscard]] std::size_t intersection_size(const DeviceSet& other) const noexcept;

  [[nodiscard]] DeviceSet set_union(const DeviceSet& other) const;
  [[nodiscard]] DeviceSet set_intersection(const DeviceSet& other) const;
  [[nodiscard]] DeviceSet set_difference(const DeviceSet& other) const;
  [[nodiscard]] DeviceSet with(DeviceId id) const;
  [[nodiscard]] DeviceSet without(DeviceId id) const;

  [[nodiscard]] std::span<const DeviceId> ids() const noexcept { return ids_; }
  [[nodiscard]] auto begin() const noexcept { return ids_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ids_.end(); }
  [[nodiscard]] DeviceId operator[](std::size_t i) const noexcept { return ids_[i]; }

  /// FNV-1a over the length and the id sequence; stable across runs (used
  /// for memo keys and plane-wide motion interning). Mixing the length first
  /// separates the many small sets the characterization manipulates (e.g.
  /// {0} from {} + trailing zeros of the element mix).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  /// "{1, 4, 7}" - for diagnostics and test failure messages.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DeviceSet&, const DeviceSet&) = default;
  /// Lexicographic; gives deterministic iteration orders project-wide.
  friend auto operator<=>(const DeviceSet&, const DeviceSet&) = default;

 private:
  std::vector<DeviceId> ids_;
};

/// Length-prefixed FNV-1a over an id run; the one hashing scheme shared by
/// DeviceSet::hash and the motion-plane arena stores.
[[nodiscard]] std::uint64_t hash_ids(std::span<const DeviceId> ids) noexcept;

/// Removes sets that are subsets of another set in the family (keeps the
/// inclusion-maximal ones) and deduplicates. Order of survivors is sorted.
[[nodiscard]] std::vector<DeviceSet> keep_maximal(std::vector<DeviceSet> family);

struct DeviceSetHash {
  std::size_t operator()(const DeviceSet& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace acn
