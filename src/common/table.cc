#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace acn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (const double value : cells) out.push_back(fmt(value, precision));
  add_row(std::move(out));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace acn
