// WorkerPool: a persistent pool of parked worker threads for the
// per-interval fan-outs (plane build per interaction component,
// characterization per abnormal device).
//
// The seed spawned fresh std::threads inside every characterize_all_parallel
// call — tens of microseconds of spawn/join latency per interval, paid even
// when the work item count made parallelism pointless (the recorded bench
// showed parallel >= serial on every n=1000/5000 row). The pool spawns its
// threads once, parks them on a condition variable between parallel
// sections, and falls back to a plain inline loop whenever the item count
// is below the caller's fan-out threshold (or the pool has no workers), so
// small intervals never touch a synchronization primitive.
//
// Scheduling is a shared cursor over [0, count): workers and the calling
// thread claim indices until exhaustion. Result determinism is the caller's
// concern (disjoint slot writes make it trivial); the first exception
// thrown by any index is rethrown on the calling thread after the section
// quiesces.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acn {

class WorkerPool {
 public:
  /// Spawns `parallelism - 1` workers (the calling thread is the final
  /// lane); 0 means hardware concurrency. A pool of parallelism 1 never
  /// spawns a thread and runs every section inline.
  explicit WorkerPool(unsigned parallelism = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Workers + the calling lane.
  [[nodiscard]] unsigned parallelism() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(index) for every index in [0, count), the calling thread
  /// participating. Runs inline (no wakeups, no locking) when count <
  /// min_fanout or the pool has no workers. `max_lanes` further caps the
  /// lanes used for this section (0 = all; 1 = inline). The first exception
  /// from any index is rethrown here once the section quiesces. Safe to
  /// call from several application threads at once (the seed's
  /// spawn-per-call paths were): sections on one pool serialize behind
  /// section_mutex_, they never interleave.
  ///
  /// When `lane_ms` is given it is resized to the number of lanes that ran
  /// and filled with each lane's busy wall-clock milliseconds (first claim
  /// to drain) — two clock reads per lane, so the skew instrumentation the
  /// engine's FrameStats reports costs nothing on the per-index path. The
  /// inline fallback reports one lane. Slot order is join order, which is
  /// scheduling-dependent; consumers aggregate (max/mean), never index.
  void for_each(std::size_t count, std::size_t min_fanout,
                const std::function<void(std::size_t)>& fn,
                unsigned max_lanes = 0, std::vector<double>* lane_ms = nullptr);

  /// Process-wide pool at hardware concurrency, built on first use. The
  /// legacy *_parallel(threads) entry points cap it per call via max_lanes.
  [[nodiscard]] static WorkerPool& shared();

 private:
  void worker_loop();
  /// One lane's life inside the current section: claim indices from the
  /// shared cursor until exhaustion, running fn unlocked, recording the
  /// first error (which also drains the cursor). Shared by worker lanes
  /// and the calling lane; `lock` must hold mutex_ on entry and holds it
  /// again on return.
  void run_as_lane(std::unique_lock<std::mutex>& lock);

  std::mutex section_mutex_;  ///< serializes whole sections across callers
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers park here
  std::condition_variable done_cv_;   ///< the caller waits here
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // One section at a time (for_each holds section_mutex_ until quiescence).
  std::uint64_t generation_ = 0;  ///< bumped per section; workers join once
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  unsigned lanes_left_ = 0;        ///< worker lanes still allowed to join
  std::size_t cursor_ = 0;         ///< next index to claim (under mutex_)
  std::size_t in_flight_ = 0;      ///< indices currently executing
  std::exception_ptr error_;
  std::vector<double>* lane_ms_ = nullptr;  ///< per-lane busy ms (optional)
};

}  // namespace acn
