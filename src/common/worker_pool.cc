#include "common/worker_pool.hpp"

#include <algorithm>

namespace acn {

WorkerPool::WorkerPool(unsigned parallelism) {
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(parallelism - 1);
  for (unsigned t = 1; t < parallelism; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::run_as_lane(std::unique_lock<std::mutex>& lock) {
  while (cursor_ < count_) {
    const std::size_t index = cursor_++;
    ++in_flight_;
    lock.unlock();
    try {
      (*fn_)(index);
      lock.lock();
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      cursor_ = count_;  // drain: no lane claims another index
    }
    --in_flight_;
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (fn_ != nullptr && generation_ != seen && lanes_left_ > 0 &&
                       cursor_ < count_);
    });
    if (stop_) return;
    seen = generation_;
    --lanes_left_;
    run_as_lane(lock);
    done_cv_.notify_one();
  }
}

void WorkerPool::for_each(std::size_t count, std::size_t min_fanout,
                          const std::function<void(std::size_t)>& fn,
                          unsigned max_lanes) {
  if (count == 0) return;
  unsigned lanes = parallelism();
  if (max_lanes != 0) lanes = std::min(lanes, max_lanes);
  lanes = static_cast<unsigned>(
      std::min<std::size_t>(lanes, count));  // never more lanes than items
  if (lanes <= 1 || count < min_fanout) {
    for (std::size_t index = 0; index < count; ++index) fn(index);
    return;
  }

  // Callers racing for the pool queue here: the section state below (fn_,
  // cursor_, generation_, ...) belongs to exactly one section at a time.
  const std::lock_guard<std::mutex> section(section_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  count_ = count;
  cursor_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  lanes_left_ = lanes - 1;
  ++generation_;
  work_cv_.notify_all();

  // The calling thread is a lane like any other.
  run_as_lane(lock);
  done_cv_.wait(lock, [&] { return cursor_ >= count_ && in_flight_ == 0; });

  fn_ = nullptr;
  lanes_left_ = 0;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(0);
  return pool;
}

}  // namespace acn
