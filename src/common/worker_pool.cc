#include "common/worker_pool.hpp"

#include <algorithm>
#include <chrono>

namespace acn {

WorkerPool::WorkerPool(unsigned parallelism) {
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(parallelism - 1);
  for (unsigned t = 1; t < parallelism; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::run_as_lane(std::unique_lock<std::mutex>& lock) {
  // Lane slot claimed up front (under the lock) so the busy-time write
  // below races nothing; the clock reads bracket the whole claim loop.
  std::size_t lane_slot = 0;
  if (lane_ms_ != nullptr) {
    lane_slot = lane_ms_->size();
    lane_ms_->push_back(0.0);
  }
  const auto lane_start = std::chrono::steady_clock::now();
  while (cursor_ < count_) {
    const std::size_t index = cursor_++;
    ++in_flight_;
    lock.unlock();
    try {
      (*fn_)(index);
      lock.lock();
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      cursor_ = count_;  // drain: no lane claims another index
    }
    --in_flight_;
  }
  if (lane_ms_ != nullptr) {
    (*lane_ms_)[lane_slot] = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - lane_start)
                                 .count();
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (fn_ != nullptr && generation_ != seen && lanes_left_ > 0 &&
                       cursor_ < count_);
    });
    if (stop_) return;
    seen = generation_;
    --lanes_left_;
    run_as_lane(lock);
    done_cv_.notify_one();
  }
}

void WorkerPool::for_each(std::size_t count, std::size_t min_fanout,
                          const std::function<void(std::size_t)>& fn,
                          unsigned max_lanes, std::vector<double>* lane_ms) {
  if (lane_ms != nullptr) lane_ms->clear();
  if (count == 0) return;
  unsigned lanes = parallelism();
  if (max_lanes != 0) lanes = std::min(lanes, max_lanes);
  lanes = static_cast<unsigned>(
      std::min<std::size_t>(lanes, count));  // never more lanes than items
  if (lanes <= 1 || count < min_fanout) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t index = 0; index < count; ++index) fn(index);
    if (lane_ms != nullptr) {
      lane_ms->push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    }
    return;
  }

  // Callers racing for the pool queue here: the section state below (fn_,
  // cursor_, generation_, ...) belongs to exactly one section at a time.
  const std::lock_guard<std::mutex> section(section_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  count_ = count;
  cursor_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  lane_ms_ = lane_ms;
  lanes_left_ = lanes - 1;
  ++generation_;
  work_cv_.notify_all();

  // The calling thread is a lane like any other.
  run_as_lane(lock);
  done_cv_.wait(lock, [&] { return cursor_ >= count_ && in_flight_ == 0; });

  fn_ = nullptr;
  lanes_left_ = 0;
  lane_ms_ = nullptr;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(0);
  return pool;
}

}  // namespace acn
