// Minimal CSV reading/writing — the interchange format of the CLI tool and
// the benches' machine-readable output. Quoting rules: fields containing
// commas, quotes or newlines are double-quoted with embedded quotes doubled
// (RFC 4180 subset, no multi-line fields on input).
#pragma once

#include <string>
#include <vector>

namespace acn {

class CsvWriter {
 public:
  /// Starts with a header row.
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_numeric_row(const std::vector<double>& row, int precision = 6);

  [[nodiscard]] std::string to_string() const;
  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text into rows of fields. Handles quoted fields; throws
/// std::invalid_argument on malformed quoting.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Reads and parses a CSV file; throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv_file(
    const std::string& path);

}  // namespace acn
