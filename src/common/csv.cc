#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"

namespace acn {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double value : row) cells.push_back(fmt(value, precision));
  add_row(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << quoted(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("CsvWriter: write failed for " + path);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&]() {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          throw std::invalid_argument("parse_csv: quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\n':
        end_row();
        break;
      case '\r':
        break;  // tolerate CRLF
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("parse_csv: unterminated quote");
  end_row();
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace acn
