#include "common/math.hpp"

#include <cmath>
#include <limits>

namespace acn {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_cdf(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) acc += binomial_pmf(n, i, p);
  return acc > 1.0 ? 1.0 : acc;
}

double log_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = a > b ? a : b;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

bool nearly_equal(double a, double b, double eps) {
  return std::fabs(a - b) <= eps;
}

}  // namespace acn
