#include "common/device_set.hpp"

#include <algorithm>
#include <cassert>

namespace acn {

DeviceSet::DeviceSet(std::vector<DeviceId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

DeviceSet::DeviceSet(std::span<const DeviceId> ids)
    : DeviceSet(std::vector<DeviceId>(ids.begin(), ids.end())) {}

DeviceSet DeviceSet::from_sorted(std::vector<DeviceId> ids) {
  assert(std::is_sorted(ids.begin(), ids.end()) &&
         std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  DeviceSet r;
  r.ids_ = std::move(ids);
  return r;
}

DeviceSet::DeviceSet(std::initializer_list<DeviceId> ids)
    : DeviceSet(std::vector<DeviceId>(ids)) {}

DeviceSet DeviceSet::singleton(DeviceId id) { return DeviceSet({id}); }

bool DeviceSet::contains(DeviceId id) const noexcept {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool DeviceSet::is_subset_of(const DeviceSet& other) const noexcept {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

bool DeviceSet::is_disjoint_from(const DeviceSet& other) const noexcept {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return false;
    }
  }
  return true;
}

std::size_t DeviceSet::intersection_size(const DeviceSet& other) const noexcept {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  std::size_t n = 0;
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++n;
      ++a;
      ++b;
    }
  }
  return n;
}

DeviceSet DeviceSet::set_union(const DeviceSet& other) const {
  std::vector<DeviceId> out;
  out.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(), other.ids_.end(),
                 std::back_inserter(out));
  DeviceSet r;
  r.ids_ = std::move(out);
  return r;
}

DeviceSet DeviceSet::set_intersection(const DeviceSet& other) const {
  std::vector<DeviceId> out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out));
  DeviceSet r;
  r.ids_ = std::move(out);
  return r;
}

DeviceSet DeviceSet::set_difference(const DeviceSet& other) const {
  std::vector<DeviceId> out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out));
  DeviceSet r;
  r.ids_ = std::move(out);
  return r;
}

DeviceSet DeviceSet::with(DeviceId id) const {
  if (contains(id)) return *this;
  DeviceSet r = *this;
  r.ids_.insert(std::lower_bound(r.ids_.begin(), r.ids_.end(), id), id);
  return r;
}

DeviceSet DeviceSet::without(DeviceId id) const {
  DeviceSet r = *this;
  const auto it = std::lower_bound(r.ids_.begin(), r.ids_.end(), id);
  if (it != r.ids_.end() && *it == id) r.ids_.erase(it);
  return r;
}

std::uint64_t hash_ids(std::span<const DeviceId> ids) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h ^= static_cast<std::uint64_t>(ids.size());
  h *= 0x100000001B3ULL;
  for (const DeviceId id : ids) {
    h ^= id;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t DeviceSet::hash() const noexcept { return hash_ids(ids_); }

std::string DeviceSet::to_string() const {
  std::string s = "{";
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(ids_[i]);
  }
  s += "}";
  return s;
}

std::vector<DeviceSet> keep_maximal(std::vector<DeviceSet> family) {
  std::sort(family.begin(), family.end());
  family.erase(std::unique(family.begin(), family.end()), family.end());
  // Size-descending scan: a candidate with any strict superset in the family
  // also has one among the survivors scanned so far (subset is transitive and
  // equal-size containment is equality, gone after dedup), so each candidate
  // is checked against the few maximal sets instead of the whole family.
  std::stable_sort(family.begin(), family.end(),
                   [](const DeviceSet& a, const DeviceSet& b) {
                     return a.size() > b.size();
                   });
  std::vector<DeviceSet> maximal;
  for (auto& candidate : family) {
    bool covered = false;
    for (const auto& other : maximal) {
      if (other.size() > candidate.size() && candidate.is_subset_of(other)) {
        covered = true;
        break;
      }
    }
    if (!covered) maximal.push_back(std::move(candidate));
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

}  // namespace acn
