// Numerically stable combinatorial / probability helpers used by the
// dimensioning analysis of §VII-A (Fig 6a / Fig 6b).
#pragma once

#include <cstdint>

namespace acn {

/// log(n choose k); 0 for k out of range conventions handled by caller.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t k);

/// Binomial(n, p) point mass P{X = k}, computed in log space.
[[nodiscard]] double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// Binomial(n, p) CDF P{X <= k}, summed in log space term by term.
[[nodiscard]] double binomial_cdf(std::uint64_t n, std::uint64_t k, double p);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_add_exp(double a, double b);

/// Clamps x into [lo, hi].
[[nodiscard]] double clamp(double x, double lo, double hi);

/// True if |a - b| <= eps (absolute tolerance).
[[nodiscard]] bool nearly_equal(double a, double b, double eps = 1e-12);

}  // namespace acn
