// Deterministic pseudo-random number generation for the whole project.
//
// We deliberately avoid <random> distributions: their outputs are
// implementation-defined, which would make tests and benches produce
// different numbers on different standard libraries. Everything random in
// this repository flows through Rng (xoshiro256** seeded via splitmix64),
// so a (seed, parameters) pair identifies a run bit-for-bit on any platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace acn {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xACEDBEEFCAFEF00DULL) noexcept;

  /// Next raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal deviate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Samples k distinct indices from [0, n) uniformly (partial Fisher-Yates).
  /// Requires k <= n. Returned order is random.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-run streams).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace acn
