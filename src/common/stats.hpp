// Summary statistics used by the simulation metrics and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace acn {

/// Online mean/variance accumulator (Welford). O(1) memory.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles. For bench-sized data only.
class SampleSet {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Exact quantile by linear interpolation; q in [0, 1]. Requires samples.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Empirical CDF over a fixed set of evaluation points.
/// Used to cross-check the analytic dimensioning curves by Monte Carlo.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> values);
  /// P{X <= x} under the empirical distribution.
  [[nodiscard]] double at(double x) const;
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }

 private:
  std::vector<double> values_;  // sorted
};

}  // namespace acn
