// Minimal fixed-width console table printer for the bench binaries, so every
// regenerated paper table/figure prints aligned, diff-able rows.
#pragma once

#include <string>
#include <vector>

namespace acn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  /// Renders with a header separator; every column padded to its widest cell.
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for mixed-type rows).
[[nodiscard]] std::string fmt(double value, int precision = 4);

}  // namespace acn
