#include "net/qos_network.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/math.hpp"

namespace acn {

void FaultInjector::inject(Fault fault) {
  if (fault.severity <= 0.0 || fault.severity > 1.0) {
    throw std::invalid_argument("Fault: severity must be in (0, 1]");
  }
  if (fault.duration == 0) {
    throw std::invalid_argument("Fault: duration must be >= 1 tick");
  }
  faults_.push_back(fault);
}

double FaultInjector::degradation(const Topology& topology, DeviceId gateway,
                                  std::size_t service, std::uint64_t tick) const {
  double total = 0.0;
  for (const Fault& fault : faults_) {
    const bool active = tick >= fault.start && tick < fault.start + fault.duration;
    if (active && topology.on_path(fault.site, fault.index, gateway, service)) {
      total += fault.severity;
    }
  }
  return std::min(total, 1.0);
}

DeviceSet FaultInjector::impacted_gateways(const Topology& topology,
                                           std::uint64_t tick) const {
  std::vector<DeviceId> impacted;
  for (DeviceId g = 0; g < topology.gateway_count(); ++g) {
    for (std::size_t s = 0; s < topology.service_count(); ++s) {
      if (degradation(topology, g, s, tick) > 0.0) {
        impacted.push_back(g);
        break;
      }
    }
  }
  return DeviceSet(std::move(impacted));
}

QosNetwork::QosNetwork(const Topology& topology, Config config, std::uint64_t seed)
    : topology_(topology), config_(config), rng_(seed) {
  if (config.base_qos <= 0.0 || config.base_qos > 1.0 || config.noise_sigma < 0.0) {
    throw std::invalid_argument("QosNetwork: bad configuration");
  }
}

double QosNetwork::true_qos(const FaultInjector& faults, DeviceId gateway,
                            std::size_t service, std::uint64_t tick) const {
  return clamp(config_.base_qos - faults.degradation(topology_, gateway, service, tick),
               0.0, 1.0);
}

double QosNetwork::sample(const FaultInjector& faults, DeviceId gateway,
                          std::size_t service, std::uint64_t tick) {
  const double noiseless = true_qos(faults, gateway, service, tick);
  return clamp(noiseless + rng_.normal(0.0, config_.noise_sigma), 0.0, 1.0);
}

}  // namespace acn
