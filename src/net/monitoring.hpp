// Gateway-side online monitoring: ties the detect substrate (a_k) and the
// core characterizer together over the ISP network, implementing the
// paper's motivating workflow (§I):
//
//   * each gateway continuously samples the QoS of its d services and feeds
//     a per-service detector bank (a_k(j));
//   * every `snapshot_interval` ticks the swarm freezes a snapshot S_k; the
//     gateways whose banks fired during the interval form A_k;
//   * each abnormal gateway characterizes its anomaly locally (Theorems
//     5-7, Corollary 8) and reports **only isolated** anomalies to the ISP
//     (the over-the-top variant reports only massive/network events);
//   * the report centre tallies the would-be support calls, quantifying the
//     report-storm suppression the paper argues for.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "detect/detector.hpp"
#include "detect/detector_bank.hpp"
#include "net/qos_network.hpp"
#include "net/topology.hpp"

namespace acn {

struct SwarmConfig {
  Params model;                         ///< r, tau of the characterization
  std::uint64_t snapshot_interval = 8;  ///< ticks per interval [k-1, k]
  CharacterizeOptions characterize;

  void validate() const {
    model.validate();
    if (snapshot_interval == 0) {
      throw std::invalid_argument("SwarmConfig: snapshot_interval must be >= 1");
    }
  }
};

struct GatewayReport {
  DeviceId gateway = 0;
  AnomalyClass cls = AnomalyClass::kUnresolved;
  DecisionRule rule = DecisionRule::kTheorem5;
};

/// Everything the swarm concluded at one snapshot boundary.
struct SnapshotOutcome {
  std::uint64_t tick = 0;
  DeviceSet abnormal;  ///< A_k (detector banks that fired this interval)
  std::vector<GatewayReport> reports;
  DeviceSet isolated;
  DeviceSet massive;
  DeviceSet unresolved;
  DeviceSet truth_impacted;  ///< gateways actually crossed by an active fault
};

class MonitoringSwarm {
 public:
  /// One detector bank per gateway, cloned from `prototype`.
  MonitoringSwarm(const Topology& topology, SwarmConfig config,
                  const Detector& prototype);

  /// Advances one tick: samples every (gateway, service), feeds detectors.
  /// Returns the characterization outcome when the tick closes an interval.
  std::optional<SnapshotOutcome> tick(QosNetwork& network,
                                      const FaultInjector& faults);

  [[nodiscard]] std::uint64_t now() const noexcept { return tick_; }

 private:
  [[nodiscard]] Snapshot snapshot_positions(QosNetwork& network,
                                            const FaultInjector& faults) const;

  const Topology& topology_;
  SwarmConfig config_;
  std::vector<DetectorBank> banks_;
  std::vector<bool> fired_this_interval_;
  /// Rolling snapshot state: frozen snapshots are moved into the engine's
  /// ring; the swarm retains no fleet-position copy of its own.
  FrameEngine engine_;
  std::uint64_t tick_ = 0;
};

/// Tallies reports across snapshots: how many support calls the ISP would
/// receive with and without local characterization.
class ReportCenter {
 public:
  void ingest(const SnapshotOutcome& outcome);

  /// Support calls under the naive policy: every abnormal gateway calls.
  [[nodiscard]] std::uint64_t naive_calls() const noexcept { return naive_; }
  /// Support calls under the paper's policy: only isolated anomalies call.
  [[nodiscard]] std::uint64_t filtered_calls() const noexcept { return filtered_; }
  /// Network events the over-the-top operator is alerted about.
  [[nodiscard]] std::uint64_t network_alerts() const noexcept { return network_; }
  [[nodiscard]] std::uint64_t unresolved_count() const noexcept { return unresolved_; }
  [[nodiscard]] std::uint64_t snapshots() const noexcept { return snapshots_; }

  /// 1 - filtered/naive: the fraction of support calls suppressed.
  [[nodiscard]] double suppression_ratio() const noexcept;

 private:
  std::uint64_t naive_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t network_ = 0;
  std::uint64_t unresolved_ = 0;
  std::uint64_t snapshots_ = 0;
};

}  // namespace acn
