// Synthetic ISP access network — the deployment that motivates the paper
// (§I: "Internet service providers operating millions of home gateways").
//
// Three-level tree: one core router, `regions` regional routers, each with
// `aggregations_per_region` aggregation switches, each serving
// `gateways_per_aggregation` home gateways. Every gateway consumes
// `services` services whose traffic crosses its aggregation switch, its
// regional router and the core; each service additionally has one backend
// link at the core. A fault anywhere on that path degrades the QoS of every
// (gateway, service) pair routed through it — which is precisely what makes
// network-level events *massive* and gateway-local events *isolated*.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/device_set.hpp"

namespace acn {

struct TopologyConfig {
  std::size_t regions = 4;
  std::size_t aggregations_per_region = 8;
  std::size_t gateways_per_aggregation = 32;
  std::size_t services = 2;

  void validate() const {
    if (regions == 0 || aggregations_per_region == 0 ||
        gateways_per_aggregation == 0 || services == 0) {
      throw std::invalid_argument("TopologyConfig: all sizes must be >= 1");
    }
  }
};

/// Where a fault sits in the tree.
enum class FaultSite : std::uint8_t {
  kGateway,         ///< one gateway (hardware/software fault) — isolated
  kAggregation,     ///< one aggregation switch — impacts its subtree
  kRegion,          ///< one regional router — impacts its subtree
  kServiceBackend,  ///< one service's backend — impacts that service fleet-wide
  kCore,            ///< the core router — impacts everything
};

class Topology {
 public:
  explicit Topology(TopologyConfig config);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t gateway_count() const noexcept { return gateway_count_; }
  [[nodiscard]] std::size_t service_count() const noexcept { return config_.services; }

  [[nodiscard]] std::size_t aggregation_of(DeviceId gateway) const;
  [[nodiscard]] std::size_t region_of(DeviceId gateway) const;

  [[nodiscard]] std::vector<DeviceId> gateways_under_aggregation(
      std::size_t aggregation) const;
  [[nodiscard]] std::vector<DeviceId> gateways_under_region(std::size_t region) const;

  /// True iff a fault at (site, index) degrades `service` at `gateway`.
  /// For kServiceBackend, `index` names the service; otherwise the node.
  [[nodiscard]] bool on_path(FaultSite site, std::size_t index, DeviceId gateway,
                             std::size_t service) const;

  [[nodiscard]] std::size_t aggregation_count() const noexcept {
    return config_.regions * config_.aggregations_per_region;
  }

 private:
  TopologyConfig config_;
  std::size_t gateway_count_;
};

}  // namespace acn
