#include "net/topology.hpp"

namespace acn {

Topology::Topology(TopologyConfig config) : config_(config) {
  config_.validate();
  gateway_count_ = config_.regions * config_.aggregations_per_region *
                   config_.gateways_per_aggregation;
}

std::size_t Topology::aggregation_of(DeviceId gateway) const {
  if (gateway >= gateway_count_) {
    throw std::out_of_range("Topology: unknown gateway " + std::to_string(gateway));
  }
  return gateway / config_.gateways_per_aggregation;
}

std::size_t Topology::region_of(DeviceId gateway) const {
  return aggregation_of(gateway) / config_.aggregations_per_region;
}

std::vector<DeviceId> Topology::gateways_under_aggregation(
    std::size_t aggregation) const {
  if (aggregation >= aggregation_count()) {
    throw std::out_of_range("Topology: unknown aggregation");
  }
  std::vector<DeviceId> out;
  const auto first =
      static_cast<DeviceId>(aggregation * config_.gateways_per_aggregation);
  for (std::size_t i = 0; i < config_.gateways_per_aggregation; ++i) {
    out.push_back(first + static_cast<DeviceId>(i));
  }
  return out;
}

std::vector<DeviceId> Topology::gateways_under_region(std::size_t region) const {
  if (region >= config_.regions) throw std::out_of_range("Topology: unknown region");
  std::vector<DeviceId> out;
  const std::size_t first_aggregation = region * config_.aggregations_per_region;
  for (std::size_t a = 0; a < config_.aggregations_per_region; ++a) {
    const auto sub = gateways_under_aggregation(first_aggregation + a);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

bool Topology::on_path(FaultSite site, std::size_t index, DeviceId gateway,
                       std::size_t service) const {
  if (gateway >= gateway_count_ || service >= config_.services) return false;
  switch (site) {
    case FaultSite::kGateway:
      return index == gateway;  // every service of that gateway
    case FaultSite::kAggregation:
      return aggregation_of(gateway) == index;
    case FaultSite::kRegion:
      return region_of(gateway) == index;
    case FaultSite::kServiceBackend:
      return service == index;  // that service at every gateway
    case FaultSite::kCore:
      return true;
  }
  return false;
}

}  // namespace acn
