#include "net/monitoring.hpp"

#include <stdexcept>

namespace acn {

MonitoringSwarm::MonitoringSwarm(const Topology& topology, SwarmConfig config,
                                 const Detector& prototype)
    : topology_(topology),
      config_(config),
      engine_(FrameEngine::Config{.model = config.model,
                                  .characterize = config.characterize}) {
  config_.validate();
  banks_.reserve(topology.gateway_count());
  for (std::size_t g = 0; g < topology.gateway_count(); ++g) {
    banks_.emplace_back(prototype, topology.service_count());
  }
  fired_this_interval_.assign(topology.gateway_count(), false);
}

Snapshot MonitoringSwarm::snapshot_positions(QosNetwork& network,
                                             const FaultInjector& faults) const {
  std::vector<Point> positions;
  positions.reserve(topology_.gateway_count());
  std::vector<double> coords(topology_.service_count());
  for (DeviceId g = 0; g < topology_.gateway_count(); ++g) {
    for (std::size_t s = 0; s < topology_.service_count(); ++s) {
      coords[s] = network.true_qos(faults, g, s, tick_);
    }
    positions.emplace_back(std::span<const double>(coords));
  }
  return Snapshot(std::move(positions));
}

std::optional<SnapshotOutcome> MonitoringSwarm::tick(QosNetwork& network,
                                                     const FaultInjector& faults) {
  // Sample and detect.
  std::vector<double> samples(topology_.service_count());
  for (DeviceId g = 0; g < topology_.gateway_count(); ++g) {
    for (std::size_t s = 0; s < topology_.service_count(); ++s) {
      samples[s] = network.sample(faults, g, s, tick_);
    }
    if (banks_[g].observe(samples)) fired_this_interval_[g] = true;
  }
  ++tick_;

  if (tick_ % config_.snapshot_interval != 0) return std::nullopt;

  // Interval boundary: freeze S_k, build A_k, characterize.
  Snapshot current = snapshot_positions(network, faults);
  SnapshotOutcome outcome;
  outcome.tick = tick_;
  outcome.truth_impacted = faults.impacted_gateways(topology_, tick_ - 1);

  std::vector<DeviceId> abnormal;
  for (DeviceId g = 0; g < topology_.gateway_count(); ++g) {
    if (fired_this_interval_[g]) abnormal.push_back(g);
  }
  outcome.abnormal = DeviceSet(std::move(abnormal));
  fired_this_interval_.assign(topology_.gateway_count(), false);

  // The frozen snapshot is moved into the engine's rolling ring; the engine
  // rolls its state in place and characterizes A_k over the shared plane.
  const std::optional<FrameEngine::Result> result =
      engine_.observe(std::move(current), outcome.abnormal);
  if (!result.has_value() || outcome.abnormal.empty()) return outcome;

  for (std::size_t i = 0; i < result->decisions.size(); ++i) {
    const DeviceId g = outcome.abnormal[i];
    const Decision& decision = result->decisions[i];
    outcome.reports.push_back(GatewayReport{g, decision.cls, decision.rule});
  }
  outcome.isolated = result->sets.isolated;
  outcome.massive = result->sets.massive;
  outcome.unresolved = result->sets.unresolved;
  return outcome;
}

void ReportCenter::ingest(const SnapshotOutcome& outcome) {
  ++snapshots_;
  naive_ += outcome.abnormal.size();
  filtered_ += outcome.isolated.size();
  unresolved_ += outcome.unresolved.size();
  // One alert per snapshot with any massive anomaly (the OTT operator needs
  // the event, not one alert per impacted gateway).
  network_ += outcome.massive.empty() ? 0 : 1;
}

double ReportCenter::suppression_ratio() const noexcept {
  if (naive_ == 0) return 0.0;
  return 1.0 - static_cast<double>(filtered_) / static_cast<double>(naive_);
}

}  // namespace acn
