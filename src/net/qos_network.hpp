// QoS synthesis over the ISP tree: per-(gateway, service) end-to-end quality
// in [0,1] per tick, with injected faults degrading every pair whose path
// crosses the fault site. This is the substitute for real TR-069 telemetry
// (see DESIGN.md): what matters for the paper's method is that a shared
// fault produces *correlated* QoS drops and a local fault an *uncorrelated*
// one, which the path model guarantees by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace acn {

struct Fault {
  FaultSite site = FaultSite::kGateway;
  std::size_t index = 0;     ///< node index (or service index for backends)
  double severity = 0.4;     ///< QoS drop while active, in (0, 1]
  std::uint64_t start = 0;   ///< first tick the fault is active
  std::uint64_t duration = 1;  ///< ticks the fault stays active
};

class FaultInjector {
 public:
  void inject(Fault fault);
  void clear() noexcept { faults_.clear(); }

  /// Total degradation applied to (gateway, service) at `tick`. Multiple
  /// overlapping faults accumulate (saturating at full degradation 1.0).
  [[nodiscard]] double degradation(const Topology& topology, DeviceId gateway,
                                   std::size_t service, std::uint64_t tick) const;

  /// Gateways with at least one service degraded at `tick` — ground truth.
  [[nodiscard]] DeviceSet impacted_gateways(const Topology& topology,
                                            std::uint64_t tick) const;

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept { return faults_; }

 private:
  std::vector<Fault> faults_;
};

class QosNetwork {
 public:
  struct Config {
    double base_qos = 0.92;    ///< healthy level
    double noise_sigma = 0.01; ///< gaussian measurement noise
  };

  QosNetwork(const Topology& topology, Config config, std::uint64_t seed);

  /// End-to-end QoS sample for (gateway, service) at `tick`, in [0, 1].
  [[nodiscard]] double sample(const FaultInjector& faults, DeviceId gateway,
                              std::size_t service, std::uint64_t tick);

  /// Noise-free QoS (used to position devices in the QoS space E for the
  /// characterization snapshots — the paper's measurement function q_{i,k}).
  [[nodiscard]] double true_qos(const FaultInjector& faults, DeviceId gateway,
                                std::size_t service, std::uint64_t tick) const;

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

 private:
  const Topology& topology_;
  Config config_;
  Rng rng_;
};

}  // namespace acn
