#include "proto/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace acn {

NeighbourDirectory::NeighbourDirectory(const StatePair& state, double cell)
    : state_(state),
      grid_(state, state.abnormal(), std::max(cell, kMinGridCell)) {}

std::vector<DeviceId> NeighbourDirectory::lookup(DeviceId centre,
                                                 double radius) const {
  ++lookups_;
  return grid_.within(centre, radius);
}

ProtocolDriver::ProtocolDriver(const StatePair& state, Config config,
                               std::uint64_t seed)
    : state_(state),
      config_(config),
      network_(state.n(), config.network, seed),
      directory_(state, config.model.window()) {
  config_.model.validate();
}

void ProtocolDriver::start_round1(DeviceId j) {
  NodeState& node = nodes_[j];
  // Every device knows its own trajectory.
  node.known.emplace(j, std::make_pair(state_.prev_pos(j), state_.curr_pos(j)));
  node.known_abnormal = node.known_abnormal.with(j);

  const auto candidates = directory_.lookup(j, config_.model.window());
  for (const DeviceId other : candidates) {
    if (other == j) continue;
    Message query;
    query.type = MessageType::kTrajectoryQuery;
    query.from = j;
    query.to = other;
    network_.send(std::move(query));
    ++node.outstanding;
  }
  if (node.outstanding == 0) decide(j);  // no neighbours at all: Theorem 5
}

void ProtocolDriver::start_round2(DeviceId j) {
  NodeState& node = nodes_[j];
  node.phase = Phase::kQueryShell;

  // The 4r shell: abnormal devices within 2r of any known 2r-neighbour.
  // Deployment would ask each neighbour for its own neighbourhood; the
  // directory answers the same question with one lookup per neighbour.
  DeviceSet shell;
  for (const auto& [id, positions] : node.known) {
    (void)positions;
    if (!node.known_abnormal.contains(id)) continue;
    for (const DeviceId far : directory_.lookup(id, config_.model.window())) {
      shell = shell.with(far);
    }
  }
  for (const DeviceId far : shell) {
    if (node.known.contains(far)) continue;
    Message query;
    query.type = MessageType::kTrajectoryQuery;
    query.from = j;
    query.to = far;
    network_.send(std::move(query));
    ++node.outstanding;
  }
  if (node.outstanding == 0) decide(j);
}

Decision ProtocolDriver::characterize_local_view(DeviceId j) const {
  const NodeState& node = nodes_.at(j);
  // Remap the known devices into a compact id space.
  std::vector<Point> prev;
  std::vector<Point> curr;
  std::vector<DeviceId> abnormal;
  DeviceId local_j = 0;
  DeviceId next = 0;
  for (const auto& [id, positions] : node.known) {
    if (id == j) local_j = next;
    prev.push_back(positions.first);
    curr.push_back(positions.second);
    if (node.known_abnormal.contains(id)) abnormal.push_back(next);
    ++next;
  }
  // §V locality, executed: j's decision reads only trajectories within 4r
  // of j (its 2r-neighbours' families reach another 2r). Clipping the
  // abnormal set to that ball keeps every family input to Theorems 5-7
  // intact while sparing the motion-plane build from unrelated blobs a
  // wide multi-hop view may have gossiped in. Clip on the raw points (the
  // joint Chebyshev distance is the max over both instants) so only one
  // StatePair is ever built.
  std::vector<DeviceId> local_abnormal;
  for (const DeviceId a : abnormal) {
    const double joint_dist = std::max(chebyshev(prev[a], prev[local_j]),
                                       chebyshev(curr[a], curr[local_j]));
    if (joint_dist <= 2.0 * config_.model.window()) local_abnormal.push_back(a);
  }
  const StatePair view(Snapshot(std::move(prev)), Snapshot(std::move(curr)),
                       DeviceSet(std::move(local_abnormal)));
  Characterizer characterizer(view, config_.model, config_.characterize);
  return characterizer.characterize(local_j);
}

void ProtocolDriver::decide(DeviceId j) {
  NodeState& node = nodes_[j];
  node.phase = Phase::kDecided;
  const Decision decision = characterize_local_view(j);
  DistributedDecision out;
  out.device = j;
  out.cls = decision.cls;
  out.rule = decision.rule;
  out.decided_at = network_.now();
  out.trajectories = node.trajectories;
  out.view_size = node.known.size();
  node.decision = out;
}

void ProtocolDriver::handle(DeviceId j, const Message& message) {
  NodeState& node = nodes_[j];
  switch (message.type) {
    case MessageType::kTrajectoryQuery: {
      // Any device (abnormal or not) serves its trajectory.
      Message reply;
      reply.type = MessageType::kTrajectoryReply;
      reply.from = j;
      reply.to = message.from;
      reply.prev_position = state_.prev_pos(j);
      reply.curr_position = state_.curr_pos(j);
      reply.abnormal = state_.is_abnormal(j);
      network_.send(std::move(reply));
      break;
    }
    case MessageType::kTrajectoryReply: {
      if (node.phase == Phase::kDecided) break;
      node.known.emplace(message.from,
                         std::make_pair(message.prev_position,
                                        message.curr_position));
      if (message.abnormal) {
        node.known_abnormal = node.known_abnormal.with(message.from);
      }
      ++node.trajectories;
      if (node.outstanding > 0) --node.outstanding;
      if (node.outstanding == 0) {
        if (node.phase == Phase::kQueryNeighbourhood) {
          start_round2(j);
        } else {
          decide(j);
        }
      }
      break;
    }
    case MessageType::kNeighbourQuery:
    case MessageType::kNeighbourReply:
      break;  // folded into directory lookups in this implementation
  }
}

std::vector<DistributedDecision> ProtocolDriver::run() {
  for (const DeviceId j : state_.abnormal()) {
    nodes_[j];  // materialize state
    start_round1(j);
  }

  const auto all_decided = [&]() {
    return std::all_of(nodes_.begin(), nodes_.end(), [](const auto& entry) {
      return entry.second.phase == Phase::kDecided;
    });
  };

  while (!all_decided() && network_.now() < config_.max_ticks) {
    network_.tick();
    // Deliver to every device: responders may be normal devices too.
    for (DeviceId j = 0; j < state_.n(); ++j) {
      for (const Message& message : network_.deliver(j)) {
        if (nodes_.contains(j)) {
          handle(j, message);
        } else if (message.type == MessageType::kTrajectoryQuery) {
          // Normal device: serve trajectory queries only.
          Message reply;
          reply.type = MessageType::kTrajectoryReply;
          reply.from = j;
          reply.to = message.from;
          reply.prev_position = state_.prev_pos(j);
          reply.curr_position = state_.curr_pos(j);
          reply.abnormal = state_.is_abnormal(j);
          network_.send(std::move(reply));
        }
      }
    }
  }

  std::vector<DistributedDecision> decisions;
  for (auto& [j, node] : nodes_) {
    if (!node.decision.has_value()) {
      // Lost queries beyond the deadline: report honestly as unresolved.
      ++timed_out_;
      DistributedDecision fallback;
      fallback.device = j;
      fallback.cls = AnomalyClass::kUnresolved;
      fallback.rule = DecisionRule::kBudgetExhausted;
      fallback.decided_at = network_.now();
      fallback.trajectories = node.trajectories;
      fallback.view_size = node.known.size();
      decisions.push_back(fallback);
    } else {
      decisions.push_back(*node.decision);
    }
  }
  return decisions;
}

}  // namespace acn
