// Wire-level message model for the distributed characterization protocol.
//
// The paper's algorithms are *local*: a device j needs the trajectories of
// devices within 2r (its own maximal motions) and, when Theorem 6 fails,
// the trajectories of its L_k(j)-neighbours' neighbourhoods — 4r total.
// This module makes that exchange explicit so the scalability claim ("by
// design, our approach is scalable", §VIII) can be *measured*: messages,
// bytes and rounds per decision, as a function of n and of the decision
// depth (Theorem 5 / 6 / 7).
#pragma once

#include <cstdint>
#include <vector>

#include "common/device_set.hpp"
#include "core/point.hpp"

namespace acn {

enum class MessageType : std::uint8_t {
  kTrajectoryQuery,   ///< "send me your (prev, curr) position"
  kTrajectoryReply,   ///< the position pair (plus abnormal flag)
  kNeighbourQuery,    ///< "who is in your 2r-neighbourhood?" (second hop)
  kNeighbourReply,    ///< neighbour id list
};

struct Message {
  MessageType type = MessageType::kTrajectoryQuery;
  DeviceId from = 0;
  DeviceId to = 0;
  std::uint64_t send_time = 0;     ///< simulation ticks
  std::uint64_t deliver_time = 0;  ///< send_time + link latency

  // Payload (union-of-fields kept flat for simplicity; size accounting
  // below only charges the fields meaningful for the type).
  Point prev_position;
  Point curr_position;
  bool abnormal = false;
  std::vector<DeviceId> neighbour_ids;

  /// Approximate wire size in bytes (for the communication-cost benches):
  /// 16-byte header, 8 bytes per coordinate, 4 per device id, 1 per flag.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    std::size_t bytes = 16;
    switch (type) {
      case MessageType::kTrajectoryQuery:
      case MessageType::kNeighbourQuery:
        break;
      case MessageType::kTrajectoryReply:
        bytes += 8 * (prev_position.dim() + curr_position.dim()) + 1;
        break;
      case MessageType::kNeighbourReply:
        bytes += 4 * neighbour_ids.size();
        break;
    }
    return bytes;
  }
};

/// Per-node traffic accounting.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;

  void sent(const Message& m) noexcept {
    ++messages_sent;
    bytes_sent += m.wire_bytes();
  }
  void received(const Message&) noexcept { ++messages_received; }

  void merge(const TrafficStats& other) noexcept {
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    bytes_sent += other.bytes_sent;
  }
};

}  // namespace acn
