// Distributed implementation of the local characterization.
//
// The paper's §V closes with: a device only needs the trajectories within
// 4r of itself. This module runs that claim as an actual protocol over the
// simulated network:
//
//   round 1  — the deciding device looks up its 2r-candidates in the
//              directory (the DHT of the related work [2], abstracted) and
//              queries their trajectories;
//   round 2  — for each neighbour in a dense motion with it, it queries the
//              neighbour's own 2r-neighbourhood (the 4r shell) and fetches
//              the still-unknown trajectories;
//   decide   — it runs Theorems 5/6/7 + Corollary 8 on its *local view*.
//
// A property test asserts the distributed verdicts equal the centralized
// characterizer's on the same state — the locality theorem, end to end.
// The driver reports traffic and latency per decision, which is what the
// scalability benches measure.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/characterizer.hpp"
#include "core/grid_index.hpp"
#include "proto/network.hpp"

namespace acn {

/// Announced-position directory (in deployment: a DHT keyed by QoS cells;
/// here: an oracle with the same interface). Lookups are counted. Backed by
/// a 2r grid over A_k — the DHT's cell keying, literally — so each lookup
/// costs the local bucket population, not a scan of every registration.
class NeighbourDirectory {
 public:
  /// `cell` is the grid bucket side (the driver passes its model's 2r).
  /// Registrations are bucketed at construction: the directory answers for
  /// the interval `state` holds NOW. If the caller rolls the state in
  /// place (StatePair::advance), build a fresh directory — exactly what a
  /// real DHT does when devices re-announce at the snapshot boundary.
  explicit NeighbourDirectory(const StatePair& state, double cell);

  /// Ids of *abnormal* devices within joint distance `radius` of `centre`
  /// (the directory only tracks devices whose detector fired).
  [[nodiscard]] std::vector<DeviceId> lookup(DeviceId centre, double radius) const;

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }

 private:
  const StatePair& state_;
  GridIndex grid_;  ///< abnormal registrations, bucketed by QoS cell
  mutable std::uint64_t lookups_ = 0;
};

/// Outcome of one device's distributed decision.
struct DistributedDecision {
  DeviceId device = 0;
  AnomalyClass cls = AnomalyClass::kUnresolved;
  DecisionRule rule = DecisionRule::kTheorem5;
  std::uint64_t decided_at = 0;     ///< simulation tick of the decision
  std::uint64_t trajectories = 0;   ///< trajectory replies consumed
  std::size_t view_size = 0;        ///< devices in the local view
};

/// Runs the protocol for every abnormal device of `state` until quiescence.
class ProtocolDriver {
 public:
  struct Config {
    Params model;
    SimulatedNetwork::Config network;
    CharacterizeOptions characterize;
    std::uint64_t max_ticks = 10'000;  ///< safety bound (lossy networks)
  };

  ProtocolDriver(const StatePair& state, Config config, std::uint64_t seed);

  /// Runs to quiescence; returns one decision per abnormal device (devices
  /// whose queries were all lost beyond max_ticks are reported Unresolved
  /// with exact = false semantics — counted in `timed_out()`).
  [[nodiscard]] std::vector<DistributedDecision> run();

  [[nodiscard]] const SimulatedNetwork& network() const noexcept { return network_; }
  [[nodiscard]] const NeighbourDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::uint64_t timed_out() const noexcept { return timed_out_; }

 private:
  enum class Phase : std::uint8_t {
    kQueryNeighbourhood,  ///< round-1 trajectory queries outstanding
    kQueryShell,          ///< round-2 (4r) queries outstanding
    kDecided,
  };

  struct NodeState {
    Phase phase = Phase::kQueryNeighbourhood;
    std::uint64_t outstanding = 0;
    std::map<DeviceId, std::pair<Point, Point>> known;  // id -> (prev, curr)
    DeviceSet known_abnormal;
    std::uint64_t trajectories = 0;
    std::optional<DistributedDecision> decision;
  };

  void start_round1(DeviceId j);
  void start_round2(DeviceId j);
  void decide(DeviceId j);
  void handle(DeviceId j, const Message& message);

  /// Builds the reduced StatePair of j's local view and characterizes j in
  /// it (ids remapped; verdict mapped back).
  [[nodiscard]] Decision characterize_local_view(DeviceId j) const;

  const StatePair& state_;
  Config config_;
  SimulatedNetwork network_;
  NeighbourDirectory directory_;
  std::map<DeviceId, NodeState> nodes_;
  std::uint64_t timed_out_ = 0;
};

}  // namespace acn
