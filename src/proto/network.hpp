// Event-driven message transport for the distributed protocol simulation:
// a latency-modelled mailbox network connecting the protocol nodes.
// Deterministic given the seed (latencies are drawn per message).
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "proto/message.hpp"

namespace acn {

class SimulatedNetwork {
 public:
  struct Config {
    std::uint64_t min_latency = 1;  ///< ticks
    std::uint64_t max_latency = 4;  ///< ticks (inclusive)
    /// Probability a message is silently dropped (failure injection).
    double loss_rate = 0.0;
  };

  SimulatedNetwork(std::size_t node_count, Config config, std::uint64_t seed);

  /// Queues a message; stamps send/deliver times; accounts traffic.
  void send(Message message);

  /// Pops every message deliverable at the current tick for `node`.
  [[nodiscard]] std::vector<Message> deliver(DeviceId node);

  /// Advances simulated time by one tick.
  void tick() noexcept { ++now_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// True when no message is still in flight.
  [[nodiscard]] bool idle() const noexcept { return in_flight_ == 0; }

  [[nodiscard]] const TrafficStats& traffic(DeviceId node) const {
    return traffic_.at(node);
  }
  [[nodiscard]] TrafficStats total_traffic() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct Pending {
    Message message;
    bool operator>(const Pending& other) const noexcept {
      return message.deliver_time > other.message.deliver_time;
    }
  };

  Config config_;
  Rng rng_;
  std::uint64_t now_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::priority_queue<Pending, std::vector<Pending>, std::greater<>>>
      mailboxes_;
  std::vector<TrafficStats> traffic_;
};

}  // namespace acn
