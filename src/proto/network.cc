#include "proto/network.hpp"

#include <stdexcept>

namespace acn {

SimulatedNetwork::SimulatedNetwork(std::size_t node_count, Config config,
                                   std::uint64_t seed)
    : config_(config), rng_(seed), mailboxes_(node_count), traffic_(node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("SimulatedNetwork: need at least one node");
  }
  if (config.min_latency > config.max_latency) {
    throw std::invalid_argument("SimulatedNetwork: min_latency > max_latency");
  }
  if (config.loss_rate < 0.0 || config.loss_rate > 1.0) {
    throw std::invalid_argument("SimulatedNetwork: loss_rate must be in [0, 1]");
  }
}

void SimulatedNetwork::send(Message message) {
  if (message.to >= mailboxes_.size() || message.from >= mailboxes_.size()) {
    throw std::out_of_range("SimulatedNetwork: unknown endpoint");
  }
  message.send_time = now_;
  traffic_[message.from].sent(message);
  if (rng_.bernoulli(config_.loss_rate)) {
    ++dropped_;
    return;
  }
  const std::uint64_t latency =
      config_.min_latency +
      rng_.uniform_int(config_.max_latency - config_.min_latency + 1);
  message.deliver_time = now_ + latency;
  ++in_flight_;
  mailboxes_[message.to].push(Pending{std::move(message)});
}

std::vector<Message> SimulatedNetwork::deliver(DeviceId node) {
  auto& box = mailboxes_.at(node);
  std::vector<Message> out;
  while (!box.empty() && box.top().message.deliver_time <= now_) {
    out.push_back(box.top().message);
    traffic_[node].received(out.back());
    box.pop();
    --in_flight_;
  }
  return out;
}

TrafficStats SimulatedNetwork::total_traffic() const {
  TrafficStats total;
  for (const TrafficStats& stats : traffic_) total.merge(stats);
  return total;
}

}  // namespace acn
