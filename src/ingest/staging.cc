#include "ingest/staging.hpp"

namespace acn {

void StagingFrame::configure(std::size_t dense_limit, std::size_t dim) {
  // A dimension the lane cannot represent degrades to spill-everything,
  // which is semantically identical (just slower).
  dim_ = (dim == 0 || dim > Point::kMaxDim) ? 0 : dim;
  if (dim_ == 0) dense_limit = 0;
  present_.assign(dense_limit, 0);
  seq_.assign(dense_limit, 0);
  flag_.assign(dense_limit, 0);
  coords_.assign(dense_limit * dim_, 0.0);
}

std::optional<StagingFrame::Staged> StagingFrame::find(GatewayKey key) const {
  if (key < present_.size()) {
    if (present_[key] == 0) return std::nullopt;
    Staged view;
    materialize(key, view);
    return view;
  }
  const auto it = spill_.find(key);
  if (it == spill_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<GatewayKey, StagingFrame::Staged>> StagingFrame::sorted()
    const {
  std::vector<std::pair<GatewayKey, Staged>> entries;
  entries.reserve(device_count());
  for_each_sorted([&entries](GatewayKey key, const Staged& staged) {
    entries.emplace_back(key, staged);
  });
  return entries;
}

void StagingFrame::reset() {
  std::fill(present_.begin(), present_.end(), 0);
  dense_count_ = 0;
  odd_.clear();
  spill_.clear();
  volume_ = 0;
  first_seen_tick = 0;
  shed_engaged = false;
}

}  // namespace acn
