// StagingFrame: the open-interval buffer behind the watermark.
//
// One frame holds everything reported so far for one event-time interval k
// that has not been sealed yet. The frame's job is to make delivery order
// irrelevant within the lateness budget: however reports for k are
// permuted, duplicated, or interleaved with other intervals, the staged
// state at seal time is a pure function of the report *set* — each
// (device, interval) cell resolves to the report with the highest
// arrival_seq (last-write-wins by emission order, which is commutative),
// and exact redeliveries are counted, not re-applied.
//
// Layout: a frame sits on the per-report hot path (every report of every
// interval passes through apply()), so staging is split into a dense lane —
// keys below a configured limit index flat structure-of-arrays storage
// directly: seq, flag, and exactly dim() claim coordinates per cell, no
// hashing, no per-seal sort, no 136-byte Point padding — and a spill map
// for out-of-range keys. Claims whose dimension does not match the
// configured one cannot pack into the lane stride; they park in a cold
// side map so they still seal in key order and still explode at the
// roster boundary exactly as an unstaged malformed claim would. The
// pipeline sets the lane to the roster capacity and pools sealed frames,
// so in the steady state a report costs one bounds check and a few
// indexed stores, and sealing streams a tenth of the memory a fat-cell
// layout would.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ingest/report.hpp"

namespace acn {

class StagingFrame {
 public:
  /// Winning report of one (device, interval) cell, materialized out of
  /// the lane storage on demand.
  struct Staged {
    std::uint64_t seq = 0;
    Point claim;
    bool flagged = false;
  };

  enum class Apply : std::uint8_t {
    kAccepted,    ///< first report of this cell
    kSuperseded,  ///< replaced an older-seq claim
    kDuplicate,   ///< same seq already staged; dropped
    kStale,       ///< older seq than the staged one; dropped
  };

  /// Sizes the dense lane: keys < dense_limit with dim-`dim` claims stage
  /// into flat storage. Call before the first apply(); an unconfigured
  /// frame (dense_limit 0) spills everything to the hash map, which is
  /// semantically identical.
  void configure(std::size_t dense_limit, std::size_t dim);

  /// Stages `report` under the last-write-wins-by-seq rule. Inline: this
  /// is the per-report hot path, called once per delivered report.
  Apply apply(const QosReport& report) {
    ++volume_;
    if (report.device >= present_.size()) {
      const auto [it, inserted] = spill_.try_emplace(report.device);
      if (inserted) {
        stage_fat(it->second, report);
        return Apply::kAccepted;
      }
      return resolve_fat(it->second, report);
    }
    const std::size_t key = report.device;
    const std::uint8_t state = present_[key];
    if (state == 0) {
      ++dense_count_;
      if (report.claim.dim() == dim_) {
        present_[key] = 1;
        store_lane(key, report);
      } else {
        present_[key] = 2;
        stage_fat(odd_[key], report);
      }
      return Apply::kAccepted;
    }
    const std::uint64_t have = state == 1 ? seq_[key] : odd_[key].seq;
    if (report.arrival_seq == have) return Apply::kDuplicate;
    if (report.arrival_seq < have) return Apply::kStale;
    if (report.claim.dim() == dim_) {
      if (state == 2) {
        odd_.erase(key);
        present_[key] = 1;
      }
      store_lane(key, report);
    } else {
      if (state == 1) present_[key] = 2;
      stage_fat(odd_[key], report);
    }
    return Apply::kSuperseded;
  }

  /// The staged cell for `key`, or nullopt if nothing staged.
  [[nodiscard]] std::optional<Staged> find(GatewayKey key) const;

  /// Devices with a staged report.
  [[nodiscard]] std::size_t device_count() const noexcept {
    return dense_count_ + spill_.size();
  }
  /// Total apply() attempts, duplicates and stale deliveries included —
  /// the overload controller's per-interval volume signal.
  [[nodiscard]] std::size_t volume() const noexcept { return volume_; }

  /// Visits every staged entry in ascending key order — the deterministic
  /// seal order. The dense lane is ordered by construction and every spill
  /// key is >= the lane limit, so the traversal is lane-then-sorted-spill.
  /// The Staged reference handed to `fn` is a per-visit materialization;
  /// it does not outlive the call.
  template <typename Fn>
  void for_each_sorted(Fn&& fn) const {
    Staged view;
    for (std::size_t key = 0; key < present_.size(); ++key) {
      if (present_[key] == 0) continue;
      materialize(key, view);
      fn(static_cast<GatewayKey>(key), view);
    }
    if (spill_.empty()) return;
    std::vector<GatewayKey> keys;
    keys.reserve(spill_.size());
    for (const auto& [key, staged] : spill_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const GatewayKey key : keys) fn(key, spill_.at(key));
  }

  /// Staged entries sorted by key, copied out (test convenience; the
  /// pipeline seals through for_each_sorted()).
  [[nodiscard]] std::vector<std::pair<GatewayKey, Staged>> sorted() const;

  /// Returns the frame to its post-configure() state, keeping the dense
  /// lane's storage — the pipeline pools sealed frames to keep frame
  /// creation off the per-interval path.
  void reset();

  /// Set once by the pipeline when the frame is created (its age drives
  /// the stall-timeout close) and when shedding engages on it.
  std::uint64_t first_seen_tick = 0;
  bool shed_engaged = false;

 private:
  void store_lane(std::size_t key, const QosReport& report) noexcept {
    seq_[key] = report.arrival_seq;
    flag_[key] = report.abnormal ? 1 : 0;
    double* cell = coords_.data() + key * dim_;
    for (std::size_t i = 0; i < dim_; ++i) cell[i] = report.claim[i];
  }

  static void stage_fat(Staged& cell, const QosReport& report) {
    cell.seq = report.arrival_seq;
    cell.claim = report.claim;
    cell.flagged = report.abnormal;
  }

  static Apply resolve_fat(Staged& cell, const QosReport& report) {
    if (report.arrival_seq == cell.seq) return Apply::kDuplicate;
    if (report.arrival_seq < cell.seq) return Apply::kStale;
    stage_fat(cell, report);
    return Apply::kSuperseded;
  }

  void materialize(std::size_t key, Staged& view) const {
    if (present_[key] == 2) {
      view = odd_.at(key);
      return;
    }
    view.seq = seq_[key];
    view.flagged = flag_[key] != 0;
    // Reuse the view's Point in place: resize only when a preceding odd_
    // entry changed its dimension, then overwrite the dim_ live coords.
    if (view.claim.dim() != dim_) view.claim = Point::zero(dim_);
    const double* cell = coords_.data() + key * dim_;
    for (std::size_t i = 0; i < dim_; ++i) view.claim[i] = cell[i];
  }

  // Dense lane, structure-of-arrays; present_[key]: 0 = empty, 1 = staged
  // in the lane, 2 = staged in odd_ (claim dim != dim_).
  std::vector<std::uint8_t> present_;
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint8_t> flag_;
  std::vector<double> coords_;  ///< dim_ doubles per dense cell
  std::size_t dim_ = 0;
  std::size_t dense_count_ = 0;
  std::unordered_map<GatewayKey, Staged> odd_;    ///< dense keys, odd dim
  std::unordered_map<GatewayKey, Staged> spill_;  ///< keys >= lane limit
  std::size_t volume_ = 0;
};

}  // namespace acn
