// BoundedReportQueue: the backpressure boundary between report sources and
// the pipeline pump.
//
// Sources (transport handlers, simulated gateways, replay drivers) run on
// their own threads; the pipeline itself is single-threaded by design (its
// sealing order is the stream's order). The queue is the only concurrency
// primitive between them, and it is *bounded*: when the pump falls behind,
// producers either block (lossless backpressure, the default) or get an
// immediate reject (shed at the edge, counted) — the queue never grows
// without bound and the pump never deadlocks against a full queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "ingest/report.hpp"

namespace acn {

class BoundedReportQueue {
 public:
  enum class Policy : std::uint8_t {
    kBlock,   ///< push waits for space (backpressure propagates to the source)
    kReject,  ///< push returns false immediately when full (counted)
  };

  /// Throws std::invalid_argument on capacity == 0.
  explicit BoundedReportQueue(std::size_t capacity,
                              Policy policy = Policy::kBlock);

  /// Enqueues one report. Returns false if the queue is closed, or full
  /// under kReject. Under kBlock, waits until space frees or the queue
  /// closes.
  bool push(const QosReport& report);

  /// Dequeues one report, waiting until one is available. Returns nullopt
  /// once the queue is closed AND drained — the pump's termination signal.
  std::optional<QosReport> pop();

  /// Non-blocking dequeue; false when empty (closed or not).
  bool try_pop(QosReport& out);

  /// Closes the queue: subsequent pushes fail, blocked pushers and poppers
  /// wake, pops drain the backlog then return nullopt. Idempotent.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;
  /// Pushes refused because the queue was full (kReject) or closed.
  [[nodiscard]] std::uint64_t rejected() const;
  /// High-water mark of depth() — the backlog the pump actually faced.
  [[nodiscard]] std::size_t peak_depth() const;

 private:
  const std::size_t capacity_;
  const Policy policy_;
  mutable std::mutex mutex_;
  std::condition_variable space_cv_;  ///< blocked producers park here
  std::condition_variable item_cv_;   ///< the pump parks here
  std::deque<QosReport> items_;
  bool closed_ = false;
  std::uint64_t rejected_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace acn
