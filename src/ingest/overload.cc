#include "ingest/overload.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace acn {
namespace {

/// splitmix64 — the cheap, well-mixed stateless hash the sampling decision
/// rides on (stable across platforms, unlike std::hash).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Packs integer cell coordinates into one hashable key.
std::uint64_t cell_key(const std::int64_t* cell, std::size_t dim) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t t = 0; t < dim; ++t) {
    h ^= static_cast<std::uint64_t>(cell[t]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

OverloadController::OverloadController(OverloadConfig config)
    : config_(config) {
  if (config_.shed_sample_stride == 0) {
    throw std::invalid_argument(
        "OverloadController: shed_sample_stride must be >= 1");
  }
}

bool OverloadController::shed_claim(GatewayKey device, std::uint64_t interval,
                                    std::size_t frame_volume) const noexcept {
  if (frame_volume < config_.shed_claim_threshold) return false;
  if (config_.shed_sample_stride <= 1) return false;
  return mix(device * 0x9e3779b97f4a7c15ULL + interval) %
             config_.shed_sample_stride !=
         0;
}

std::vector<std::size_t> OverloadController::defer_candidates(
    const std::vector<Point>& claims, double window) const {
  std::vector<std::size_t> deferred;
  if (claims.size() <= config_.defer_abnormal_cap) return deferred;

  const std::size_t dim = claims.front().dim();
  const double cell = window > 0.0 ? window : 1.0;

  // Bucket every claim by its integer cell at side 2r; two points within
  // chebyshev <= 2r differ by at most one cell per dimension.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(claims.size());
  std::vector<std::array<std::int64_t, Point::kMaxDim>> cells(claims.size());
  for (std::size_t i = 0; i < claims.size(); ++i) {
    for (std::size_t t = 0; t < dim; ++t) {
      cells[i][t] = static_cast<std::int64_t>(std::floor(claims[i][t] / cell));
    }
    buckets[cell_key(cells[i].data(), dim)].push_back(i);
  }

  // A device defers iff no OTHER flagged claim lies within `window`.
  std::array<std::int64_t, Point::kMaxDim> probe{};
  for (std::size_t i = 0; i < claims.size(); ++i) {
    bool adjacent = false;
    // Enumerate the 3^dim neighbouring cells (odometer walk).
    std::array<int, Point::kMaxDim> offset{};
    offset.fill(-1);
    while (!adjacent) {
      for (std::size_t t = 0; t < dim; ++t) {
        probe[t] = cells[i][t] + offset[t];
      }
      if (const auto it = buckets.find(cell_key(probe.data(), dim));
          it != buckets.end()) {
        for (const std::size_t other : it->second) {
          if (other != i && chebyshev(claims[i], claims[other]) <= window) {
            adjacent = true;
            break;
          }
        }
      }
      // Advance the odometer; done after {+1,+1,...,+1}.
      std::size_t t = 0;
      while (t < dim && offset[t] == 1) {
        offset[t] = -1;
        ++t;
      }
      if (t == dim) break;
      ++offset[t];
    }
    if (!adjacent) deferred.push_back(i);
  }
  return deferred;
}

}  // namespace acn
