// The wire-level unit of the ingestion layer: one QoS report.
//
// The paper's model hands the characterizer a closed interval — every
// device's position at k and the abnormal set A_k, delivered exactly once,
// in order, before the snapshot is taken (§III-A). A real report stream
// offers none of that: reports arrive out of order across interval
// boundaries, are retransmitted, go missing, and sources stall or die
// (PR 5's hostile families measured what that does to the verdicts; the
// ingest layer exists to *tolerate* it). A QosReport therefore names its
// event time explicitly — the interval its claim describes — instead of
// relying on arrival order, and carries a per-device emission counter so
// duplicates and supersessions resolve the same way under any delivery
// permutation.
#pragma once

#include <cstdint>

#include "core/point.hpp"

namespace acn {

/// Deployment-level stable gateway identifier — the same key space the
/// FleetRoster maps to dense DeviceId slots (online/roster.hpp).
using GatewayKey = std::uint64_t;

/// One device's QoS claim for one interval.
struct QosReport {
  GatewayKey device = 0;
  /// Event time: the interval k this claim describes (NOT arrival time).
  std::uint64_t interval = 0;
  /// Claimed position in the QoS space at k.
  Point claim;
  /// The device's error-detection flag a_k (Definition 5) for [k-1, k].
  bool abnormal = false;
  /// Per-device monotone emission counter, assigned at the SOURCE. A
  /// retransmission reuses the original counter (same report, delivered
  /// twice); a correction carries a higher one. Staging resolves every
  /// (device, interval) cell to the highest counter seen — a commutative
  /// rule, so the sealed frame is independent of delivery order.
  std::uint64_t arrival_seq = 0;
};

/// Running tallies of everything the pipeline tolerated, dropped, or shed.
/// Exposed, never silent: each counter is a violation of the paper's
/// delivery assumptions that the pipeline absorbed.
struct IngestCounters {
  std::uint64_t accepted = 0;         ///< reports applied to a staging frame
  std::uint64_t duplicates = 0;       ///< redelivery of an already-staged seq
  std::uint64_t superseded = 0;       ///< lost the per-cell seq race (either side)
  std::uint64_t late_sealed = 0;      ///< interval already sealed; claim replayed
  std::uint64_t future_rejected = 0;  ///< event time implausibly far ahead
  std::uint64_t shed_claims = 0;      ///< overload: sampled-out claim updates
  std::uint64_t deferred_devices = 0; ///< overload: characterization deferred
  std::uint64_t forced_closes = 0;    ///< timeout / interval-flood seals
  std::uint64_t replayed_claims = 0;  ///< active devices sealed without a report
  std::uint64_t retired_devices = 0;  ///< liveness gave a device up
  std::uint64_t revived_devices = 0;  ///< suspect device reported again
  std::uint64_t admitted_devices = 0; ///< first-seen keys auto-admitted
  std::uint64_t admit_rejected = 0;   ///< no free slot for a first-seen key
};

}  // namespace acn
