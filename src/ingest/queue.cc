#include "ingest/queue.hpp"

#include <stdexcept>

namespace acn {

BoundedReportQueue::BoundedReportQueue(std::size_t capacity, Policy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity == 0) {
    throw std::invalid_argument("BoundedReportQueue: capacity must be >= 1");
  }
}

bool BoundedReportQueue::push(const QosReport& report) {
  std::unique_lock lock(mutex_);
  if (policy_ == Policy::kBlock) {
    space_cv_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
  }
  if (closed_ || items_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  items_.push_back(report);
  if (items_.size() > peak_depth_) peak_depth_ = items_.size();
  lock.unlock();
  item_cv_.notify_one();
  return true;
}

std::optional<QosReport> BoundedReportQueue::pop() {
  std::unique_lock lock(mutex_);
  item_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  QosReport report = items_.front();
  items_.pop_front();
  lock.unlock();
  space_cv_.notify_one();
  return report;
}

bool BoundedReportQueue::try_pop(QosReport& out) {
  std::unique_lock lock(mutex_);
  if (items_.empty()) return false;
  out = items_.front();
  items_.pop_front();
  lock.unlock();
  space_cv_.notify_one();
  return true;
}

void BoundedReportQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  space_cv_.notify_all();
  item_cv_.notify_all();
}

std::size_t BoundedReportQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

bool BoundedReportQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::uint64_t BoundedReportQueue::rejected() const {
  std::lock_guard lock(mutex_);
  return rejected_;
}

std::size_t BoundedReportQueue::peak_depth() const {
  std::lock_guard lock(mutex_);
  return peak_depth_;
}

}  // namespace acn
