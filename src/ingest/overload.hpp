// OverloadController: graceful degradation policy under report flood.
//
// When an interval's report volume blows past what the pipeline is
// provisioned for, the failure mode must never be a stall (backpressure all
// the way to every source) or a crash (unbounded staging memory) — it is a
// *marked degraded interval*, produced by two verdict-safety-aware sheds:
//
//   1. Claim sampling: past the volume threshold, non-abnormal claim
//      updates are kept 1-in-stride by a content hash of (device,
//      interval) — order-independent, so a shed interval is still a pure
//      function of the report set. A skipped device replays its last claim.
//      This is verdict-safe for the CURRENT interval: motion families are
//      computed over A_k only, so a normal device's position never enters a
//      verdict — the distortion (a stale trajectory if the device turns
//      abnormal later) is exactly why the interval is marked degraded.
//      Reports with the abnormal flag are NEVER shed.
//
//   2. Characterization deferral: past the abnormal cap, flagged devices
//      with no other flagged device within the 2r consistency window (at
//      their claimed current positions) are deferred — dropped from the
//      A_k handed to the engine, reported separately. Deferral of exactly
//      these devices provably cannot change any other device's verdict: a
//      motion containing devices i and j needs chebyshev(curr_i, curr_j)
//      <= 2r, so a device with no flagged 2r-neighbour at k shares no
//      motion with anyone — it is precisely the Theorem-5 isolated
//      configuration, the one class whose full characterization buys the
//      operator nothing a distance check didn't already say.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/point.hpp"
#include "ingest/report.hpp"

namespace acn {

struct OverloadConfig {
  /// Staged volume (apply attempts) in one interval beyond which claim
  /// sampling engages for that interval. SIZE_MAX disables shedding.
  std::size_t shed_claim_threshold = static_cast<std::size_t>(-1);
  /// Keep 1 claim in `stride` while shedding (>= 1; 1 keeps everything).
  std::size_t shed_sample_stride = 8;
  /// Flagged-device count beyond which non-adjacent flagged devices are
  /// deferred. SIZE_MAX disables deferral.
  std::size_t defer_abnormal_cap = static_cast<std::size_t>(-1);
};

class OverloadController {
 public:
  explicit OverloadController(OverloadConfig config);

  [[nodiscard]] const OverloadConfig& config() const noexcept {
    return config_;
  }

  /// True if this non-abnormal claim update should be dropped, given the
  /// interval's staged volume so far. Pure in (device, interval) — the
  /// same report is kept or shed under any delivery order once the frame
  /// is past the threshold.
  [[nodiscard]] bool shed_claim(GatewayKey device, std::uint64_t interval,
                                std::size_t frame_volume) const noexcept;

  /// Indices into `claims` of devices to defer: engaged only when
  /// claims.size() > defer_abnormal_cap, and then selecting every device
  /// with no other flagged device within chebyshev distance `window`
  /// (= 2r) of its claimed position. Returned ascending. Cost is
  /// O(|claims|) expected via a uniform cell hash at cell size `window`.
  [[nodiscard]] std::vector<std::size_t> defer_candidates(
      const std::vector<Point>& claims, double window) const;

 private:
  OverloadConfig config_;
};

}  // namespace acn
