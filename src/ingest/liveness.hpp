// LivenessTracker: decides, per sealed interval, which silent devices to
// keep waiting on, probe again, or give up and retire.
//
// A silent device is ambiguous: it may be dead (its gateway crashed — the
// roster should park its slot and stop replaying a claim nobody stands
// behind) or merely slow (a stalled uplink that will flush). The tracker
// resolves the ambiguity in interval time, not wall-clock time, because
// the pipeline's whole notion of "now" is the watermark: a device becomes
// *suspect* after `silent_intervals` consecutive seals without a report,
// then gets `max_retries` chances spaced by an exponentially growing
// backoff (retry, 2x, 4x, ...) before it is handed to the roster's retire
// path. Any report from a suspect device revives it instantly and resets
// the ladder.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ingest/report.hpp"

namespace acn {

struct LivenessConfig {
  /// Consecutive sealed intervals without a report before a device turns
  /// suspect. 0 disables liveness tracking entirely.
  std::uint64_t silent_intervals = 0;
  /// Intervals between retries once suspect; doubles per retry.
  std::uint64_t retry_backoff = 2;
  /// Retries granted before retirement.
  std::uint32_t max_retries = 3;
};

class LivenessTracker {
 public:
  explicit LivenessTracker(LivenessConfig config) : config_(config) {}

  /// The device reported in (or before) interval k. Returns true if this
  /// revived a suspect device.
  bool reported(GatewayKey key, std::uint64_t interval);

  /// The device joined the tracked set at interval k (admission counts as
  /// hearing from it).
  void admitted(GatewayKey key, std::uint64_t interval) {
    (void)reported(key, interval);
  }

  /// The device left by an external path (explicit retire); forget it.
  void forget(GatewayKey key);

  /// Interval k sealed: ages every tracked device that stayed silent and
  /// returns the ones whose retry ladder is exhausted, sorted by key —
  /// the caller routes them to the roster's retire path and then calls
  /// forget() for each (this tracker never retires anything itself).
  [[nodiscard]] std::vector<GatewayKey> sealed(std::uint64_t interval);

  [[nodiscard]] bool enabled() const noexcept {
    return config_.silent_intervals > 0;
  }
  [[nodiscard]] std::size_t suspect_count() const noexcept { return suspects_; }
  [[nodiscard]] std::size_t tracked_count() const noexcept {
    return state_.size();
  }

 private:
  struct DeviceState {
    std::uint64_t last_heard = 0;  ///< latest interval with a report
    std::uint32_t retries = 0;     ///< probes consumed since turning suspect
    std::uint64_t next_probe = 0;  ///< seal interval of the next retry check
    bool suspect = false;
  };

  LivenessConfig config_;
  std::unordered_map<GatewayKey, DeviceState> state_;
  std::size_t suspects_ = 0;
};

}  // namespace acn
