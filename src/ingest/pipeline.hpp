// IngestPipeline: watermark-based interval closing between report sources
// and the OnlineMonitor.
//
// The paper assumes every device's report for interval k arrives exactly
// once, in order, before the snapshot closes (§III-A). This pipeline is the
// component that makes the engine behave AS IF that were true, over a
// stream where it is not:
//
//   * Out-of-order and late delivery — reports carry their event time
//     (QosReport::interval); each open interval buffers in a StagingFrame,
//     and interval k seals only when the event-time watermark passes it:
//     max_seen_interval - k >= allowed_lag. Anything that arrives within
//     the lateness budget is merged no matter the order; a report for an
//     already-sealed interval is counted (late_sealed) and dropped — the
//     sealed snapshot already replayed the device's last claim, which is
//     exactly the hostile layer's self-consistency rule (the published
//     S_{k-1} of interval k is what interval k-1 actually published).
//   * Duplicates — last-write-wins by source-assigned arrival_seq,
//     counted; commutative, so any delivery permutation within the budget
//     seals a byte-identical frame (tests/ingest asserts the decisions
//     are byte-identical too, per hostile family, serial and pooled).
//   * Stalls — a wall-clock surrogate tick() force-closes the oldest
//     interval once it has been open for timeout_ticks, so one silent
//     source cannot dam the stream; forced seals are marked.
//   * Silent devices — per-device liveness with retry/backoff
//     (LivenessTracker) feeds the roster's retire path: the slot parks at
//     its last claim and the device's episode closes, instead of the
//     pipeline replaying a dead gateway's claim forever.
//   * Interval floods — event times further than max_future_skip past the
//     watermark are rejected outright, and a watermark jump that would
//     flush more than max_watermark_jump intervals in one advance marks
//     the excess seals forced/degraded: those intervals never had their
//     lateness window, and the verdict stream says so. (Staging memory is
//     bounded by construction: open intervals never span more than
//     allowed_lag, because the watermark seals eagerly.)
//   * Overload — the OverloadController's two verdict-safety-aware sheds:
//     claim sampling past a volume threshold, and characterization
//     deferral of non-adjacent flagged devices past an abnormal cap.
//     Degraded intervals are explicitly marked, never silently wrong and
//     never a stall.
//
// Sources on other threads hand reports over through a BoundedReportQueue
// (block = lossless backpressure, reject = shed at the edge); the pipeline
// itself is single-threaded — sealing order is the stream's order.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "ingest/liveness.hpp"
#include "ingest/overload.hpp"
#include "ingest/report.hpp"
#include "ingest/staging.hpp"
#include "online/monitor.hpp"

namespace acn {

struct WatermarkConfig {
  /// Event-time lateness budget: interval k seals once a report for
  /// interval >= k + allowed_lag has been seen. Must be >= 1 (a budget of
  /// 1 already tolerates arbitrary reorder within one interval boundary).
  std::uint64_t allowed_lag = 2;
  /// Ticks an interval may stay open before the stall timeout force-closes
  /// it (0 = no timeout; rely on the watermark alone). tick() is the
  /// caller's wall-clock surrogate, so tests and replays stay
  /// deterministic.
  std::uint64_t timeout_ticks = 0;
  /// Interval-flood guard: the most intervals one watermark advance may
  /// seal *cleanly*. Staging memory is already bounded (open intervals
  /// never span more than allowed_lag — the watermark seals eagerly), so
  /// the flood hazard is the opposite one: a burst of far-future event
  /// times slams the watermark forward and flushes intervals that never
  /// had their lateness window. When one advance would seal more than
  /// this many intervals, the excess seals are marked forced/degraded.
  std::uint64_t max_watermark_jump = 64;
  /// Reports claiming an event time further than this past the highest
  /// interval seen are rejected (counted): one absurd event time must not
  /// slam the watermark forward and flush every open interval.
  std::uint64_t max_future_skip = 1024;

  void validate() const;
};

/// One sealed interval, with everything the ingestion layer did to it.
struct ClosedInterval {
  std::uint64_t interval = 0;
  bool forced = false;    ///< sealed by timeout/flood, not the watermark
  bool degraded = false;  ///< shed, deferred, forced, or admit-rejected
  std::size_t reported = 0;          ///< devices whose report arrived
  std::size_t replayed = 0;          ///< active devices replaying last claim
  std::vector<GatewayKey> deferred;  ///< flagged, characterization deferred
  std::vector<GatewayKey> retired;   ///< liveness retirements at this seal
  IntervalReport report;             ///< the monitor's verdicts
};

class IngestPipeline {
 public:
  struct Config {
    /// Monitor settings (model, characterize options, threads, episodes,
    /// adaptive). roster_capacity/roster_dim are overwritten from
    /// `capacity`/`dim` below — the pipeline always drives the monitor
    /// through its roster front door.
    OnlineMonitor::Config monitor;
    std::size_t capacity = 0;  ///< fleet slot capacity (> 0)
    std::size_t dim = 2;       ///< services per device
    WatermarkConfig watermark;
    OverloadConfig overload;
    LivenessConfig liveness;
  };

  explicit IngestPipeline(Config config);

  /// Installs the pre-stream fleet: admits every (key, position) pair and
  /// seals interval 0 as the priming snapshot (no verdicts — there is no
  /// motion yet). Event-time intervals in reports start at 1. Throws if
  /// called twice or if the fleet exceeds capacity.
  void prime(std::span<const std::pair<GatewayKey, Point>> fleet);
  /// Convenience: devices 0..n-1 at the snapshot's positions.
  void prime(const Snapshot& initial);

  /// Ingests one report: dedups/stages it, advances the watermark, seals
  /// every interval the watermark (or the flood bound) passed. Sealed
  /// results accumulate for drain_ready(). Requires prime().
  void push(const QosReport& report);

  /// push() for a delivery burst. Semantically identical to pushing each
  /// report in order; keeps the per-report loop inside the pipeline so a
  /// high-volume source does not pay a library call per report.
  void push_all(std::span<const QosReport> reports);

  /// Advances the stall clock by one tick; may force-close the oldest
  /// interval(s) when timeout_ticks is configured.
  void tick();

  /// End of stream: seals every still-open interval up to the highest
  /// event time seen (nothing further can arrive, so these are complete —
  /// not marked forced).
  void finish();

  /// Intervals sealed since the last call, in stream order.
  [[nodiscard]] std::vector<ClosedInterval> drain_ready();

  [[nodiscard]] const IngestCounters& counters() const noexcept {
    return counters_;
  }
  /// Lowest interval that is still open (everything below is sealed).
  [[nodiscard]] std::uint64_t next_to_seal() const noexcept {
    return next_to_seal_;
  }
  /// Highest event time seen in any accepted report.
  [[nodiscard]] std::uint64_t max_seen_interval() const noexcept {
    return max_seen_;
  }
  [[nodiscard]] std::size_t open_intervals() const noexcept {
    return frames_.size();
  }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

  [[nodiscard]] OnlineMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const OnlineMonitor& monitor() const noexcept {
    return monitor_;
  }

 private:
  void seal(std::uint64_t interval, bool forced);
  /// Seals every interval the watermark or the flood bound has passed.
  void seal_ready();

  Config config_;
  OnlineMonitor monitor_;
  OverloadController overload_;
  LivenessTracker liveness_;
  std::map<std::uint64_t, StagingFrame> frames_;  ///< open intervals, ordered
  /// Cache of the most recently pushed-to frame (map nodes are stable):
  /// consecutive reports overwhelmingly target the same interval, so the
  /// per-report map lookup collapses to one compare.
  StagingFrame* hot_frame_ = nullptr;
  std::uint64_t hot_interval_ = 0;
  /// Sealed frames, reset and reused: frame storage (the dense staging
  /// lane is capacity-sized) is allocated at most open-span times, not
  /// once per interval.
  std::vector<StagingFrame> frame_pool_;
  /// Precomputed "shedding can ever engage" — keeps the overload check
  /// off the per-report hot path in the (default) disabled configuration.
  bool shed_possible_ = false;
  std::vector<ClosedInterval> ready_;
  IngestCounters counters_;
  /// Counter values at the previous seal — the per-interval deltas the
  /// telemetry layer's IngestSample carries (see seal()).
  IngestCounters telemetry_baseline_;
  std::uint64_t next_to_seal_ = 1;
  std::uint64_t max_seen_ = 0;
  std::uint64_t tick_ = 0;
  bool primed_ = false;
};

}  // namespace acn
