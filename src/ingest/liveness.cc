#include "ingest/liveness.hpp"

#include <algorithm>

namespace acn {

bool LivenessTracker::reported(GatewayKey key, std::uint64_t interval) {
  if (!enabled()) return false;
  auto [it, inserted] = state_.try_emplace(key);
  DeviceState& device = it->second;
  const bool revived = !inserted && device.suspect;
  if (revived) --suspects_;
  device.last_heard = std::max(device.last_heard, interval);
  device.retries = 0;
  device.suspect = false;
  return revived;
}

void LivenessTracker::forget(GatewayKey key) {
  const auto it = state_.find(key);
  if (it == state_.end()) return;
  if (it->second.suspect) --suspects_;
  state_.erase(it);
}

std::vector<GatewayKey> LivenessTracker::sealed(std::uint64_t interval) {
  std::vector<GatewayKey> expired;
  if (!enabled()) return expired;
  for (auto& [key, device] : state_) {
    if (device.last_heard + config_.silent_intervals > interval) continue;
    if (!device.suspect) {
      // First threshold crossing: start the retry ladder instead of
      // retiring outright — a stalled source deserves the benefit of
      // the backoff before its slot is parked.
      device.suspect = true;
      ++suspects_;
      device.retries = 0;
      device.next_probe = interval + std::max<std::uint64_t>(1, config_.retry_backoff);
      continue;
    }
    if (interval < device.next_probe) continue;
    if (device.retries + 1 >= config_.max_retries) {
      expired.push_back(key);
      continue;
    }
    ++device.retries;
    const std::uint64_t backoff = std::max<std::uint64_t>(1, config_.retry_backoff)
                                  << device.retries;
    device.next_probe = interval + backoff;
  }
  std::sort(expired.begin(), expired.end());
  return expired;
}

}  // namespace acn
