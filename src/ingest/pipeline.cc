#include "ingest/pipeline.hpp"

#include <stdexcept>
#include <utility>

namespace acn {

void WatermarkConfig::validate() const {
  if (allowed_lag == 0) {
    throw std::invalid_argument(
        "WatermarkConfig: allowed_lag must be >= 1 (0 would seal an interval "
        "on its first report)");
  }
  if (max_watermark_jump == 0) {
    throw std::invalid_argument(
        "WatermarkConfig: max_watermark_jump must be >= 1");
  }
}

namespace {

OnlineMonitor::Config roster_backed(OnlineMonitor::Config monitor,
                                    std::size_t capacity, std::size_t dim) {
  monitor.roster_capacity = capacity;
  monitor.roster_dim = dim;
  return monitor;
}

}  // namespace

IngestPipeline::IngestPipeline(Config config)
    : config_(std::move(config)),
      monitor_(roster_backed(config_.monitor, config_.capacity, config_.dim)),
      overload_(config_.overload),
      liveness_(config_.liveness) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("IngestPipeline: capacity must be >= 1");
  }
  config_.watermark.validate();
  shed_possible_ = config_.overload.shed_claim_threshold !=
                   static_cast<std::size_t>(-1);
}

void IngestPipeline::prime(
    std::span<const std::pair<GatewayKey, Point>> fleet) {
  if (primed_) {
    throw std::logic_error("IngestPipeline::prime: already primed");
  }
  for (const auto& [key, position] : fleet) {
    monitor_.admit(key, position);
    liveness_.admitted(key, 0);
  }
  // Seal interval 0: primes the engine's ring with the roster snapshot and
  // clears the just-admitted markers, so interval 1 trajectories exist.
  (void)monitor_.close_interval({});
  primed_ = true;
}

void IngestPipeline::prime(const Snapshot& initial) {
  std::vector<std::pair<GatewayKey, Point>> fleet;
  fleet.reserve(initial.size());
  for (DeviceId j = 0; j < initial.size(); ++j) {
    fleet.emplace_back(static_cast<GatewayKey>(j), initial[j]);
  }
  prime(fleet);
}

void IngestPipeline::push(const QosReport& report) {
  if (!primed_) {
    throw std::logic_error("IngestPipeline::push: prime() first");
  }
  const std::uint64_t k = report.interval;
  if (k < next_to_seal_) {
    // The interval is sealed; its snapshot already replayed this device's
    // last claim (the hostile layer's self-consistency rule). Retroactive
    // application would fork the published history, so: counted, dropped.
    ++counters_.late_sealed;
    return;
  }
  if (k > max_seen_ + config_.watermark.max_future_skip) {
    ++counters_.future_rejected;
    return;
  }

  StagingFrame* frame = hot_frame_;
  if (frame == nullptr || hot_interval_ != k) {
    auto it = frames_.find(k);
    if (it == frames_.end()) {
      StagingFrame fresh;
      if (frame_pool_.empty()) {
        fresh.configure(config_.capacity, config_.dim);
      } else {
        fresh = std::move(frame_pool_.back());
        frame_pool_.pop_back();
      }
      fresh.first_seen_tick = tick_;
      it = frames_.emplace(k, std::move(fresh)).first;
    }
    frame = &it->second;  // map nodes are stable until erased
    hot_frame_ = frame;
    hot_interval_ = k;
  }
  if (k > max_seen_) max_seen_ = k;  // the event time counts even if shed

  // Overload shed: past the volume threshold, non-flagged claim updates
  // are sampled by content hash — the flagged ones always land.
  if (shed_possible_ && !report.abnormal &&
      overload_.shed_claim(report.device, k, frame->volume())) {
    ++counters_.shed_claims;
    frame->shed_engaged = true;
  } else {
    switch (frame->apply(report)) {
      case StagingFrame::Apply::kAccepted:
        ++counters_.accepted;
        break;
      case StagingFrame::Apply::kSuperseded:
      case StagingFrame::Apply::kStale:
        ++counters_.superseded;
        break;
      case StagingFrame::Apply::kDuplicate:
        ++counters_.duplicates;
        break;
    }
  }
  seal_ready();
}

void IngestPipeline::push_all(std::span<const QosReport> reports) {
  if (!primed_) {
    throw std::logic_error("IngestPipeline::push: prime() first");
  }
  for (const QosReport& report : reports) push(report);
}

void IngestPipeline::seal_ready() {
  // Watermark rule: k seals once max_seen - k >= allowed_lag. When one
  // advance flushes more than max_watermark_jump intervals (an interval
  // flood slammed the watermark forward), the excess — the oldest ones,
  // flushed furthest from their lateness window — seal forced/degraded.
  while (max_seen_ >= next_to_seal_ + config_.watermark.allowed_lag) {
    const std::uint64_t pending =
        max_seen_ - config_.watermark.allowed_lag - next_to_seal_ + 1;
    seal(next_to_seal_,
         /*forced=*/pending > config_.watermark.max_watermark_jump);
  }
}

void IngestPipeline::tick() {
  ++tick_;
  if (config_.watermark.timeout_ticks == 0 || !primed_) return;
  // The stall rule watches the OLDEST staged frame: once it has been open
  // for timeout_ticks, everything up to and including it seals (the empty
  // gap intervals before it are only open because it dammed the stream).
  while (!frames_.empty()) {
    const auto oldest = frames_.begin();
    if (tick_ - oldest->second.first_seen_tick <
        config_.watermark.timeout_ticks) {
      break;
    }
    const std::uint64_t blocked_through = oldest->first;
    while (next_to_seal_ <= blocked_through) {
      seal(next_to_seal_, /*forced=*/true);
    }
  }
}

void IngestPipeline::finish() {
  if (!primed_) return;
  while (next_to_seal_ <= max_seen_) {
    // End of stream: nothing further can arrive, so these frames are as
    // complete as they will ever be — a normal close, not a forced one.
    seal(next_to_seal_, /*forced=*/false);
  }
}

std::vector<ClosedInterval> IngestPipeline::drain_ready() {
  return std::exchange(ready_, {});
}

void IngestPipeline::seal(std::uint64_t interval, bool forced) {
  ClosedInterval closed;
  closed.interval = interval;
  closed.forced = forced;

  StagingFrame frame;
  bool poolable = false;  // gap intervals seal a lane-less placeholder
  if (const auto it = frames_.find(interval); it != frames_.end()) {
    frame = std::move(it->second);
    frames_.erase(it);
    poolable = true;
    if (hot_interval_ == interval) hot_frame_ = nullptr;
  }
  bool degraded = forced || frame.shed_engaged;
  if (forced) ++counters_.forced_closes;

  // Apply the staged claims in key order (deterministic under any delivery
  // permutation). First-seen keys are auto-admitted; when the roster is
  // full the report is refused and the interval marked degraded.
  std::vector<GatewayKey> flagged;
  std::vector<Point> flagged_claims;
  const FleetRoster& roster = monitor_.roster();
  const bool liveness_on = liveness_.enabled();
  frame.for_each_sorted([&](GatewayKey key,
                            const StagingFrame::Staged& staged) {
    if (monitor_.try_report(key, staged.claim)) {
      if (liveness_on && liveness_.reported(key, interval)) {
        ++counters_.revived_devices;
      }
    } else {
      if (roster.active_count() >= roster.capacity()) {
        ++counters_.admit_rejected;
        degraded = true;
        return;
      }
      monitor_.admit(key, staged.claim);
      if (liveness_on) liveness_.admitted(key, interval);
      ++counters_.admitted_devices;
    }
    ++closed.reported;
    if (staged.flagged) {
      flagged.push_back(key);
      flagged_claims.push_back(staged.claim);
    }
  });
  if (poolable) {
    frame.reset();
    frame_pool_.push_back(std::move(frame));
  }
  closed.replayed = monitor_.roster().active_count() - closed.reported;
  counters_.replayed_claims += closed.replayed;

  // Liveness: devices silent past the threshold walk the retry ladder;
  // the exhausted ones go through the roster's retire path (slot parks at
  // its last claim, open episode force-closed). A device that reported
  // this interval was just marked heard, so it can never expire here.
  for (const GatewayKey key : liveness_.sealed(interval)) {
    liveness_.forget(key);
    if (!monitor_.roster().active(key)) continue;  // externally retired
    monitor_.retire(key);
    ++counters_.retired_devices;
    closed.retired.push_back(key);
  }

  // Overload deferral: past the abnormal cap, flagged devices with no
  // flagged 2r-neighbour (at claimed positions) are deferred — provably
  // without effect on the surviving devices' verdicts (see overload.hpp).
  const std::vector<std::size_t> deferred = overload_.defer_candidates(
      flagged_claims, config_.monitor.model.window());
  if (!deferred.empty()) {
    degraded = true;
    counters_.deferred_devices += deferred.size();
    std::vector<GatewayKey> kept;
    kept.reserve(flagged.size() - deferred.size());
    std::size_t next = 0;
    for (std::size_t i = 0; i < flagged.size(); ++i) {
      if (next < deferred.size() && deferred[next] == i) {
        closed.deferred.push_back(flagged[i]);
        ++next;
      } else {
        kept.push_back(flagged[i]);
      }
    }
    flagged = std::move(kept);
  }

  closed.degraded = degraded;
  closed.report = monitor_.close_interval(flagged, degraded);

  // Telemetry: annotate the interval the monitor just recorded with what
  // ingestion did to it — the per-seal deltas of the cumulative counters
  // plus the watermark distance and queue depth at the seal.
  if (obs::TelemetryHub* hub = monitor_.telemetry()) {
    obs::IngestSample sample;
    sample.seal_lag = max_seen_ > interval ? max_seen_ - interval : 0;
    sample.forced = forced;
    sample.reported = closed.reported;
    sample.replayed = closed.replayed;
    sample.deferred = closed.deferred.size();
    sample.retired = closed.retired.size();
    sample.late_sealed = counters_.late_sealed - telemetry_baseline_.late_sealed;
    sample.duplicates = counters_.duplicates - telemetry_baseline_.duplicates;
    sample.shed_claims = counters_.shed_claims - telemetry_baseline_.shed_claims;
    sample.open_intervals = frames_.size();
    telemetry_baseline_ = counters_;
    hub->annotate_ingest(closed.report.interval, sample);
  }

  ready_.push_back(std::move(closed));
  ++next_to_seal_;
}

}  // namespace acn
