#include "baseline/central_kmeans.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace acn {

CentralKmeansBaseline::CentralKmeansBaseline(Config config) : config_(config) {
  if (config.tau < 1 || config.cluster_divisor < 1 || config.max_iterations < 1) {
    throw std::invalid_argument("CentralKmeansBaseline: bad configuration");
  }
}

CharacterizationSets CentralKmeansBaseline::classify(const StatePair& state) const {
  CharacterizationSets sets;
  const DeviceSet& abnormal = state.abnormal();
  if (abnormal.empty()) return sets;

  const std::vector<DeviceId> members(abnormal.begin(), abnormal.end());
  const std::size_t jd = state.joint_dim();
  const std::size_t k = std::max<std::size_t>(
      1, members.size() / config_.cluster_divisor);

  // k-means++ style seeding (first centre random, then farthest-point).
  Rng rng(config_.seed);
  std::vector<std::vector<double>> centres;
  centres.reserve(k);
  const auto coords_of = [&](DeviceId j) {
    std::vector<double> c(jd);
    for (std::size_t i = 0; i < jd; ++i) c[i] = state.joint(j)[i];
    return c;
  };
  centres.push_back(coords_of(members[rng.uniform_int(members.size())]));
  const auto sq_dist = [&](const std::vector<double>& a, const Point& p) {
    double s = 0.0;
    for (std::size_t i = 0; i < jd; ++i) {
      const double delta = a[i] - p[i];
      s += delta * delta;
    }
    return s;
  };
  while (centres.size() < k) {
    double best = -1.0;
    DeviceId pick = members[0];
    for (const DeviceId j : members) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& c : centres) nearest = std::min(nearest, sq_dist(c, state.joint(j)));
      if (nearest > best) {
        best = nearest;
        pick = j;
      }
    }
    centres.push_back(coords_of(pick));
  }

  // Lloyd iterations.
  std::vector<std::size_t> assignment(members.size(), 0);
  for (int iteration = 0; iteration < config_.max_iterations; ++iteration) {
    bool changed = false;
    for (std::size_t m = 0; m < members.size(); ++m) {
      double nearest = std::numeric_limits<double>::infinity();
      std::size_t best = 0;
      for (std::size_t c = 0; c < centres.size(); ++c) {
        const double dist = sq_dist(centres[c], state.joint(members[m]));
        if (dist < nearest) {
          nearest = dist;
          best = c;
        }
      }
      if (assignment[m] != best) {
        assignment[m] = best;
        changed = true;
      }
    }
    if (!changed) break;
    // Recompute centres.
    std::vector<std::vector<double>> sums(centres.size(), std::vector<double>(jd, 0.0));
    std::vector<std::size_t> counts(centres.size(), 0);
    for (std::size_t m = 0; m < members.size(); ++m) {
      ++counts[assignment[m]];
      for (std::size_t i = 0; i < jd; ++i) {
        sums[assignment[m]][i] += state.joint(members[m])[i];
      }
    }
    for (std::size_t c = 0; c < centres.size(); ++c) {
      if (counts[c] == 0) continue;  // keep stale centre (standard fallback)
      for (std::size_t i = 0; i < jd; ++i) {
        centres[c][i] = sums[c][i] / static_cast<double>(counts[c]);
      }
    }
  }

  // Classify by cluster cardinality.
  std::vector<std::size_t> cluster_size(centres.size(), 0);
  for (const std::size_t a : assignment) ++cluster_size[a];
  for (std::size_t m = 0; m < members.size(); ++m) {
    if (cluster_size[assignment[m]] > config_.tau) {
      sets.massive = sets.massive.with(members[m]);
    } else {
      sets.isolated = sets.isolated.with(members[m]);
    }
  }
  return sets;
}

}  // namespace acn
