// Tessellation baseline in the style of FixMe (the paper's reference [1],
// Anceaume et al., OPODIS 2012).
//
// The related-work section criticizes this design: "tessellating the space
// with large bucket sizes tends to identify each possible anomaly as a
// massive one, while considering small bucket sizes reduces drastically the
// probability of having a large number of devices in a single bucket,
// giving rise to the triggering of false alarms."
//
// We reproduce that mechanism so benches can quantify the criticism: the
// QoS space is cut into axis-aligned buckets of side `bucket`; an abnormal
// device's signature is the pair (bucket at k-1, bucket at k); a device is
// declared massive iff more than tau abnormal devices share its signature.
#pragma once

#include <cstddef>

#include "core/params.hpp"
#include "core/partition_enumerator.hpp"
#include "core/state.hpp"

namespace acn {

class TessellationBaseline {
 public:
  /// Requires bucket > 0.
  TessellationBaseline(double bucket, std::uint32_t tau);

  /// Classifies every abnormal device of `state` (no unresolved class: the
  /// tessellation cannot express uncertainty).
  [[nodiscard]] CharacterizationSets classify(const StatePair& state) const;

  [[nodiscard]] double bucket() const noexcept { return bucket_; }

 private:
  double bucket_;
  std::uint32_t tau_;
};

}  // namespace acn
