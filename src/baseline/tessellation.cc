#include "baseline/tessellation.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace acn {

TessellationBaseline::TessellationBaseline(double bucket, std::uint32_t tau)
    : bucket_(bucket), tau_(tau) {
  if (bucket <= 0.0) {
    throw std::invalid_argument("TessellationBaseline: bucket must be > 0");
  }
  if (tau < 1) throw std::invalid_argument("TessellationBaseline: tau must be >= 1");
}

CharacterizationSets TessellationBaseline::classify(const StatePair& state) const {
  // Joint-space signature: bucket indices of all 2d coordinates, hashed.
  const auto signature = [&](DeviceId j) {
    std::uint64_t h = 1469598103934665603ULL;
    const Point& joint = state.joint(j);
    for (std::size_t i = 0; i < state.joint_dim(); ++i) {
      const auto cell = static_cast<std::int64_t>(std::floor(joint[i] / bucket_));
      h ^= static_cast<std::uint64_t>(cell) + 0x9E3779B97F4A7C15ULL;
      h *= 1099511628211ULL;
    }
    return h;
  };

  std::unordered_map<std::uint64_t, std::uint32_t> occupancy;
  for (const DeviceId j : state.abnormal()) ++occupancy[signature(j)];

  CharacterizationSets sets;
  for (const DeviceId j : state.abnormal()) {
    if (occupancy[signature(j)] > tau_) {
      sets.massive = sets.massive.with(j);
    } else {
      sets.isolated = sets.isolated.with(j);
    }
  }
  return sets;
}

}  // namespace acn
