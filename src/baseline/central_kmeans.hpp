// Centralized clustering baseline in the style of the paper's reference
// [15] (Zhao et al., ICAC 2009): a management node gathers *all* abnormal
// trajectories, clusters them with k-means (the paper pinpoints "the
// centralized clustering process [...] exclusively run by the management
// node" as the scalability impediment), and declares a device massive iff
// its cluster holds more than tau devices.
//
// Besides accuracy, the baseline exposes its communication cost: every
// abnormal device ships its full trajectory (2d coordinates) to the centre
// each interval, whereas the paper's local algorithm only exchanges within
// a 4r neighbourhood.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/partition_enumerator.hpp"
#include "core/state.hpp"

namespace acn {

class CentralKmeansBaseline {
 public:
  struct Config {
    std::uint32_t tau = 3;
    /// Cluster budget: k = max(1, |A_k| / cluster_divisor).
    std::uint32_t cluster_divisor = 6;
    int max_iterations = 50;
    std::uint64_t seed = 1;
  };

  explicit CentralKmeansBaseline(Config config);

  [[nodiscard]] CharacterizationSets classify(const StatePair& state) const;

  /// Doubles shipped to the management node for one interval.
  [[nodiscard]] std::uint64_t communication_cost(const StatePair& state) const noexcept {
    return static_cast<std::uint64_t>(state.abnormal().size()) * state.joint_dim();
  }

 private:
  Config config_;
};

}  // namespace acn
