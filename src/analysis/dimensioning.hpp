// Dimensioning of the parameters r and tau (§VII-A, Figure 6).
//
// The paper tunes (r, tau) so the probability that more than tau
// *independent isolated* errors hit devices within 2r of each other is
// negligible:
//
//   P{N_r(j) = m} = C(n-1, m) q^m (1-q)^{n-1-m}
//        with q the probability another device lies in the 2r-vicinity of j;
//   P{F_r(j) > tau}
//      = 1 - sum_m sum_{l<=tau} C(m, l) b^l (1-b)^{m-l} P{N_r(j) = m},
//        with b the per-device isolated-error probability.
//
// Fig 6(a) plots the CDF of N_r(j) for several r (n = 1000); Fig 6(b) plots
// P{F_r(j) <= tau} against n for tau in {2..5} (r = 0.03, b = 0.005).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace acn {

/// How the vicinity probability q_j is computed for a device at a uniformly
/// random position of E = [0,1]^d under the infinity norm.
///
/// Reproduction note (see EXPERIMENTS.md): the paper defines the vicinity
/// as V = {x : ||x - p(j)|| <= 2r} (radius 2r, window side 4r), and its
/// Fig 6(a) numbers match that definition. Its Fig 6(b) curves, however,
/// only reproduce with the *consistency-window* occupancy (side 2r — the
/// region a single tau-dense motion containing j actually spans); with the
/// radius-2r vicinity the tau = 2 curve would dip to ~0.917 at n = 15000,
/// far below the figure's 0.997 axis floor. Both models are provided.
enum class VicinityModel {
  /// Radius-2r vicinity, no boundary clipping: q = (4r)^d.
  kInterior,
  /// Radius-2r vicinity averaged over the device position:
  /// q = (4r - 4r^2)^d. Matches simulation on the unit box (Fig 6(a)).
  kUniformAverage,
  /// Consistency-window occupancy (side 2r), interior: q = (2r)^d.
  kWindowInterior,
  /// Consistency-window occupancy averaged over position:
  /// q = (2r - r^2)^d. Reproduces Fig 6(b).
  kWindowAverage,
};

/// Probability that one other uniform device lies within 2r (infinity norm).
[[nodiscard]] double vicinity_probability(double r, std::size_t d, VicinityModel model);

/// P{N_r(j) <= m}: CDF of the vicinity population among n-1 other devices.
[[nodiscard]] double vicinity_cdf(std::size_t n, double r, std::size_t d,
                                  std::uint64_t m, VicinityModel model);

/// Exact P{N_r(j) <= m} for a *uniformly placed* device: numerically
/// integrates the binomial CDF over the device position (the boundary makes
/// the count a binomial mixture, which the single-q formulas approximate).
/// Midpoint rule with `grid` points per dimension; d <= 3 recommended.
[[nodiscard]] double vicinity_cdf_exact(std::size_t n, double r, std::size_t d,
                                        std::uint64_t m, std::size_t grid = 48);

/// P{F_r(j) <= tau}: probability that at most tau devices in the 2r-vicinity
/// of j are hit by independent isolated errors (per-device probability b).
[[nodiscard]] double isolated_overload_cdf(std::size_t n, double r, std::size_t d,
                                           std::uint32_t tau, double b,
                                           VicinityModel model);

/// Smallest tau such that P{F_r(j) > tau} < epsilon (the paper's tuning
/// rule). Returns tau in [1, n-1].
[[nodiscard]] std::uint32_t recommend_tau(std::size_t n, double r, std::size_t d,
                                          double b, double epsilon,
                                          VicinityModel model);

/// Monte-Carlo cross-check of vicinity_cdf: samples `trials` uniform
/// placements of n devices and returns the empirical P{N_r(j) <= m} for the
/// device with index 0. Used by tests and by the Fig 6(a) bench to show the
/// analytic curve matches simulation.
[[nodiscard]] double vicinity_cdf_monte_carlo(std::size_t n, double r, std::size_t d,
                                              std::uint64_t m, std::size_t trials,
                                              Rng& rng);

}  // namespace acn
