#include "analysis/dimensioning.hpp"

#include <cmath>
#include <stdexcept>

#include "common/math.hpp"

namespace acn {

double vicinity_probability(double r, std::size_t d, VicinityModel model) {
  if (r < 0.0 || r >= 0.25) {
    throw std::invalid_argument("vicinity_probability: r must be in [0, 0.25)");
  }
  if (d == 0) throw std::invalid_argument("vicinity_probability: d must be >= 1");
  double per_dim = 0.0;
  switch (model) {
    case VicinityModel::kInterior:
      per_dim = 4.0 * r;
      break;
    case VicinityModel::kUniformAverage:
      // E[ |[x-2r, x+2r] ∩ [0,1]| ] over x ~ U[0,1] = 4r - 4r^2.
      per_dim = 4.0 * r - 4.0 * r * r;
      break;
    case VicinityModel::kWindowInterior:
      per_dim = 2.0 * r;
      break;
    case VicinityModel::kWindowAverage:
      // E[ |[x-r, x+r] ∩ [0,1]| ] over x ~ U[0,1] = 2r - r^2.
      per_dim = 2.0 * r - r * r;
      break;
  }
  per_dim = clamp(per_dim, 0.0, 1.0);
  return std::pow(per_dim, static_cast<double>(d));
}

double vicinity_cdf(std::size_t n, double r, std::size_t d, std::uint64_t m,
                    VicinityModel model) {
  if (n < 1) throw std::invalid_argument("vicinity_cdf: n must be >= 1");
  const double q = vicinity_probability(r, d, model);
  return binomial_cdf(n - 1, m, q);
}

double vicinity_cdf_exact(std::size_t n, double r, std::size_t d, std::uint64_t m,
                          std::size_t grid) {
  if (n < 1 || d == 0 || grid == 0) {
    throw std::invalid_argument("vicinity_cdf_exact: bad arguments");
  }
  // Midpoint rule over the device position x in [0,1]^d; for each cell the
  // vicinity measure factorizes per dimension.
  std::vector<std::size_t> index(d, 0);
  double total = 0.0;
  const double step = 1.0 / static_cast<double>(grid);
  for (;;) {
    double q = 1.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double x = (static_cast<double>(index[i]) + 0.5) * step;
      const double lo = x - 2.0 * r < 0.0 ? 0.0 : x - 2.0 * r;
      const double hi = x + 2.0 * r > 1.0 ? 1.0 : x + 2.0 * r;
      q *= hi - lo;
    }
    total += binomial_cdf(n - 1, m, q);
    std::size_t i = 0;
    while (i < d && ++index[i] == grid) {
      index[i] = 0;
      ++i;
    }
    if (i == d) break;
  }
  double cells = 1.0;
  for (std::size_t i = 0; i < d; ++i) cells *= static_cast<double>(grid);
  return total / cells;
}

double isolated_overload_cdf(std::size_t n, double r, std::size_t d,
                             std::uint32_t tau, double b, VicinityModel model) {
  if (n < 2) throw std::invalid_argument("isolated_overload_cdf: n must be >= 2");
  if (b < 0.0 || b > 1.0) {
    throw std::invalid_argument("isolated_overload_cdf: b must be in [0, 1]");
  }
  const double q = vicinity_probability(r, d, model);
  // P{F <= tau} = sum_m P{N = m} * P{Bin(m, b) <= tau}. The direct double
  // sum is O(n * tau); terms become negligible fast, so truncate the m-sum
  // once the binomial tail mass is exhausted.
  double total = 0.0;
  for (std::uint64_t m = 0; m <= n - 1; ++m) {
    const double p_m = binomial_pmf(n - 1, m, q);
    if (p_m < 1e-18 && m > static_cast<std::uint64_t>(q * static_cast<double>(n))) {
      break;  // far right tail
    }
    total += p_m * binomial_cdf(m, tau, b);
  }
  return total > 1.0 ? 1.0 : total;
}

std::uint32_t recommend_tau(std::size_t n, double r, std::size_t d, double b,
                            double epsilon, VicinityModel model) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("recommend_tau: epsilon must be in (0, 1)");
  }
  for (std::uint32_t tau = 1; tau + 1 < n; ++tau) {
    if (1.0 - isolated_overload_cdf(n, r, d, tau, b, model) < epsilon) return tau;
  }
  return static_cast<std::uint32_t>(n - 1);
}

double vicinity_cdf_monte_carlo(std::size_t n, double r, std::size_t d,
                                std::uint64_t m, std::size_t trials, Rng& rng) {
  if (n < 1 || d == 0 || trials == 0) {
    throw std::invalid_argument("vicinity_cdf_monte_carlo: bad arguments");
  }
  std::size_t hits = 0;
  std::vector<double> centre(d);
  std::vector<double> other(d);
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& x : centre) x = rng.uniform();
    std::uint64_t close = 0;
    for (std::size_t j = 1; j < n; ++j) {
      bool inside = true;
      for (std::size_t i = 0; i < d; ++i) {
        other[i] = rng.uniform();
        if (std::fabs(other[i] - centre[i]) > 2.0 * r) {
          inside = false;
          // keep drawing remaining coords for stream stability
        }
      }
      if (inside) ++close;
    }
    if (close <= m) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace acn
