#include "online/adaptive.hpp"

#include <algorithm>
#include <cmath>

namespace acn {

AdaptiveSampler::AdaptiveSampler(Config config)
    : config_(config), current_(config.initial_interval) {
  if (config.min_interval == 0 || config.min_interval > config.max_interval) {
    throw std::invalid_argument("AdaptiveSampler: bad interval bounds");
  }
  if (config.initial_interval < config.min_interval ||
      config.initial_interval > config.max_interval) {
    throw std::invalid_argument("AdaptiveSampler: initial interval out of bounds");
  }
  if (config.decrease <= 0.0 || config.decrease >= 1.0 || config.increase <= 1.0) {
    throw std::invalid_argument("AdaptiveSampler: bad multipliers");
  }
}

std::uint64_t AdaptiveSampler::next_interval(bool anomaly_observed) noexcept {
  const double scaled = anomaly_observed
                            ? static_cast<double>(current_) * config_.decrease
                            : static_cast<double>(current_) * config_.increase;
  const auto rounded = static_cast<std::uint64_t>(std::llround(scaled));
  current_ = std::clamp(rounded, config_.min_interval, config_.max_interval);
  return current_;
}

}  // namespace acn
