// FleetRoster: the explicit device add/remove path for churned fleets.
//
// The whole pipeline below the monitor — StatePair::advance, FleetGrid,
// MotionPlane arenas — is built on a FIXED dense id universe: slot j of
// snapshot k must describe the same device as slot j of snapshot k-1
// (StatePair::advance precondition). A production fleet is not like that:
// gateways join and leave mid-stream (size-varying fleets, La Fond et al.,
// arXiv:1411.3749). The roster reconciles the two worlds:
//
//   * sparse, stable GatewayKeys (whatever the deployment uses to name a
//     gateway) map to dense DeviceId slots within a fixed capacity;
//   * a retired gateway's slot is parked — frozen at its last reported
//     position, never abnormal — and recycled FIFO (least-recently-retired
//     first), so the snapshot never changes size;
//   * a slot (re)assigned during the current interval is ineligible as
//     abnormal for that interval: the slot's apparent trajectory (old
//     occupant's position -> new occupant's position) is a splice of two
//     devices, not a motion, and must never reach the characterizer. This
//     is what makes slot recycling *safe*, not merely convenient.
//
// Verdict soundness under this parking scheme: motion families are computed
// over A_k only (neighbourhoods are A_k-masked), so a parked slot — present
// in the snapshot but never abnormal — cannot join any motion and cannot
// influence any verdict. The conformance harness exercises exactly this.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/point.hpp"
#include "core/state.hpp"

namespace acn {

/// Deployment-level stable gateway identifier (opaque to the roster).
using GatewayKey = std::uint64_t;

class FleetRoster {
 public:
  /// Fixed slot capacity and QoS-space dimension. Vacant never-occupied
  /// slots are parked at the origin of [0,1]^d. Throws on capacity == 0 or
  /// d out of Point range.
  FleetRoster(std::size_t capacity, std::size_t dim);

  /// Admits a gateway, assigning it the least-recently-retired free slot at
  /// `position`. The slot is flagged just-assigned until end_interval(), so
  /// abnormal_slots() drops it this interval. Throws std::invalid_argument
  /// if the key is already active, the position is out of range, or no slot
  /// is free.
  DeviceId admit(GatewayKey key, const Point& position);

  /// Retires an active gateway; its slot is parked at the last reported
  /// position and queued for reuse. Throws if the key is not active.
  void retire(GatewayKey key);

  /// Updates an active gateway's reported position. Throws if the key is
  /// not active or the position is out of range.
  void report(GatewayKey key, const Point& position);

  /// report() for the ingestion hot path: updates the position and returns
  /// true iff the key is active — one lookup instead of an active() check
  /// followed by report(). Still throws on a malformed position (a bad
  /// claim is a caller bug, not churn).
  bool try_report(GatewayKey key, const Point& position);

  [[nodiscard]] bool active(GatewayKey key) const noexcept {
    return slot_lookup(key) != kNoSlot;
  }
  [[nodiscard]] std::optional<DeviceId> slot_of(GatewayKey key) const noexcept;
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// The dense fixed-size snapshot the engine ingests: active slots at
  /// their reported position, parked slots frozen at their last one.
  [[nodiscard]] Snapshot snapshot() const { return Snapshot(positions_); }

  /// Maps abnormal gateway keys to slots, dropping keys that are not active
  /// and slots (re)assigned since the last end_interval() — a device with
  /// no previous-interval trajectory cannot be characterized. Unknown keys
  /// are dropped silently: a report from a just-retired gateway racing its
  /// retirement is normal in a churning fleet, not an error.
  [[nodiscard]] DeviceSet abnormal_slots(std::span<const GatewayKey> keys) const;

  /// Closes the interval: just-assigned slots become eligible as abnormal
  /// from the next interval on. Call once per snapshot fed to the engine,
  /// after abnormal_slots().
  void end_interval();

 private:
  static constexpr DeviceId kNoSlot = ~DeviceId{0};

  // Key -> slot resolution sits on the ingestion layer's per-report hot
  // path, so it is split like the staging lane: keys below capacity (the
  // usual deployment numbering, and everything a dense prime() admits)
  // index a flat vector; larger keys spill to the hash map.
  [[nodiscard]] DeviceId slot_lookup(GatewayKey key) const noexcept {
    if (key < slot_lane_.size()) return slot_lane_[key];
    const auto it = slot_spill_.find(key);
    return it == slot_spill_.end() ? kNoSlot : it->second;
  }
  void slot_insert(GatewayKey key, DeviceId slot);
  void slot_erase(GatewayKey key);

  std::size_t dim_;
  std::vector<Point> positions_;            ///< per slot, active or parked
  std::vector<std::uint8_t> just_assigned_; ///< per slot, reset by end_interval
  std::vector<DeviceId> slot_lane_;         ///< key < capacity; kNoSlot = absent
  std::unordered_map<GatewayKey, DeviceId> slot_spill_;  ///< key >= capacity
  std::size_t active_ = 0;
  std::vector<GatewayKey> key_of_;          ///< per slot; meaningful iff occupied
  std::vector<std::uint8_t> occupied_;      ///< per slot
  std::deque<DeviceId> free_;               ///< FIFO recycle queue
};

}  // namespace acn
