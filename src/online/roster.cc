#include "online/roster.hpp"

#include <stdexcept>

namespace acn {

FleetRoster::FleetRoster(std::size_t capacity, std::size_t dim) : dim_(dim) {
  if (capacity == 0) {
    throw std::invalid_argument("FleetRoster: capacity must be >= 1");
  }
  if (dim == 0 || dim > Point::kMaxDim / 2) {
    throw std::invalid_argument("FleetRoster: dimension out of range");
  }
  positions_.assign(capacity, Point::zero(dim));
  just_assigned_.assign(capacity, 0);
  key_of_.assign(capacity, 0);
  occupied_.assign(capacity, 0);
  for (DeviceId slot = 0; slot < capacity; ++slot) free_.push_back(slot);
}

DeviceId FleetRoster::admit(GatewayKey key, const Point& position) {
  if (slot_of_.contains(key)) {
    throw std::invalid_argument("FleetRoster::admit: key already active");
  }
  if (position.dim() != dim_ || !position.in_unit_box()) {
    throw std::invalid_argument("FleetRoster::admit: bad position");
  }
  if (free_.empty()) {
    throw std::invalid_argument("FleetRoster::admit: no free slot (capacity " +
                                std::to_string(positions_.size()) + ")");
  }
  const DeviceId slot = free_.front();
  free_.pop_front();
  positions_[slot] = position;
  just_assigned_[slot] = 1;
  key_of_[slot] = key;
  occupied_[slot] = 1;
  slot_of_.emplace(key, slot);
  return slot;
}

void FleetRoster::retire(GatewayKey key) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    throw std::invalid_argument("FleetRoster::retire: key not active");
  }
  const DeviceId slot = it->second;
  slot_of_.erase(it);
  occupied_[slot] = 0;
  free_.push_back(slot);  // position stays parked where it last reported
}

void FleetRoster::report(GatewayKey key, const Point& position) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    throw std::invalid_argument("FleetRoster::report: key not active");
  }
  if (position.dim() != dim_ || !position.in_unit_box()) {
    throw std::invalid_argument("FleetRoster::report: bad position");
  }
  positions_[it->second] = position;
}

std::optional<DeviceId> FleetRoster::slot_of(GatewayKey key) const noexcept {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) return std::nullopt;
  return it->second;
}

DeviceSet FleetRoster::abnormal_slots(std::span<const GatewayKey> keys) const {
  std::vector<DeviceId> slots;
  slots.reserve(keys.size());
  for (const GatewayKey key : keys) {
    const auto it = slot_of_.find(key);
    if (it == slot_of_.end()) continue;            // retired or unknown
    if (just_assigned_[it->second] != 0) continue; // no trajectory yet
    slots.push_back(it->second);
  }
  return DeviceSet(std::move(slots));
}

void FleetRoster::end_interval() {
  just_assigned_.assign(just_assigned_.size(), 0);
}

}  // namespace acn
