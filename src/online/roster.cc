#include "online/roster.hpp"

#include <stdexcept>

namespace acn {

FleetRoster::FleetRoster(std::size_t capacity, std::size_t dim) : dim_(dim) {
  if (capacity == 0) {
    throw std::invalid_argument("FleetRoster: capacity must be >= 1");
  }
  if (dim == 0 || dim > Point::kMaxDim / 2) {
    throw std::invalid_argument("FleetRoster: dimension out of range");
  }
  positions_.assign(capacity, Point::zero(dim));
  just_assigned_.assign(capacity, 0);
  slot_lane_.assign(capacity, kNoSlot);
  key_of_.assign(capacity, 0);
  occupied_.assign(capacity, 0);
  for (DeviceId slot = 0; slot < capacity; ++slot) free_.push_back(slot);
}

void FleetRoster::slot_insert(GatewayKey key, DeviceId slot) {
  if (key < slot_lane_.size()) {
    slot_lane_[key] = slot;
  } else {
    slot_spill_.emplace(key, slot);
  }
  ++active_;
}

void FleetRoster::slot_erase(GatewayKey key) {
  if (key < slot_lane_.size()) {
    slot_lane_[key] = kNoSlot;
  } else {
    slot_spill_.erase(key);
  }
  --active_;
}

DeviceId FleetRoster::admit(GatewayKey key, const Point& position) {
  if (slot_lookup(key) != kNoSlot) {
    throw std::invalid_argument("FleetRoster::admit: key already active");
  }
  if (position.dim() != dim_ || !position.in_unit_box()) {
    throw std::invalid_argument("FleetRoster::admit: bad position");
  }
  if (free_.empty()) {
    throw std::invalid_argument("FleetRoster::admit: no free slot (capacity " +
                                std::to_string(positions_.size()) + ")");
  }
  const DeviceId slot = free_.front();
  free_.pop_front();
  positions_[slot] = position;
  just_assigned_[slot] = 1;
  key_of_[slot] = key;
  occupied_[slot] = 1;
  slot_insert(key, slot);
  return slot;
}

void FleetRoster::retire(GatewayKey key) {
  const DeviceId slot = slot_lookup(key);
  if (slot == kNoSlot) {
    throw std::invalid_argument("FleetRoster::retire: key not active");
  }
  slot_erase(key);
  occupied_[slot] = 0;
  free_.push_back(slot);  // position stays parked where it last reported
}

void FleetRoster::report(GatewayKey key, const Point& position) {
  if (!try_report(key, position)) {
    throw std::invalid_argument("FleetRoster::report: key not active");
  }
}

bool FleetRoster::try_report(GatewayKey key, const Point& position) {
  const DeviceId slot = slot_lookup(key);
  if (slot == kNoSlot) return false;
  if (position.dim() != dim_ || !position.in_unit_box()) {
    throw std::invalid_argument("FleetRoster::report: bad position");
  }
  positions_[slot].assign_compact(position);
  return true;
}

std::optional<DeviceId> FleetRoster::slot_of(GatewayKey key) const noexcept {
  const DeviceId slot = slot_lookup(key);
  if (slot == kNoSlot) return std::nullopt;
  return slot;
}

DeviceSet FleetRoster::abnormal_slots(std::span<const GatewayKey> keys) const {
  std::vector<DeviceId> slots;
  slots.reserve(keys.size());
  for (const GatewayKey key : keys) {
    const DeviceId slot = slot_lookup(key);
    if (slot == kNoSlot) continue;        // retired or unknown
    if (just_assigned_[slot] != 0) continue;  // no trajectory yet
    slots.push_back(slot);
  }
  return DeviceSet(std::move(slots));
}

void FleetRoster::end_interval() {
  just_assigned_.assign(just_assigned_.size(), 0);
}

}  // namespace acn
