#include "online/monitor.hpp"

#include <stdexcept>

namespace acn {

OnlineMonitor::OnlineMonitor(Config config)
    : config_(config), episodes_(config.episode_quiet_intervals) {
  config_.model.validate();
  if (config_.adaptive.has_value()) sampler_.emplace(*config_.adaptive);
}

IntervalReport OnlineMonitor::observe(const Snapshot& positions,
                                      const DeviceSet& abnormal) {
  IntervalReport report;
  report.interval = interval_;
  report.abnormal = abnormal;

  if (last_.has_value()) {
    if (last_->size() != positions.size() || last_->dim() != positions.dim()) {
      throw std::invalid_argument("OnlineMonitor: fleet shape changed mid-stream");
    }
    if (!abnormal.empty()) {
      const StatePair state(*last_, positions, abnormal);
      Characterizer characterizer(state, config_.model, config_.characterize);
      for (const DeviceId j : abnormal) {
        const Decision decision = characterizer.characterize(j);
        report.decisions.emplace(j, decision);
        switch (decision.cls) {
          case AnomalyClass::kIsolated:
            report.isolated = report.isolated.with(j);
            break;
          case AnomalyClass::kMassive:
            report.massive = report.massive.with(j);
            break;
          case AnomalyClass::kUnresolved:
            report.unresolved = report.unresolved.with(j);
            break;
        }
      }
    }
  }

  // Episode bookkeeping and the adaptive controller run on every interval,
  // including quiet ones.
  std::map<DeviceId, AnomalyClass> verdict_of;
  for (const auto& [device, decision] : report.decisions) {
    verdict_of.emplace(device, decision.cls);
  }
  episodes_.observe(interval_, verdict_of);
  if (sampler_.has_value()) {
    (void)sampler_->next_interval(!report.abnormal.empty());
  }

  last_ = positions;
  ++interval_;
  return report;
}

}  // namespace acn
