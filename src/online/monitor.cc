#include "online/monitor.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace acn {

OnlineMonitor::OnlineMonitor(Config config)
    : config_(config),
      engine_(FrameEngine::Config{.model = config.model,
                                  .characterize = config.characterize,
                                  .threads = config.characterize_threads,
                                  .shards = config.shards}),
      episodes_(config.episode_quiet_intervals) {
  if (config_.adaptive.has_value()) sampler_.emplace(*config_.adaptive);
  if (config_.roster_capacity > 0) {
    roster_.emplace(config_.roster_capacity, config_.roster_dim);
  }
  if (config_.telemetry.has_value()) {
    hub_ = std::make_unique<obs::TelemetryHub>(*config_.telemetry);
  }
}

DeviceId OnlineMonitor::admit(GatewayKey key, const Point& position) {
  if (!roster_.has_value()) {
    throw std::logic_error("OnlineMonitor::admit: roster mode is off");
  }
  return roster_->admit(key, position);
}

void OnlineMonitor::retire(GatewayKey key) {
  if (!roster_.has_value()) {
    throw std::logic_error("OnlineMonitor::retire: roster mode is off");
  }
  // A late force-close can race an explicit retirement (operator removal
  // vs. the ingestion layer's liveness expiry): the second retire of the
  // same gateway is a no-op, never a throw and never a second episode.
  const std::optional<DeviceId> slot = roster_->slot_of(key);
  if (!slot.has_value()) return;
  // Close the slot's episode before the slot can be recycled: a new
  // occupant must never extend the departed gateway's incident.
  episodes_.close(*slot);
  roster_->retire(key);
}

void OnlineMonitor::report(GatewayKey key, const Point& position) {
  if (!roster_.has_value()) {
    throw std::logic_error("OnlineMonitor::report: roster mode is off");
  }
  roster_->report(key, position);
}

bool OnlineMonitor::try_report(GatewayKey key, const Point& position) {
  if (!roster_.has_value()) {
    throw std::logic_error("OnlineMonitor::try_report: roster mode is off");
  }
  return roster_->try_report(key, position);
}

IntervalReport OnlineMonitor::close_interval(
    std::span<const GatewayKey> abnormal_keys, bool degraded) {
  if (!roster_.has_value()) {
    throw std::logic_error("OnlineMonitor::close_interval: roster mode is off");
  }
  const DeviceSet abnormal = roster_->abnormal_slots(abnormal_keys);
  roster_->end_interval();
  return observe(roster_->snapshot(), abnormal, degraded);
}

const FleetRoster& OnlineMonitor::roster() const {
  if (!roster_.has_value()) {
    throw std::logic_error("OnlineMonitor::roster: roster mode is off");
  }
  return *roster_;
}

IntervalReport OnlineMonitor::observe(Snapshot positions,
                                      const DeviceSet& abnormal,
                                      bool degraded) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = hub_ ? Clock::now() : Clock::time_point{};
  // Episode-transition baselines: open + closed only ever grows by one per
  // episode opened, closed only by one per episode closed.
  const std::size_t episodes_started_before =
      hub_ ? episodes_.closed().size() + episodes_.open_count() : 0;
  const std::size_t episodes_closed_before = hub_ ? episodes_.closed().size() : 0;

  IntervalReport report;
  report.interval = interval_;
  report.abnormal = abnormal;
  report.degraded = degraded;

  // The engine rolls its ring in place (the snapshot is moved, never
  // copied), re-buckets only the devices that moved, and characterizes A_k
  // over the shared motion plane — serially or across its worker pool.
  const std::optional<FrameEngine::Result> result = engine_.observe(
      SealedFrame{.interval = interval_,
                  .positions = std::move(positions),
                  .abnormal = abnormal,
                  .degraded = degraded});
  if (result.has_value() && !abnormal.empty()) {
    const DeviceSet& ordered = engine_.state().abnormal();
    for (std::size_t i = 0; i < result->decisions.size(); ++i) {
      report.decisions.emplace(ordered[i], result->decisions[i]);
    }
    report.isolated = result->sets.isolated;
    report.massive = result->sets.massive;
    report.unresolved = result->sets.unresolved;
  }

  // Episode bookkeeping and the adaptive controller run on every interval,
  // including quiet ones.
  std::map<DeviceId, AnomalyClass> verdict_of;
  for (const auto& [device, decision] : report.decisions) {
    verdict_of.emplace(device, decision.cls);
  }
  episodes_.observe(interval_, verdict_of);
  if (sampler_.has_value()) {
    (void)sampler_->next_interval(!report.abnormal.empty());
  }

  // Telemetry reads only the interval's OUTPUTS (report sets, engine stats,
  // episode tallies), after every decision has been made — it cannot change
  // a verdict byte (tests/obs/telemetry_conformance_test.cc pins this).
  if (hub_) {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    obs::IntervalTelemetry record =
        obs::frame_record(interval_, ms, engine_.last_stats());
    const Snapshot& fleet = engine_.state().curr();
    record.devices = static_cast<std::uint32_t>(fleet.size());
    record.abnormal = static_cast<std::uint32_t>(report.abnormal.size());
    record.isolated = static_cast<std::uint32_t>(report.isolated.size());
    record.massive = static_cast<std::uint32_t>(report.massive.size());
    record.unresolved = static_cast<std::uint32_t>(report.unresolved.size());
    for (const auto& [device, decision] : report.decisions) {
      if (decision.rule == DecisionRule::kBudgetExhausted) {
        ++record.budget_exhausted;
      }
    }
    record.degraded = degraded;
    record.episodes_closed = static_cast<std::uint32_t>(
        episodes_.closed().size() - episodes_closed_before);
    record.episodes_opened = static_cast<std::uint32_t>(
        episodes_.closed().size() + episodes_.open_count() -
        episodes_started_before);
    record.episodes_open = episodes_.open_count();
    record.regions = hub_->tally_regions(fleet, report.abnormal,
                                         report.isolated, report.massive,
                                         report.unresolved);
    hub_->record(std::move(record));
  }

  ++interval_;
  return report;
}

}  // namespace acn
