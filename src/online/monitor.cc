#include "online/monitor.hpp"

#include <utility>

namespace acn {

OnlineMonitor::OnlineMonitor(Config config)
    : config_(config),
      engine_(FrameEngine::Config{.model = config.model,
                                  .characterize = config.characterize,
                                  .threads = config.characterize_threads}),
      episodes_(config.episode_quiet_intervals) {
  if (config_.adaptive.has_value()) sampler_.emplace(*config_.adaptive);
}

IntervalReport OnlineMonitor::observe(Snapshot positions,
                                      const DeviceSet& abnormal) {
  IntervalReport report;
  report.interval = interval_;
  report.abnormal = abnormal;

  // The engine rolls its ring in place (the snapshot is moved, never
  // copied), re-buckets only the devices that moved, and characterizes A_k
  // over the shared motion plane — serially or across its worker pool.
  const std::optional<FrameEngine::Result> result =
      engine_.observe(std::move(positions), abnormal);
  if (result.has_value() && !abnormal.empty()) {
    const DeviceSet& ordered = engine_.state().abnormal();
    for (std::size_t i = 0; i < result->decisions.size(); ++i) {
      report.decisions.emplace(ordered[i], result->decisions[i]);
    }
    report.isolated = result->sets.isolated;
    report.massive = result->sets.massive;
    report.unresolved = result->sets.unresolved;
  }

  // Episode bookkeeping and the adaptive controller run on every interval,
  // including quiet ones.
  std::map<DeviceId, AnomalyClass> verdict_of;
  for (const auto& [device, decision] : report.decisions) {
    verdict_of.emplace(device, decision.cls);
  }
  episodes_.observe(interval_, verdict_of);
  if (sampler_.has_value()) {
    (void)sampler_->next_interval(!report.abnormal.empty());
  }

  ++interval_;
  return report;
}

}  // namespace acn
