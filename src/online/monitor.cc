#include "online/monitor.hpp"

#include <stdexcept>

namespace acn {

OnlineMonitor::OnlineMonitor(Config config)
    : config_(config), episodes_(config.episode_quiet_intervals) {
  config_.model.validate();
  if (config_.adaptive.has_value()) sampler_.emplace(*config_.adaptive);
}

IntervalReport OnlineMonitor::observe(const Snapshot& positions,
                                      const DeviceSet& abnormal) {
  IntervalReport report;
  report.interval = interval_;
  report.abnormal = abnormal;

  if (last_.has_value()) {
    if (last_->size() != positions.size() || last_->dim() != positions.dim()) {
      throw std::invalid_argument("OnlineMonitor: fleet shape changed mid-stream");
    }
    if (!abnormal.empty()) {
      const StatePair state(*last_, positions, abnormal);
      Characterizer characterizer(state, config_.model, config_.characterize);
      // One shared motion plane per interval; the batch path reads it either
      // serially or across the configured worker pool.
      const std::vector<Decision> decisions =
          config_.characterize_threads == 1
              ? characterizer.decide_all()
              : characterizer.decide_all_parallel(config_.characterize_threads);
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        const DeviceId j = abnormal[i];
        report.decisions.emplace(j, decisions[i]);
        switch (decisions[i].cls) {
          case AnomalyClass::kIsolated:
            report.isolated = report.isolated.with(j);
            break;
          case AnomalyClass::kMassive:
            report.massive = report.massive.with(j);
            break;
          case AnomalyClass::kUnresolved:
            report.unresolved = report.unresolved.with(j);
            break;
        }
      }
    }
  }

  // Episode bookkeeping and the adaptive controller run on every interval,
  // including quiet ones.
  std::map<DeviceId, AnomalyClass> verdict_of;
  for (const auto& [device, decision] : report.decisions) {
    verdict_of.emplace(device, decision.cls);
  }
  episodes_.observe(interval_, verdict_of);
  if (sampler_.has_value()) {
    (void)sampler_->next_interval(!report.abnormal.empty());
  }

  last_ = positions;
  ++interval_;
  return report;
}

}  // namespace acn
