// Episode tracking: the online view of anomalies across many intervals.
//
// The characterizer answers "what hit device j in [k-1, k]?". An operator
// cares about the *episode*: the contiguous run of abnormal intervals of a
// device, the verdict evolution inside it (unresolved verdicts frequently
// sharpen into massive/isolated as the superposed errors drift apart), and
// fleet-level statistics (episode durations, verdict stability).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/device_set.hpp"
#include "core/params.hpp"

namespace acn {

struct Episode {
  DeviceId device = 0;
  std::uint64_t first_interval = 0;
  std::uint64_t last_interval = 0;
  std::vector<AnomalyClass> verdicts;  ///< one per abnormal interval

  [[nodiscard]] std::uint64_t duration() const noexcept {
    return last_interval - first_interval + 1;
  }
  /// The episode's settled verdict: the last decided (non-unresolved)
  /// verdict if any, otherwise unresolved.
  [[nodiscard]] AnomalyClass final_verdict() const noexcept;
  /// True if the episode ever switched between decided classes
  /// (isolated <-> massive) — should be rare; a symptom of model drift.
  [[nodiscard]] bool flapped() const noexcept;
  /// True if some unresolved interval later sharpened into a decided one.
  [[nodiscard]] bool sharpened() const noexcept;
};

/// Feeds per-interval verdicts; closes an episode after `quiet_intervals`
/// without the device appearing in A_k.
class EpisodeTracker {
 public:
  explicit EpisodeTracker(std::uint64_t quiet_intervals = 1);

  /// Records interval k: `verdict_of` maps each abnormal device to its
  /// verdict. Devices absent from the map are considered quiet.
  void observe(std::uint64_t interval,
               const std::map<DeviceId, AnomalyClass>& verdict_of);

  /// Episodes closed so far (quiet for >= quiet_intervals).
  [[nodiscard]] const std::vector<Episode>& closed() const noexcept {
    return closed_;
  }
  /// Episodes still running.
  [[nodiscard]] std::size_t open_count() const noexcept { return open_.size(); }

  /// Force-closes every open episode (end of run).
  void flush();

  /// Force-closes the open episode of one device, if any (churn: the
  /// device left the fleet, so its slot may be recycled for an unrelated
  /// gateway — appending that gateway's verdicts to the departed device's
  /// episode would conflate two incidents). No-op when no episode is open.
  void close(DeviceId device);

 private:
  struct OpenEpisode {
    Episode episode;
    std::uint64_t quiet_streak = 0;
  };

  std::uint64_t quiet_intervals_;
  std::map<DeviceId, OpenEpisode> open_;
  std::vector<Episode> closed_;
};

}  // namespace acn
