#include "online/episode.hpp"

#include <stdexcept>

namespace acn {

AnomalyClass Episode::final_verdict() const noexcept {
  for (auto it = verdicts.rbegin(); it != verdicts.rend(); ++it) {
    if (*it != AnomalyClass::kUnresolved) return *it;
  }
  return AnomalyClass::kUnresolved;
}

bool Episode::flapped() const noexcept {
  bool saw_isolated = false;
  bool saw_massive = false;
  for (const AnomalyClass verdict : verdicts) {
    saw_isolated = saw_isolated || verdict == AnomalyClass::kIsolated;
    saw_massive = saw_massive || verdict == AnomalyClass::kMassive;
  }
  return saw_isolated && saw_massive;
}

bool Episode::sharpened() const noexcept {
  bool unresolved_seen = false;
  for (const AnomalyClass verdict : verdicts) {
    if (verdict == AnomalyClass::kUnresolved) {
      unresolved_seen = true;
    } else if (unresolved_seen) {
      return true;
    }
  }
  return false;
}

EpisodeTracker::EpisodeTracker(std::uint64_t quiet_intervals)
    : quiet_intervals_(quiet_intervals) {
  if (quiet_intervals == 0) {
    throw std::invalid_argument("EpisodeTracker: quiet_intervals must be >= 1");
  }
}

void EpisodeTracker::observe(std::uint64_t interval,
                             const std::map<DeviceId, AnomalyClass>& verdict_of) {
  // Update or open episodes for abnormal devices.
  for (const auto& [device, verdict] : verdict_of) {
    auto [it, inserted] = open_.try_emplace(device);
    OpenEpisode& open = it->second;
    if (inserted) {
      open.episode.device = device;
      open.episode.first_interval = interval;
    }
    open.episode.last_interval = interval;
    open.episode.verdicts.push_back(verdict);
    open.quiet_streak = 0;
  }
  // Age quiet devices and close episodes whose streak expired.
  for (auto it = open_.begin(); it != open_.end();) {
    if (verdict_of.contains(it->first)) {
      ++it;
      continue;
    }
    if (++it->second.quiet_streak >= quiet_intervals_) {
      closed_.push_back(std::move(it->second.episode));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void EpisodeTracker::close(DeviceId device) {
  const auto it = open_.find(device);
  if (it == open_.end()) return;
  closed_.push_back(std::move(it->second.episode));
  open_.erase(it);
}

void EpisodeTracker::flush() {
  for (auto& [device, open] : open_) {
    (void)device;
    closed_.push_back(std::move(open.episode));
  }
  open_.clear();
}

}  // namespace acn
