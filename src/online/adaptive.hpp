// Adaptive snapshot scheduling (§VII-C).
//
// "In our approach, the frequency at which QoS information is sampled is
//  locally tuned, and only depends on the local occurrence of QoS
//  degradations. [...] devices can afford to increase the frequency at
//  which they sample their neighbourhood, decreasing accordingly the number
//  of concomitant errors and thus the number of unresolved configurations."
//
// AdaptiveSampler is that controller: multiplicative decrease of the
// sampling interval while anomalies are observed (fewer errors superpose
// within one interval), multiplicative increase while quiet (cheap when
// nothing happens). Bounded both sides.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace acn {

class AdaptiveSampler {
 public:
  struct Config {
    std::uint64_t min_interval = 1;    ///< ticks; alarm-time floor
    std::uint64_t max_interval = 64;   ///< ticks; idle-time ceiling
    std::uint64_t initial_interval = 16;
    double decrease = 0.5;  ///< multiplier on anomaly (in (0, 1))
    double increase = 1.5;  ///< multiplier on quiet (> 1)
  };

  explicit AdaptiveSampler(Config config);

  /// Reports whether the last interval contained an anomaly; returns the
  /// next sampling interval in ticks.
  std::uint64_t next_interval(bool anomaly_observed) noexcept;

  [[nodiscard]] std::uint64_t current() const noexcept { return current_; }
  void reset() noexcept { current_ = config_.initial_interval; }

 private:
  Config config_;
  std::uint64_t current_;
};

}  // namespace acn
