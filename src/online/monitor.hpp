// OnlineMonitor: the streaming front door of the library.
//
// Feed one system snapshot per interval (positions of all devices in the
// QoS space plus the abnormal set A_k); the monitor characterizes every
// abnormal device against the previous snapshot, maintains episodes across
// intervals, and drives the adaptive snapshot scheduler. This is the object
// a deployment embeds; everything below it (the FrameEngine's rolling
// state, incremental fleet grid, motion plane, characterizer) is mechanism.
//
// Snapshots are MOVED into the engine's ring — the monitor retains no
// per-interval copy of the fleet positions of its own.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "obs/telemetry.hpp"
#include "online/adaptive.hpp"
#include "online/episode.hpp"
#include "online/roster.hpp"

namespace acn {

/// Verdicts of one interval.
struct IntervalReport {
  std::uint64_t interval = 0;
  DeviceSet abnormal;
  DeviceSet isolated;
  DeviceSet massive;
  DeviceSet unresolved;
  std::map<DeviceId, Decision> decisions;
  /// Set when the ingestion layer sealed this interval degraded (shed
  /// claims, deferred characterizations, or a forced early close): the
  /// verdicts are sound for the inputs that survived, but the inputs were
  /// clipped — weigh them accordingly.
  bool degraded = false;

  [[nodiscard]] double unresolved_ratio() const noexcept {
    return abnormal.empty() ? 0.0
                            : static_cast<double>(unresolved.size()) /
                                  static_cast<double>(abnormal.size());
  }
};

class OnlineMonitor {
 public:
  struct Config {
    Params model;
    CharacterizeOptions characterize;
    /// Worker lanes for the per-interval plane build and characterization
    /// fan-outs (FrameEngine::Config::threads): 1 = serial (default), 0 =
    /// hardware concurrency. Verdicts are identical either way.
    unsigned characterize_threads = 1;
    /// Spatial shards of the engine's fleet grid
    /// (FrameEngine::Config::shards): 0 sizes to the worker count. Roster
    /// admits/retires route through the sharded grid's owner shards;
    /// verdicts are byte-identical for every value.
    unsigned shards = 0;
    std::uint64_t episode_quiet_intervals = 1;
    std::optional<AdaptiveSampler::Config> adaptive;  ///< nullopt = fixed rate
    /// Churned-fleet mode: a fixed slot capacity > 0 embeds a FleetRoster
    /// and enables admit/retire/report/close_interval — gateways may join
    /// and leave mid-stream while the engine below keeps its fixed device
    /// universe (vacant slots are parked, never abnormal). 0 = fixed-fleet
    /// mode: drive observe() with dense snapshots directly.
    std::size_t roster_capacity = 0;
    /// Services per device in roster mode (ignored otherwise).
    std::size_t roster_dim = 2;
    /// Engage the telemetry layer: every observe() emits one
    /// IntervalTelemetry into an embedded TelemetryHub (see telemetry()).
    /// Telemetry reads only the interval's outputs — verdicts are
    /// byte-identical with it on or off (pinned by the conformance test).
    /// nullopt (default) compiles the hot path down to a null check.
    std::optional<obs::TelemetryConfig> telemetry;
  };

  explicit OnlineMonitor(Config config);

  /// Feeds the snapshot of interval k (moved into the engine's ring);
  /// returns verdicts (empty report for the very first snapshot — no
  /// motion to characterize yet). `degraded` marks an interval the
  /// ingestion layer sealed under shed/defer/forced-close policy; it is
  /// carried through to the report, never interpreted.
  /// Throws std::invalid_argument if the fleet size or dimension changes.
  IntervalReport observe(Snapshot positions, const DeviceSet& abnormal,
                         bool degraded = false);

  // --- churned-fleet front door (roster mode; throws std::logic_error
  //     when roster_capacity == 0) ---

  /// Admits a gateway mid-stream; it becomes eligible as abnormal from the
  /// NEXT interval (no trajectory exists in its join interval).
  DeviceId admit(GatewayKey key, const Point& position);
  /// Retires a gateway mid-stream; its slot is parked and its open episode
  /// (if any) force-closed so a recycled slot cannot inherit it. Idempotent:
  /// retiring an already-retired (or never-admitted) key is a no-op, so an
  /// explicit retirement racing a late liveness force-close is harmless.
  void retire(GatewayKey key);
  /// Updates an active gateway's reported QoS position for this interval.
  void report(GatewayKey key, const Point& position);
  /// report() that returns false instead of throwing when the key is not
  /// active — the ingestion layer's per-device hot path (one roster lookup
  /// for the check and the update together).
  bool try_report(GatewayKey key, const Point& position);
  /// Closes the interval: materializes the roster snapshot, maps the
  /// abnormal gateway keys to slots (dropping retired and just-admitted
  /// gateways), and feeds the engine — the churn-tolerant observe().
  /// `degraded` is the ingestion layer's quality marker (see observe()).
  IntervalReport close_interval(std::span<const GatewayKey> abnormal_keys,
                                bool degraded = false);

  /// The embedded roster (requires roster mode).
  [[nodiscard]] const FleetRoster& roster() const;

  /// Next sampling interval suggested by the §VII-C controller (the
  /// configured fixed interval when adaptivity is off).
  [[nodiscard]] std::uint64_t next_sampling_interval() const noexcept {
    return sampler_.has_value() ? sampler_->current() : 1;
  }

  [[nodiscard]] const EpisodeTracker& episodes() const noexcept { return episodes_; }
  /// Closes all open episodes (end of stream).
  void finish() { episodes_.flush(); }

  [[nodiscard]] std::uint64_t intervals_seen() const noexcept { return interval_; }

  /// Phase timings of the last interval (the engine's breakdown).
  [[nodiscard]] const FrameStats& last_stats() const noexcept {
    return engine_.last_stats();
  }

  /// The embedded telemetry hub, or nullptr when Config::telemetry was
  /// nullopt. The ingestion layer uses this to annotate sealed intervals;
  /// exporters and the CLI query it.
  [[nodiscard]] obs::TelemetryHub* telemetry() noexcept { return hub_.get(); }
  [[nodiscard]] const obs::TelemetryHub* telemetry() const noexcept {
    return hub_.get();
  }

 private:
  Config config_;
  FrameEngine engine_;
  std::optional<AdaptiveSampler> sampler_;
  EpisodeTracker episodes_;
  std::optional<FleetRoster> roster_;  ///< engaged iff roster_capacity > 0
  std::unique_ptr<obs::TelemetryHub> hub_;  ///< engaged iff Config::telemetry
  std::uint64_t interval_ = 0;
};

}  // namespace acn
