#include "detect/threshold.hpp"

#include <cmath>
#include <stdexcept>

namespace acn {

StepThresholdDetector::StepThresholdDetector(double threshold)
    : threshold_(threshold) {
  if (threshold <= 0.0) {
    throw std::invalid_argument("StepThresholdDetector: threshold must be > 0");
  }
}

bool StepThresholdDetector::observe(double sample) {
  const bool fire = has_last_ && std::fabs(sample - last_) > threshold_;
  last_ = sample;
  has_last_ = true;
  return fire;
}

void StepThresholdDetector::reset() { has_last_ = false; }

std::string StepThresholdDetector::name() const {
  return "step-threshold(" + std::to_string(threshold_) + ")";
}

std::unique_ptr<Detector> StepThresholdDetector::clone() const {
  return std::make_unique<StepThresholdDetector>(threshold_);
}

BandThresholdDetector::BandThresholdDetector(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo >= hi) {
    throw std::invalid_argument("BandThresholdDetector: requires lo < hi");
  }
}

bool BandThresholdDetector::observe(double sample) {
  return sample < lo_ || sample > hi_;
}

void BandThresholdDetector::reset() {}

std::string BandThresholdDetector::name() const {
  return "band-threshold[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

std::unique_ptr<Detector> BandThresholdDetector::clone() const {
  return std::make_unique<BandThresholdDetector>(lo_, hi_);
}

}  // namespace acn
