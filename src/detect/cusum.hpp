// Two-sided CUSUM (Page 1954, the paper's reference [10]): detects sustained
// shifts of the stream mean. Classic tabular form with drift `slack` and
// decision threshold `h`, expressed in units of the stream's estimated
// standard deviation (learned during warm-up).
#pragma once

#include "detect/detector.hpp"

namespace acn {

class CusumDetector final : public Detector {
 public:
  struct Config {
    double slack = 0.5;      ///< k: half the shift (in sigmas) worth detecting
    double threshold = 5.0;  ///< h: alarm when a cumulative sum exceeds h sigmas
    int warmup = 16;         ///< samples used to estimate mean / sigma
    double min_sigma = 1e-3;
  };

  explicit CusumDetector(Config config);

  bool observe(double sample) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Detector> clone() const override;

  [[nodiscard]] double positive_sum() const noexcept { return s_pos_; }
  [[nodiscard]] double negative_sum() const noexcept { return s_neg_; }

 private:
  Config config_;
  // Warm-up statistics (Welford).
  int seen_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sigma_ = 0.0;
  // Cumulative sums (in sigma units).
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
};

}  // namespace acn
