// EWMA control-chart detector: exponentially weighted moving average with a
// running variance estimate; fires when the innovation leaves the +-k-sigma
// band. A standard lightweight member of the family §III-A alludes to.
#pragma once

#include "detect/detector.hpp"

namespace acn {

class EwmaDetector final : public Detector {
 public:
  struct Config {
    double alpha = 0.2;    ///< smoothing factor in (0, 1]
    double k_sigma = 4.0;  ///< alarm band half-width in standard deviations
    double min_sigma = 1e-3;  ///< variance floor so flat streams stay sane
    int warmup = 8;        ///< samples consumed before alarms are armed
  };

  explicit EwmaDetector(Config config);

  bool observe(double sample) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Detector> clone() const override;

  /// Current smoothed level (the prediction for the next sample).
  [[nodiscard]] double level() const noexcept { return level_; }

 private:
  Config config_;
  double level_ = 0.0;
  double var_ = 0.0;
  int seen_ = 0;
};

}  // namespace acn
