// Threshold detectors: the "simple threshold based functions" of §III-A.
#pragma once

#include "detect/detector.hpp"

namespace acn {

/// Fires when the absolute sample-to-sample variation exceeds `threshold`.
/// The first sample never fires (no variation defined yet).
class StepThresholdDetector final : public Detector {
 public:
  /// Requires threshold > 0.
  explicit StepThresholdDetector(double threshold);

  bool observe(double sample) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Detector> clone() const override;

 private:
  double threshold_;
  double last_ = 0.0;
  bool has_last_ = false;
};

/// Fires when the sample leaves the fixed admissible band [lo, hi].
class BandThresholdDetector final : public Detector {
 public:
  /// Requires lo < hi.
  BandThresholdDetector(double lo, double hi);

  bool observe(double sample) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Detector> clone() const override;

 private:
  double lo_;
  double hi_;
};

}  // namespace acn
