// Scalar Kalman-filter detector (the paper's reference [7], as used by the
// related work [15] to predict metric values at monitored nodes): local
// level model x_{k+1} = x_k + w, observation y_k = x_k + v. Fires when the
// normalized innovation exceeds the gate.
#pragma once

#include "detect/detector.hpp"

namespace acn {

class KalmanDetector final : public Detector {
 public:
  struct Config {
    double process_noise = 1e-4;      ///< Q: variance of the state random walk
    double observation_noise = 1e-3;  ///< R: variance of the measurement
    double gate = 4.0;                ///< alarm when |innovation|/sqrt(S) > gate
    int warmup = 8;
  };

  explicit KalmanDetector(Config config);

  bool observe(double sample) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Detector> clone() const override;

  [[nodiscard]] double estimate() const noexcept { return x_; }
  [[nodiscard]] double variance() const noexcept { return p_; }

 private:
  Config config_;
  double x_ = 0.0;  // state estimate
  double p_ = 1.0;  // estimate variance
  int seen_ = 0;
};

}  // namespace acn
