// Error-detection functions a_k(j) (§III-A).
//
// The paper treats the detector as a pluggable black box: "Different kinds
// of error detection functions exist, ranging from simple threshold based
// functions to more sophisticated ones like the Holt-Winters forecasting or
// Cusum methods" (citing Holt [6], Kalman [7], Page's CUSUM [10],
// Winters [12]). Implementation is declared out of scope there; we provide
// the cited family so the end-to-end pipeline (net substrate, examples) is
// runnable: each detector consumes one QoS sample per tick and reports
// whether the *variation* is abnormal.
#pragma once

#include <memory>
#include <string>

namespace acn {

/// One detector instance monitors one (device, service) QoS stream.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Feeds the QoS sample observed at the current tick; returns true when
  /// the variation is too large to be considered normal (a_k fires).
  virtual bool observe(double sample) = 0;

  /// Forgets all history (used when a device re-registers).
  virtual void reset() = 0;

  /// Human-readable identification for logs and reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (detector banks clone a prototype per service).
  [[nodiscard]] virtual std::unique_ptr<Detector> clone() const = 0;
};

}  // namespace acn
