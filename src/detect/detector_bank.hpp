// DetectorBank: the per-device error-detection function a_k(j).
//
// Definition 5: a_k(j) = true iff *at least one* consumed service shows an
// abnormal QoS variation. The bank holds one detector per service (cloned
// from a prototype) and ORs their verdicts; it also remembers which services
// fired, which the net substrate uses for reporting.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "detect/detector.hpp"

namespace acn {

class DetectorBank {
 public:
  /// One clone of `prototype` per service. Requires services >= 1.
  DetectorBank(const Detector& prototype, std::size_t services);

  /// Feeds the per-service QoS vector for the current tick; returns a_k(j).
  /// Requires samples.size() == service_count().
  bool observe(std::span<const double> samples);

  [[nodiscard]] std::size_t service_count() const noexcept { return detectors_.size(); }

  /// Services that fired on the most recent observe() call.
  [[nodiscard]] const std::vector<std::size_t>& fired_services() const noexcept {
    return fired_;
  }

  void reset();

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::vector<std::size_t> fired_;
};

}  // namespace acn
