#include "detect/kalman.hpp"

#include <cmath>
#include <stdexcept>

namespace acn {

KalmanDetector::KalmanDetector(Config config) : config_(config) {
  if (config.process_noise <= 0.0 || config.observation_noise <= 0.0 ||
      config.gate <= 0.0) {
    throw std::invalid_argument("KalmanDetector: bad configuration");
  }
}

bool KalmanDetector::observe(double sample) {
  if (seen_ == 0) {
    x_ = sample;
    p_ = config_.observation_noise;
    ++seen_;
    return false;
  }
  // Predict.
  const double p_pred = p_ + config_.process_noise;
  // Innovation gate.
  const double s = p_pred + config_.observation_noise;
  const double innovation = sample - x_;
  const bool fire = seen_ >= config_.warmup &&
                    std::fabs(innovation) / std::sqrt(s) > config_.gate;
  if (!fire) {
    // Update.
    const double gain = p_pred / s;
    x_ += gain * innovation;
    p_ = (1.0 - gain) * p_pred;
  }
  ++seen_;
  return fire;
}

void KalmanDetector::reset() {
  x_ = 0.0;
  p_ = 1.0;
  seen_ = 0;
}

std::string KalmanDetector::name() const {
  return "kalman(q=" + std::to_string(config_.process_noise) +
         ", r=" + std::to_string(config_.observation_noise) + ")";
}

std::unique_ptr<Detector> KalmanDetector::clone() const {
  return std::make_unique<KalmanDetector>(config_);
}

}  // namespace acn
