#include "detect/holt_winters.hpp"

#include <cmath>
#include <stdexcept>

namespace acn {

HoltWintersDetector::HoltWintersDetector(Config config) : config_(config) {
  if (config.alpha <= 0.0 || config.alpha > 1.0 || config.beta < 0.0 ||
      config.beta > 1.0 || config.gamma < 0.0 || config.gamma > 1.0) {
    throw std::invalid_argument("HoltWintersDetector: smoothing factors out of range");
  }
  if (config.period < 0 || (config.gamma > 0.0 && config.period < 2)) {
    throw std::invalid_argument("HoltWintersDetector: bad seasonal period");
  }
  if (config.period > 0) season_.assign(static_cast<std::size_t>(config.period), 0.0);
}

double HoltWintersDetector::seasonal(int offset) const noexcept {
  if (config_.period == 0) return 0.0;
  const int idx = ((seen_ + offset) % config_.period + config_.period) % config_.period;
  return season_[static_cast<std::size_t>(idx)];
}

double HoltWintersDetector::forecast() const noexcept {
  return level_ + trend_ + seasonal(0);
}

bool HoltWintersDetector::observe(double sample) {
  if (seen_ == 0) {
    level_ = sample;
    trend_ = 0.0;
    ++seen_;
    return false;
  }
  const double predicted = forecast();
  const double error = sample - predicted;
  const double sigma = err_dev_ > config_.min_sigma ? err_dev_ : config_.min_sigma;
  const int effective_warmup =
      config_.period > 0 ? std::max(config_.warmup, 2 * config_.period) : config_.warmup;
  const bool fire = seen_ >= effective_warmup && std::fabs(error) > config_.k_sigma * sigma;

  if (!fire) {
    const double seasonal_now = seasonal(0);
    const double deseasoned = sample - seasonal_now;
    const double prev_level = level_;
    level_ = config_.alpha * deseasoned + (1.0 - config_.alpha) * (level_ + trend_);
    trend_ = config_.beta * (level_ - prev_level) + (1.0 - config_.beta) * trend_;
    if (config_.period > 0 && config_.gamma > 0.0) {
      const int idx = seen_ % config_.period;
      season_[static_cast<std::size_t>(idx)] =
          config_.gamma * (sample - level_) +
          (1.0 - config_.gamma) * season_[static_cast<std::size_t>(idx)];
    }
    err_dev_ = 0.9 * err_dev_ + 0.1 * std::fabs(error);
  }
  ++seen_;
  return fire;
}

void HoltWintersDetector::reset() {
  level_ = 0.0;
  trend_ = 0.0;
  err_dev_ = 0.0;
  seen_ = 0;
  if (config_.period > 0) season_.assign(static_cast<std::size_t>(config_.period), 0.0);
}

std::string HoltWintersDetector::name() const {
  return "holt-winters(alpha=" + std::to_string(config_.alpha) +
         ", beta=" + std::to_string(config_.beta) +
         (config_.period > 0 ? ", period=" + std::to_string(config_.period) : "") + ")";
}

std::unique_ptr<Detector> HoltWintersDetector::clone() const {
  return std::make_unique<HoltWintersDetector>(config_);
}

}  // namespace acn
