#include "detect/cusum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acn {

CusumDetector::CusumDetector(Config config) : config_(config) {
  if (config.slack < 0.0 || config.threshold <= 0.0 || config.warmup < 2) {
    throw std::invalid_argument("CusumDetector: bad configuration");
  }
}

bool CusumDetector::observe(double sample) {
  ++seen_;
  if (seen_ <= config_.warmup) {
    const double delta = sample - mean_;
    mean_ += delta / seen_;
    m2_ += delta * (sample - mean_);
    if (seen_ == config_.warmup) {
      sigma_ = std::max(std::sqrt(m2_ / (seen_ - 1)), config_.min_sigma);
    }
    return false;
  }
  const double z = (sample - mean_) / sigma_;
  s_pos_ = std::max(0.0, s_pos_ + z - config_.slack);
  s_neg_ = std::max(0.0, s_neg_ - z - config_.slack);
  if (s_pos_ > config_.threshold || s_neg_ > config_.threshold) {
    s_pos_ = 0.0;  // restart after alarm (standard practice)
    s_neg_ = 0.0;
    return true;
  }
  return false;
}

void CusumDetector::reset() {
  seen_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  sigma_ = 0.0;
  s_pos_ = 0.0;
  s_neg_ = 0.0;
}

std::string CusumDetector::name() const {
  return "cusum(k=" + std::to_string(config_.slack) +
         ", h=" + std::to_string(config_.threshold) + ")";
}

std::unique_ptr<Detector> CusumDetector::clone() const {
  auto copy = std::make_unique<CusumDetector>(config_);
  return copy;
}

}  // namespace acn
