#include "detect/ewma.hpp"

#include <cmath>
#include <stdexcept>

namespace acn {

EwmaDetector::EwmaDetector(Config config) : config_(config) {
  if (config.alpha <= 0.0 || config.alpha > 1.0) {
    throw std::invalid_argument("EwmaDetector: alpha must be in (0, 1]");
  }
  if (config.k_sigma <= 0.0) {
    throw std::invalid_argument("EwmaDetector: k_sigma must be > 0");
  }
}

bool EwmaDetector::observe(double sample) {
  if (seen_ == 0) {
    level_ = sample;
    var_ = 0.0;
    ++seen_;
    return false;
  }
  const double innovation = sample - level_;
  const double sigma = std::sqrt(var_) > config_.min_sigma ? std::sqrt(var_)
                                                           : config_.min_sigma;
  const bool fire = seen_ >= config_.warmup &&
                    std::fabs(innovation) > config_.k_sigma * sigma;
  // Update the model only with non-alarming samples so a fault does not
  // teach the filter to accept the degraded level immediately.
  if (!fire) {
    level_ += config_.alpha * innovation;
    var_ = (1.0 - config_.alpha) * (var_ + config_.alpha * innovation * innovation);
  }
  ++seen_;
  return fire;
}

void EwmaDetector::reset() {
  level_ = 0.0;
  var_ = 0.0;
  seen_ = 0;
}

std::string EwmaDetector::name() const {
  return "ewma(alpha=" + std::to_string(config_.alpha) + ")";
}

std::unique_ptr<Detector> EwmaDetector::clone() const {
  return std::make_unique<EwmaDetector>(config_);
}

}  // namespace acn
