#include "detect/detector_bank.hpp"

#include <stdexcept>

namespace acn {

DetectorBank::DetectorBank(const Detector& prototype, std::size_t services) {
  if (services == 0) {
    throw std::invalid_argument("DetectorBank: at least one service required");
  }
  detectors_.reserve(services);
  for (std::size_t i = 0; i < services; ++i) detectors_.push_back(prototype.clone());
}

bool DetectorBank::observe(std::span<const double> samples) {
  if (samples.size() != detectors_.size()) {
    throw std::invalid_argument("DetectorBank: sample/service count mismatch");
  }
  fired_.clear();
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (detectors_[i]->observe(samples[i])) fired_.push_back(i);
  }
  return !fired_.empty();
}

void DetectorBank::reset() {
  for (const auto& detector : detectors_) detector->reset();
  fired_.clear();
}

}  // namespace acn
