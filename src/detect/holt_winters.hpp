// Holt-Winters forecasting detector (references [6] Holt and [12] Winters of
// the paper): additive level + trend + optional additive seasonality; fires
// when the one-step-ahead forecast error leaves a k-sigma band around the
// running error deviation.
#pragma once

#include <vector>

#include "detect/detector.hpp"

namespace acn {

class HoltWintersDetector final : public Detector {
 public:
  struct Config {
    double alpha = 0.3;   ///< level smoothing, in (0, 1]
    double beta = 0.1;    ///< trend smoothing, in [0, 1]
    double gamma = 0.0;   ///< seasonal smoothing, in [0, 1]; 0 with period 0 = no season
    int period = 0;       ///< season length in ticks (0 disables seasonality)
    double k_sigma = 4.0; ///< alarm band half-width
    int warmup = 12;      ///< samples before alarms arm (>= 2; >= 2*period if seasonal)
    double min_sigma = 1e-3;
  };

  explicit HoltWintersDetector(Config config);

  bool observe(double sample) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Detector> clone() const override;

  /// One-step-ahead forecast for the next sample.
  [[nodiscard]] double forecast() const noexcept;

 private:
  [[nodiscard]] double seasonal(int offset) const noexcept;

  Config config_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> season_;
  double err_dev_ = 0.0;  // EWMA of |forecast error|
  int seen_ = 0;
};

}  // namespace acn
