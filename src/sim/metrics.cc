#include "sim/metrics.hpp"

namespace acn {

StepMetrics evaluate_step(const ScenarioStep& step, Params model,
                          const CharacterizeOptions& options, unsigned threads) {
  StepMetrics metrics;
  metrics.abnormal = step.state.abnormal().size();
  metrics.truly_isolated = step.truth.truly_isolated.size();
  if (metrics.abnormal == 0) return metrics;

  Characterizer characterizer(step.state, model, options);
  const std::vector<Decision> decisions =
      threads == 1 ? characterizer.decide_all()
                   : characterizer.decide_all_parallel(threads);
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const DeviceId j = step.state.abnormal()[i];
    const Decision& decision = decisions[i];
    switch (decision.rule) {
      case DecisionRule::kTheorem5:
        ++metrics.isolated_thm5;
        metrics.motions_isolated.add(
            static_cast<double>(decision.maximal_motion_count));
        break;
      case DecisionRule::kTheorem6:
        ++metrics.massive_thm6;
        metrics.dense_motions_massive6.add(
            static_cast<double>(decision.dense_motion_count));
        break;
      case DecisionRule::kTheorem7:
        ++metrics.massive_thm7;
        metrics.collections_massive7.add(
            static_cast<double>(decision.collections_tested));
        break;
      case DecisionRule::kCorollary8:
        ++metrics.unresolved_cor8;
        metrics.collections_unresolved.add(
            static_cast<double>(decision.collections_tested));
        break;
      case DecisionRule::kTheorem6Only:
        ++metrics.unresolved_cor8;  // full NSC disabled: report as unresolved
        break;
      case DecisionRule::kBudgetExhausted:
        ++metrics.budget_exhausted;
        ++metrics.unresolved_cor8;
        break;
    }
    if (decision.cls == AnomalyClass::kMassive &&
        step.truth.truly_isolated.contains(j)) {
      ++metrics.missed_detection;
    }
  }
  return metrics;
}

void RunMetrics::add(const StepMetrics& m) {
  abnormal.add(static_cast<double>(m.abnormal));
  if (m.abnormal > 0) {
    const auto pct = [&](std::size_t c) {
      return 100.0 * static_cast<double>(c) / static_cast<double>(m.abnormal);
    };
    isolated_share.add(pct(m.isolated_thm5));
    massive6_share.add(pct(m.massive_thm6));
    unresolved_share.add(pct(m.unresolved_cor8));
    massive7_share.add(pct(m.massive_thm7));
    unresolved_ratio.add(m.unresolved_ratio());
  }
  if (m.truly_isolated > 0) missed_rate.add(m.missed_detection_rate());
  missed_total += m.missed_detection;
  truly_isolated_total += m.truly_isolated;
  motions_isolated.merge(m.motions_isolated);
  dense_motions_massive6.merge(m.dense_motions_massive6);
  collections_unresolved.merge(m.collections_unresolved);
  collections_massive7.merge(m.collections_massive7);
  budget_exhausted += m.budget_exhausted;
}

}  // namespace acn
