#include "sim/metrics.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/table.hpp"

namespace acn {

std::optional<double> safe_ratio(std::uint64_t num, std::uint64_t den) noexcept {
  if (den == 0) return std::nullopt;
  return static_cast<double>(num) / static_cast<double>(den);
}

std::string json_ratio(std::optional<double> ratio, double scale) {
  if (!ratio.has_value()) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", scale * *ratio);
  return buf;
}

std::string fmt_ratio(std::optional<double> ratio, int precision, double scale) {
  return ratio.has_value() ? fmt(scale * *ratio, precision) : "n/a";
}

StepMetrics tally_step(const std::vector<Decision>& decisions,
                       const DeviceSet& abnormal, const StepTruth& truth) {
  StepMetrics metrics;
  metrics.abnormal = abnormal.size();
  metrics.truly_isolated = truth.truly_isolated.size();
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const DeviceId j = abnormal[i];
    const Decision& decision = decisions[i];
    switch (decision.rule) {
      case DecisionRule::kTheorem5:
        ++metrics.isolated_thm5;
        metrics.motions_isolated.add(
            static_cast<double>(decision.maximal_motion_count));
        break;
      case DecisionRule::kTheorem6:
        ++metrics.massive_thm6;
        metrics.dense_motions_massive6.add(
            static_cast<double>(decision.dense_motion_count));
        break;
      case DecisionRule::kTheorem7:
        ++metrics.massive_thm7;
        metrics.collections_massive7.add(
            static_cast<double>(decision.collections_tested));
        break;
      case DecisionRule::kCorollary8:
        ++metrics.unresolved_cor8;
        metrics.collections_unresolved.add(
            static_cast<double>(decision.collections_tested));
        break;
      case DecisionRule::kTheorem6Only:
        ++metrics.unresolved_cor8;  // full NSC disabled: report as unresolved
        break;
      case DecisionRule::kBudgetExhausted:
        ++metrics.budget_exhausted;
        ++metrics.unresolved_cor8;
        break;
    }
    if (decision.cls == AnomalyClass::kMassive &&
        truth.truly_isolated.contains(j)) {
      ++metrics.missed_detection;
    }
  }
  return metrics;
}

StepMetrics evaluate_step(const ScenarioStep& step, Params model,
                          const CharacterizeOptions& options, unsigned threads) {
  if (step.state.abnormal().empty()) {
    return tally_step({}, step.state.abnormal(), step.truth);
  }
  Characterizer characterizer(step.state, model, options);
  const std::vector<Decision> decisions =
      threads == 1 ? characterizer.decide_all()
                   : characterizer.decide_all_parallel(threads);
  return tally_step(decisions, step.state.abnormal(), step.truth);
}

StepMetrics evaluate_step(FrameEngine& engine, const ScenarioStep& step) {
  // The generator's stream is contiguous (step k's previous snapshot is
  // step k-1's current one), so the engine's rolling state stays aligned
  // with the scenario; the first step primes the ring. A misaligned feed
  // (engine reused across generators, skipped steps) would silently score
  // decisions against the wrong truth, so the contract is enforced — this
  // path already pays an O(n) snapshot copy per step, the comparison is
  // noise against it.
  if (!engine.primed()) {
    (void)engine.observe(step.state.prev(), DeviceSet{});
  } else if (engine.state().curr().positions() != step.state.prev().positions()) {
    throw std::invalid_argument(
        "evaluate_step: engine state is not aligned with the step's previous "
        "snapshot (one engine per contiguous scenario stream)");
  }
  const std::optional<FrameEngine::Result> result =
      engine.observe(step.state.curr(), step.state.abnormal());
  return tally_step(result.has_value() ? result->decisions
                                       : std::vector<Decision>{},
                    step.state.abnormal(), step.truth);
}

void RunMetrics::add(const StepMetrics& m) {
  abnormal.add(static_cast<double>(m.abnormal));
  if (m.abnormal > 0) {
    const auto pct = [&](std::size_t c) {
      return 100.0 * static_cast<double>(c) / static_cast<double>(m.abnormal);
    };
    isolated_share.add(pct(m.isolated_thm5));
    massive6_share.add(pct(m.massive_thm6));
    unresolved_share.add(pct(m.unresolved_cor8));
    massive7_share.add(pct(m.massive_thm7));
    unresolved_ratio.add(m.unresolved_ratio());
  }
  if (m.truly_isolated > 0) missed_rate.add(m.missed_detection_rate());
  missed_total += m.missed_detection;
  truly_isolated_total += m.truly_isolated;
  motions_isolated.merge(m.motions_isolated);
  dense_motions_massive6.merge(m.dense_motions_massive6);
  collections_unresolved.merge(m.collections_unresolved);
  collections_massive7.merge(m.collections_massive7);
  budget_exhausted += m.budget_exhausted;
}

}  // namespace acn
