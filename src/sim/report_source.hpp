// Report-delivery simulation: flattens a materialized snapshot stream into
// the per-device QosReports the ingest pipeline consumes, with injectable
// delivery faults.
//
// The hostile layer (sim/hostile) perturbs WHAT is reported — claims drift,
// go missing, lie. This layer perturbs HOW reports travel: out-of-order
// delivery, retransmission storms, per-device stalls that buffer-and-burst,
// and outright source death. The two compose: any hostile family's observed
// stream can be re-delivered through any fault schedule, which is exactly
// what the ingest conformance test does (faults within the lateness budget
// must leave every Decision byte-identical) and what the fault-injection
// suite stresses past the budget.
//
// Determinism contract: the same (stream, faults, seed) triple produces the
// same delivery schedule bit-for-bit on any platform (all randomness flows
// through Rng). Bounded-displacement reorder is implemented as a stable
// sort over jittered slot keys, so every report's delivery position differs
// from its in-order position by at most `reorder_window` slots — the
// analytical handle that keeps a schedule inside a watermark budget:
// displacement stays under (allowed_lag - 1) * reports_per_interval / 2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/device_set.hpp"
#include "core/state.hpp"
#include "ingest/report.hpp"

namespace acn {

struct DeliveryFaults {
  /// Max slots a report may move from its in-order delivery position
  /// (0 = in-order).
  std::uint64_t reorder_window = 0;
  /// P{a report is retransmitted} — copies carry the SAME arrival_seq.
  double duplicate_rate = 0.0;
  /// Retransmissions per duplicated report.
  std::uint32_t duplicate_copies = 1;
  /// P{a device stalls at an interval boundary}: its reports for the next
  /// `stall_intervals` intervals buffer and burst out afterwards.
  double stall_rate = 0.0;
  std::uint64_t stall_intervals = 1;
  /// P{a device dies at an interval boundary}: all its reports from that
  /// interval on are dropped (the liveness tracker's workload).
  double kill_rate = 0.0;
  std::uint64_t seed = 1;
};

/// One interval of a materialized observed stream (what sim/hostile and
/// the conformance harness already produce).
struct ObservedInterval {
  Snapshot positions;  ///< every device's claim at k
  DeviceSet abnormal;  ///< devices whose a_k flag fires at k
};

/// Flattens intervals 1..stream.size() into a faulted delivery schedule.
/// In-order exactly-once is faults == DeliveryFaults{} (all zeros). Each
/// device emits one report per interval it is alive, arrival_seq == k
/// (per-device monotone by construction). `killed_from`, when non-null,
/// receives for every device the interval its source died at (UINT64_MAX
/// if it survived).
[[nodiscard]] std::vector<QosReport> delivery_schedule(
    const std::vector<ObservedInterval>& stream, const DeliveryFaults& faults,
    std::vector<std::uint64_t>* killed_from = nullptr);

}  // namespace acn
