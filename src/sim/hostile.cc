#include "sim/hostile.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/math.hpp"

namespace acn {

void HostileParams::validate() const {
  base.validate();
  if (churn.rate < 0.0 || churn.rate >= 1.0) {
    throw std::invalid_argument("HostileParams: churn.rate must be in [0, 1)");
  }
  if (churn.min_active > base.n) {
    throw std::invalid_argument("HostileParams: churn.min_active exceeds n");
  }
  if (reports.loss < 0.0 || reports.loss > 1.0 || reports.stale < 0.0 ||
      reports.stale > 1.0) {
    throw std::invalid_argument("HostileParams: report rates must be in [0, 1]");
  }
  if (drift.share < 0.0 || drift.share > 1.0 || drift.step_factor < 0.0) {
    throw std::invalid_argument("HostileParams: bad drift settings");
  }
  if (regional.outage_rate < 0.0 || regional.outage_rate > 1.0 ||
      regional.flash_rate < 0.0 || regional.flash_rate > 1.0) {
    throw std::invalid_argument("HostileParams: regional rates must be in [0, 1]");
  }
  if ((regional.outage_rate > 0.0 || regional.flash_rate > 0.0) &&
      (regional.outage_jitter <= 0.0 || regional.flash_jitter <= 0.0)) {
    throw std::invalid_argument("HostileParams: regional jitters must be > 0");
  }
  if (adversary.attack.has_value()) {
    if (adversary.colluders == 0 || adversary.colluders >= base.n / 2) {
      throw std::invalid_argument(
          "HostileParams: colluder block must be in [1, n/2)");
    }
    if (adversary.victim_crash_rate < 0.0 || adversary.victim_crash_rate > 1.0) {
      throw std::invalid_argument(
          "HostileParams: victim_crash_rate must be in [0, 1]");
    }
  }
}

HostileScenario::HostileScenario(HostileParams params)
    : params_(std::move(params)),
      scenario_(params_.base),
      rng_(params_.seed ^ 0x9E3779B97F4A7C15ULL),
      active_(params_.base.n, true),
      active_count_(params_.base.n) {
  params_.validate();
  const std::size_t n = params_.base.n;
  observed_ = scenario_.positions();
  colluder_mask_.assign(n, false);

  if (params_.adversary.attack.has_value()) {
    for (std::size_t i = 0; i < params_.adversary.colluders; ++i) {
      const auto id = static_cast<DeviceId>(n - 1 - i);
      colluders_.push_back(id);
      colluder_mask_[id] = true;
    }
    std::sort(colluders_.begin(), colluders_.end());
    if (*params_.adversary.attack != TrajectoryAttack::kScatterChaff) {
      victim_ = static_cast<DeviceId>(n - params_.adversary.colluders - 1);
    }
    shaper_.emplace(TrajectoryShaper::Config{
        .strategy = *params_.adversary.attack,
        .colluders = colluders_,
        .model = params_.base.model,
        .claim_jitter = params_.adversary.claim_jitter,
        .chain_spacing = params_.adversary.chain_spacing,
        .seed = params_.seed ^ 0xA55A55A5A55A55A5ULL});
  }

  if (params_.regional.outage_rate > 0.0 || params_.regional.flash_rate > 0.0) {
    TopologyConfig tc = params_.regional.topology;
    tc.services = params_.base.d;
    const std::size_t aggregations = tc.regions * tc.aggregations_per_region;
    tc.gateways_per_aggregation = std::max<std::size_t>(1, n / aggregations);
    topo_.emplace(tc);
  }

  if (params_.drift.share > 0.0 && params_.drift.step_factor > 0.0) {
    drift_velocity_.assign(n, Point());
    const auto drifter_count = static_cast<std::uint32_t>(
        params_.drift.share * static_cast<double>(n));
    const auto drifters = rng_.sample_without_replacement(
        static_cast<std::uint32_t>(n), drifter_count);
    const double step = params_.drift.step_factor * params_.base.model.r;
    std::vector<double> velocity(params_.base.d);
    for (const auto j : drifters) {
      if (is_protected(j)) continue;
      for (auto& v : velocity) v = rng_.uniform(-step, step);
      drift_velocity_[j] = Point(std::span<const double>(velocity));
    }
  }
}

bool HostileScenario::is_protected(DeviceId j) const noexcept {
  return colluder_mask_[j] || (victim_.has_value() && j == *victim_);
}

Point HostileScenario::random_point() {
  std::vector<double> coords(params_.base.d);
  for (auto& x : coords) x = rng_.uniform();
  return Point(std::span<const double>(coords));
}

Point HostileScenario::jittered(const Point& centre, double amplitude) {
  Point out = centre;
  for (std::size_t i = 0; i < out.dim(); ++i) {
    out[i] = clamp(out[i] + rng_.uniform(-amplitude, amplitude), 0.0, 1.0);
  }
  return out;
}

void HostileScenario::run_churn() {
  const std::size_t n = params_.base.n;
  const std::size_t floor =
      params_.churn.min_active != 0 ? params_.churn.min_active : n / 2;

  const double want = params_.churn.rate * static_cast<double>(n);
  std::size_t count = static_cast<std::size_t>(want);
  if (rng_.bernoulli(want - static_cast<double>(count))) ++count;
  if (count == 0) return;

  // Devices parked in EARLIER intervals (a gateway does not bounce within
  // one interval), re-admitted after this interval's retirements.
  std::vector<DeviceId> parked;
  std::vector<DeviceId> candidates;
  for (DeviceId j = 0; j < n; ++j) {
    if (!active_[j]) {
      parked.push_back(j);
    } else if (!is_protected(j)) {
      candidates.push_back(j);
    }
  }

  std::size_t retire =
      std::min(count, active_count_ > floor ? active_count_ - floor : 0);
  retire = std::min(retire, candidates.size());
  if (retire > 0) {
    rng_.shuffle(candidates);
    for (std::size_t i = 0; i < retire; ++i) {
      active_[candidates[i]] = false;
      --active_count_;
    }
  }

  const std::size_t admit = std::min(count, parked.size());
  if (admit > 0) {
    rng_.shuffle(parked);
    for (std::size_t i = 0; i < admit; ++i) {
      active_[parked[i]] = true;
      ++active_count_;
      just_admitted_.push_back(parked[i]);
    }
  }
}

std::vector<DeviceId> HostileScenario::draw_regional_members(
    bool outage, const std::vector<bool>& taken) {
  const std::vector<DeviceId> raw =
      outage ? topo_->gateways_under_aggregation(static_cast<std::size_t>(
                   rng_.uniform_int(topo_->aggregation_count())))
             : topo_->gateways_under_region(static_cast<std::size_t>(
                   rng_.uniform_int(topo_->config().regions)));
  std::vector<DeviceId> members;
  for (const DeviceId j : raw) {
    if (j < params_.base.n && active_[j] && !taken[j] && !is_protected(j)) {
      members.push_back(j);
    }
  }
  return members;
}

HostileStep HostileScenario::advance() {
  const std::size_t n = params_.base.n;

  // 1. Churn: park retirees, re-admit from the parked pool.
  just_admitted_.clear();
  if (params_.churn.rate > 0.0) run_churn();

  // 2. Regional events of this interval (members drawn now so the base
  //    workload can be masked away from them; displaced after the advance).
  std::vector<bool> taken(n, false);
  std::vector<std::pair<std::vector<DeviceId>, bool>> regionals;
  if (topo_.has_value()) {
    if (params_.regional.outage_rate > 0.0 &&
        rng_.bernoulli(params_.regional.outage_rate)) {
      std::vector<DeviceId> members = draw_regional_members(true, taken);
      if (members.size() >= 2) {
        for (const DeviceId j : members) taken[j] = true;
        regionals.emplace_back(std::move(members), true);
      }
    }
    if (params_.regional.flash_rate > 0.0 &&
        rng_.bernoulli(params_.regional.flash_rate)) {
      std::vector<DeviceId> members = draw_regional_members(false, taken);
      if (members.size() >= 2) {
        for (const DeviceId j : members) taken[j] = true;
        regionals.emplace_back(std::move(members), false);
      }
    }
  }

  // 3. Eligibility mask for the clean workload underneath: parked devices,
  //    this interval's re-admissions and regional victims, the colluder
  //    block, and the designated victim are all off-limits. With every
  //    layer off the mask stays empty and the clean stream is bit-identical.
  const bool need_mask = active_count_ < n || !just_admitted_.empty() ||
                         !regionals.empty() || !colluders_.empty() ||
                         victim_.has_value();
  if (need_mask) {
    std::vector<bool> eligible = active_;
    for (const DeviceId j : just_admitted_) eligible[j] = false;
    for (const auto& [members, outage] : regionals) {
      for (const DeviceId j : members) eligible[j] = false;
    }
    for (const DeviceId c : colluders_) eligible[c] = false;
    if (victim_.has_value()) eligible[*victim_] = false;
    scenario_.set_active(std::move(eligible));
  } else {
    scenario_.set_active({});
  }

  // 4. The clean §VII-A advance over the eligible devices.
  ScenarioStep step = scenario_.advance();
  StepTruth truth = std::move(step.truth);

  // 5. Baseline drift: fixed-velocity wander of untouched active devices,
  //    reflecting off the box walls. Drifters are never abnormal.
  if (!drift_velocity_.empty()) {
    for (DeviceId j = 0; j < n; ++j) {
      Point& velocity = drift_velocity_[j];
      if (velocity.dim() == 0 || !active_[j] || taken[j]) continue;
      if (truth.abnormal.contains(j)) continue;  // R1: moved once already
      Point p = scenario_.positions()[j];
      for (std::size_t i = 0; i < p.dim(); ++i) {
        double x = p[i] + velocity[i];
        if (x < 0.0 || x > 1.0) {
          velocity[i] = -velocity[i];
          x = clamp(p[i] + velocity[i], 0.0, 1.0);
        }
        p[i] = x;
      }
      scenario_.displace(j, p);
    }
  }

  // 6. Regional displacement + truth merge: members converge on a common
  //    degraded (outage) or congestion (flash crowd) point.
  for (const auto& [members, outage] : regionals) {
    const Point target = random_point();
    const double amplitude =
        (outage ? params_.regional.outage_jitter : params_.regional.flash_jitter) *
        params_.base.model.r;
    for (const DeviceId j : members) {
      scenario_.displace(j, jittered(target, amplitude));
    }
    ErrorEvent event;
    event.devices = DeviceSet(members);
    event.massive = event.devices.size() > params_.base.model.tau;
    truth.abnormal = truth.abnormal.set_union(event.devices);
    if (event.massive) {
      truth.truly_massive = truth.truly_massive.set_union(event.devices);
    } else {
      truth.truly_isolated = truth.truly_isolated.set_union(event.devices);
    }
    truth.events.push_back(std::move(event));
  }

  // 7. The designated victim's genuinely isolated crash (targeted attacks).
  bool victim_crashed = false;
  if (victim_.has_value() &&
      rng_.bernoulli(params_.adversary.victim_crash_rate)) {
    victim_crashed = true;
    scenario_.displace(*victim_, random_point());
    ErrorEvent event;
    event.devices = DeviceSet::singleton(*victim_);
    event.massive = false;
    truth.abnormal = truth.abnormal.with(*victim_);
    truth.truly_isolated = truth.truly_isolated.with(*victim_);
    truth.events.push_back(std::move(event));
  }

  // 8. Re-admission respawn: the slot-splice jump from the parked position
  //    to a fresh one. Masked out of A_k this interval by construction.
  for (const DeviceId j : just_admitted_) scenario_.displace(j, random_point());

  // 9. Observed assembly. Honest devices report their true position;
  //    colluder claims persist until the shaper moves them; lost and stale
  //    reports replay the previous claim.
  const std::vector<Point>& real = scenario_.positions();
  std::vector<Point> observed = observed_;
  for (DeviceId j = 0; j < n; ++j) {
    if (!colluder_mask_[j]) observed[j] = real[j];
  }

  std::vector<DeviceId> flagged;
  std::vector<DeviceId> suppressed;
  std::vector<DeviceId> next_late;
  for (const DeviceId j : pending_late_) {
    if (active_[j]) flagged.push_back(j);  // the late-delivered a_k flags
  }
  bool victim_visible = false;
  for (const DeviceId j : truth.abnormal) {
    if (params_.reports.loss > 0.0 && rng_.bernoulli(params_.reports.loss)) {
      observed[j] = observed_[j];
      suppressed.push_back(j);
    } else if (params_.reports.stale > 0.0 &&
               rng_.bernoulli(params_.reports.stale)) {
      observed[j] = observed_[j];
      suppressed.push_back(j);
      next_late.push_back(j);
    } else {
      flagged.push_back(j);
      if (victim_.has_value() && j == *victim_) victim_visible = true;
    }
  }

  // 10. Adversary shaping over the assembled claims (colluders track the
  //     victim's *observed* position, exactly what a real collusion sees).
  std::vector<DeviceId> fabricated;
  if (shaper_.has_value()) {
    fabricated =
        shaper_->shape(victim_, victim_crashed && victim_visible, observed);
    flagged.insert(flagged.end(), fabricated.begin(), fabricated.end());
  }

  DeviceSet abnormal{std::move(flagged)};
  observed_ = observed;
  pending_late_ = std::move(next_late);
  ++steps_;
  return HostileStep{Snapshot(std::move(observed)), std::move(abnormal),
                     std::move(truth), DeviceSet(std::move(fabricated)),
                     DeviceSet(std::move(suppressed)), active_count_};
}

std::vector<HostileSpec> standard_hostile_suite(std::size_t n,
                                                std::uint64_t seed) {
  const auto make = [&](std::string name, std::string violates,
                        std::uint64_t salt) {
    HostileSpec spec;
    spec.name = std::move(name);
    spec.violates = std::move(violates);
    spec.params.base.n = n;
    spec.params.base.errors_per_step =
        static_cast<std::uint32_t>(std::max<std::size_t>(4, n / 50));
    spec.params.base.seed = seed + salt;
    spec.params.seed = seed * 0x10001ULL + salt;
    return spec;
  };
  const std::size_t tau = ScenarioParams{}.model.tau;

  std::vector<HostileSpec> suite;

  suite.push_back(make(
      "clean-control",
      "nothing — the unperturbed workload, pinning the accuracy baseline", 1));

  {
    HostileSpec s = make(
        "churn",
        "fixed device universe (stable S_k membership between snapshots)", 2);
    s.params.churn.rate = 0.02;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "report-loss",
        "reliable per-interval reporting (every device's report reaches the "
        "monitor)",
        3);
    s.params.reports.loss = 0.35;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "stale-reports",
        "snapshot-boundary ordering (reports of interval k arrive at k)", 4);
    s.params.reports.stale = 0.35;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "baseline-drift",
        "stationary QoS between errors (only impacted devices move)", 5);
    s.params.drift.share = 0.35;
    s.params.drift.step_factor = 0.4;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "regional-outage",
        "common group displacement R2 (a massive event moves its victims "
        "together)",
        6);
    s.params.regional.outage_rate = 0.6;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "flash-crowd",
        "error-ball locality (an event's victims start co-located in QoS "
        "space)",
        7);
    s.params.regional.flash_rate = 0.6;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "shadow-crowd",
        "honest trajectory claims (no collusion fabricating dense motions)", 8);
    s.params.adversary.attack = TrajectoryAttack::kShadowCrowd;
    s.params.adversary.colluders = tau + 2;
    s.params.adversary.victim_crash_rate = 0.6;
    s.params.adversary.claim_jitter = 0.3;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "superposition-bomb",
        "bounded motion superposition (Corollary 8's budget is adequate)", 9);
    s.params.adversary.attack = TrajectoryAttack::kSuperpositionBomb;
    s.params.adversary.colluders = 3 * tau;
    s.params.adversary.victim_crash_rate = 0.6;
    s.params.adversary.claim_jitter = 0.15;
    s.params.adversary.chain_spacing = 0.75;
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "scatter-chaff",
        "truthful a_k flags (abnormality reports match real QoS deviations)",
        10);
    s.params.adversary.attack = TrajectoryAttack::kScatterChaff;
    s.params.adversary.colluders = std::max<std::size_t>(8, n / 32);
    suite.push_back(std::move(s));
  }
  {
    HostileSpec s = make(
        "combined-stress",
        "all of the above at once: churn + loss + staleness + drift + "
        "regional outages",
        11);
    s.params.churn.rate = 0.01;
    s.params.reports.loss = 0.15;
    s.params.reports.stale = 0.1;
    s.params.drift.share = 0.25;
    s.params.drift.step_factor = 0.3;
    s.params.regional.outage_rate = 0.3;
    suite.push_back(std::move(s));
  }
  return suite;
}

}  // namespace acn
