// The evaluation workload of §VII-A, reproduced parameter for parameter.
//
// "The initial distribution of the devices in E follows a uniform
//  distribution [...]. A number A of points with A in [[1, 80]] are randomly
//  chosen in S_{k-1}. Then, for each chosen point j, with probability G less
//  than tau points are randomly chosen in a ball of radius r centered at j,
//  and with probability 1-G, t points are randomly chosen in a ball of
//  radius r centered at j, with t varying from tau to the number of points
//  in this ball. [...] all these chosen points are moved to another location
//  uniformly chosen in E, and a_k is set to True."
//
// Restrictions R1-R3 of §III-C are honoured by construction:
//   R1 - a device is impacted by at most one error per interval (impacted
//        devices are excluded from later draws of the same step);
//   R2 - all members of a group undergo the *same* displacement, so a group
//        r-consistent at k-1 (it sits in a ball of radius r) stays
//        r-consistent at k; the common target is drawn uniformly among the
//        positions keeping the whole group inside E;
//   R3 - optional (`enforce_r3`): isolated groups are re-placed until they
//        are farther than 2r (joint distance) from every other impacted
//        group, so they can never take part in a tau-dense motion. Figures
//        8 and 9 of the paper study exactly the `enforce_r3 = false` mode.
#pragma once

#include <cstdint>
#include <vector>

#include "common/device_set.hpp"
#include "common/rng.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

struct ScenarioParams {
  std::size_t n = 1000;   ///< number of monitored devices
  std::size_t d = 2;      ///< services per device (paper: 2)
  Params model;           ///< r and tau (paper: r = 0.03, tau = 3)
  std::uint32_t errors_per_step = 20;  ///< A: errors per interval [k-1, k]
  double isolated_probability = 0.5;   ///< G: P{an error is isolated}
  /// R1 is structural (a device cannot move to two places at once): anchors
  /// already impacted this step are skipped. R3 alone is switchable.
  bool enforce_r3 = true;
  /// Re-placement attempts per isolated group before the error is dropped
  /// (only with enforce_r3; drops are counted, never silent).
  int r3_retry_limit = 128;
  /// Concomitant errors (§VII-C: "decreasing accordingly the number of
  /// concomitant errors and thus the number of unresolved configurations"):
  /// probability that an error of the interval belongs to the interval's
  /// *concomitance regime* — one underlying network condition manifesting
  /// as several distinct errors that originate in a common region of the
  /// QoS space and degrade it toward a common operating point. Concomitant
  /// errors superpose in the joint space, which is what creates unresolved
  /// configurations; with a single error per interval the regime is empty,
  /// matching the paper's observation that A = 1 yields |U_k| = 0. The
  /// §VII-A text does not specify the superposition mechanism; this knob is
  /// calibrated against Table II in EXPERIMENTS.md. 0 = fully independent
  /// errors (the literal reading).
  double concomitance = 0.0;
  /// Concomitant anchors are drawn among devices within this multiple of 2r
  /// of the regime's origin centre.
  double concomitance_origin_factor = 3.0;
  /// Concomitant targets land within this multiple of 2r of the regime's
  /// target centre.
  double concomitance_target_factor = 2.0;
  /// Error impact ball radius = ball_radius_factor * r. The literal §VII-A
  /// reading is 1.0; but restriction R3's phrasing ("impacted by an error
  /// that has impacted many other devices — not necessarily those following
  /// the same motion") requires errors whose impact set spans more than one
  /// motion, i.e. a ball wider than r. The calibrated profile (see
  /// EXPERIMENTS.md) uses 2.0, which also matches the paper's vicinity
  /// definition V = {x : ||x - p(j)|| <= 2r} from the dimensioning analysis.
  double ball_radius_factor = 1.0;
  /// Cap on the extra members of a massive group (t <= tau + cap). The
  /// paper draws t up to the whole ball; with wide balls that overshoots the
  /// reported |A_k| (~95.7 at A = 20), so the calibrated profile caps it.
  std::uint32_t max_massive_extra = UINT32_MAX;
  /// Re-draw attempts for a massive error whose anchor ball holds fewer
  /// than tau other devices (a network error hits a populated region by
  /// nature — a router serves many customers). 0 = literal §VII-A reading:
  /// an underfull massive error simply impacts everyone in the ball.
  std::uint32_t massive_anchor_retries = 0;
  std::uint64_t seed = 1;

  /// The calibrated profile reproducing the paper's Table II levels; see
  /// EXPERIMENTS.md for the calibration ladder.
  void apply_calibrated_profile() {
    concomitance = 0.3;
    ball_radius_factor = 1.0;
    max_massive_extra = 4;
    massive_anchor_retries = 16;
  }

  void validate() const;
};

/// Ground-truth record of one injected error (the paper's R_k).
struct ErrorEvent {
  DeviceSet devices;
  /// An error is massive iff it impacted more than tau devices (§III-C).
  bool massive = false;
};

/// Ground truth for one interval [k-1, k].
struct StepTruth {
  std::vector<ErrorEvent> events;
  DeviceSet abnormal;        ///< A_k = union of impacted devices
  DeviceSet truly_isolated;  ///< I_{R_k}
  DeviceSet truly_massive;   ///< M_{R_k}
  std::uint32_t dropped_errors = 0;  ///< R3 placement failures (rare)
};

/// One generated interval, ready for characterization.
struct ScenarioStep {
  StatePair state;
  StepTruth truth;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioParams params);

  /// Advances the system by one snapshot interval and returns (S_{k-1}, S_k,
  /// A_k) plus the real error scenario R_k.
  [[nodiscard]] ScenarioStep advance();

  /// Same, with this interval's error count overriding errors_per_step
  /// (used by the adaptive-sampling studies: a monitor sampling twice as
  /// fast sees half the errors per interval). `errors` may be 0.
  [[nodiscard]] ScenarioStep advance(std::uint32_t errors);

  /// Current device positions (S_k after the last advance, S_0 initially).
  [[nodiscard]] const std::vector<Point>& positions() const noexcept {
    return positions_;
  }

  /// Hostile-layer hook (sim/hostile): restricts error injection to devices
  /// flagged active — anchors, ball members, and concomitance-regime draws
  /// all skip inactive devices, so a churned-out device can never be
  /// impacted. `active` must have size n (or be empty, resetting to
  /// everyone-active, the default). The clean §VII-A stream is bit-for-bit
  /// unchanged while no mask is installed.
  void set_active(std::vector<bool> active);

  /// Hostile-layer hook (sim/hostile): externally repositions device j —
  /// baseline drift, churn re-entry, topology-correlated events. The
  /// displacement becomes part of the NEXT advance()'s interval; the caller
  /// owns the ground truth of the resulting trajectory. Throws
  /// std::invalid_argument on a bad id, a dimension mismatch, or a position
  /// outside [0,1]^d.
  void displace(DeviceId j, const Point& position);

  [[nodiscard]] const ScenarioParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t step_count() const noexcept { return steps_; }

 private:
  struct PlacedGroup {
    std::vector<DeviceId> members;
    bool isolated = false;
  };

  /// Devices within chebyshev distance `radius` of `centre` at the current
  /// positions, excluding already-used devices.
  [[nodiscard]] std::vector<DeviceId> ball_members(DeviceId centre, double radius,
                                                   const std::vector<bool>& used) const;

  /// Draws the common displacement for a group so every member stays in E;
  /// when `attractor` is non-null, biases the anchor's target near it
  /// (within `reach` per dimension).
  [[nodiscard]] std::vector<double> draw_feasible_displacement(
      const std::vector<DeviceId>& group, const Point* attractor, double reach);

  /// Joint separation test between a tentatively moved group and all placed
  /// groups (R3): true when every cross pair is farther than 2r at k-1 or k.
  [[nodiscard]] bool separated_from_all(
      const std::vector<DeviceId>& group,
      const std::vector<std::vector<double>>& tentative_curr,
      const std::vector<PlacedGroup>& placed,
      const std::vector<Point>& prev,
      const std::vector<Point>& curr) const;

  /// True while no mask is installed or the device is flagged active.
  [[nodiscard]] bool is_active(DeviceId j) const noexcept {
    return active_.empty() || active_[j];
  }

  ScenarioParams params_;
  Rng rng_;
  std::vector<Point> positions_;
  std::vector<bool> active_;          ///< empty = everyone active
  std::vector<DeviceId> active_ids_;  ///< cached ids of the installed mask
  std::uint64_t steps_ = 0;
};

}  // namespace acn
