// Evaluation metrics of §VII: repartition of A_k across I_k / M_k / U_k with
// the deciding theorem (Table II), per-class computational cost (Table III),
// the unresolved ratio |U_k|/|A_k| (Figures 7 and 9), and the
// missed-detection rate against ground truth (Figure 8).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/stats.hpp"
#include "core/characterizer.hpp"
#include "core/frame.hpp"
#include "sim/scenario.hpp"

namespace acn {

/// num/den, or nullopt when the denominator is zero: a precision or recall
/// over an empty class is UNDEFINED — reporting it as 1.0 hides a scenario
/// that produced no positives at all, and dividing would make a NaN that
/// poisons downstream aggregation and is not even valid JSON.
[[nodiscard]] std::optional<double> safe_ratio(std::uint64_t num,
                                               std::uint64_t den) noexcept;

/// JSON rendering of a safe_ratio: "%.4f" (after scaling) or the literal
/// null. Emitters embed this verbatim as the field value.
[[nodiscard]] std::string json_ratio(std::optional<double> ratio,
                                     double scale = 1.0);

/// Table rendering of a safe_ratio: fmt(scale * r, precision) or "n/a".
[[nodiscard]] std::string fmt_ratio(std::optional<double> ratio,
                                    int precision = 3, double scale = 1.0);

/// Outcome of characterizing every device of one generated step.
struct StepMetrics {
  std::size_t abnormal = 0;

  // Repartition by deciding rule (Table II columns).
  std::size_t isolated_thm5 = 0;     ///< I_k via Theorem 5
  std::size_t massive_thm6 = 0;      ///< M_k via Theorem 6
  std::size_t unresolved_cor8 = 0;   ///< U_k via Corollary 8
  std::size_t massive_thm7 = 0;      ///< M_k that only Theorem 7 catches
  std::size_t budget_exhausted = 0;  ///< should stay 0 at paper scale

  // Cost accounting (Table III columns).
  RunningStat motions_isolated;        ///< |M(j)| over j in I_k
  RunningStat dense_motions_massive6;  ///< |W-bar(j)| over Theorem-6 devices
  RunningStat collections_unresolved;  ///< search nodes over Corollary-8 devices
  RunningStat collections_massive7;    ///< search nodes over Theorem-7 devices

  // Ground-truth comparison (Figure 8).
  std::size_t truly_isolated = 0;
  std::size_t missed_detection = 0;  ///< truly isolated but classified massive

  [[nodiscard]] double unresolved_ratio() const noexcept {
    return abnormal == 0 ? 0.0
                         : static_cast<double>(unresolved_cor8) /
                               static_cast<double>(abnormal);
  }
  [[nodiscard]] double missed_detection_rate() const noexcept {
    return truly_isolated == 0 ? 0.0
                               : static_cast<double>(missed_detection) /
                                     static_cast<double>(truly_isolated);
  }
};

/// Tallies one interval's decisions (A_k ascending order) against the
/// ground truth — the shared bookkeeping of both evaluation paths below.
[[nodiscard]] StepMetrics tally_step(const std::vector<Decision>& decisions,
                                     const DeviceSet& abnormal,
                                     const StepTruth& truth);

/// Characterizes all abnormal devices of `step` from scratch (under model
/// parameters `model`, normally ScenarioParams::model) and tallies the
/// metrics. `threads` selects the characterization fan-out (1 = serial, 0 =
/// hardware concurrency); the tallied decisions are identical for any value.
[[nodiscard]] StepMetrics evaluate_step(const ScenarioStep& step, Params model,
                                        const CharacterizeOptions& options = {},
                                        unsigned threads = 1);

/// Streams `step` through the incremental engine (priming it with the
/// step's previous snapshot on first use) and tallies the same metrics.
/// Decisions are byte-identical to evaluate_step; per-interval cost is the
/// engine's locality-bounded update instead of a from-scratch rebuild.
[[nodiscard]] StepMetrics evaluate_step(FrameEngine& engine,
                                        const ScenarioStep& step);

/// Aggregates step metrics across a run (means weighted per step).
struct RunMetrics {
  RunningStat abnormal;
  RunningStat isolated_share;    ///< |I_k| / |A_k| in percent
  RunningStat massive6_share;    ///< Theorem-6 share in percent
  RunningStat unresolved_share;  ///< Corollary-8 share in percent
  RunningStat massive7_share;    ///< Theorem-7 extra share in percent
  RunningStat unresolved_ratio;  ///< |U_k| / |A_k|
  RunningStat missed_rate;       ///< per-step missed / truly isolated
  // Pooled counters: per-step ratios are noisy when a step has only one or
  // two truly isolated devices (the G -> 0 regime of Figure 8).
  std::uint64_t missed_total = 0;
  std::uint64_t truly_isolated_total = 0;

  /// Pooled missed-detection rate across all steps.
  [[nodiscard]] double pooled_missed_rate() const noexcept {
    return truly_isolated_total == 0
               ? 0.0
               : static_cast<double>(missed_total) /
                     static_cast<double>(truly_isolated_total);
  }
  RunningStat motions_isolated;
  RunningStat dense_motions_massive6;
  RunningStat collections_unresolved;
  RunningStat collections_massive7;
  std::uint64_t budget_exhausted = 0;

  void add(const StepMetrics& m);
};

}  // namespace acn
