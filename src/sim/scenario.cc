#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acn {

void ScenarioParams::validate() const {
  model.validate();
  if (n < 2) throw std::invalid_argument("ScenarioParams: n must be >= 2");
  if (d == 0 || d > Point::kMaxDim / 2) {
    throw std::invalid_argument("ScenarioParams: d out of range");
  }
  if (errors_per_step == 0) {
    throw std::invalid_argument("ScenarioParams: errors_per_step must be >= 1");
  }
  if (isolated_probability < 0.0 || isolated_probability > 1.0) {
    throw std::invalid_argument("ScenarioParams: G must be in [0, 1]");
  }
  if (r3_retry_limit < 1) {
    throw std::invalid_argument("ScenarioParams: r3_retry_limit must be >= 1");
  }
  if (concomitance < 0.0 || concomitance > 1.0) {
    throw std::invalid_argument("ScenarioParams: concomitance must be in [0, 1]");
  }
  if (concomitance_origin_factor <= 0.0 || concomitance_target_factor <= 0.0) {
    throw std::invalid_argument("ScenarioParams: concomitance factors must be > 0");
  }
  if (ball_radius_factor <= 0.0) {
    throw std::invalid_argument("ScenarioParams: ball_radius_factor must be > 0");
  }
}

ScenarioGenerator::ScenarioGenerator(ScenarioParams params)
    : params_(params), rng_(params.seed) {
  params_.validate();
  positions_.reserve(params_.n);
  std::vector<double> coords(params_.d);
  for (std::size_t j = 0; j < params_.n; ++j) {
    for (auto& x : coords) x = rng_.uniform();
    positions_.emplace_back(std::span<const double>(coords));
  }
}

void ScenarioGenerator::set_active(std::vector<bool> active) {
  if (!active.empty() && active.size() != params_.n) {
    throw std::invalid_argument(
        "ScenarioGenerator::set_active: mask size must be n (or 0 to reset)");
  }
  active_ = std::move(active);
  active_ids_.clear();
  for (DeviceId j = 0; j < active_.size(); ++j) {
    if (active_[j]) active_ids_.push_back(j);
  }
}

void ScenarioGenerator::displace(DeviceId j, const Point& position) {
  if (j >= params_.n) {
    throw std::invalid_argument("ScenarioGenerator::displace: unknown device");
  }
  if (position.dim() != params_.d) {
    throw std::invalid_argument("ScenarioGenerator::displace: dimension mismatch");
  }
  if (!position.in_unit_box()) {
    throw std::invalid_argument(
        "ScenarioGenerator::displace: position outside [0,1]^d");
  }
  positions_[j] = position;
}

std::vector<DeviceId> ScenarioGenerator::ball_members(
    DeviceId centre, double radius, const std::vector<bool>& used) const {
  std::vector<DeviceId> members;
  const Point& c = positions_[centre];
  for (DeviceId j = 0; j < params_.n; ++j) {
    if (j == centre || used[j] || !is_active(j)) continue;
    if (chebyshev(positions_[j], c) <= radius) members.push_back(j);
  }
  return members;
}

std::vector<double> ScenarioGenerator::draw_feasible_displacement(
    const std::vector<DeviceId>& group, const Point* attractor, double reach) {
  // Per dimension, delta must keep [min, max] of the group inside [0, 1].
  std::vector<double> delta(params_.d);
  for (std::size_t i = 0; i < params_.d; ++i) {
    double lo = 1.0;
    double hi = 0.0;
    for (const DeviceId j : group) {
      lo = std::min(lo, positions_[j][i]);
      hi = std::max(hi, positions_[j][i]);
    }
    if (attractor == nullptr) {
      delta[i] = rng_.uniform(-lo, 1.0 - hi);
    } else {
      // Pull the anchor's target near the attractor, staying feasible.
      const double wanted =
          (*attractor)[i] + rng_.uniform(-reach, reach) - positions_[group[0]][i];
      delta[i] = std::clamp(wanted, -lo, 1.0 - hi);
    }
  }
  return delta;
}

bool ScenarioGenerator::separated_from_all(
    const std::vector<DeviceId>& group,
    const std::vector<std::vector<double>>& tentative_curr,
    const std::vector<PlacedGroup>& placed, const std::vector<Point>& prev,
    const std::vector<Point>& curr) const {
  const double window = params_.model.window();
  for (const PlacedGroup& other : placed) {
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      for (const DeviceId b : other.members) {
        // Joint distance = max of the distances at k-1 and k.
        double prev_dist = chebyshev(prev[group[gi]], prev[b]);
        double curr_dist = 0.0;
        for (std::size_t i = 0; i < params_.d; ++i) {
          curr_dist = std::max(curr_dist,
                               std::fabs(tentative_curr[gi][i] - curr[b][i]));
        }
        if (std::max(prev_dist, curr_dist) <= window) return false;
      }
    }
  }
  return true;
}

ScenarioStep ScenarioGenerator::advance() {
  return advance(params_.errors_per_step);
}

ScenarioStep ScenarioGenerator::advance(std::uint32_t errors) {
  const std::vector<Point> prev = positions_;
  std::vector<Point> curr = positions_;
  std::vector<bool> used(params_.n, false);

  StepTruth truth;
  std::vector<PlacedGroup> placed;

  // The interval's concomitance regime: one underlying network condition
  // with an origin region (where the concomitant errors strike) and a
  // target operating point (towards which they degrade the QoS).
  std::vector<double> regime_coords(params_.d);
  for (auto& x : regime_coords) x = rng_.uniform();
  const Point regime_origin{std::span<const double>(regime_coords)};
  for (auto& x : regime_coords) x = rng_.uniform();
  const Point regime_target{std::span<const double>(regime_coords)};
  const double origin_reach = params_.concomitance_origin_factor * params_.model.window();
  const double target_reach = params_.concomitance_target_factor * params_.model.window();

  // Any-active-device fallback draw (uniform over the whole fleet while no
  // churn mask is installed, keeping the clean stream bit-identical).
  const auto draw_any_anchor = [&]() -> DeviceId {
    if (active_.empty()) return static_cast<DeviceId>(rng_.uniform_int(params_.n));
    return active_ids_[rng_.uniform_int(active_ids_.size())];
  };

  // Picks an unused active device near the regime origin (fallback: any).
  const auto draw_regime_anchor = [&]() -> DeviceId {
    std::vector<DeviceId> region;
    for (DeviceId j = 0; j < params_.n; ++j) {
      if (!used[j] && is_active(j) &&
          chebyshev(positions_[j], regime_origin) <= origin_reach) {
        region.push_back(j);
      }
    }
    if (region.empty()) return draw_any_anchor();
    return region[rng_.uniform_int(region.size())];
  };

  // Anchors are drawn over the whole fleet while no mask is installed (the
  // historical stream) and over the active ids under churn.
  const auto eligible =
      active_.empty() ? params_.n : active_ids_.size();
  const auto anchor_count =
      static_cast<std::uint32_t>(std::min<std::size_t>(errors, eligible));
  auto anchors = rng_.sample_without_replacement(
      static_cast<std::uint32_t>(eligible), anchor_count);
  if (!active_.empty()) {
    for (auto& anchor : anchors) anchor = active_ids_[anchor];
  }

  // Massive errors are placed first so isolated groups (placed second) can be
  // separation-tested against every other group — that is what R3 demands.
  std::vector<DeviceId> isolated_anchors;
  std::vector<DeviceId> massive_anchors;
  for (const DeviceId anchor : anchors) {
    if (rng_.bernoulli(params_.isolated_probability)) {
      isolated_anchors.push_back(anchor);
    } else {
      massive_anchors.push_back(anchor);
    }
  }

  const auto build_group = [&](DeviceId anchor, bool isolated) {
    std::vector<DeviceId> group = {anchor};
    std::vector<DeviceId> ball = ball_members(
        anchor, params_.ball_radius_factor * params_.model.r, used);
    rng_.shuffle(ball);
    std::size_t extra = 0;
    if (isolated) {
      // Group size <= tau: anchor plus up to tau-1 ball members.
      const std::size_t cap = std::min<std::size_t>(params_.model.tau - 1, ball.size());
      extra = cap == 0 ? 0 : static_cast<std::size_t>(rng_.uniform_int(cap + 1));
    } else if (!ball.empty()) {
      // Group size > tau where the ball allows it: t in [tau, hi].
      const std::size_t lo = std::min<std::size_t>(params_.model.tau, ball.size());
      const std::size_t hi = std::min<std::size_t>(
          ball.size(), static_cast<std::size_t>(params_.model.tau) +
                           static_cast<std::size_t>(params_.max_massive_extra));
      extra = lo + static_cast<std::size_t>(rng_.uniform_int(hi - lo + 1));
    }
    group.insert(group.end(), ball.begin(), ball.begin() + extra);
    return group;
  };

  const auto place_group = [&](DeviceId anchor, bool isolated, bool concomitant) {
    if (used[anchor]) return;  // R1: one error per device per interval
    std::vector<DeviceId> group = build_group(anchor, isolated);

    const Point* attractor = concomitant ? &regime_target : nullptr;

    const int attempts = params_.enforce_r3 && isolated ? params_.r3_retry_limit : 1;
    std::vector<std::vector<double>> tentative(group.size(),
                                               std::vector<double>(params_.d));
    bool ok = false;
    for (int attempt = 0; attempt < attempts && !ok; ++attempt) {
      // An isolated group that must honour R3 abandons the regime once
      // re-draws are needed (separation beats concomitance).
      const std::vector<double> delta = draw_feasible_displacement(
          group, attempt == 0 ? attractor : nullptr, target_reach);
      for (std::size_t gi = 0; gi < group.size(); ++gi) {
        for (std::size_t i = 0; i < params_.d; ++i) {
          tentative[gi][i] = positions_[group[gi]][i] + delta[i];
        }
      }
      ok = !params_.enforce_r3 || !isolated ||
           separated_from_all(group, tentative, placed, prev, curr);
    }
    if (!ok) {
      ++truth.dropped_errors;
      return;
    }

    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      curr[group[gi]] = Point(std::span<const double>(tentative[gi]));
      used[group[gi]] = true;
    }
    ErrorEvent event;
    event.devices = DeviceSet(group);
    event.massive = event.devices.size() > params_.model.tau;
    truth.abnormal = truth.abnormal.set_union(event.devices);
    if (event.massive) {
      truth.truly_massive = truth.truly_massive.set_union(event.devices);
    } else {
      truth.truly_isolated = truth.truly_isolated.set_union(event.devices);
    }
    placed.push_back(PlacedGroup{std::move(group), isolated});
    truth.events.push_back(std::move(event));
  };

  for (DeviceId anchor : massive_anchors) {
    const bool concomitant = rng_.bernoulli(params_.concomitance);
    if (concomitant) anchor = draw_regime_anchor();
    // A massive error needs at least tau co-located victims; optionally
    // re-draw the anchor until its ball is populated enough.
    for (std::uint32_t retry = 0; retry < params_.massive_anchor_retries; ++retry) {
      if (used[anchor]) break;
      const auto ball = ball_members(
          anchor, params_.ball_radius_factor * params_.model.r, used);
      if (ball.size() >= params_.model.tau) break;
      anchor = concomitant ? draw_regime_anchor() : draw_any_anchor();
    }
    place_group(anchor, false, concomitant);
  }
  for (const DeviceId anchor : isolated_anchors) {
    place_group(anchor, true, rng_.bernoulli(params_.concomitance));
  }

  positions_ = curr;
  ++steps_;
  return ScenarioStep{
      StatePair(Snapshot(prev), Snapshot(std::move(curr)), truth.abnormal),
      std::move(truth)};
}

}  // namespace acn
