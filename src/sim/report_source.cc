#include "sim/report_source.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace acn {

std::vector<QosReport> delivery_schedule(
    const std::vector<ObservedInterval>& stream, const DeliveryFaults& faults,
    std::vector<std::uint64_t>* killed_from) {
  if (faults.duplicate_copies == 0) {
    throw std::invalid_argument(
        "delivery_schedule: duplicate_copies must be >= 1");
  }
  std::vector<QosReport> schedule;
  if (stream.empty()) {
    if (killed_from != nullptr) killed_from->clear();
    return schedule;
  }
  const std::size_t n = stream.front().positions.size();
  Rng rng(faults.seed);

  constexpr std::uint64_t kAlive = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dead_from(n, kAlive);
  // stall_until[j] > k means j's report for k buffers until that interval.
  std::vector<std::uint64_t> stall_until(n, 0);

  struct Slotted {
    std::uint64_t key;  ///< jittered delivery slot; stable sort breaks ties
    QosReport report;
  };
  std::vector<Slotted> slotted;
  slotted.reserve(stream.size() * n);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint64_t k = static_cast<std::uint64_t>(i) + 1;
    const ObservedInterval& interval = stream[i];
    if (interval.positions.size() != n) {
      throw std::invalid_argument(
          "delivery_schedule: stream changes fleet size");
    }
    for (DeviceId j = 0; j < n; ++j) {
      // Interval-boundary fate draws, in a fixed order so the schedule is
      // a pure function of (stream, faults, seed).
      if (dead_from[j] == kAlive && faults.kill_rate > 0.0 &&
          rng.bernoulli(faults.kill_rate)) {
        dead_from[j] = k;
      }
      if (dead_from[j] != kAlive) continue;
      if (stall_until[j] <= k && faults.stall_rate > 0.0 &&
          rng.bernoulli(faults.stall_rate)) {
        stall_until[j] = k + faults.stall_intervals;
      }

      QosReport report;
      report.device = static_cast<GatewayKey>(j);
      report.interval = k;
      report.claim = interval.positions[j];
      report.abnormal = interval.abnormal.contains(j);
      report.arrival_seq = k;

      // In-order slot of report (k, j) is its flattened index; a stalled
      // device's reports shift whole interval-blocks forward so they burst
      // out with the release interval's block.
      const std::uint64_t release =
          stall_until[j] > k ? stall_until[j] : k;
      std::uint64_t slot = (release - 1) * n + j;
      if (faults.reorder_window > 0) {
        slot += rng.uniform_int(faults.reorder_window + 1);
      }
      slotted.push_back(Slotted{slot, report});

      if (faults.duplicate_rate > 0.0 &&
          rng.bernoulli(faults.duplicate_rate)) {
        for (std::uint32_t c = 0; c < faults.duplicate_copies; ++c) {
          std::uint64_t dup_slot = slot;
          if (faults.reorder_window > 0) {
            dup_slot += 1 + rng.uniform_int(faults.reorder_window);
          } else {
            dup_slot += 1;  // retransmission trails the original
          }
          slotted.push_back(Slotted{dup_slot, report});
        }
      }
    }
  }

  std::stable_sort(slotted.begin(), slotted.end(),
                   [](const Slotted& a, const Slotted& b) {
                     return a.key < b.key;
                   });
  schedule.reserve(slotted.size());
  for (const Slotted& s : slotted) schedule.push_back(s.report);
  if (killed_from != nullptr) *killed_from = std::move(dead_from);
  return schedule;
}

}  // namespace acn
