// Hostile scenario layers — composable perturbations on top of the clean
// §VII-A workload, each violating one assumption the paper's guarantees
// rest on. The monitor never sees ground truth; it sees *reports*, and
// reports churn, get lost, arrive late, drift, correlate with topology, and
// lie. Every layer produces a self-consistent observed snapshot stream
// (observed_{k-1} of interval k is exactly what was published at k-1), so
// the same stream can be replayed byte-identically through the from-scratch
// characterizer, the snapshot-level MotionPlane, and the incremental
// FrameEngine — which is what tests/conformance asserts.
//
// Layers (all off by default; a HostileScenario with every layer off
// reproduces the clean ScenarioGenerator stream bit-for-bit):
//
//   churn     — devices retire (slot parked at its last position, per the
//               FleetRoster model) and re-enter at a fresh position. Violates
//               the fixed-universe reading of §III-A. Safe side: a parked or
//               just-readmitted device is never in A_k, so it can never
//               influence a verdict (motions are A_k-masked).
//   reports   — loss: an impacted device's report AND its a_k flag vanish
//               for one interval (the monitor replays its last claim; a pure
//               recall hole — the safe failure). stale: the report is
//               delayed one interval and its a_k flag delivered late, so the
//               device enters A_{k+1} with a distorted two-interval
//               trajectory (duplication + reordering at the snapshot
//               boundary).
//   drift     — a share of the fleet wanders at a fixed per-device velocity
//               each interval. Violates "QoS is stationary between errors";
//               drifters are never abnormal, so verdicts are untouched, but
//               the incremental grid's locality assumption (few movers per
//               interval) is maximally stressed.
//   regional  — topology-correlated events from net/topology: an *outage*
//               converges an aggregation's gateways onto one degraded point
//               (truly massive, but the converging motion is NOT r-consistent
//               — members were QoS-scattered at k-1 — so Theorem 5 classifies
//               each member isolated: the documented recall loss when the
//               common-displacement restriction R2 is violated). A *flash
//               crowd* scatters a region's gateways loosely around a
//               congestion point, superposing dense motions (stresses
//               Corollary 8 / Theorem 7).
//   adversary — a TrajectoryShaper (adversary/adversary.hpp) drives a fixed
//               colluder block interval after interval: shadow-crowd flips a
//               designated victim's isolated verdicts to massive (§VIII),
//               superposition-bomb chains overlapping dense motions to blow
//               up the Theorem-7 search, scatter-chaff floods A_k with fake
//               isolated anomalies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/device_set.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/scenario.hpp"

namespace acn {

struct ChurnParams {
  /// Fraction of the fleet retired per interval (and re-admitted from the
  /// parked pool, once one exists). 0 = off.
  double rate = 0.0;
  /// Retirement stops when the active fleet would drop below this floor
  /// (0 = half the fleet).
  std::size_t min_active = 0;
};

struct ReportPathologyParams {
  /// P{an impacted device's report + a_k flag are lost this interval}.
  double loss = 0.0;
  /// P{an impacted device's report is one interval stale and its a_k flag
  /// delivered at k+1}. Drawn after loss (mutually exclusive per device).
  double stale = 0.0;
};

struct DriftParams {
  double share = 0.0;        ///< fraction of the fleet drifting
  double step_factor = 0.0;  ///< per-interval drift step, as a fraction of r
};

struct RegionalParams {
  double outage_rate = 0.0;  ///< P{an aggregation outage strikes this interval}
  double flash_rate = 0.0;   ///< P{a regional flash crowd strikes this interval}
  /// Spread of the degraded point's impact, as a fraction of r.
  double outage_jitter = 0.5;
  /// Spread of the congestion blob, as a fraction of r (loose by design).
  double flash_jitter = 3.0;
  /// Tree shape; gateways_per_aggregation is re-derived from n by
  /// HostileScenario so that gateway ids are valid device ids.
  TopologyConfig topology;
};

struct AdversaryParams {
  /// nullopt = no adversary.
  std::optional<TrajectoryAttack> attack;
  /// Size of the colluder block (the top device ids, reserved: the base
  /// workload never impacts a colluder).
  std::size_t colluders = 0;
  /// P{the designated victim suffers a genuinely isolated crash this
  /// interval} (targeted attacks only).
  double victim_crash_rate = 0.5;
  double claim_jitter = 0.35;  ///< TrajectoryShaper::Config::claim_jitter
  double chain_spacing = 0.75; ///< TrajectoryShaper::Config::chain_spacing
};

struct HostileParams {
  ScenarioParams base;  ///< the clean §VII-A workload underneath
  ChurnParams churn;
  ReportPathologyParams reports;
  DriftParams drift;
  RegionalParams regional;
  AdversaryParams adversary;
  /// Hostile-layer stream, independent of base.seed so the clean workload
  /// underneath a family is comparable across layer settings.
  std::uint64_t seed = 1;

  void validate() const;
};

/// One interval as the monitor sees it, plus the ground truth the monitor
/// does not see.
struct HostileStep {
  Snapshot observed;    ///< monitor-visible positions (claims) at k
  DeviceSet abnormal;   ///< monitor-visible A_k (flags that arrived)
  StepTruth truth;      ///< injected truth incl. regional and victim events
  DeviceSet fabricated; ///< colluders claiming a fake a_k this interval
  DeviceSet suppressed; ///< truly abnormal devices whose flag did not arrive
  std::size_t active = 0;  ///< active (non-parked) devices this interval
};

class HostileScenario {
 public:
  explicit HostileScenario(HostileParams params);

  /// Observed snapshot S_0 (reports are honest before the stream starts);
  /// feed it to streaming paths before the first advance().
  [[nodiscard]] Snapshot initial() const { return Snapshot(observed_); }

  /// Advances one interval through the full layer pipeline:
  /// churn -> regional event draw -> eligibility mask -> clean advance ->
  /// drift -> regional displacement -> victim crash -> re-admission respawn
  /// -> observed assembly (loss / stale / late flags) -> adversary shaping.
  [[nodiscard]] HostileStep advance();

  [[nodiscard]] const HostileParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t step_count() const noexcept { return steps_; }
  /// The device whose verdict targeted attacks aim to flip (nullopt when no
  /// targeted adversary is configured).
  [[nodiscard]] std::optional<DeviceId> victim() const noexcept { return victim_; }
  [[nodiscard]] const std::vector<DeviceId>& colluders() const noexcept {
    return colluders_;
  }

 private:
  [[nodiscard]] bool is_protected(DeviceId j) const noexcept;
  void run_churn();
  /// Members of a random aggregation (outage) or region (flash crowd),
  /// filtered to active unprotected devices not already taken by another
  /// event this interval (R1 across layers).
  [[nodiscard]] std::vector<DeviceId> draw_regional_members(
      bool outage, const std::vector<bool>& taken);
  [[nodiscard]] Point random_point();
  [[nodiscard]] Point jittered(const Point& centre, double amplitude);

  HostileParams params_;
  ScenarioGenerator scenario_;
  Rng rng_;  ///< hostile-layer stream (never touches the base generator's)
  std::optional<Topology> topo_;
  std::optional<TrajectoryShaper> shaper_;
  std::vector<DeviceId> colluders_;
  std::vector<bool> colluder_mask_;
  std::optional<DeviceId> victim_;

  std::vector<bool> active_;
  std::size_t active_count_;
  std::vector<DeviceId> just_admitted_;  ///< re-entered this interval
  std::vector<Point> observed_;          ///< last published claims
  std::vector<Point> drift_velocity_;    ///< empty point = non-drifter
  std::vector<DeviceId> pending_late_;   ///< a_k flags delivered this interval
  std::uint64_t steps_ = 0;
};

/// One named hostile family: parameters plus the paper assumption it
/// violates (docs/paper_map.md spells out the expected safe-side behaviour).
struct HostileSpec {
  std::string name;
  std::string violates;
  HostileParams params;
};

/// The standard suite: >= 6 families covering every layer (plus a clean
/// control and a combined stress family), sized for fleet size n. The same
/// (n, seed) pair yields the same suite bit-for-bit on any platform.
[[nodiscard]] std::vector<HostileSpec> standard_hostile_suite(std::size_t n,
                                                              std::uint64_t seed);

}  // namespace acn
