#include "core/motion_oracle.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <stdexcept>

#include "core/kernels/kernels.hpp"

namespace acn {

MotionOracle::MotionOracle(const StatePair& state, Params params)
    : state_(state), params_(params), plane_(nullptr) {
  params_.validate();
}

MotionOracle::MotionOracle(const MotionPlane& plane)
    : state_(plane.state()),
      params_(plane.params()),
      plane_(&plane),
      counters_(plane.counters()) {}

const MotionPlane& MotionOracle::ensure_plane() const {
  if (plane_ == nullptr) {
    owned_plane_.emplace(state_, params_);
    plane_ = &*owned_plane_;
    const OracleCounters& built = plane_->counters();
    counters_.neighbourhood_queries += built.neighbourhood_queries;
    counters_.windows_explored += built.windows_explored;
    counters_.covers_generated += built.covers_generated;
    counters_.enumeration_calls += built.enumeration_calls;
    counters_.motions_stored += built.motions_stored;
    counters_.motions_shared += built.motions_shared;
  }
  return *plane_;
}

std::span<const DeviceId> MotionOracle::neighbourhood(DeviceId j) {
  const MotionPlane& plane = ensure_plane();
  if (plane.covers(j)) return plane.neighbourhood(j);
  if (const auto it = extra_neighbourhood_memo_.find(j);
      it != extra_neighbourhood_memo_.end()) {
    return it->second;
  }
  ++counters_.neighbourhood_queries;
  auto neighbours = plane.within(j, params_.window());
  return extra_neighbourhood_memo_.emplace(j, std::move(neighbours)).first->second;
}

const std::vector<DeviceSet>& MotionOracle::maximal_motions(DeviceId j) {
  if (const auto it = motions_memo_.find(j); it != motions_memo_.end()) {
    return it->second;
  }
  const MotionPlane& plane = ensure_plane();
  if (!plane.covers(j)) {
    throw std::invalid_argument("maximal_motions: device " + std::to_string(j) +
                                " is not in A_k");
  }
  std::vector<DeviceSet> motions;
  const auto family = plane.maximal(j);
  motions.reserve(family.size());
  for (const MotionPlane::MotionId mid : family) {
    motions.push_back(DeviceSet(plane.members(mid)));
  }
  return motions_memo_.emplace(j, std::move(motions)).first->second;
}

const std::vector<DeviceSet>& MotionOracle::dense_motions(DeviceId j) {
  if (const auto it = dense_memo_.find(j); it != dense_memo_.end()) {
    return it->second;
  }
  const MotionPlane& plane = ensure_plane();
  if (!plane.covers(j)) {
    throw std::invalid_argument("dense_motions: device " + std::to_string(j) +
                                " is not in A_k");
  }
  std::vector<DeviceSet> dense;
  const auto family = plane.dense(j);
  dense.reserve(family.size());
  for (const MotionPlane::MotionId mid : family) {
    dense.push_back(DeviceSet(plane.members(mid)));
  }
  return dense_memo_.emplace(j, std::move(dense)).first->second;
}

std::vector<DeviceSet> MotionOracle::maximal_motions_excluding(
    DeviceId j, const DeviceSet& removed) {
  std::vector<DeviceId> pool;
  for (const DeviceId candidate : neighbourhood(j)) {
    if (!removed.contains(candidate)) pool.push_back(candidate);
  }
  ++counters_.enumeration_calls;
  return enumerate_maximal_windows(state_, params_, std::move(pool), j, &counters_);
}

bool MotionOracle::has_dense_motion_avoiding(DeviceId j, const DeviceSet& removed) {
  if (removed.contains(j)) return false;  // no motion containing j survives
  const AvoidKey key{j, removed.hash()};
  if (const auto it = avoid_memo_.find(key); it != avoid_memo_.end()) {
    return it->second;
  }
  // Counting identity over the precomputed family: a dense motion containing
  // j within A_k \ removed exists iff some maximal dense motion M of j keeps
  // more than tau members outside `removed` (that remainder contains j and
  // is a motion as a subset of M; conversely any surviving dense motion
  // extends to a maximal motion of the full pool, whose remainder is at
  // least as large). Replaces the anchored window slide the seed ran per
  // query — the innermost operation of the Theorem-7 search.
  bool found = false;
  const MotionPlane& plane = ensure_plane();
  if (plane.covers(j)) {
    for (const MotionPlane::MotionId mid : plane.dense(j)) {
      std::size_t survivors = 0;
      for (const DeviceId member : plane.members(mid)) {
        if (!removed.contains(member)) ++survivors;
      }
      if (survivors > params_.tau) {
        found = true;
        break;
      }
    }
  } else {
    // Non-abnormal query device: no precomputed family; slide on demand.
    std::vector<DeviceId> pool;
    for (const DeviceId candidate : neighbourhood(j)) {
      if (!removed.contains(candidate)) pool.push_back(candidate);
    }
    found = exists_dense_cover(pool, j);
  }
  avoid_memo_.emplace(key, found);
  return found;
}

bool MotionOracle::exists_dense_cover(std::span<const DeviceId> pool, DeviceId anchor) {
  return exists_dense_window_cover(state_, params_, pool, anchor,
                                   &counters_.windows_explored);
}

bool exists_dense_window_cover(const StatePair& state, const Params& params,
                               std::span<const DeviceId> pool,
                               std::optional<DeviceId> anchor,
                               std::uint64_t* windows_explored) {
  if (pool.size() <= params.tau) return false;
  const double window = params.window();
  const Point* anchor_joint = anchor.has_value() ? &state.joint(*anchor) : nullptr;

  // This slide visits dimensions in natural order; the shared tight-cluster
  // cut takes the remaining suffix of this identity order.
  static constexpr auto kIdentityDims = [] {
    std::array<std::size_t, 2 * Point::kMaxDim> dims{};
    for (std::size_t i = 0; i < dims.size(); ++i) dims[i] = i;
    return dims;
  }();

  // Same canonical-window slide as `enumerate_maximal_windows`, but returns
  // at the first window whose cover is dense — no maximal-family
  // materialization. Inner loops scan the columnar joint layout.
  const std::function<bool(std::span<const DeviceId>, std::size_t)> slide_any =
      [&](std::span<const DeviceId> active, std::size_t dim_index) -> bool {
    if (active.size() <= params.tau) return false;  // can only shrink further
    if (dim_index == state.joint_dim()) return true;

    // Tight-cluster cut (spans_fit_window, shared with the motion-plane
    // slide): if the active set spans at most 2r in every remaining
    // dimension, one window covers it whole — and it is already dense.
    if (spans_fit_window(state, window, active,
                         std::span<const std::size_t>{
                             kIdentityDims.data() + dim_index,
                             state.joint_dim() - dim_index})) {
      if (windows_explored != nullptr) ++*windows_explored;
      return true;
    }

    const double* col = state.joint_col(dim_index);
    std::vector<double> edges;
    edges.reserve(active.size());
    if (anchor_joint != nullptr) {
      const double ax = (*anchor_joint)[dim_index];
      const double lo = ax - window;
      for (const DeviceId id : active) {
        const double x = col[id];
        if (x >= lo && x <= ax) edges.push_back(x);
      }
    } else {
      for (const DeviceId id : active) edges.push_back(col[id]);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    // Same kernel-dispatched filter as the plane's slide (byte-identical to
    // the plain double compare loop; see core/kernels/quantize.hpp).
    const kernels::Ops& ops = kernels::dispatch();
    const std::uint32_t* qcol = state.qcol(dim_index);
    std::vector<DeviceId> next;
    next.reserve(active.size());
    for (const double lower : edges) {
      if (windows_explored != nullptr) ++*windows_explored;
      const kernels::WindowBoundsQ bounds =
          kernels::window_bounds(lower, lower + window);
      next.resize(active.size());
      next.resize(ops.filter_in_window(qcol, col, active.data(), active.size(),
                                       bounds, next.data()));
      if (slide_any(next, dim_index + 1)) return true;
    }
    return false;
  };
  return slide_any(pool, 0);
}

std::vector<DeviceSet> MotionOracle::maximal_motions_of_pool(
    std::vector<DeviceId> pool) const {
  return enumerate_maximal_windows(state_, params_, std::move(pool), std::nullopt,
                                   &counters_);
}

std::vector<DeviceSet> MotionOracle::maximal_motions_in_pool(
    DeviceId j, std::vector<DeviceId> pool) const {
  const auto it = std::find(pool.begin(), pool.end(), j);
  if (it == pool.end()) {
    throw std::invalid_argument("maximal_motions_in_pool: anchor not in pool");
  }
  return enumerate_maximal_windows(state_, params_, std::move(pool), j, &counters_);
}

}  // namespace acn
