#include "core/motion_oracle.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/motion.hpp"

namespace acn {
namespace {

constexpr double kMinCell = 1e-9;  // grid degenerates gracefully when r ~ 0

}  // namespace

MotionOracle::MotionOracle(const StatePair& state, Params params)
    : state_(state),
      params_(params),
      grid_(state, state.abnormal(), std::max(params.window(), kMinCell)) {
  params_.validate();
}

const std::vector<DeviceId>& MotionOracle::neighbourhood(DeviceId j) {
  if (const auto it = neighbourhood_memo_.find(j); it != neighbourhood_memo_.end()) {
    return it->second;
  }
  ++counters_.neighbourhood_queries;
  auto neighbours = grid_.within(j, params_.window());
  return neighbourhood_memo_.emplace(j, std::move(neighbours)).first->second;
}

const std::vector<DeviceSet>& MotionOracle::maximal_motions(DeviceId j) {
  if (const auto it = motions_memo_.find(j); it != motions_memo_.end()) {
    return it->second;
  }
  if (!state_.is_abnormal(j)) {
    throw std::invalid_argument("maximal_motions: device " + std::to_string(j) +
                                " is not in A_k");
  }
  ++counters_.enumeration_calls;
  auto motions = enumerate(neighbourhood(j), j);
  return motions_memo_.emplace(j, std::move(motions)).first->second;
}

std::vector<DeviceSet> MotionOracle::dense_motions(DeviceId j) {
  std::vector<DeviceSet> dense;
  for (const DeviceSet& motion : maximal_motions(j)) {
    if (is_dense(motion, params_.tau)) dense.push_back(motion);
  }
  return dense;
}

std::vector<DeviceSet> MotionOracle::maximal_motions_excluding(
    DeviceId j, const DeviceSet& removed) {
  std::vector<DeviceId> pool;
  for (const DeviceId candidate : neighbourhood(j)) {
    if (!removed.contains(candidate)) pool.push_back(candidate);
  }
  ++counters_.enumeration_calls;
  return enumerate(std::move(pool), j);
}

bool MotionOracle::has_dense_motion_avoiding(DeviceId j, const DeviceSet& removed) {
  // Key mixes the device id into the removed-set hash; collisions would only
  // be possible across distinct (j, removed) pairs hashing identically, which
  // FNV over <= 32-element id lists makes negligible — and the memo is
  // per-oracle, so a collision could only arise within one A_k analysis.
  const std::uint64_t key = removed.hash() ^ (0x9E3779B97F4A7C15ULL * (j + 1));
  if (const auto it = avoid_memo_.find(key); it != avoid_memo_.end()) {
    return it->second;
  }
  std::vector<DeviceId> pool;
  for (const DeviceId candidate : neighbourhood(j)) {
    if (!removed.contains(candidate)) pool.push_back(candidate);
  }
  const bool found = exists_dense_cover(std::move(pool), j);
  avoid_memo_.emplace(key, found);
  return found;
}

bool MotionOracle::exists_dense_cover(std::vector<DeviceId> pool, DeviceId anchor) {
  return exists_dense_window_cover(state_, params_, pool, anchor,
                                   &counters_.windows_explored);
}

bool exists_dense_window_cover(const StatePair& state, const Params& params,
                               std::span<const DeviceId> pool,
                               std::optional<DeviceId> anchor,
                               std::uint64_t* windows_explored) {
  if (pool.size() <= params.tau) return false;
  const double window = params.window();

  // Same canonical-window slide as `enumerate`, but returns at the first
  // window whose cover is dense — no maximal-family materialization.
  const std::function<bool(std::span<const DeviceId>, std::size_t)> slide_any =
      [&](std::span<const DeviceId> active, std::size_t dim_index) -> bool {
    if (active.size() <= params.tau) return false;  // can only shrink further
    if (dim_index == state.joint_dim()) return true;

    std::vector<double> edges;
    edges.reserve(active.size());
    for (const DeviceId id : active) {
      const double x = state.joint(id)[dim_index];
      if (anchor.has_value()) {
        const double ax = state.joint(*anchor)[dim_index];
        if (x < ax - window || x > ax) continue;
      }
      edges.push_back(x);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    std::vector<DeviceId> next;
    next.reserve(active.size());
    for (const double lower : edges) {
      if (windows_explored != nullptr) ++*windows_explored;
      next.clear();
      for (const DeviceId id : active) {
        const double x = state.joint(id)[dim_index];
        if (x >= lower && x <= lower + window) next.push_back(id);
      }
      if (slide_any(next, dim_index + 1)) return true;
    }
    return false;
  };
  return slide_any(pool, 0);
}

std::vector<DeviceSet> MotionOracle::maximal_motions_of_pool(
    std::vector<DeviceId> pool) const {
  return enumerate(std::move(pool), std::nullopt);
}

std::vector<DeviceSet> MotionOracle::maximal_motions_in_pool(
    DeviceId j, std::vector<DeviceId> pool) const {
  const auto it = std::find(pool.begin(), pool.end(), j);
  if (it == pool.end()) {
    throw std::invalid_argument("maximal_motions_in_pool: anchor not in pool");
  }
  return enumerate(std::move(pool), j);
}

std::vector<DeviceSet> MotionOracle::enumerate(std::vector<DeviceId> pool,
                                               std::optional<DeviceId> anchor) const {
  if (anchor.has_value()) {
    // Only devices within 2r of the anchor can share a motion with it.
    std::vector<DeviceId> close;
    close.reserve(pool.size());
    for (const DeviceId candidate : pool) {
      if (state_.joint_distance(*anchor, candidate) <= params_.window()) {
        close.push_back(candidate);
      }
    }
    pool = std::move(close);
  }
  std::sort(pool.begin(), pool.end());
  if (pool.empty()) return {};

  std::vector<DeviceSet> covers;
  slide(pool, 0, anchor, covers);
  return keep_maximal(std::move(covers));
}

void MotionOracle::slide(std::span<const DeviceId> active, std::size_t dim_index,
                         std::optional<DeviceId> anchor,
                         std::vector<DeviceSet>& covers) const {
  if (active.empty()) return;
  if (dim_index == state_.joint_dim()) {
    ++counters_.covers_generated;
    covers.emplace_back(std::vector<DeviceId>(active.begin(), active.end()));
    return;
  }
  const double window = params_.window();

  // Candidate lower edges: coordinates of active points; when anchored, only
  // those within [x(anchor) - 2r, x(anchor)] so the window covers the anchor.
  std::vector<double> edges;
  edges.reserve(active.size());
  for (const DeviceId id : active) {
    const double x = state_.joint(id)[dim_index];
    if (anchor.has_value()) {
      const double ax = state_.joint(*anchor)[dim_index];
      if (x < ax - window || x > ax) continue;
    }
    edges.push_back(x);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<DeviceId> next;
  next.reserve(active.size());
  for (const double lower : edges) {
    ++counters_.windows_explored;
    next.clear();
    for (const DeviceId id : active) {
      const double x = state_.joint(id)[dim_index];
      if (x >= lower && x <= lower + window) next.push_back(id);
    }
    slide(next, dim_index + 1, anchor, covers);
  }
}

}  // namespace acn
