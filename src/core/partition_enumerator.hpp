// Exhaustive enumeration of anomaly partitions — the omniscient observer.
//
// The paper defines M_k / I_k / U_k by quantifying over *all* anomaly
// partitions (relations (2), (3), Definition 8). This module makes that
// quantification executable on small instances so the local algorithms can
// be validated against exact ground truth (the paper's Theorems 5-7 and
// Corollary 8 claim the local conditions coincide with it).
//
// Enumeration is exponential (the paper bounds it by Bell numbers, §V); we
// make it tractable by decomposing A_k into connected components of the
// 2r-interaction graph (a motion is a joint-space clique and can never span
// components, and conditions C1/C2 decompose likewise — asserted by tests),
// then enumerating restricted-growth set partitions per component with
// motion-feasibility pruning, validating C1/C2 on each complete candidate.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/device_set.hpp"
#include "core/params.hpp"
#include "core/partition.hpp"
#include "core/state.hpp"

namespace acn {

/// Exact tri-partition of A_k (observer's answer to the relaxed ACP).
struct CharacterizationSets {
  DeviceSet massive;     ///< M_k: in a dense class of every anomaly partition
  DeviceSet isolated;    ///< I_k: in a sparse class of every anomaly partition
  DeviceSet unresolved;  ///< U_k: partitions disagree

  [[nodiscard]] bool acp_solvable() const noexcept { return unresolved.empty(); }
};

/// Thrown when an instance exceeds the enumeration limits (the observer is a
/// test oracle, not a production path).
class EnumerationLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class PartitionEnumerator {
 public:
  struct Limits {
    std::size_t max_component_size = 14;
    std::uint64_t max_partitions_per_component = 5'000'000;
  };

  PartitionEnumerator(const StatePair& state, Params params);
  PartitionEnumerator(const StatePair& state, Params params, Limits limits);

  /// Connected components of the 2r-interaction graph over A_k; sorted ids.
  [[nodiscard]] std::vector<std::vector<DeviceId>> components() const;

  /// All anomaly partitions of the whole A_k (no component decomposition).
  /// Exponential in |A_k|; use only on small instances (tests, examples).
  [[nodiscard]] std::vector<AnomalyPartition> enumerate_all() const;

  /// Exact M_k / I_k / U_k by per-component enumeration.
  /// Throws EnumerationLimitError when a component exceeds the limits.
  [[nodiscard]] CharacterizationSets characterize_all() const;

  /// Number of valid anomaly partitions (product over components).
  /// Saturates at UINT64_MAX. Same limits as characterize_all().
  [[nodiscard]] std::uint64_t count_partitions() const;

 private:
  struct ComponentScan {
    std::uint64_t valid_partitions = 0;
    // Per member (parallel to the component vector): smallest / largest class
    // size over all valid partitions.
    std::vector<std::size_t> min_class_size;
    std::vector<std::size_t> max_class_size;
  };

  [[nodiscard]] ComponentScan scan_component(const std::vector<DeviceId>& comp) const;

  /// C1/C2 validity of a complete component partition (classes are already
  /// guaranteed to be motions by construction).
  [[nodiscard]] bool component_partition_valid(
      const std::vector<std::vector<DeviceId>>& classes) const;

  const StatePair& state_;
  Params params_;
  Limits limits_;
};

}  // namespace acn
