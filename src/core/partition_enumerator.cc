#include "core/partition_enumerator.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "core/grid_index.hpp"
#include "core/motion.hpp"
#include "core/motion_oracle.hpp"

namespace acn {

PartitionEnumerator::PartitionEnumerator(const StatePair& state, Params params)
    : PartitionEnumerator(state, params, Limits()) {}

PartitionEnumerator::PartitionEnumerator(const StatePair& state, Params params,
                                         Limits limits)
    : state_(state), params_(params), limits_(limits) {
  params_.validate();
}

std::vector<std::vector<DeviceId>> PartitionEnumerator::components() const {
  const DeviceSet& abnormal = state_.abnormal();
  const std::vector<DeviceId> ids(abnormal.begin(), abnormal.end());
  if (ids.empty()) return {};
  // Interaction edges through the 2r grid instead of the all-pairs scan:
  // within() filters by exact joint distance, so the edge set is identical.
  const GridIndex grid(state_, abnormal, std::max(params_.window(), kMinGridCell));
  std::vector<DeviceId> neighbours;
  return connected_components(ids, [&](std::size_t rank) {
    grid.within_into(ids[rank], params_.window(), neighbours);
    return std::span<const DeviceId>(neighbours);
  });
}

namespace {

/// Restricted-growth enumeration of set partitions whose classes all keep an
/// r-consistent motion. Calls `on_complete` for every such partition.
void enumerate_motion_partitions(
    const StatePair& state, double r, const std::vector<DeviceId>& members,
    std::uint64_t max_partitions, std::uint64_t& visited,
    const std::function<void(const std::vector<std::vector<DeviceId>>&)>& on_complete) {
  std::vector<std::vector<DeviceId>> classes;
  std::vector<JointBox> boxes;
  const double window = 2.0 * r;

  const std::function<void(std::size_t)> recurse = [&](std::size_t index) {
    if (index == members.size()) {
      if (++visited > max_partitions) {
        throw EnumerationLimitError("partition enumeration budget exceeded");
      }
      on_complete(classes);
      return;
    }
    const DeviceId j = members[index];
    const Point& joint = state.joint(j);
    // Join an existing class if the motion property survives.
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (!boxes[c].would_fit(joint, window)) continue;
      classes[c].push_back(j);
      const JointBox saved = boxes[c];
      boxes[c].add(joint);
      recurse(index + 1);
      boxes[c] = saved;
      classes[c].pop_back();
    }
    // Or open a new class (canonical: the class is identified by its first,
    // smallest member, so each partition is produced exactly once).
    classes.push_back({j});
    boxes.emplace_back(state.joint_dim());
    boxes.back().add(joint);
    recurse(index + 1);
    classes.pop_back();
    boxes.pop_back();
  };
  recurse(0);
}

}  // namespace

bool PartitionEnumerator::component_partition_valid(
    const std::vector<std::vector<DeviceId>>& classes) const {
  // Split into dense classes and the sparse union.
  std::vector<DeviceId> sparse_union;
  std::vector<const std::vector<DeviceId>*> dense;
  for (const auto& cls : classes) {
    if (cls.size() > params_.tau) {
      dense.push_back(&cls);
    } else {
      sparse_union.insert(sparse_union.end(), cls.begin(), cls.end());
    }
  }
  // C2 first: no sparse-union device can join a dense class. Cheap (box
  // fits), so it gates the window slide below.
  for (const auto* cls : dense) {
    JointBox box(state_.joint_dim());
    for (const DeviceId id : *cls) box.add(state_.joint(id));
    for (const DeviceId ell : sparse_union) {
      if (box.would_fit(state_.joint(ell), params_.window())) return false;
    }
  }
  // C1: no dense motion within the sparse union, checked by an unanchored
  // early-exit window slide. (The maximal-motion formulation of
  // partition.hpp is equivalent but materializes whole families; this check
  // runs once per enumerated partition and must stay cheap.)
  return !exists_dense_window_cover(state_, params_, sparse_union, std::nullopt);
}

PartitionEnumerator::ComponentScan PartitionEnumerator::scan_component(
    const std::vector<DeviceId>& comp) const {
  if (comp.size() > limits_.max_component_size) {
    throw EnumerationLimitError(
        "interaction component of size " + std::to_string(comp.size()) +
        " exceeds the observer limit " + std::to_string(limits_.max_component_size));
  }
  ComponentScan scan;
  scan.min_class_size.assign(comp.size(), std::numeric_limits<std::size_t>::max());
  scan.max_class_size.assign(comp.size(), 0);

  std::uint64_t visited = 0;
  enumerate_motion_partitions(
      state_, params_.r, comp, limits_.max_partitions_per_component, visited,
      [&](const std::vector<std::vector<DeviceId>>& classes) {
        if (!component_partition_valid(classes)) return;
        ++scan.valid_partitions;
        for (const auto& cls : classes) {
          for (const DeviceId id : cls) {
            const auto pos = static_cast<std::size_t>(
                std::lower_bound(comp.begin(), comp.end(), id) - comp.begin());
            scan.min_class_size[pos] = std::min(scan.min_class_size[pos], cls.size());
            scan.max_class_size[pos] = std::max(scan.max_class_size[pos], cls.size());
          }
        }
      });
  return scan;
}

std::vector<AnomalyPartition> PartitionEnumerator::enumerate_all() const {
  std::vector<AnomalyPartition> out;
  const DeviceSet& abnormal = state_.abnormal();
  if (abnormal.empty()) return out;
  if (abnormal.size() > limits_.max_component_size) {
    throw EnumerationLimitError("A_k too large for whole-set enumeration");
  }
  const std::vector<DeviceId> members(abnormal.begin(), abnormal.end());
  std::uint64_t visited = 0;
  enumerate_motion_partitions(
      state_, params_.r, members, limits_.max_partitions_per_component, visited,
      [&](const std::vector<std::vector<DeviceId>>& classes) {
        if (!component_partition_valid(classes)) return;
        std::vector<DeviceSet> sets;
        sets.reserve(classes.size());
        for (const auto& cls : classes) sets.emplace_back(cls);
        out.emplace_back(std::move(sets));
      });
  return out;
}

CharacterizationSets PartitionEnumerator::characterize_all() const {
  CharacterizationSets sets;
  for (const auto& comp : components()) {
    const ComponentScan scan = scan_component(comp);
    if (scan.valid_partitions == 0) {
      throw EnumerationLimitError(
          "component admits no valid anomaly partition (contradicts Lemma 2)");
    }
    for (std::size_t i = 0; i < comp.size(); ++i) {
      const bool always_dense = scan.min_class_size[i] > params_.tau;
      const bool never_dense = scan.max_class_size[i] <= params_.tau;
      if (always_dense) {
        sets.massive = sets.massive.with(comp[i]);
      } else if (never_dense) {
        sets.isolated = sets.isolated.with(comp[i]);
      } else {
        sets.unresolved = sets.unresolved.with(comp[i]);
      }
    }
  }
  return sets;
}

std::uint64_t PartitionEnumerator::count_partitions() const {
  std::uint64_t total = 1;
  for (const auto& comp : components()) {
    const ComponentScan scan = scan_component(comp);
    if (scan.valid_partitions == 0) return 0;
    if (total > std::numeric_limits<std::uint64_t>::max() / scan.valid_partitions) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    total *= scan.valid_partitions;
  }
  return total;
}

}  // namespace acn
