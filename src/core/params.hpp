// Model parameters of the characterization (§III): the consistency impact
// radius r and the density threshold tau distinguishing isolated from
// massive anomalies.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace acn {

struct Params {
  /// Consistency impact radius; the paper requires r in [0, 1/4).
  double r = 0.03;
  /// Density threshold: |B| > tau means B is tau-dense (Definition 4).
  std::uint32_t tau = 3;

  /// Side of the consistency window: sets are r-consistent iff their
  /// Chebyshev diameter is <= 2r (Definition 1).
  [[nodiscard]] double window() const noexcept { return 2.0 * r; }

  /// Throws std::invalid_argument on out-of-domain parameters.
  void validate() const {
    if (r < 0.0 || r >= 0.25) {
      throw std::invalid_argument("Params: r must be in [0, 0.25), got " +
                                  std::to_string(r));
    }
    if (tau < 1) {
      throw std::invalid_argument("Params: tau must be >= 1");
    }
  }
};

/// Classification of an abnormal device (Definitions 7 and 8).
enum class AnomalyClass : std::uint8_t {
  kIsolated,    ///< j in I_k: every anomaly partition puts j in a class <= tau.
  kMassive,     ///< j in M_k: every anomaly partition puts j in a class  > tau.
  kUnresolved,  ///< j in U_k: partitions disagree (Definition 8).
};

[[nodiscard]] constexpr const char* to_string(AnomalyClass c) noexcept {
  switch (c) {
    case AnomalyClass::kIsolated:
      return "Isolated";
    case AnomalyClass::kMassive:
      return "Massive";
    case AnomalyClass::kUnresolved:
      return "Unresolved";
  }
  return "?";
}

}  // namespace acn
