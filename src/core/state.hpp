// System states (§III-A): S_k is the vector of device positions in the QoS
// space at discrete time k. StatePair bundles two successive states S_{k-1},
// S_k together with the abnormal set A_k (devices whose error-detection
// function fired in [k-1, k], Definition 5) — exactly the input of every
// algorithm in the paper.
#pragma once

#include <vector>

#include "common/device_set.hpp"
#include "core/kernels/quantize.hpp"
#include "core/point.hpp"

namespace acn {

class WorkerPool;

/// Positions of all devices at one discrete time. Immutable once built.
class Snapshot {
 public:
  /// Builds from per-device positions; all points must share the same
  /// dimension and lie in [0,1]^d. Throws std::invalid_argument otherwise.
  explicit Snapshot(std::vector<Point> positions);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const Point& operator[](DeviceId j) const noexcept {
    return positions_[j];
  }
  [[nodiscard]] const std::vector<Point>& positions() const noexcept {
    return positions_;
  }

 private:
  std::vector<Point> positions_;
  std::size_t dim_ = 0;
};

/// Two successive system states plus the abnormal set A_k.
class StatePair {
 public:
  /// Throws std::invalid_argument if the snapshots disagree in size or
  /// dimension, or if abnormal contains an out-of-range device id.
  StatePair(Snapshot prev, Snapshot curr, DeviceSet abnormal);

  /// In-place interval roll for the streaming engine: S_{k-1} takes the old
  /// S_k (moved, not copied), S_k takes `next` (moved in), A_k becomes
  /// `abnormal`. The joint coordinates and the SoA columns are rewritten
  /// only where a trajectory actually changed — the new prev half equals
  /// the old curr half by construction, so a device untouched by both
  /// intervals costs one comparison per dimension and zero writes. Appends
  /// to *moved (cleared first, ascending) every device whose CURRENT
  /// position changed in this roll — exactly the devices whose grid cell
  /// may change. Throws std::invalid_argument (state unchanged) if `next`
  /// disagrees in size or dimension or `abnormal` is out of range.
  ///
  /// PRECONDITION (stable device universe): slot j of `next` describes the
  /// same device as slot j of the current snapshot. The roll has no notion
  /// of devices joining or leaving — churn is handled one layer up by
  /// FleetRoster (src/online/roster), which keeps a fixed-capacity dense id
  /// space, parks vacant slots at their last position, and never flags a
  /// device abnormal in the interval its slot was (re)assigned, so a slot
  /// swap can never fabricate a characterizable trajectory.
  ///
  /// With a `pool`, the roll fans out over contiguous device-id chunks:
  /// each lane rewrites the joint/SoA entries of its own id range (disjoint
  /// writes) and collects its chunk's moved list; the chunk lists are
  /// concatenated in range order, so `moved` comes out ascending and
  /// byte-identical to the serial roll for every pool size and chunking.
  /// `lane_ms`, when given, receives per-lane busy milliseconds (the
  /// engine's shard-skew instrumentation).
  void advance(Snapshot next, DeviceSet abnormal,
               std::vector<DeviceId>* moved = nullptr,
               WorkerPool* pool = nullptr,
               std::vector<double>* lane_ms = nullptr);

  [[nodiscard]] std::size_t n() const noexcept { return prev_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return prev_.dim(); }
  /// Dimension of the joint space E x E.
  [[nodiscard]] std::size_t joint_dim() const noexcept { return 2 * dim(); }

  [[nodiscard]] const Snapshot& prev() const noexcept { return prev_; }
  [[nodiscard]] const Snapshot& curr() const noexcept { return curr_; }
  [[nodiscard]] const Point& prev_pos(DeviceId j) const noexcept { return prev_[j]; }
  [[nodiscard]] const Point& curr_pos(DeviceId j) const noexcept { return curr_[j]; }

  /// Joint position (coords at k-1 concatenated with coords at k); cached.
  [[nodiscard]] const Point& joint(DeviceId j) const noexcept { return joint_[j]; }

  /// Structure-of-arrays view of one joint dimension: joint_col(t)[j] ==
  /// joint(j)[t], one contiguous double row per dimension. The canonical
  /// window slides scan one dimension across many devices; the columnar
  /// layout turns those inner loops into flat-array scans instead of strided
  /// Point reads.
  [[nodiscard]] const double* joint_col(std::size_t dim) const noexcept {
    return joint_cols_.data() + dim * n();
  }

  /// Fixed-point mirror of joint_col: qcol(t)[j] == kernels::quantize of
  /// joint_col(t)[j], maintained incrementally by advance() (only entries
  /// whose double changed are requantized — O(|moved|) per roll). The SIMD
  /// window/radius kernels compare these 8 lanes at a time and fall back to
  /// the doubles only on quantization-boundary ties (see
  /// core/kernels/quantize.hpp for the byte-identity argument).
  [[nodiscard]] const std::uint32_t* qcol(std::size_t dim) const noexcept {
    return qcols_.data() + dim * n();
  }
  /// All quantized columns, [dim][device] with row stride n() — the layout
  /// kernels::Ops::filter_in_radius consumes.
  [[nodiscard]] const std::uint32_t* qcols() const noexcept { return qcols_.data(); }
  [[nodiscard]] const double* joint_cols() const noexcept {
    return joint_cols_.data();
  }

  /// A_k: devices with an abnormal trajectory in [k-1, k].
  [[nodiscard]] const DeviceSet& abnormal() const noexcept { return abnormal_; }
  [[nodiscard]] bool is_abnormal(DeviceId j) const noexcept {
    return abnormal_.contains(j);
  }

  /// Joint Chebyshev distance between devices a and b: the max of their
  /// distances at k-1 and at k. The pair {a, b} can share an r-consistent
  /// motion iff this is <= 2r.
  [[nodiscard]] double joint_distance(DeviceId a, DeviceId b) const noexcept {
    return chebyshev(joint_[a], joint_[b]);
  }

 private:
  Snapshot prev_;
  Snapshot curr_;
  DeviceSet abnormal_;
  std::vector<Point> joint_;
  std::vector<double> joint_cols_;       ///< column-major copy: [dim][device]
  std::vector<std::uint32_t> qcols_;     ///< quantized mirror of joint_cols_
};

}  // namespace acn
