// MotionOracle: enumeration of maximal r-consistent motions (the paper's
// Algorithm 2, `maxMotions`).
//
// Key observation (see DESIGN.md): a set B has an r-consistent motion in
// [k-1, k] iff the bounding box of its joint positions has side <= 2r in
// every dimension. Every maximal motion containing device j is the exact
// cover of a "canonical window": an axis-aligned joint-space box of side 2r
// whose lower edge in each dimension sits on the coordinate of some
// neighbourhood point within [x_dim(j) - 2r, x_dim(j)]. The oracle
// recursively slides such windows dimension by dimension — the same sliding
// performed by the pseudo-code of Algorithm 2 — collects window covers, and
// keeps the inclusion-maximal ones.
//
// The oracle also answers the derived queries used by Algorithms 3-5:
// dense motions W-bar_k(j), motions within a restricted candidate set
// (needed by the Theorem 7 search), and motions over arbitrary point sets
// (needed to validate anomaly partitions). All queries touch only devices
// within 2r of the argument — the locality the paper proves sufficient.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/grid_index.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

/// Work counters; the evaluation (Table III) reports operation counts.
struct OracleCounters {
  std::uint64_t neighbourhood_queries = 0;  ///< grid lookups (message analogue)
  std::uint64_t windows_explored = 0;       ///< canonical windows visited
  std::uint64_t covers_generated = 0;       ///< window covers materialized
  std::uint64_t enumeration_calls = 0;      ///< maxMotions invocations (pre-memo)
};

/// True iff `pool` holds a tau-dense motion: a canonical-window slide with
/// early exit at the first full-dimensional window covering more than tau
/// devices (never materializes maximal families). When `anchor` is set,
/// windows are constrained to cover the anchor. `windows_explored`, when
/// non-null, is incremented per window visited. Shared by
/// MotionOracle::has_dense_motion_avoiding and the partition validity
/// checker (condition C1), which must agree on the same state.
[[nodiscard]] bool exists_dense_window_cover(const StatePair& state, const Params& params,
                                             std::span<const DeviceId> pool,
                                             std::optional<DeviceId> anchor,
                                             std::uint64_t* windows_explored = nullptr);

class MotionOracle {
 public:
  /// The oracle operates on the abnormal set A_k of `state`. Both referenced
  /// objects must outlive the oracle.
  MotionOracle(const StatePair& state, Params params);

  /// N(j): abnormal devices within joint distance 2r of j (j included when
  /// abnormal). Memoized.
  [[nodiscard]] const std::vector<DeviceId>& neighbourhood(DeviceId j);

  /// M(j): all maximal r-consistent motions containing j (Algorithm 2).
  /// Requires j in A_k. Memoized; deterministic (sorted) order.
  [[nodiscard]] const std::vector<DeviceSet>& maximal_motions(DeviceId j);

  /// W-bar_k(j): maximal motions containing j that are tau-dense.
  [[nodiscard]] std::vector<DeviceSet> dense_motions(DeviceId j);

  /// Maximal motions containing j within A_k \ removed. Used by the
  /// Theorem 7 search, where collections of dense motions are "removed".
  [[nodiscard]] std::vector<DeviceSet> maximal_motions_excluding(
      DeviceId j, const DeviceSet& removed);

  /// True iff a tau-dense motion containing j exists within A_k \ removed —
  /// relation (4) of Theorem 7 (its negation, precisely). Memoized per j.
  /// Short-circuits at the first dense window cover: it never materializes
  /// the maximal family (this query dominates the Theorem-7 search cost).
  [[nodiscard]] bool has_dense_motion_avoiding(DeviceId j, const DeviceSet& removed);

  /// All maximal motions within an arbitrary pool of abnormal devices, no
  /// anchoring device. Used by the partition validity checker (condition C1)
  /// and by Algorithm 1, where maximality is relative to the remaining pool.
  [[nodiscard]] std::vector<DeviceSet> maximal_motions_of_pool(
      std::vector<DeviceId> pool) const;

  /// Maximal motions containing j *relative to a pool* (Algorithm 1's
  /// "maximal r-consistent motion in S"). Requires j in pool.
  [[nodiscard]] std::vector<DeviceSet> maximal_motions_in_pool(
      DeviceId j, std::vector<DeviceId> pool) const;

  [[nodiscard]] const OracleCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const StatePair& state() const noexcept { return state_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  /// Canonical-window enumeration over `pool`; when `anchor` is set, windows
  /// are constrained to cover the anchor (maximal motions containing it).
  [[nodiscard]] std::vector<DeviceSet> enumerate(std::vector<DeviceId> pool,
                                                 std::optional<DeviceId> anchor) const;

  /// Early-exit variant: true iff some window covering `anchor` within
  /// `pool` holds more than tau devices at every dimension.
  [[nodiscard]] bool exists_dense_cover(std::vector<DeviceId> pool, DeviceId anchor);

  void slide(std::span<const DeviceId> active, std::size_t dim_index,
             std::optional<DeviceId> anchor,
             std::vector<DeviceSet>& covers) const;

  const StatePair& state_;
  Params params_;
  GridIndex grid_;
  mutable OracleCounters counters_;
  std::unordered_map<DeviceId, std::vector<DeviceId>> neighbourhood_memo_;
  std::unordered_map<DeviceId, std::vector<DeviceSet>> motions_memo_;
  // Memo for has_dense_motion_avoiding keyed by (device, removed-set hash).
  std::unordered_map<std::uint64_t, bool> avoid_memo_;
};

}  // namespace acn
