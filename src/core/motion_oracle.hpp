// MotionOracle: query view over the snapshot-level MotionPlane (the paper's
// Algorithm 2, `maxMotions`, plus the derived queries of Algorithms 3-5).
//
// Key observation (see DESIGN.md): a set B has an r-consistent motion in
// [k-1, k] iff the bounding box of its joint positions has side <= 2r in
// every dimension. Every maximal motion containing device j is the exact
// cover of a "canonical window": an axis-aligned joint-space box of side 2r
// whose lower edge in each dimension sits on the coordinate of some
// neighbourhood point within [x_dim(j) - 2r, x_dim(j)]. The plane performs
// that sliding once per snapshot for every device of A_k
// (enumerate_maximal_windows in motion_plane.hpp); the oracle reads the
// precomputed families and answers the remaining *parameterized* queries —
// motions within a restricted candidate set (the Theorem 7 search), motions
// over arbitrary pools (anomaly-partition validation) — by running the same
// slide on demand. All queries touch only devices within 2r of the argument,
// the locality the paper proves sufficient.
//
// The oracle is cheap to construct from an existing plane: it owns only
// memo tables (materialized families, the per-(j, removed) avoid memo), so
// every worker thread of the parallel characterization path gets a private
// oracle over one shared read-only plane.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/motion_plane.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

/// True iff `pool` holds a tau-dense motion: a canonical-window slide with
/// early exit at the first full-dimensional window covering more than tau
/// devices (never materializes maximal families). When `anchor` is set,
/// windows are constrained to cover the anchor. `windows_explored`, when
/// non-null, is incremented per window visited. Shared by
/// MotionOracle::has_dense_motion_avoiding and the partition validity
/// checker (condition C1), which must agree on the same state.
[[nodiscard]] bool exists_dense_window_cover(const StatePair& state, const Params& params,
                                             std::span<const DeviceId> pool,
                                             std::optional<DeviceId> anchor,
                                             std::uint64_t* windows_explored = nullptr);

class MotionOracle {
 public:
  /// Oracle over the abnormal set A_k of `state`. Both referenced objects
  /// must outlive the oracle. The backing MotionPlane is built lazily on
  /// the first per-device query, so pool-only consumers (the Algorithm 1
  /// greedy builders) never pay the plane build.
  MotionOracle(const StatePair& state, Params params);

  /// Thin view over an existing plane (must outlive the oracle). Used by the
  /// parallel characterization path: one shared plane, one oracle (and thus
  /// one set of memo tables) per worker.
  explicit MotionOracle(const MotionPlane& plane);

  // Non-copyable/movable: the view may point into its own owned plane.
  MotionOracle(const MotionOracle&) = delete;
  MotionOracle& operator=(const MotionOracle&) = delete;

  /// N(j): abnormal devices within joint distance 2r of j (j included when
  /// abnormal). Precomputed by the plane for abnormal devices; memoized grid
  /// query otherwise.
  [[nodiscard]] std::span<const DeviceId> neighbourhood(DeviceId j);

  /// M(j): all maximal r-consistent motions containing j (Algorithm 2).
  /// Requires j in A_k. Materialized from the plane on first access;
  /// deterministic (sorted) order.
  [[nodiscard]] const std::vector<DeviceSet>& maximal_motions(DeviceId j);

  /// W-bar_k(j): maximal motions containing j that are tau-dense. Memoized
  /// (split_neighbourhood asks for every neighbour's dense family).
  [[nodiscard]] const std::vector<DeviceSet>& dense_motions(DeviceId j);

  /// Maximal motions containing j within A_k \ removed. Used by the
  /// Theorem 7 search, where collections of dense motions are "removed".
  [[nodiscard]] std::vector<DeviceSet> maximal_motions_excluding(
      DeviceId j, const DeviceSet& removed);

  /// True iff a tau-dense motion containing j exists within A_k \ removed —
  /// relation (4) of Theorem 7 (its negation, precisely). Memoized per
  /// (j, removed) pair. Short-circuits at the first dense window cover: it
  /// never materializes the maximal family (this query dominates the
  /// Theorem-7 search cost).
  [[nodiscard]] bool has_dense_motion_avoiding(DeviceId j, const DeviceSet& removed);

  /// All maximal motions within an arbitrary pool of abnormal devices, no
  /// anchoring device. Used by the partition validity checker (condition C1)
  /// and by Algorithm 1, where maximality is relative to the remaining pool.
  [[nodiscard]] std::vector<DeviceSet> maximal_motions_of_pool(
      std::vector<DeviceId> pool) const;

  /// Maximal motions containing j *relative to a pool* (Algorithm 1's
  /// "maximal r-consistent motion in S"). Requires j in pool.
  [[nodiscard]] std::vector<DeviceSet> maximal_motions_in_pool(
      DeviceId j, std::vector<DeviceId> pool) const;

  /// Plane build counters (once built) plus this view's query counters.
  [[nodiscard]] const OracleCounters& counters() const noexcept { return counters_; }
  /// The backing plane, building it if this oracle owns a lazy one.
  [[nodiscard]] const MotionPlane& plane() const { return ensure_plane(); }
  [[nodiscard]] const StatePair& state() const noexcept { return state_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  /// Memo key for has_dense_motion_avoiding: the device and the removed-set
  /// hash are stored side by side (not mixed into one word), so two distinct
  /// (j, removed) pairs can only alias if the removed sets themselves
  /// collide on their 64-bit FNV hash.
  struct AvoidKey {
    DeviceId device;
    std::uint64_t removed_hash;
    friend bool operator==(const AvoidKey&, const AvoidKey&) = default;
  };
  struct AvoidKeyHash {
    std::size_t operator()(const AvoidKey& key) const noexcept {
      return static_cast<std::size_t>(
          key.removed_hash ^ (0x9E3779B97F4A7C15ULL * (key.device + 1)));
    }
  };

  /// Early-exit variant: true iff some window covering `anchor` within
  /// `pool` holds more than tau devices at every dimension.
  [[nodiscard]] bool exists_dense_cover(std::span<const DeviceId> pool, DeviceId anchor);

  /// Builds the owned plane on first use (lazy ctor) and folds its build
  /// counters into counters_.
  const MotionPlane& ensure_plane() const;

  const StatePair& state_;
  Params params_;
  mutable std::optional<MotionPlane> owned_plane_;  ///< lazy ctor's plane
  mutable const MotionPlane* plane_;                ///< null until built/borrowed
  mutable OracleCounters counters_;
  // Families materialized as DeviceSets for the set-algebra call sites;
  // built from the plane's interned runs on first access.
  std::unordered_map<DeviceId, std::vector<DeviceSet>> motions_memo_;
  std::unordered_map<DeviceId, std::vector<DeviceSet>> dense_memo_;
  // Neighbourhoods of non-abnormal query devices (not covered by the plane).
  std::unordered_map<DeviceId, std::vector<DeviceId>> extra_neighbourhood_memo_;
  std::unordered_map<AvoidKey, bool, AvoidKeyHash> avoid_memo_;
};

}  // namespace acn
