#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/motion.hpp"

namespace acn {

AnomalyPartition::AnomalyPartition(std::vector<DeviceSet> classes)
    : classes_(std::move(classes)) {
  DeviceSet seen;
  for (const DeviceSet& cls : classes_) {
    if (cls.empty()) {
      throw std::invalid_argument("AnomalyPartition: empty class");
    }
    if (!seen.is_disjoint_from(cls)) {
      throw std::invalid_argument("AnomalyPartition: overlapping classes");
    }
    seen = seen.set_union(cls);
  }
}

const DeviceSet& AnomalyPartition::class_of(DeviceId j) const {
  for (const DeviceSet& cls : classes_) {
    if (cls.contains(j)) return cls;
  }
  throw std::out_of_range("AnomalyPartition::class_of: device " + std::to_string(j) +
                          " not covered");
}

bool AnomalyPartition::covers(DeviceId j) const noexcept {
  for (const DeviceSet& cls : classes_) {
    if (cls.contains(j)) return true;
  }
  return false;
}

DeviceSet AnomalyPartition::support() const {
  DeviceSet all;
  for (const DeviceSet& cls : classes_) all = all.set_union(cls);
  return all;
}

DeviceSet AnomalyPartition::massive_devices(std::uint32_t tau) const {
  DeviceSet out;
  for (const DeviceSet& cls : classes_) {
    if (is_dense(cls, tau)) out = out.set_union(cls);
  }
  return out;
}

DeviceSet AnomalyPartition::isolated_devices(std::uint32_t tau) const {
  DeviceSet out;
  for (const DeviceSet& cls : classes_) {
    if (!is_dense(cls, tau)) out = out.set_union(cls);
  }
  return out;
}

std::string AnomalyPartition::to_string() const {
  std::string s = "{";
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (i > 0) s += ", ";
    s += classes_[i].to_string();
  }
  s += "}";
  return s;
}

bool is_valid_anomaly_partition(const StatePair& state, Params params,
                                const AnomalyPartition& partition, std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };

  if (partition.support() != state.abnormal()) {
    return fail("classes do not cover A_k exactly");
  }
  for (const DeviceSet& cls : partition.classes()) {
    if (!has_consistent_motion(state, cls, params.r)) {
      return fail("class " + cls.to_string() + " is not an r-consistent motion");
    }
  }

  // Union of sparse classes and the list of dense classes.
  DeviceSet sparse_union;
  std::vector<const DeviceSet*> dense_classes;
  for (const DeviceSet& cls : partition.classes()) {
    if (is_dense(cls, params.tau)) {
      dense_classes.push_back(&cls);
    } else {
      sparse_union = sparse_union.set_union(cls);
    }
  }

  // C1 <=> every maximal motion inside the sparse union has <= tau members.
  // (Any dense motion B inside the sparse union extends to a maximal motion
  // of the sparse-union pool that is itself dense; conversely a dense maximal
  // motion is a dense subset.)
  if (!sparse_union.empty()) {
    // Pure pool enumeration — no plane build, the pool is the input.
    std::vector<DeviceId> pool(sparse_union.begin(), sparse_union.end());
    for (const DeviceSet& motion : enumerate_maximal_windows(
             state, params, std::move(pool), std::nullopt)) {
      if (is_dense(motion, params.tau)) {
        return fail("C1 violated: dense motion " + motion.to_string() +
                    " inside the sparse union");
      }
    }
  }

  // C2 <=> no single sparse-union device can join a dense class. (If some
  // B merges with B_i, any single ell in B yields B_i + {ell} subset of
  // B_i + B, still an r-consistent motion; singletons are subsets too.)
  for (const DeviceSet* dense : dense_classes) {
    for (const DeviceId ell : sparse_union) {
      if (motion_with_extra(state, *dense, ell, params.r)) {
        return fail("C2 violated: device " + std::to_string(ell) +
                    " can join dense class " + dense->to_string());
      }
    }
  }
  return true;
}

namespace {

/// One greedy pass; `dense_first` extracts a largest maximal motion of the
/// remaining pool (paper's angelic choice), otherwise a uniformly random
/// maximal motion containing a uniformly random device (faithful reading).
AnomalyPartition greedy_pass(MotionOracle& oracle, Rng& rng, bool dense_first) {
  const DeviceSet& abnormal = oracle.state().abnormal();
  std::vector<DeviceId> pool(abnormal.begin(), abnormal.end());
  std::vector<DeviceSet> classes;

  while (!pool.empty()) {
    DeviceSet chosen;
    if (dense_first) {
      // Extract a maximum-cardinality maximal motion of the remaining pool;
      // ties broken uniformly at random.
      std::vector<DeviceSet> all = oracle.maximal_motions_of_pool(pool);
      std::size_t best = 0;
      for (const DeviceSet& motion : all) best = std::max(best, motion.size());
      std::vector<const DeviceSet*> best_sets;
      for (const DeviceSet& motion : all) {
        if (motion.size() == best) best_sets.push_back(&motion);
      }
      chosen = *best_sets[rng.uniform_int(best_sets.size())];
    } else {
      const DeviceId j = pool[rng.uniform_int(pool.size())];
      std::vector<DeviceSet> motions = oracle.maximal_motions_in_pool(j, pool);
      chosen = motions[rng.uniform_int(motions.size())];
    }
    classes.push_back(chosen);
    std::erase_if(pool, [&](DeviceId id) { return chosen.contains(id); });
  }
  return AnomalyPartition(std::move(classes));
}

}  // namespace

AnomalyPartition build_greedy_partition(MotionOracle& oracle, Rng& rng) {
  return greedy_pass(oracle, rng, /*dense_first=*/false);
}

AnomalyPartition build_anomaly_partition(MotionOracle& oracle, Rng& rng,
                                         int max_attempts) {
  std::string why;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Dense-first is the reliable strategy; interleave faithful-random passes
    // to keep the sampled partition distribution broad.
    const bool dense_first = attempt % 2 == 0;
    AnomalyPartition partition = greedy_pass(oracle, rng, dense_first);
    if (is_valid_anomaly_partition(oracle.state(), oracle.params(), partition, &why)) {
      return partition;
    }
  }
  throw std::runtime_error("build_anomaly_partition: no valid partition after " +
                           std::to_string(max_attempts) + " attempts; last: " + why);
}

}  // namespace acn
