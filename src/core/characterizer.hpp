// Local characterization of anomalies — the paper's primary contribution.
//
// Implements Algorithm 3 (characterize) and Algorithms 4/5 (full NSC):
//   * Theorem 5  — j in I_k  <=>  W-bar_k(j) is empty;
//   * Theorem 6  — sufficient condition for j in M_k: some maximal dense
//     motion of j intersects J_k(j) in more than tau devices;
//   * Theorem 7  — NSC for j in M_k: no collection C of pairwise disjoint
//     dense motions of L_k(j)-neighbours (avoiding j) simultaneously breaks
//     relation (4) (some dense motion of j survives outside the union of C)
//     and relation (5) (some member of C is consistent with j);
//   * Corollary 8 — j in U_k <=> such a *violating* collection exists.
//
// Everything is computed from trajectories within 4r of j (neighbourhoods
// of neighbours), matching the locality claim at the end of §V.
//
// All motion families are read from a snapshot-level MotionPlane built once
// per (state, params): the Theorem 5/6 split walks interned motion runs
// without materializing sets, and because each per-device decision is a
// pure read of the plane, the batch paths fan A_k out over the persistent
// WorkerPool (disjoint result slots, byte-identical to the serial walk).
//
// The Theorem 7 search: a violating collection only ever contains sets B
// with (a) |B| > tau, (b) B a subset of some maximal dense motion M of an
// L_k(j)-neighbour with j not in M (any dense motion extends to a maximal
// one, which cannot contain j because B holds a point farther than 2r from
// j — see (c)), (c) at least one member farther than 2r from j in the joint
// space (otherwise B + {j} is a motion and relation (5) holds), and (d) at
// least one member of L_k(j) (Theorem 7 draws candidate sets from W_k(ell),
// ell in L_k(j), whose members contain ell) — and collections are WLOG one
// element per base, since disjoint elements of the same base merge. The
// search walks the maximal candidate sets (word-parallel bitsets over the
// compact member universe), at each step either skipping one or carving a
// qualifying subset out of its not-yet-used members, testing
// not-relation-(4) by counting survivors of j's precomputed dense family.
// Every node applies an exact subtree bound — if even removing every member
// the remaining *usable* bases offer leaves some dense motion of j with tau
// survivors, the subtree is fruitless — which is what ends the search on
// the dense superposed blobs where blind enumeration drowned. Subsets (not
// just whole sets) must be explored: two overlapping maximal motions may
// both contribute only if trimmed to disjoint parts. A node budget bounds
// the worst case; hitting it is reported, never silent.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/device_set.hpp"
#include "core/motion_oracle.hpp"
#include "core/motion_plane.hpp"
#include "core/params.hpp"
#include "core/partition_enumerator.hpp"
#include "core/state.hpp"

namespace acn {

class WorkerPool;

/// Which condition produced the decision (Table III buckets by this).
enum class DecisionRule : std::uint8_t {
  kTheorem5,         ///< isolated: no dense motion at all
  kTheorem6,         ///< massive via the cheap sufficient condition
  kTheorem7,         ///< massive via the full NSC (search exhausted, no witness)
  kCorollary8,       ///< unresolved: a violating collection was found
  kTheorem6Only,     ///< unresolved *by Algorithm 3* (full NSC not requested)
  kBudgetExhausted,  ///< search budget hit; reported as unresolved (safe side)
};

[[nodiscard]] constexpr const char* to_string(DecisionRule rule) noexcept {
  switch (rule) {
    case DecisionRule::kTheorem5: return "Theorem5";
    case DecisionRule::kTheorem6: return "Theorem6";
    case DecisionRule::kTheorem7: return "Theorem7";
    case DecisionRule::kCorollary8: return "Corollary8";
    case DecisionRule::kTheorem6Only: return "Theorem6Only";
    case DecisionRule::kBudgetExhausted: return "BudgetExhausted";
  }
  return "?";
}

struct CharacterizeOptions {
  /// Run Algorithms 4/5 (Theorem 7 NSC) when Algorithm 3 says "unresolved".
  bool run_full_nsc = true;
  /// Upper bound on Theorem-7 search nodes per device. A node is one DFS
  /// entry or candidate combination, and every DFS entry now applies an
  /// exact achievability bound over the usable remaining bases — one node
  /// prunes what used to take thousands of blind combination nodes, so the
  /// budget is calibrated far lower than the seed's 4M. Every resolvable
  /// configuration observed across the paper-scale and n=20000 superposed
  /// workloads finishes within ~60k nodes; the budget leaves 4x headroom.
  std::uint64_t node_budget = 262'144;
  /// |A_k| below which decide_all_parallel / characterize_all_parallel run
  /// the inline serial loop instead of engaging the shared worker pool
  /// (the recorded bench showed the thread machinery costing more than it
  /// saved on every n=1000/5000 cell). Tests pin the pooled path by
  /// setting this to 1.
  std::size_t parallel_grain = 256;
};

/// Outcome of characterizing one device, with the work accounting the
/// evaluation section reports (Table III).
struct Decision {
  AnomalyClass cls = AnomalyClass::kUnresolved;
  DecisionRule rule = DecisionRule::kTheorem5;
  bool exact = true;  ///< false only when the node budget was exhausted

  std::size_t maximal_motion_count = 0;     ///< |M(j)|   (cost metric, I_k)
  std::size_t dense_motion_count = 0;       ///< |W-bar(j)| (cost metric, M_k/Thm6)
  std::uint64_t collections_tested = 0;     ///< Theorem-7 search nodes
};

class Characterizer {
 public:
  /// Builds a private MotionPlane for `state`, which must outlive the
  /// characterizer.
  explicit Characterizer(const StatePair& state, Params params,
                         CharacterizeOptions options = {});

  /// Reads an externally owned plane (must outlive the characterizer);
  /// nothing is recomputed. Lets one plane serve several consumers of the
  /// same snapshot.
  explicit Characterizer(const MotionPlane& plane, CharacterizeOptions options = {});

  // Non-copyable/movable: plane_ and oracle_ may point into owned_plane_.
  Characterizer(const Characterizer&) = delete;
  Characterizer& operator=(const Characterizer&) = delete;

  /// Characterizes one abnormal device (throws if j is not in A_k).
  [[nodiscard]] Decision characterize(DeviceId j);

  /// Decisions for every device of A_k, in A_k (ascending id) order.
  [[nodiscard]] std::vector<Decision> decide_all();

  /// Same decisions, fanned out over the process-wide persistent WorkerPool
  /// with at most `threads` lanes (0 = every lane). Every per-device
  /// decision is a read-only function of the shared plane and writes a
  /// private slot, so the result is byte-identical to decide_all()
  /// regardless of scheduling — and the fan-out silently degrades to the
  /// inline serial loop when |A_k| is below the parallel grain (threading
  /// overhead exceeds the work on small intervals).
  [[nodiscard]] std::vector<Decision> decide_all_parallel(unsigned threads = 0);

  /// decide_all over a caller-owned pool (the streaming engine passes its
  /// own); `min_fanout` is the |A_k| below which the loop runs inline. When
  /// the pool engages, devices are dispatched costliest-first (dense-family
  /// x neighbourhood size proxy) so one expensive device drawn late cannot
  /// serialize the tail; slots are written by device, so results never
  /// depend on the ordering. `lane_ms`, when given, receives per-lane busy
  /// times (see WorkerPool::for_each).
  [[nodiscard]] std::vector<Decision> decide_all_on(
      WorkerPool& pool, std::size_t min_fanout, unsigned max_lanes = 0,
      std::vector<double>* lane_ms = nullptr);

  /// Characterizes every device of A_k and buckets them.
  [[nodiscard]] CharacterizationSets characterize_all();

  /// Parallel variant of characterize_all (same contract as
  /// decide_all_parallel).
  [[nodiscard]] CharacterizationSets characterize_all_parallel(unsigned threads = 0);

  /// D_k(j): union of the maximal dense motions containing j.
  [[nodiscard]] DeviceSet neighbourhood_d(DeviceId j);
  /// J_k(j): members of D_k(j) whose every maximal dense motion contains j.
  [[nodiscard]] DeviceSet neighbourhood_j(DeviceId j);
  /// L_k(j): members of D_k(j) with a maximal dense motion avoiding j.
  [[nodiscard]] DeviceSet neighbourhood_l(DeviceId j);

  [[nodiscard]] const MotionPlane& plane() const noexcept { return *plane_; }
  [[nodiscard]] MotionOracle& oracle() noexcept { return oracle_; }
  [[nodiscard]] const Params& params() const noexcept { return plane_->params(); }

 private:
  struct Split {
    DeviceSet d;  ///< D_k(j)
    DeviceSet j;  ///< J_k(j)
    DeviceSet l;  ///< L_k(j)
  };
  [[nodiscard]] Split split_neighbourhood(DeviceId j) const;

  struct NscOutcome {
    bool violating_found = false;
    bool exhausted = false;
    std::uint64_t nodes = 0;
  };
  /// Plane-const and self-contained (the search carries its own bitset
  /// state), so any number of pool lanes may run it concurrently.
  [[nodiscard]] NscOutcome search_violating_collection(DeviceId j,
                                                       const DeviceSet& l) const;
  [[nodiscard]] Decision characterize_device(DeviceId j) const;
  [[nodiscard]] CharacterizationSets bucket(const std::vector<Decision>& decisions) const;

  std::optional<MotionPlane> owned_plane_;  ///< engaged by the state ctor
  const MotionPlane* plane_;
  CharacterizeOptions options_;
  MotionOracle oracle_;
};

}  // namespace acn
