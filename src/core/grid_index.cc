#include "core/grid_index.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "common/worker_pool.hpp"

namespace acn {
namespace {

// Incremental FNV-style mix of one per-dimension cell index into the packed
// key. With cell sides >= 1e-9 and coordinates in [0,1] the indices are
// small; the mix keeps distinct cells in distinct buckets with negligible
// collision probability (and collisions only cost speed, never correctness:
// hits are filtered by exact joint distance and collided buckets are scanned
// once — see within_into).
constexpr std::uint64_t kKeyBasis = 1469598103934665603ULL;

std::uint64_t mix(std::uint64_t key, std::int64_t cell_coord) noexcept {
  key ^= static_cast<std::uint64_t>(cell_coord) + 0x9E3779B97F4A7C15ULL;
  key *= 1099511628211ULL;
  return key;
}

std::uint64_t key_of(const Point& position, double cell) noexcept {
  std::uint64_t key = kKeyBasis;
  for (std::size_t i = 0; i < position.dim(); ++i) {
    key = mix(key, static_cast<std::int64_t>(std::floor(position[i] / cell)));
  }
  return key;
}

/// Odometer over every cell within `radius` of `centre`, invoking
/// visit(bucket) once per distinct bucket (two colliding cell keys share a
/// bucket, which must then be scanned once — the visited guard below).
/// `lookup(cell0, key) -> const std::vector<DeviceId>*` resolves a cell to
/// its bucket (or nullptr); it receives the first-dimension cell index so a
/// sharded caller can pick the owning shard's map — that index is exactly
/// what ShardMap stripes on. Shared by every within_into so all the indexes
/// agree on scan geometry.
template <typename Lookup, typename Visit>
void scan_cells_with(Lookup&& lookup, const Point& centre, double cell,
                     double radius, Visit&& visit) {
  const std::size_t d = centre.dim();
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell));

  std::array<std::int64_t, Point::kMaxDim> base{};
  for (std::size_t i = 0; i < d; ++i) {
    base[i] = static_cast<std::int64_t>(std::floor(centre[i] / cell));
  }

  std::vector<const std::vector<DeviceId>*> visited;
  visited.reserve(16);

  std::array<std::int64_t, Point::kMaxDim> offset{};
  offset.fill(0);
  for (std::size_t i = 0; i < d; ++i) offset[i] = -reach;
  for (;;) {
    std::uint64_t key = kKeyBasis;
    for (std::size_t i = 0; i < d; ++i) key = mix(key, base[i] + offset[i]);
    if (const std::vector<DeviceId>* bucket = lookup(base[0] + offset[0], key)) {
      if (std::find(visited.begin(), visited.end(), bucket) == visited.end()) {
        visited.push_back(bucket);
        visit(*bucket);
      }
    }
    std::size_t i = 0;
    while (i < d && ++offset[i] > reach) {
      offset[i] = -reach;
      ++i;
    }
    if (i == d) break;
  }
}

template <typename Visit>
void scan_cells(const std::unordered_map<std::uint64_t, std::vector<DeviceId>>& cells,
                const Point& centre, double cell, double radius, Visit&& visit) {
  scan_cells_with(
      [&cells](std::int64_t, std::uint64_t key) -> const std::vector<DeviceId>* {
        const auto it = cells.find(key);
        return it != cells.end() ? &it->second : nullptr;
      },
      centre, cell, radius, visit);
}

}  // namespace

std::vector<std::vector<DeviceId>> connected_components(
    std::span<const DeviceId> ids,
    const std::function<std::span<const DeviceId>(std::size_t)>& neighbours_of) {
  const std::size_t m = ids.size();
  std::vector<std::uint32_t> parent(m);
  for (std::size_t i = 0; i < m; ++i) parent[i] = static_cast<std::uint32_t>(i);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Dense id -> rank map: one O(max id) table turns the per-edge rank
  // lookup into an array read. The edge count is the profile here (every
  // neighbourhood list entry is an edge), so per-edge binary searches were
  // the single hottest line of the plane build at n = 50k.
  std::vector<std::uint32_t> rank_map(m == 0 ? 0 : ids.back() + 1);
  for (std::size_t i = 0; i < m; ++i) rank_map[ids[i]] = static_cast<std::uint32_t>(i);
  for (std::size_t rank = 0; rank < m; ++rank) {
    for (const DeviceId other : neighbours_of(rank)) {
      parent[find(static_cast<std::uint32_t>(rank))] = find(rank_map[other]);
    }
  }
  // Scanning ranks in ascending order keeps every component sorted by id
  // and assigns component slots by smallest member.
  std::vector<std::vector<DeviceId>> components;
  std::vector<std::int64_t> slot(m, -1);
  for (std::size_t rank = 0; rank < m; ++rank) {
    const std::uint32_t root = find(static_cast<std::uint32_t>(rank));
    if (slot[root] < 0) {
      slot[root] = static_cast<std::int64_t>(components.size());
      components.emplace_back();
    }
    components[static_cast<std::size_t>(slot[root])].push_back(ids[rank]);
  }
  return components;
}

GridIndex::GridIndex(const StatePair& state, const DeviceSet& members, double cell)
    : state_(state), cell_(cell), member_count_(members.size()) {
  if (cell <= 0.0) throw std::invalid_argument("GridIndex: cell must be > 0");
  cells_.reserve(members.size());
  for (const DeviceId j : members) {
    cells_[cell_key(state_.curr_pos(j))].push_back(j);
  }
}

std::uint64_t GridIndex::cell_key(const Point& curr_position) const noexcept {
  std::uint64_t key = kKeyBasis;
  for (std::size_t i = 0; i < curr_position.dim(); ++i) {
    key = mix(key, static_cast<std::int64_t>(std::floor(curr_position[i] / cell_)));
  }
  return key;
}

std::vector<DeviceId> GridIndex::within(DeviceId j, double radius) const {
  std::vector<DeviceId> out;
  within_into(j, radius, out);
  return out;
}

void GridIndex::within_into(DeviceId j, double radius,
                            std::vector<DeviceId>& out) const {
  out.clear();
  scan_cells(cells_, state_.curr_pos(j), cell_, radius,
             [&](const std::vector<DeviceId>& bucket) {
               for (const DeviceId candidate : bucket) {
                 if (state_.joint_distance(j, candidate) <= radius) {
                   out.push_back(candidate);
                 }
               }
             });
  std::sort(out.begin(), out.end());
}

FleetGrid::FleetGrid(double cell) : cell_(cell) {
  if (cell <= 0.0) throw std::invalid_argument("FleetGrid: cell must be > 0");
}

void FleetGrid::rebuild(const StatePair& state) {
  cells_.clear();
  device_count_ = state.n();
  cells_.reserve(device_count_ / 4 + 1);
  for (DeviceId j = 0; j < device_count_; ++j) {
    cells_[key_of(state.curr_pos(j), cell_)].push_back(j);
  }
}

void FleetGrid::apply(const StatePair& state, std::span<const DeviceId> moved) {
  for (const DeviceId j : moved) {
    const std::uint64_t old_key = key_of(state.prev_pos(j), cell_);
    const std::uint64_t new_key = key_of(state.curr_pos(j), cell_);
    if (old_key == new_key) continue;
    std::vector<DeviceId>& old_bucket = cells_[old_key];
    if (const auto it = std::find(old_bucket.begin(), old_bucket.end(), j);
        it != old_bucket.end()) {
      old_bucket.erase(it);
    }
    if (old_bucket.empty()) cells_.erase(old_key);
    cells_[new_key].push_back(j);
  }
}

void FleetGrid::insert(const StatePair& state, DeviceId j) {
  cells_[key_of(state.curr_pos(j), cell_)].push_back(j);
  ++device_count_;
}

void FleetGrid::remove(const StatePair& state, DeviceId j) {
  const std::uint64_t key = key_of(state.curr_pos(j), cell_);
  const auto bucket_it = cells_.find(key);
  if (bucket_it != cells_.end()) {
    std::vector<DeviceId>& bucket = bucket_it->second;
    if (const auto it = std::find(bucket.begin(), bucket.end(), j);
        it != bucket.end()) {
      bucket.erase(it);
      if (bucket.empty()) cells_.erase(bucket_it);
      --device_count_;
      return;
    }
  }
  throw std::logic_error(
      "FleetGrid::remove: device not indexed at its current position");
}

void FleetGrid::within_into(const StatePair& state, DeviceId j, double radius,
                            std::span<const std::uint8_t> member_flag,
                            std::vector<DeviceId>& out) const {
  out.clear();
  scan_cells(cells_, state.curr_pos(j), cell_, radius,
             [&](const std::vector<DeviceId>& bucket) {
               for (const DeviceId candidate : bucket) {
                 // The cheap membership bit goes first: full-fleet buckets
                 // are dense, the abnormal subset is sparse.
                 if (!member_flag.empty() && member_flag[candidate] == 0) continue;
                 if (state.joint_distance(j, candidate) <= radius) {
                   out.push_back(candidate);
                 }
               }
             });
  std::sort(out.begin(), out.end());
}

ShardedFleetGrid::ShardedFleetGrid(double cell, unsigned shards)
    : map_(cell, shards) {
  if (cell <= 0.0) {
    throw std::invalid_argument("ShardedFleetGrid: cell must be > 0");
  }
  shards_.resize(map_.shards());
}

void ShardedFleetGrid::rebuild(const StatePair& state, WorkerPool* pool,
                               std::vector<double>* lane_ms) {
  if (lane_ms != nullptr) lane_ms->clear();
  for (Shard& shard : shards_) {
    shard.cells.clear();
    shard.staged.clear();
  }
  device_count_ = state.n();

  // Serial routing pass (the rebuild-time analogue of stage()), then the
  // expensive part — hash-map building — runs one shard per work item.
  std::vector<std::vector<Op>> routed(shards_.size());
  for (auto& ops : routed) ops.reserve(device_count_ / shards_.size() + 1);
  for (DeviceId j = 0; j < device_count_; ++j) {
    const Point& position = state.curr_pos(j);
    routed[map_.shard_of(position)].push_back(
        Op{key_of(position, map_.cell()), j, true});
  }
  const auto build_shard = [&](std::size_t s) {
    Shard& shard = shards_[s];
    shard.cells.reserve(routed[s].size() / 4 + 1);
    for (const Op& op : routed[s]) shard.cells[op.key].push_back(op.id);
  };
  if (pool != nullptr) {
    pool->for_each(shards_.size(), 2, build_shard, 0, lane_ms);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) build_shard(s);
  }
}

void ShardedFleetGrid::stage(const StatePair& state,
                             std::span<const DeviceId> moved) {
  const double cell = map_.cell();
  for (const DeviceId j : moved) {
    const Point& old_position = state.prev_pos(j);
    const Point& new_position = state.curr_pos(j);
    const std::uint64_t old_key = key_of(old_position, cell);
    const std::uint64_t new_key = key_of(new_position, cell);
    if (old_key == new_key) continue;
    shards_[map_.shard_of(old_position)].staged.push_back(Op{old_key, j, false});
    shards_[map_.shard_of(new_position)].staged.push_back(Op{new_key, j, true});
  }
}

void ShardedFleetGrid::apply_op(Shard& shard, const Op& op) {
  if (op.is_insert) {
    shard.cells[op.key].push_back(op.id);
    return;
  }
  const auto bucket_it = shard.cells.find(op.key);
  if (bucket_it != shard.cells.end()) {
    std::vector<DeviceId>& bucket = bucket_it->second;
    if (const auto it = std::find(bucket.begin(), bucket.end(), op.id);
        it != bucket.end()) {
      bucket.erase(it);
      if (bucket.empty()) shard.cells.erase(bucket_it);
    }
  }
}

void ShardedFleetGrid::apply_staged(const StatePair&, WorkerPool* pool,
                                    std::vector<double>* lane_ms) {
  if (lane_ms != nullptr) lane_ms->clear();
  const auto drain_shard = [&](std::size_t s) {
    Shard& shard = shards_[s];
    for (const Op& op : shard.staged) apply_op(shard, op);
    shard.staged.clear();
  };
  if (pool != nullptr) {
    pool->for_each(shards_.size(), 2, drain_shard, 0, lane_ms);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) drain_shard(s);
  }
}

void ShardedFleetGrid::insert(const StatePair& state, DeviceId j) {
  const Point& position = state.curr_pos(j);
  shards_[map_.shard_of(position)]
      .cells[key_of(position, map_.cell())]
      .push_back(j);
  ++device_count_;
}

void ShardedFleetGrid::remove(const StatePair& state, DeviceId j) {
  const Point& position = state.curr_pos(j);
  Shard& shard = shards_[map_.shard_of(position)];
  const std::uint64_t key = key_of(position, map_.cell());
  const auto bucket_it = shard.cells.find(key);
  if (bucket_it != shard.cells.end()) {
    std::vector<DeviceId>& bucket = bucket_it->second;
    if (const auto it = std::find(bucket.begin(), bucket.end(), j);
        it != bucket.end()) {
      bucket.erase(it);
      if (bucket.empty()) shard.cells.erase(bucket_it);
      --device_count_;
      return;
    }
  }
  throw std::logic_error(
      "ShardedFleetGrid::remove: device not indexed at its current position");
}

void ShardedFleetGrid::within_into(const StatePair& state, DeviceId j,
                                   double radius,
                                   std::span<const std::uint8_t> member_flag,
                                   std::vector<DeviceId>& out) const {
  out.clear();
  scan_cells_with(
      // The halo read: each scanned cell resolves to its owner shard by the
      // same stripe arithmetic stage() routes with, and the neighbour
      // shard's (immutable-between-intervals) map is read directly.
      [this](std::int64_t cell0, std::uint64_t key) -> const std::vector<DeviceId>* {
        const auto& cells = shards_[map_.shard_of_cell(cell0)].cells;
        const auto it = cells.find(key);
        return it != cells.end() ? &it->second : nullptr;
      },
      state.curr_pos(j), map_.cell(), radius,
      [&](const std::vector<DeviceId>& bucket) {
        for (const DeviceId candidate : bucket) {
          if (!member_flag.empty() && member_flag[candidate] == 0) continue;
          if (state.joint_distance(j, candidate) <= radius) {
            out.push_back(candidate);
          }
        }
      });
  std::sort(out.begin(), out.end());
}

std::size_t ShardedFleetGrid::staged_op_count() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.staged.size();
  return total;
}

}  // namespace acn
