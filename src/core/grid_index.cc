#include "core/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acn {
namespace {

// Packs per-dimension cell coordinates into one 64-bit key. With cell sides
// >= 1e-9 and coordinates in [0,1], per-dimension indices fit comfortably in
// the bits allotted per dimension (64 / d >= 8 bits for d <= 8).
std::uint64_t pack(const std::vector<std::int64_t>& cell_coords) noexcept {
  std::uint64_t key = 1469598103934665603ULL;
  for (const std::int64_t c : cell_coords) {
    key ^= static_cast<std::uint64_t>(c) + 0x9E3779B97F4A7C15ULL;
    key *= 1099511628211ULL;
  }
  return key;
}

}  // namespace

GridIndex::GridIndex(const StatePair& state, const DeviceSet& members, double cell)
    : state_(state), cell_(cell), member_count_(members.size()) {
  if (cell <= 0.0) throw std::invalid_argument("GridIndex: cell must be > 0");
  cells_.reserve(members.size());
  for (const DeviceId j : members) {
    cells_[cell_key(state_.curr_pos(j))].push_back(j);
  }
}

std::uint64_t GridIndex::cell_key(const Point& curr_position) const noexcept {
  std::vector<std::int64_t> coords(curr_position.dim());
  for (std::size_t i = 0; i < curr_position.dim(); ++i) {
    coords[i] = static_cast<std::int64_t>(std::floor(curr_position[i] / cell_));
  }
  return pack(coords);
}

std::vector<DeviceId> GridIndex::within(DeviceId j, double radius) const {
  const Point& centre = state_.curr_pos(j);
  const std::size_t d = centre.dim();
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell_));

  std::vector<std::int64_t> base(d);
  for (std::size_t i = 0; i < d; ++i) {
    base[i] = static_cast<std::int64_t>(std::floor(centre[i] / cell_));
  }

  std::vector<DeviceId> out;
  // Odometer over the (2*reach+1)^d neighbouring cells.
  std::vector<std::int64_t> offset(d, -reach);
  for (;;) {
    std::vector<std::int64_t> cell_coords(d);
    for (std::size_t i = 0; i < d; ++i) cell_coords[i] = base[i] + offset[i];
    if (const auto it = cells_.find(pack(cell_coords)); it != cells_.end()) {
      for (const DeviceId candidate : it->second) {
        if (state_.joint_distance(j, candidate) <= radius) out.push_back(candidate);
      }
    }
    std::size_t i = 0;
    while (i < d && ++offset[i] > reach) {
      offset[i] = -reach;
      ++i;
    }
    if (i == d) break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace acn
