#include "core/state.hpp"

#include <stdexcept>
#include <string>

namespace acn {

Snapshot::Snapshot(std::vector<Point> positions) : positions_(std::move(positions)) {
  if (positions_.empty()) {
    throw std::invalid_argument("Snapshot: at least one device required");
  }
  dim_ = positions_[0].dim();
  for (std::size_t j = 0; j < positions_.size(); ++j) {
    if (positions_[j].dim() != dim_) {
      throw std::invalid_argument("Snapshot: inconsistent dimension at device " +
                                  std::to_string(j));
    }
    if (!positions_[j].in_unit_box()) {
      throw std::invalid_argument("Snapshot: device " + std::to_string(j) +
                                  " outside [0,1]^d: " + positions_[j].to_string());
    }
  }
}

StatePair::StatePair(Snapshot prev, Snapshot curr, DeviceSet abnormal)
    : prev_(std::move(prev)), curr_(std::move(curr)), abnormal_(std::move(abnormal)) {
  if (prev_.size() != curr_.size()) {
    throw std::invalid_argument("StatePair: snapshots must have the same size");
  }
  if (prev_.dim() != curr_.dim()) {
    throw std::invalid_argument("StatePair: snapshots must have the same dimension");
  }
  if (!abnormal_.empty() && abnormal_[abnormal_.size() - 1] >= prev_.size()) {
    throw std::invalid_argument("StatePair: abnormal set references unknown device");
  }
  joint_.reserve(n());
  for (DeviceId j = 0; j < n(); ++j) {
    joint_.push_back(Point::concat(prev_[j], curr_[j]));
  }
  joint_cols_.resize(joint_dim() * n());
  for (std::size_t t = 0; t < joint_dim(); ++t) {
    double* col = joint_cols_.data() + t * n();
    for (DeviceId j = 0; j < n(); ++j) col[j] = joint_[j][t];
  }
}

}  // namespace acn
