#include "core/state.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/worker_pool.hpp"

namespace acn {

Snapshot::Snapshot(std::vector<Point> positions) : positions_(std::move(positions)) {
  if (positions_.empty()) {
    throw std::invalid_argument("Snapshot: at least one device required");
  }
  dim_ = positions_[0].dim();
  for (std::size_t j = 0; j < positions_.size(); ++j) {
    if (positions_[j].dim() != dim_) {
      throw std::invalid_argument("Snapshot: inconsistent dimension at device " +
                                  std::to_string(j));
    }
    if (!positions_[j].in_unit_box()) {
      throw std::invalid_argument("Snapshot: device " + std::to_string(j) +
                                  " outside [0,1]^d: " + positions_[j].to_string());
    }
  }
}

StatePair::StatePair(Snapshot prev, Snapshot curr, DeviceSet abnormal)
    : prev_(std::move(prev)), curr_(std::move(curr)), abnormal_(std::move(abnormal)) {
  if (prev_.size() != curr_.size()) {
    throw std::invalid_argument("StatePair: snapshots must have the same size");
  }
  if (prev_.dim() != curr_.dim()) {
    throw std::invalid_argument("StatePair: snapshots must have the same dimension");
  }
  if (!abnormal_.empty() && abnormal_[abnormal_.size() - 1] >= prev_.size()) {
    throw std::invalid_argument("StatePair: abnormal set references unknown device");
  }
  joint_.reserve(n());
  for (DeviceId j = 0; j < n(); ++j) {
    joint_.push_back(Point::concat(prev_[j], curr_[j]));
  }
  joint_cols_.resize(joint_dim() * n());
  qcols_.resize(joint_dim() * n());
  for (std::size_t t = 0; t < joint_dim(); ++t) {
    double* col = joint_cols_.data() + t * n();
    std::uint32_t* qcol = qcols_.data() + t * n();
    for (DeviceId j = 0; j < n(); ++j) {
      col[j] = joint_[j][t];
      qcol[j] = kernels::quantize(col[j]);
    }
  }
}

void StatePair::advance(Snapshot next, DeviceSet abnormal,
                        std::vector<DeviceId>* moved, WorkerPool* pool,
                        std::vector<double>* lane_ms) {
  if (next.size() != n()) {
    throw std::invalid_argument(
        "StatePair::advance: fleet size changed (the device universe is "
        "fixed per engine; route churn through FleetRoster, which parks "
        "vacant slots instead of resizing)");
  }
  if (next.dim() != dim()) {
    throw std::invalid_argument("StatePair::advance: dimension changed");
  }
  if (!abnormal.empty() && abnormal[abnormal.size() - 1] >= n()) {
    throw std::invalid_argument(
        "StatePair::advance: abnormal set references unknown device");
  }
  const std::size_t d = dim();
  const std::size_t count = n();
  prev_ = std::move(curr_);
  curr_ = std::move(next);
  abnormal_ = std::move(abnormal);
  if (moved != nullptr) moved->clear();
  // Cleared up front so a serial roll reports "no lanes ran" instead of
  // leaving a previous phase's numbers in a caller-reused buffer.
  if (lane_ms != nullptr) lane_ms->clear();

  // joint_[j] = (prev | curr). After the roll the new prev half is the old
  // curr half, already stored at offsets [d, 2d) — shift it down only where
  // it differs (the device moved in the PREVIOUS interval); refresh the
  // curr half only where the new snapshot differs (it moved in THIS one).
  const auto roll_range = [&](DeviceId begin, DeviceId end,
                              std::vector<DeviceId>* range_moved) {
    for (DeviceId j = begin; j < end; ++j) {
      Point& joint = joint_[j];
      for (std::size_t t = 0; t < d; ++t) {
        const double x = joint[d + t];
        if (joint[t] != x) {
          joint[t] = x;
          joint_cols_[t * count + j] = x;
          qcols_[t * count + j] = kernels::quantize(x);
        }
      }
      const Point& current = curr_[j];
      bool changed = false;
      for (std::size_t t = 0; t < d; ++t) {
        const double x = current[t];
        if (joint[d + t] != x) {
          joint[d + t] = x;
          joint_cols_[(d + t) * count + j] = x;
          qcols_[(d + t) * count + j] = kernels::quantize(x);
          changed = true;
        }
      }
      if (changed && range_moved != nullptr) range_moved->push_back(j);
    }
  };

  // The fan-out pays off only when the id scan dwarfs the section setup;
  // below the grain (or without a pool) the roll stays a plain loop.
  constexpr std::size_t kChunk = 16384;
  if (pool == nullptr || count < 2 * kChunk) {
    roll_range(0, static_cast<DeviceId>(count), moved);
    return;
  }
  const std::size_t chunks = (count + kChunk - 1) / kChunk;
  std::vector<std::vector<DeviceId>> chunk_moved(moved != nullptr ? chunks : 0);
  pool->for_each(
      chunks, 2,
      [&](std::size_t c) {
        const auto begin = static_cast<DeviceId>(c * kChunk);
        const auto end = static_cast<DeviceId>(std::min(count, (c + 1) * kChunk));
        roll_range(begin, end, moved != nullptr ? &chunk_moved[c] : nullptr);
      },
      0, lane_ms);
  if (moved != nullptr) {
    // Contiguous ascending ranges concatenated in range order: ascending
    // overall, identical to the serial roll.
    std::size_t total = 0;
    for (const auto& part : chunk_moved) total += part.size();
    moved->reserve(total);
    for (const auto& part : chunk_moved) {
      moved->insert(moved->end(), part.begin(), part.end());
    }
  }
}

}  // namespace acn
