// Human- and machine-readable rendering of characterization results — the
// layer the CLI tool and operator dashboards consume.
#pragma once

#include <map>
#include <string>

#include "core/characterizer.hpp"

namespace acn {

/// Full per-device results for one interval.
struct CharacterizationReport {
  CharacterizationSets sets;
  std::map<DeviceId, Decision> decisions;

  /// Totals line + one row per device: id, class, deciding rule, work.
  [[nodiscard]] std::string to_text() const;

  /// CSV with columns: device, class, rule, exact, maximal_motions,
  /// dense_motions, collections_tested.
  [[nodiscard]] std::string to_csv() const;
};

/// Characterizes all of A_k and bundles the full report.
[[nodiscard]] CharacterizationReport make_report(const StatePair& state, Params params,
                                                 CharacterizeOptions options = {});

}  // namespace acn
