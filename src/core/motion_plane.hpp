// MotionPlane: the snapshot-level motion precomputation.
//
// The paper's scalability argument (§VIII) is that per-device work tracks
// the dimensioned neighbourhood size, not n — every Theorem 5/6/7 decision
// reads only motion families of devices within 4r of the device deciding.
// The seed implementation re-derived those overlapping families per device
// (split_neighbourhood re-filtered every neighbour's dense family on every
// call), so a massive anomaly of size m paid O(m^2) family filters per
// snapshot. The plane inverts that: one pass per snapshot computes, for
// every abnormal device of A_k, its 2r-neighbourhood, its maximal-motion
// family (Algorithm 2) and its tau-dense family (W-bar_k), after which each
// per-device decision is a read-only lookup — and the decisions can run in
// parallel across A_k (Characterizer::characterize_all_parallel).
//
// Storage is flat throughout:
//   * neighbourhoods live in one contiguous DeviceId arena, sliced by
//     offset per device;
//   * motions live in an arena-style store — each distinct motion is an
//     (offset, length) run of sorted DeviceIds in one contiguous buffer,
//     stored exactly once and shared by every member's family (the common
//     case inside a blob: all members of a dense cluster see the same
//     maximal motions). One enumeration per interaction component makes
//     the runs distinct by construction, so no dedup pass is needed;
//   * per-device families are (offset, length) slices of MotionId arrays.
//
// MotionOracle is a thin view over the plane (it keeps only query memos),
// and the canonical-window enumeration shared by the plane build and the
// oracle's pool queries lives here as a free function.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/grid_index.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

class WorkerPool;

/// Abnormal-neighbourhood provider for the engine-driven plane build: must
/// answer exactly what a GridIndex over A_k answers — abnormal devices
/// within joint distance `radius` of j, sorted, into a cleared buffer. The
/// streaming engine implements it over its incremental FleetGrid.
class NeighbourSource {
 public:
  virtual ~NeighbourSource() = default;
  virtual void within_into(DeviceId j, double radius,
                           std::vector<DeviceId>& out) const = 0;
};

/// Work counters; the evaluation (Table III) reports operation counts.
/// Filled by the plane build and advanced further by MotionOracle queries.
struct OracleCounters {
  std::uint64_t neighbourhood_queries = 0;  ///< grid lookups (message analogue)
  std::uint64_t windows_explored = 0;       ///< canonical windows visited
  std::uint64_t covers_generated = 0;       ///< window covers materialized
  std::uint64_t enumeration_calls = 0;      ///< maxMotions invocations (pre-memo)
  std::uint64_t motions_stored = 0;         ///< distinct motions in the arena
  std::uint64_t motions_shared = 0;  ///< family references beyond the first
                                     ///< to an interned motion (arena reuse)
};

/// Per-lane busy times of the plane build's two fan-outs (the engine's
/// shard-skew instrumentation; see WorkerPool::for_each on lane_ms). Empty
/// vectors when the corresponding pass ran serially.
struct PlaneBuildLanes {
  std::vector<double> query_lane_ms;      ///< pass 1: neighbourhood queries
  std::vector<double> enumerate_lane_ms;  ///< pass 2: component enumeration
};

/// Canonical-window enumeration (the paper's Algorithm 2 core): all
/// inclusion-maximal r-consistent motions within `pool`; when `anchor` is
/// set, only motions containing the anchor. Deterministic (sorted) order.
/// Shared by the MotionPlane build and MotionOracle's pool queries.
[[nodiscard]] std::vector<DeviceSet> enumerate_maximal_windows(
    const StatePair& state, const Params& params, std::vector<DeviceId> pool,
    std::optional<DeviceId> anchor, OracleCounters* counters = nullptr);

/// The tight-cluster cut predicate: true iff `active` spans at most
/// `window` in every joint dimension listed in `dims` — i.e. one window per
/// listed dimension covers the whole set, making `active` itself the only
/// inclusion-maximal cover reachable below the current slide node (any
/// other window keeps a subset). Anchored-slide precondition: every pool
/// member lies within `window` (joint Chebyshev) of the anchor — then the
/// bounding interval of active ∪ {anchor} also has length <= window per
/// dimension, so an anchored covering window exists. (The anchor itself
/// need not be a pool member: the oracle queries non-abnormal anchors
/// against abnormal-only pools.) Both callers establish the precondition
/// by construction — anchored pools are filtered by joint_distance <=
/// window. The ONE definition shared by the plane's enumeration slide and
/// the oracle's early-exit dense-cover slide — the byte-identical
/// family/query agreement depends on both using it.
[[nodiscard]] bool spans_fit_window(const StatePair& state, double window,
                                    std::span<const DeviceId> active,
                                    std::span<const std::size_t> dims) noexcept;

class MotionPlane {
 public:
  /// Index of an interned motion within the plane's store.
  using MotionId = std::uint32_t;

  /// Builds the whole plane for state.abnormal() eagerly over a private
  /// GridIndex of A_k. `state` must outlive the plane. This is the
  /// from-scratch reference path the engine's incremental build is tested
  /// against.
  MotionPlane(const StatePair& state, Params params);

  /// Engine-driven build: neighbourhoods come from `source` (the engine's
  /// incrementally maintained fleet grid restricted to A_k) and both passes
  /// fan out over `pool` when given — pass 1 over contiguous rank chunks,
  /// pass 2 over per-component enumeration tasks sized by an estimated
  /// enumeration cost (member count x per-dimension window span), with
  /// oversized non-tight components split across tasks by top-level window
  /// edge ranges. Tasks merge in component-discovery/task order and the
  /// cover dedup is content-based, so families, interned ids, and counters
  /// are byte-identical for any pool size and any split, and identical to
  /// the from-scratch ctor. `state` and `source` must outlive the plane;
  /// `lanes`, when given, receives per-lane busy times of both fan-outs.
  MotionPlane(const StatePair& state, Params params, const NeighbourSource& source,
              WorkerPool* pool = nullptr, std::size_t component_fanout = 2,
              PlaneBuildLanes* lanes = nullptr);

  [[nodiscard]] const StatePair& state() const noexcept { return state_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Abnormal devices within joint distance `radius` of j (j included when
  /// abnormal), sorted — answered by the owned A_k grid or the external
  /// source, whichever this plane was built over. Serves the oracle's
  /// queries for non-abnormal devices.
  [[nodiscard]] std::vector<DeviceId> within(DeviceId j, double radius) const;

  /// |A_k|: number of devices the plane covers.
  [[nodiscard]] std::size_t device_count() const noexcept { return ids_.size(); }
  /// True iff j is abnormal (covered by the plane).
  [[nodiscard]] bool covers(DeviceId j) const noexcept;

  /// N(j): abnormal devices within 2r of j, j included. Sorted. Requires
  /// covers(j) (throws std::invalid_argument otherwise).
  [[nodiscard]] std::span<const DeviceId> neighbourhood(DeviceId j) const;
  /// M(j): ids of all maximal motions containing j, in deterministic
  /// (lexicographic by members) order. Requires covers(j).
  [[nodiscard]] std::span<const MotionId> maximal(DeviceId j) const;
  /// W-bar_k(j): ids of the tau-dense members of M(j), same order.
  /// Requires covers(j).
  [[nodiscard]] std::span<const MotionId> dense(DeviceId j) const;

  /// Members of one interned motion (sorted run in the arena).
  [[nodiscard]] std::span<const DeviceId> members(MotionId m) const noexcept {
    return {motion_arena_.data() + motion_offsets_[m],
            motion_offsets_[m + 1] - motion_offsets_[m]};
  }
  [[nodiscard]] bool motion_contains(MotionId m, DeviceId id) const noexcept;

  /// Number of distinct motions in the arena (after interning).
  [[nodiscard]] std::size_t motion_count() const noexcept {
    return motion_offsets_.size() - 1;
  }
  [[nodiscard]] const OracleCounters& counters() const noexcept { return counters_; }

 private:
  /// Shared body of both constructors.
  void build(const NeighbourSource& source, WorkerPool* pool,
             std::size_t component_fanout, PlaneBuildLanes* lanes);
  /// Rank of j within the sorted A_k ids; throws if not abnormal.
  [[nodiscard]] std::size_t rank_of(DeviceId j) const;
  /// Appends one sorted member run to the arena store (runs are distinct by
  /// construction — see the ctor) and returns its id.
  MotionId intern(std::span<const DeviceId> motion);

  const StatePair& state_;
  Params params_;
  std::optional<GridIndex> grid_;          ///< owned A_k index (scratch ctor)
  const NeighbourSource* source_ = nullptr;  ///< engine source (engine ctor)
  std::vector<DeviceId> ids_;  ///< A_k, sorted

  // Per-device slices (all offset arrays have device_count() + 1 entries).
  std::vector<std::uint32_t> nbr_offsets_;
  std::vector<DeviceId> nbr_arena_;
  std::vector<std::uint32_t> maximal_offsets_;
  std::vector<MotionId> maximal_ids_;
  std::vector<std::uint32_t> dense_offsets_;
  std::vector<MotionId> dense_ids_;

  // The interned motion store.
  std::vector<std::uint32_t> motion_offsets_;  ///< motion_count() + 1 entries
  std::vector<DeviceId> motion_arena_;

  OracleCounters counters_;
};

}  // namespace acn
