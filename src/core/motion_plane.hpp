// MotionPlane: the snapshot-level motion precomputation.
//
// The paper's scalability argument (§VIII) is that per-device work tracks
// the dimensioned neighbourhood size, not n — every Theorem 5/6/7 decision
// reads only motion families of devices within 4r of the device deciding.
// The seed implementation re-derived those overlapping families per device
// (split_neighbourhood re-filtered every neighbour's dense family on every
// call), so a massive anomaly of size m paid O(m^2) family filters per
// snapshot. The plane inverts that: one pass per snapshot computes, for
// every abnormal device of A_k, its 2r-neighbourhood, its maximal-motion
// family (Algorithm 2) and its tau-dense family (W-bar_k), after which each
// per-device decision is a read-only lookup — and the decisions can run in
// parallel across A_k (Characterizer::characterize_all_parallel).
//
// Storage is flat throughout:
//   * neighbourhoods live in one contiguous DeviceId arena, sliced by
//     offset per device;
//   * motions live in an arena-style store — each distinct motion is an
//     (offset, length) run of sorted DeviceIds in one contiguous buffer,
//     stored exactly once and shared by every member's family (the common
//     case inside a blob: all members of a dense cluster see the same
//     maximal motions). One enumeration per interaction component makes
//     the runs distinct by construction, so no dedup pass is needed;
//   * per-device families are (offset, length) slices of MotionId arrays.
//
// MotionOracle is a thin view over the plane (it keeps only query memos),
// and the canonical-window enumeration shared by the plane build and the
// oracle's pool queries lives here as a free function.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/grid_index.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

class WorkerPool;

/// Thrown when a plane build's arena allocations (neighbourhood lists,
/// window covers, interned motions, membership bitsets) would exceed the
/// configured byte budget. An adversarial placement at large n can make the
/// motion-family arenas combinatorially large; this turns what would be an
/// effectively unrecoverable std::bad_alloc (or an OOM kill) into a clean
/// per-interval error the engine surfaces as a verdict-safe failure — the
/// engine state itself is untouched, the next interval builds a new plane.
class ArenaBudgetExceeded : public std::runtime_error {
 public:
  ArenaBudgetExceeded(std::uint64_t attempted, std::uint64_t limit)
      : std::runtime_error(
            "MotionPlane: arena budget exceeded (" + std::to_string(attempted) +
            " bytes needed, limit " + std::to_string(limit) + ")"),
        attempted_(attempted),
        limit_(limit) {}
  [[nodiscard]] std::uint64_t attempted_bytes() const noexcept { return attempted_; }
  [[nodiscard]] std::uint64_t limit_bytes() const noexcept { return limit_; }

 private:
  std::uint64_t attempted_;
  std::uint64_t limit_;
};

/// Byte meter shared by every arena of one plane build. limit == 0 means
/// unlimited. charge() is relaxed-atomic: worker lanes charge concurrently,
/// and the test only needs to trip NEAR the limit, not at an exact byte.
struct ArenaBudget {
  std::atomic<std::uint64_t> used{0};
  std::uint64_t limit = 0;

  void charge(std::uint64_t bytes) {
    const std::uint64_t total =
        used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit != 0 && total > limit) throw ArenaBudgetExceeded(total, limit);
  }
};

/// Abnormal-neighbourhood provider for the engine-driven plane build: must
/// answer exactly what a GridIndex over A_k answers — abnormal devices
/// within joint distance `radius` of j, sorted, into a cleared buffer. The
/// streaming engine implements it over its incremental FleetGrid.
class NeighbourSource {
 public:
  virtual ~NeighbourSource() = default;
  virtual void within_into(DeviceId j, double radius,
                           std::vector<DeviceId>& out) const = 0;
};

/// Work counters; the evaluation (Table III) reports operation counts.
/// Filled by the plane build and advanced further by MotionOracle queries.
struct OracleCounters {
  std::uint64_t neighbourhood_queries = 0;  ///< grid lookups (message analogue)
  std::uint64_t windows_explored = 0;       ///< canonical windows visited
  std::uint64_t covers_generated = 0;       ///< window covers materialized
  std::uint64_t enumeration_calls = 0;      ///< maxMotions invocations (pre-memo)
  std::uint64_t motions_stored = 0;         ///< distinct motions in the arena
  std::uint64_t motions_shared = 0;  ///< family references beyond the first
                                     ///< to an interned motion (arena reuse)
};

/// Per-lane busy times of the plane build's two fan-outs (the engine's
/// shard-skew instrumentation; see WorkerPool::for_each on lane_ms). Empty
/// vectors when the corresponding pass ran serially.
struct PlaneBuildLanes {
  std::vector<double> query_lane_ms;      ///< pass 1: neighbourhood queries
  std::vector<double> enumerate_lane_ms;  ///< pass 2: component enumeration
};

/// Canonical-window enumeration (the paper's Algorithm 2 core): all
/// inclusion-maximal r-consistent motions within `pool`; when `anchor` is
/// set, only motions containing the anchor. Deterministic (sorted) order.
/// Shared by the MotionPlane build and MotionOracle's pool queries.
[[nodiscard]] std::vector<DeviceSet> enumerate_maximal_windows(
    const StatePair& state, const Params& params, std::vector<DeviceId> pool,
    std::optional<DeviceId> anchor, OracleCounters* counters = nullptr);

/// The tight-cluster cut predicate: true iff `active` spans at most
/// `window` in every joint dimension listed in `dims` — i.e. one window per
/// listed dimension covers the whole set, making `active` itself the only
/// inclusion-maximal cover reachable below the current slide node (any
/// other window keeps a subset). Anchored-slide precondition: every pool
/// member lies within `window` (joint Chebyshev) of the anchor — then the
/// bounding interval of active ∪ {anchor} also has length <= window per
/// dimension, so an anchored covering window exists. (The anchor itself
/// need not be a pool member: the oracle queries non-abnormal anchors
/// against abnormal-only pools.) Both callers establish the precondition
/// by construction — anchored pools are filtered by joint_distance <=
/// window. The ONE definition shared by the plane's enumeration slide and
/// the oracle's early-exit dense-cover slide — the byte-identical
/// family/query agreement depends on both using it.
[[nodiscard]] bool spans_fit_window(const StatePair& state, double window,
                                    std::span<const DeviceId> active,
                                    std::span<const std::size_t> dims) noexcept;

class MotionPlane {
 public:
  /// Index of an interned motion within the plane's store.
  using MotionId = std::uint32_t;

  /// Builds the whole plane for state.abnormal() eagerly over a private
  /// GridIndex of A_k. `state` must outlive the plane. This is the
  /// from-scratch reference path the engine's incremental build is tested
  /// against.
  MotionPlane(const StatePair& state, Params params);

  /// Engine-driven build: neighbourhoods come from `source` (the engine's
  /// incrementally maintained fleet grid restricted to A_k) and both passes
  /// fan out over `pool` when given — pass 1 over contiguous rank chunks,
  /// pass 2 over per-component enumeration tasks sized by an estimated
  /// enumeration cost (member count x per-dimension window span), with
  /// oversized non-tight components split across tasks by top-level window
  /// edge ranges. Tasks merge in component-discovery/task order and the
  /// cover dedup is content-based, so families, interned ids, and counters
  /// are byte-identical for any pool size and any split, and identical to
  /// the from-scratch ctor. `state` and `source` must outlive the plane;
  /// `lanes`, when given, receives per-lane busy times of both fan-outs.
  /// `arena_budget_bytes` caps the total bytes the build may park in its
  /// arenas (0 = unlimited); exceeding it throws ArenaBudgetExceeded with
  /// the plane half-built but the engine state untouched.
  MotionPlane(const StatePair& state, Params params, const NeighbourSource& source,
              WorkerPool* pool = nullptr, std::size_t component_fanout = 2,
              PlaneBuildLanes* lanes = nullptr, std::uint64_t arena_budget_bytes = 0);

  [[nodiscard]] const StatePair& state() const noexcept { return state_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Abnormal devices within joint distance `radius` of j (j included when
  /// abnormal), sorted — answered by the owned A_k grid or the external
  /// source, whichever this plane was built over. Serves the oracle's
  /// queries for non-abnormal devices.
  [[nodiscard]] std::vector<DeviceId> within(DeviceId j, double radius) const;

  /// |A_k|: number of devices the plane covers.
  [[nodiscard]] std::size_t device_count() const noexcept { return ids_.size(); }
  /// True iff j is abnormal (covered by the plane).
  [[nodiscard]] bool covers(DeviceId j) const noexcept;

  /// N(j): abnormal devices within 2r of j, j included. Sorted. Requires
  /// covers(j) (throws std::invalid_argument otherwise).
  [[nodiscard]] std::span<const DeviceId> neighbourhood(DeviceId j) const;
  /// M(j): ids of all maximal motions containing j, in deterministic
  /// (lexicographic by members) order. Requires covers(j).
  [[nodiscard]] std::span<const MotionId> maximal(DeviceId j) const;
  /// W-bar_k(j): ids of the tau-dense members of M(j), same order.
  /// Requires covers(j).
  [[nodiscard]] std::span<const MotionId> dense(DeviceId j) const;

  /// Members of one interned motion (sorted run in the arena).
  [[nodiscard]] std::span<const DeviceId> members(MotionId m) const noexcept {
    return {motion_arena_.data() + motion_offsets_[m],
            motion_offsets_[m + 1] - motion_offsets_[m]};
  }
  [[nodiscard]] bool motion_contains(MotionId m, DeviceId id) const noexcept;

  /// Number of distinct motions in the arena (after interning).
  [[nodiscard]] std::size_t motion_count() const noexcept {
    return motion_offsets_.size() - 1;
  }
  [[nodiscard]] const OracleCounters& counters() const noexcept { return counters_; }

  // ----- Component-indexed views (the characterizer's bitsliced fast path).
  // Every motion lives inside one interaction component; within a component
  // the sorted member list defines a dense rank space ("comp-ranks") small
  // enough that motion membership is one bitset word-run. Theorem 6/7
  // decisions then become AND + popcount instead of sorted-run merges.

  /// Number of 2r-interaction components.
  [[nodiscard]] std::size_t component_count() const noexcept {
    return comp_member_offsets_.size() - 1;
  }
  /// Component index of abnormal device j. Requires covers(j).
  [[nodiscard]] std::uint32_t component_of(DeviceId j) const {
    return comp_of_[rank_of(j)];
  }
  /// Sorted (ascending) members of component c — the comp-rank universe:
  /// member i has comp-rank i.
  [[nodiscard]] std::span<const DeviceId> component_members(std::uint32_t c) const noexcept {
    return {comp_members_.data() + comp_member_offsets_[c],
            comp_member_offsets_[c + 1] - comp_member_offsets_[c]};
  }
  /// Rank of j within its component's sorted member list.
  [[nodiscard]] std::uint32_t comp_rank_of(DeviceId j) const {
    return comp_rank_of_[rank_of(j)];
  }
  /// Component index of motion m.
  [[nodiscard]] std::uint32_t motion_component(MotionId m) const noexcept {
    return motion_component_[m];
  }
  /// Words per comp-rank bitset of component c.
  [[nodiscard]] std::size_t component_words(std::uint32_t c) const noexcept {
    return (component_members(c).size() + 63) / 64;
  }
  /// Membership bitset of motion m over its component's comp-ranks.
  [[nodiscard]] std::span<const std::uint64_t> motion_bits(MotionId m) const noexcept {
    return {motion_bits_.data() + motion_bits_offsets_[m],
            motion_bits_offsets_[m + 1] - motion_bits_offsets_[m]};
  }
  /// AND of the motion_bits of all of j's dense motions (all-ones over j's
  /// component when the dense family is empty — the vacuous truth the J/L
  /// split's "every dense motion of ell contains j" test needs). Requires
  /// covers(j).
  [[nodiscard]] std::span<const std::uint64_t> dense_intersection_bits(DeviceId j) const {
    const std::size_t rank = rank_of(j);
    return {inter_bits_.data() + inter_bits_offsets_[rank],
            inter_bits_offsets_[rank + 1] - inter_bits_offsets_[rank]};
  }

  /// Bytes currently parked in the plane's arenas (budget meter reading).
  [[nodiscard]] std::uint64_t arena_bytes() const noexcept {
    return budget_.used.load(std::memory_order_relaxed);
  }

 private:
  /// Shared body of both constructors.
  void build(const NeighbourSource& source, WorkerPool* pool,
             std::size_t component_fanout, PlaneBuildLanes* lanes);
  /// Rank of j within the sorted A_k ids; throws if not abnormal.
  [[nodiscard]] std::size_t rank_of(DeviceId j) const;
  /// Appends one sorted member run to the arena store (runs are distinct by
  /// construction — see the ctor) and returns its id.
  MotionId intern(std::span<const DeviceId> motion);

  const StatePair& state_;
  Params params_;
  std::optional<GridIndex> grid_;          ///< owned A_k index (scratch ctor)
  const NeighbourSource* source_ = nullptr;  ///< engine source (engine ctor)
  std::vector<DeviceId> ids_;  ///< A_k, sorted

  // Per-device slices (all offset arrays have device_count() + 1 entries).
  std::vector<std::uint32_t> nbr_offsets_;
  std::vector<DeviceId> nbr_arena_;
  std::vector<std::uint32_t> maximal_offsets_;
  std::vector<MotionId> maximal_ids_;
  std::vector<std::uint32_t> dense_offsets_;
  std::vector<MotionId> dense_ids_;

  // The interned motion store.
  std::vector<std::uint32_t> motion_offsets_;  ///< motion_count() + 1 entries
  std::vector<DeviceId> motion_arena_;

  // Dense id -> A_k-rank lookup (kNoRank for non-abnormal), sized one past
  // the largest abnormal id: rank_of/covers in O(1) instead of a binary
  // search — the single hottest call of the characterize phase before this.
  static constexpr std::uint32_t kNoRank = 0xFFFFFFFFu;
  std::vector<std::uint32_t> rank_lookup_;

  // Component-indexed arenas (see the accessor block above).
  std::vector<std::uint32_t> comp_of_;        ///< per rank: component index
  std::vector<std::uint32_t> comp_rank_of_;   ///< per rank: rank within comp
  std::vector<std::uint32_t> comp_member_offsets_;  ///< comp_count + 1
  std::vector<DeviceId> comp_members_;        ///< sorted members, flattened
  std::vector<std::uint32_t> motion_component_;     ///< per motion
  std::vector<std::uint32_t> motion_bits_offsets_;  ///< word offsets, count+1
  std::vector<std::uint64_t> motion_bits_;
  std::vector<std::uint32_t> inter_bits_offsets_;   ///< word offsets, m+1
  std::vector<std::uint64_t> inter_bits_;

  mutable ArenaBudget budget_;
  OracleCounters counters_;
};

}  // namespace acn
