#include "core/motion_plane.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "common/worker_pool.hpp"

namespace acn {
namespace {

/// NeighbourSource view over an owned A_k GridIndex (the scratch ctor).
class GridSource final : public NeighbourSource {
 public:
  explicit GridSource(const GridIndex& grid) : grid_(grid) {}
  void within_into(DeviceId j, double radius,
                   std::vector<DeviceId>& out) const override {
    grid_.within_into(j, radius, out);
  }

 private:
  const GridIndex& grid_;
};

bool run_is_strict_subset(std::span<const DeviceId> small,
                          std::span<const DeviceId> big) noexcept {
  if (small.size() >= big.size()) return false;
  std::size_t i = 0;
  for (const DeviceId id : small) {
    while (i < big.size() && big[i] < id) ++i;
    if (i == big.size() || big[i] != id) return false;
    ++i;
  }
  return true;
}

/// Window covers of one enumeration, stored flat: each cover is an
/// (offset, length) run of sorted DeviceIds in one arena, deduplicated on
/// insert — distinct windows over a tight blob produce the same cover many
/// times, and every duplicate would otherwise ride through the maximality
/// filter. clear() keeps all capacity, so one store serves every device of
/// the plane build without per-device allocation.
struct CoverStore {
  std::vector<DeviceId> arena;
  std::vector<std::uint32_t> offsets{0};
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;

  void clear() {
    arena.clear();
    offsets.assign(1, 0);
    index.clear();  // keeps the bucket array; cost tracks own entry count
  }
  [[nodiscard]] std::size_t count() const noexcept { return offsets.size() - 1; }
  [[nodiscard]] std::span<const DeviceId> run(std::uint32_t i) const noexcept {
    return {arena.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
  void add(std::span<const DeviceId> ids) {
    auto& slots = index[hash_ids(ids)];
    for (const std::uint32_t i : slots) {
      const auto existing = run(i);
      if (existing.size() == ids.size() &&
          std::equal(existing.begin(), existing.end(), ids.begin())) {
        return;  // duplicate window cover
      }
    }
    slots.push_back(static_cast<std::uint32_t>(count()));
    arena.insert(arena.end(), ids.begin(), ids.end());
    offsets.push_back(static_cast<std::uint32_t>(arena.size()));
  }
};

/// Reusable buffers for the canonical-window slide: one edge list and one
/// shrinking active set per joint dimension (the recursion touches exactly
/// one depth per dimension at a time), the flat cover store, the
/// maximality-ranking scratch, and the dimension visit order.
struct EnumerationScratch {
  std::vector<std::vector<double>> edges;
  std::vector<std::vector<DeviceId>> next;
  std::vector<DeviceId> pool;
  CoverStore covers;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> maximal;
  /// Joint dimensions, widest pool span first. The cover set is invariant
  /// under visit order (the same window combinations are enumerated), but
  /// splitting on the most spread-out dimension first shrinks active sets
  /// fastest and lets the tight-cluster cut below fire at shallow depth.
  std::array<std::size_t, 2 * Point::kMaxDim> dim_order{};
};

void slide(const StatePair& state, double window, std::span<const DeviceId> active,
           std::size_t dim_index, const double* anchor_joint,
           EnumerationScratch& scratch, OracleCounters* counters) {
  if (active.empty()) return;
  if (dim_index == state.joint_dim()) {
    if (counters != nullptr) ++counters->covers_generated;
    // `active` descends from a sorted pool through order-preserving filters.
    scratch.covers.add(active);
    return;
  }

  // Tight-cluster cut: when the active set already fits one window in every
  // remaining dimension, that window's cover is `active` itself and every
  // other window below this node covers a subset of it (active sets only
  // shrink), i.e. nothing inclusion-maximal. Emitting the single cover here
  // collapses the O(|active|^(2d)) edge recursion over a dense blob — the
  // dominant shape of a massive anomaly — to one bounding-box scan. In the
  // anchored variant the anchor is a member of every active set, so the
  // bounding window is a valid anchored window too.
  const std::span<const std::size_t> remaining_dims{
      scratch.dim_order.data() + dim_index, state.joint_dim() - dim_index};
  if (spans_fit_window(state, window, active, remaining_dims)) {
    if (counters != nullptr) {
      ++counters->windows_explored;  // the bounding window, evaluated once
      ++counters->covers_generated;
    }
    scratch.covers.add(active);
    return;
  }

  const std::size_t dim = scratch.dim_order[dim_index];
  const double* col = state.joint_col(dim);
  auto& edges = scratch.edges[dim_index];
  edges.clear();
  // Candidate lower edges: coordinates of active points; when anchored, only
  // those within [x(anchor) - 2r, x(anchor)] so the window covers the anchor.
  if (anchor_joint != nullptr) {
    const double ax = anchor_joint[dim];
    const double lo = ax - window;
    for (const DeviceId id : active) {
      const double x = col[id];
      if (x >= lo && x <= ax) edges.push_back(x);
    }
  } else {
    for (const DeviceId id : active) edges.push_back(col[id]);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  auto& next = scratch.next[dim_index];
  for (const double lower : edges) {
    if (counters != nullptr) ++counters->windows_explored;
    const double upper = lower + window;
    next.clear();
    for (const DeviceId id : active) {
      const double x = col[id];
      if (x >= lower && x <= upper) next.push_back(id);
    }
    slide(state, window, next, dim_index + 1, anchor_joint, scratch, counters);
  }
}

/// Core of enumerate_maximal_windows over reusable scratch: fills
/// scratch.maximal with the store indices of the inclusion-maximal covers,
/// in lexicographic (by members) order — the project-wide family order.
void enumerate_into(const StatePair& state, const Params& params,
                    std::span<const DeviceId> pool_in,
                    std::optional<DeviceId> anchor, OracleCounters* counters,
                    EnumerationScratch& scratch) {
  const double window = params.window();
  std::array<double, Point::kMaxDim> anchor_coords{};
  const double* anchor_joint = nullptr;

  auto& pool = scratch.pool;
  pool.clear();
  if (anchor.has_value()) {
    // Only devices within 2r of the anchor can share a motion with it.
    for (const DeviceId candidate : pool_in) {
      if (state.joint_distance(*anchor, candidate) <= window) {
        pool.push_back(candidate);
      }
    }
    const Point& a = state.joint(*anchor);
    for (std::size_t t = 0; t < state.joint_dim(); ++t) anchor_coords[t] = a[t];
    anchor_joint = anchor_coords.data();
  } else {
    pool.assign(pool_in.begin(), pool_in.end());
  }
  std::sort(pool.begin(), pool.end());

  if (scratch.edges.size() < state.joint_dim()) {
    scratch.edges.resize(state.joint_dim());
    scratch.next.resize(state.joint_dim());
  }
  scratch.covers.clear();
  scratch.maximal.clear();
  if (pool.empty()) return;

  // Visit dimensions widest span first (see EnumerationScratch::dim_order).
  // Ties break toward the lower dimension index, keeping the order — and
  // the windows_explored trajectory — deterministic.
  std::array<double, 2 * Point::kMaxDim> span{};
  for (std::size_t t = 0; t < state.joint_dim(); ++t) {
    const double* col = state.joint_col(t);
    double lo = col[pool[0]];
    double hi = lo;
    for (const DeviceId id : pool) {
      const double x = col[id];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    span[t] = hi - lo;
    scratch.dim_order[t] = t;
  }
  std::stable_sort(scratch.dim_order.begin(),
                   scratch.dim_order.begin() + state.joint_dim(),
                   [&](std::size_t a, std::size_t b) { return span[a] > span[b]; });

  slide(state, window, pool, 0, anchor_joint, scratch, counters);

  // Keep the inclusion-maximal covers. Scanning in size-descending order, a
  // cover with any strict superset in the store also has one among the
  // already-accepted maximal covers (subset is transitive and equal-size
  // containment is equality, impossible after dedup), so each cover is
  // checked against the few survivors only.
  const CoverStore& covers = scratch.covers;
  auto& order = scratch.order;
  order.resize(covers.count());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ra = covers.run(a);
    const auto rb = covers.run(b);
    if (ra.size() != rb.size()) return ra.size() > rb.size();
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(), rb.end());
  });
  auto& maximal = scratch.maximal;
  for (const std::uint32_t candidate : order) {
    bool covered = false;
    for (const std::uint32_t other : maximal) {
      if (run_is_strict_subset(covers.run(candidate), covers.run(other))) {
        covered = true;
        break;
      }
    }
    if (!covered) maximal.push_back(candidate);
  }
  // Family order: lexicographic by members (a shorter prefix sorts first),
  // matching DeviceSet's vector comparison project-wide.
  std::sort(maximal.begin(), maximal.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ra = covers.run(a);
    const auto rb = covers.run(b);
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(), rb.end());
  });
}

}  // namespace

bool spans_fit_window(const StatePair& state, double window,
                      std::span<const DeviceId> active,
                      std::span<const std::size_t> dims) noexcept {
  for (const std::size_t t : dims) {
    const double* col = state.joint_col(t);
    double lo = col[active[0]];
    double hi = lo;
    for (const DeviceId id : active.subspan(1)) {
      const double x = col[id];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi - lo > window) return false;
  }
  return true;
}

std::vector<DeviceSet> enumerate_maximal_windows(const StatePair& state,
                                                 const Params& params,
                                                 std::vector<DeviceId> pool,
                                                 std::optional<DeviceId> anchor,
                                                 OracleCounters* counters) {
  EnumerationScratch scratch;
  enumerate_into(state, params, pool, anchor, counters, scratch);
  std::vector<DeviceSet> family;
  family.reserve(scratch.maximal.size());
  for (const std::uint32_t i : scratch.maximal) {
    const auto run = scratch.covers.run(i);
    family.push_back(
        DeviceSet::from_sorted(std::vector<DeviceId>(run.begin(), run.end())));
  }
  return family;
}

MotionPlane::MotionPlane(const StatePair& state, Params params)
    : state_(state), params_(params) {
  params_.validate();
  grid_.emplace(state, state.abnormal(), std::max(params_.window(), kMinGridCell));
  const GridSource source(*grid_);
  build(source, nullptr, 0);
}

MotionPlane::MotionPlane(const StatePair& state, Params params,
                         const NeighbourSource& source, WorkerPool* pool,
                         std::size_t component_fanout)
    : state_(state), params_(params), source_(&source) {
  params_.validate();
  build(source, pool, component_fanout);
}

void MotionPlane::build(const NeighbourSource& source, WorkerPool* pool,
                        std::size_t component_fanout) {
  const DeviceSet& abnormal = state_.abnormal();
  ids_.assign(abnormal.begin(), abnormal.end());
  const std::size_t m = ids_.size();

  // Pass 1: neighbourhoods, one grid query per device into the flat arena.
  nbr_offsets_.reserve(m + 1);
  nbr_offsets_.push_back(0);
  std::vector<DeviceId> nbr_scratch;
  for (const DeviceId j : ids_) {
    ++counters_.neighbourhood_queries;
    source.within_into(j, params_.window(), nbr_scratch);
    nbr_arena_.insert(nbr_arena_.end(), nbr_scratch.begin(), nbr_scratch.end());
    nbr_offsets_.push_back(static_cast<std::uint32_t>(nbr_arena_.size()));
  }

  // Pass 2: connected components of the 2r-interaction graph (edges are the
  // neighbourhood lists), then ONE unanchored enumeration per component.
  // Correctness hinges on an exact identity: a motion that is
  // inclusion-maximal among the motions containing j is inclusion-maximal
  // among ALL motions (every superset of it still contains j), so
  // M(j) == { M in maxMotions(component of j) : j in M }. This is the
  // "compute each A_k's motion families once" inversion — a blob of size b
  // is slid once instead of once per member. Validated against brute-force
  // subset enumeration by tests/core/motion_oracle_test.cc.
  const std::vector<std::vector<DeviceId>> components =
      connected_components(ids_, [&](std::size_t rank) {
        return std::span<const DeviceId>{nbr_arena_.data() + nbr_offsets_[rank],
                                         nbr_offsets_[rank + 1] - nbr_offsets_[rank]};
      });
  const std::size_t comp_count = components.size();

  // Family enumeration per component. With a worker pool, components are
  // enumerated concurrently into private buffers (each lane has its own
  // scratch) and merged below in component-discovery order — the interned
  // ids, family orders, and counters come out identical to the serial walk
  // for every pool size.
  struct ComponentFamily {
    std::vector<DeviceId> arena;           ///< concatenated maximal runs
    std::vector<std::uint32_t> offsets{0};  ///< run boundaries
    OracleCounters counters;
  };
  std::vector<ComponentFamily> families(comp_count);
  const auto enumerate_component = [&](std::size_t ci) {
    // One scratch per lane, reused across components AND planes (CoverStore
    // and the edge/next vectors keep their capacity; contents are cleared
    // by enumerate_into). Lanes are distinct threads, so thread_local is
    // exactly per-lane; the serial loop is one lane reusing one scratch.
    thread_local EnumerationScratch scratch;
    ComponentFamily& family = families[ci];
    ++family.counters.enumeration_calls;
    enumerate_into(state_, params_, components[ci], std::nullopt,
                   &family.counters, scratch);
    // scratch.maximal is lexicographic by members; appending in this order
    // keeps every member's family in the project-wide deterministic order.
    for (const std::uint32_t i : scratch.maximal) {
      const auto run = scratch.covers.run(i);
      family.arena.insert(family.arena.end(), run.begin(), run.end());
      family.offsets.push_back(static_cast<std::uint32_t>(family.arena.size()));
    }
  };
  if (pool != nullptr) {
    pool->for_each(comp_count, component_fanout, enumerate_component);
  } else {
    for (std::size_t ci = 0; ci < comp_count; ++ci) enumerate_component(ci);
  }

  // Deterministic merge: intern runs and assign families component by
  // component, in discovery order.
  motion_offsets_.push_back(0);
  std::vector<std::vector<MotionId>> family_of(m);
  std::vector<std::vector<MotionId>> dense_of(m);
  for (const ComponentFamily& family : families) {
    counters_.windows_explored += family.counters.windows_explored;
    counters_.covers_generated += family.counters.covers_generated;
    counters_.enumeration_calls += family.counters.enumeration_calls;
    for (std::size_t i = 0; i + 1 < family.offsets.size(); ++i) {
      const std::span<const DeviceId> run{
          family.arena.data() + family.offsets[i],
          family.offsets[i + 1] - family.offsets[i]};
      const MotionId mid = intern(run);
      const bool dense = run.size() > params_.tau;
      counters_.motions_shared += run.size() - 1;  // one arena run, |M| families
      for (const DeviceId member : run) {
        const auto rank = static_cast<std::size_t>(
            std::lower_bound(ids_.begin(), ids_.end(), member) - ids_.begin());
        family_of[rank].push_back(mid);
        if (dense) dense_of[rank].push_back(mid);
      }
    }
  }

  maximal_offsets_.reserve(m + 1);
  maximal_offsets_.push_back(0);
  dense_offsets_.reserve(m + 1);
  dense_offsets_.push_back(0);
  for (std::size_t rank = 0; rank < m; ++rank) {
    maximal_ids_.insert(maximal_ids_.end(), family_of[rank].begin(),
                        family_of[rank].end());
    dense_ids_.insert(dense_ids_.end(), dense_of[rank].begin(),
                      dense_of[rank].end());
    maximal_offsets_.push_back(static_cast<std::uint32_t>(maximal_ids_.size()));
    dense_offsets_.push_back(static_cast<std::uint32_t>(dense_ids_.size()));
  }
}

std::vector<DeviceId> MotionPlane::within(DeviceId j, double radius) const {
  std::vector<DeviceId> out;
  if (grid_.has_value()) {
    grid_->within_into(j, radius, out);
  } else {
    source_->within_into(j, radius, out);
  }
  return out;
}

bool MotionPlane::covers(DeviceId j) const noexcept {
  return std::binary_search(ids_.begin(), ids_.end(), j);
}

std::span<const DeviceId> MotionPlane::neighbourhood(DeviceId j) const {
  const std::size_t rank = rank_of(j);
  return {nbr_arena_.data() + nbr_offsets_[rank],
          nbr_offsets_[rank + 1] - nbr_offsets_[rank]};
}

std::span<const MotionPlane::MotionId> MotionPlane::maximal(DeviceId j) const {
  const std::size_t rank = rank_of(j);
  return {maximal_ids_.data() + maximal_offsets_[rank],
          maximal_offsets_[rank + 1] - maximal_offsets_[rank]};
}

std::span<const MotionPlane::MotionId> MotionPlane::dense(DeviceId j) const {
  const std::size_t rank = rank_of(j);
  return {dense_ids_.data() + dense_offsets_[rank],
          dense_offsets_[rank + 1] - dense_offsets_[rank]};
}

bool MotionPlane::motion_contains(MotionId m, DeviceId id) const noexcept {
  const auto run = members(m);
  return std::binary_search(run.begin(), run.end(), id);
}

std::size_t MotionPlane::rank_of(DeviceId j) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), j);
  if (it == ids_.end() || *it != j) {
    throw std::invalid_argument("MotionPlane: device " + std::to_string(j) +
                                " is not in A_k");
  }
  return static_cast<std::size_t>(it - ids_.begin());
}

MotionPlane::MotionId MotionPlane::intern(std::span<const DeviceId> motion) {
  // Uniqueness holds by construction: within a component the cover store
  // already dedups, and components have disjoint member sets — so every
  // call appends a new distinct run. The sharing the arena buys is one run
  // serving every member's family list.
  const auto mid = static_cast<MotionId>(motion_count());
  motion_arena_.insert(motion_arena_.end(), motion.begin(), motion.end());
  motion_offsets_.push_back(static_cast<std::uint32_t>(motion_arena_.size()));
  ++counters_.motions_stored;
  return mid;
}

}  // namespace acn
