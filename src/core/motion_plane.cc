#include "core/motion_plane.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/worker_pool.hpp"
#include "core/kernels/kernels.hpp"

namespace acn {
namespace {

/// NeighbourSource view over an owned A_k GridIndex (the scratch ctor).
class GridSource final : public NeighbourSource {
 public:
  explicit GridSource(const GridIndex& grid) : grid_(grid) {}
  void within_into(DeviceId j, double radius,
                   std::vector<DeviceId>& out) const override {
    grid_.within_into(j, radius, out);
  }

 private:
  const GridIndex& grid_;
};

bool run_is_strict_subset(std::span<const DeviceId> small,
                          std::span<const DeviceId> big) noexcept {
  if (small.size() >= big.size()) return false;
  std::size_t i = 0;
  for (const DeviceId id : small) {
    while (i < big.size() && big[i] < id) ++i;
    if (i == big.size() || big[i] != id) return false;
    ++i;
  }
  return true;
}

/// Window covers of one enumeration, stored flat: each cover is an
/// (offset, length) run of sorted DeviceIds in one arena, deduplicated on
/// insert — distinct windows over a tight blob produce the same cover many
/// times, and every duplicate would otherwise ride through the maximality
/// filter. clear() keeps all capacity, so one store serves every device of
/// the plane build without per-device allocation.
struct CoverStore {
  std::vector<DeviceId> arena;
  std::vector<std::uint32_t> offsets{0};
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  /// Plane-wide byte meter (null for the free-function enumeration path).
  /// Set per task — the scratch is thread_local and outlives any one plane.
  ArenaBudget* budget = nullptr;

  void clear() {
    arena.clear();
    offsets.assign(1, 0);
    index.clear();  // keeps the bucket array; cost tracks own entry count
  }
  [[nodiscard]] std::size_t count() const noexcept { return offsets.size() - 1; }
  [[nodiscard]] std::span<const DeviceId> run(std::uint32_t i) const noexcept {
    return {arena.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
  void add(std::span<const DeviceId> ids) {
    auto& slots = index[hash_ids(ids)];
    for (const std::uint32_t i : slots) {
      const auto existing = run(i);
      if (existing.size() == ids.size() &&
          std::equal(existing.begin(), existing.end(), ids.begin())) {
        return;  // duplicate window cover
      }
    }
    if (budget != nullptr) budget->charge(ids.size() * sizeof(DeviceId));
    slots.push_back(static_cast<std::uint32_t>(count()));
    arena.insert(arena.end(), ids.begin(), ids.end());
    offsets.push_back(static_cast<std::uint32_t>(arena.size()));
  }
};

/// Reusable buffers for the canonical-window slide: one edge list and one
/// shrinking active set per joint dimension (the recursion touches exactly
/// one depth per dimension at a time), the flat cover store, the
/// maximality-ranking scratch, and the dimension visit order.
struct EnumerationScratch {
  std::vector<std::vector<double>> edges;
  std::vector<std::vector<DeviceId>> next;
  std::vector<DeviceId> pool;
  CoverStore covers;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> maximal;
  /// Joint dimensions, widest pool span first. The cover set is invariant
  /// under visit order (the same window combinations are enumerated), but
  /// splitting on the most spread-out dimension first shrinks active sets
  /// fastest and lets the tight-cluster cut below fire at shallow depth.
  std::array<std::size_t, 2 * Point::kMaxDim> dim_order{};
};

void slide(const StatePair& state, double window, std::span<const DeviceId> active,
           std::size_t dim_index, const double* anchor_joint,
           EnumerationScratch& scratch, OracleCounters* counters) {
  if (active.empty()) return;
  if (dim_index == state.joint_dim()) {
    if (counters != nullptr) ++counters->covers_generated;
    // `active` descends from a sorted pool through order-preserving filters.
    scratch.covers.add(active);
    return;
  }

  // Tight-cluster cut: when the active set already fits one window in every
  // remaining dimension, that window's cover is `active` itself and every
  // other window below this node covers a subset of it (active sets only
  // shrink), i.e. nothing inclusion-maximal. Emitting the single cover here
  // collapses the O(|active|^(2d)) edge recursion over a dense blob — the
  // dominant shape of a massive anomaly — to one bounding-box scan. In the
  // anchored variant the anchor is a member of every active set, so the
  // bounding window is a valid anchored window too.
  const std::span<const std::size_t> remaining_dims{
      scratch.dim_order.data() + dim_index, state.joint_dim() - dim_index};
  if (spans_fit_window(state, window, active, remaining_dims)) {
    if (counters != nullptr) {
      ++counters->windows_explored;  // the bounding window, evaluated once
      ++counters->covers_generated;
    }
    scratch.covers.add(active);
    return;
  }

  const std::size_t dim = scratch.dim_order[dim_index];
  const double* col = state.joint_col(dim);
  auto& edges = scratch.edges[dim_index];
  edges.clear();
  // Candidate lower edges: coordinates of active points; when anchored, only
  // those within [x(anchor) - 2r, x(anchor)] so the window covers the anchor.
  if (anchor_joint != nullptr) {
    const double ax = anchor_joint[dim];
    const double lo = ax - window;
    for (const DeviceId id : active) {
      const double x = col[id];
      if (x >= lo && x <= ax) edges.push_back(x);
    }
  } else {
    for (const DeviceId id : active) edges.push_back(col[id]);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Kernel-dispatched membership filter: 8 quantized lanes per compare,
  // boundary ties re-resolved against `col` — byte-identical to the plain
  // `x >= lower && x <= upper` loop (core/kernels/quantize.hpp).
  const kernels::Ops& ops = kernels::dispatch();
  const std::uint32_t* qcol = state.qcol(dim);
  auto& next = scratch.next[dim_index];
  for (const double lower : edges) {
    if (counters != nullptr) ++counters->windows_explored;
    const kernels::WindowBoundsQ bounds = kernels::window_bounds(lower, lower + window);
    next.resize(active.size());
    next.resize(ops.filter_in_window(qcol, col, active.data(), active.size(),
                                     bounds, next.data()));
    slide(state, window, next, dim_index + 1, anchor_joint, scratch, counters);
  }
}

/// Shared head of the enumeration paths: fills scratch.pool (anchored
/// filter applied, sorted), sizes the per-depth buffers, clears the cover
/// store, and computes the widest-span-first dimension order. Returns the
/// anchor's joint coordinates (into `anchor_coords`) or nullptr. The
/// dimension order is left untouched when the pool comes up empty.
const double* prepare_pool(const StatePair& state, const Params& params,
                           std::span<const DeviceId> pool_in,
                           std::optional<DeviceId> anchor,
                           std::array<double, Point::kMaxDim>& anchor_coords,
                           EnumerationScratch& scratch) {
  const double window = params.window();
  const double* anchor_joint = nullptr;

  auto& pool = scratch.pool;
  pool.clear();
  if (anchor.has_value()) {
    // Only devices within 2r of the anchor can share a motion with it.
    for (const DeviceId candidate : pool_in) {
      if (state.joint_distance(*anchor, candidate) <= window) {
        pool.push_back(candidate);
      }
    }
    const Point& a = state.joint(*anchor);
    for (std::size_t t = 0; t < state.joint_dim(); ++t) anchor_coords[t] = a[t];
    anchor_joint = anchor_coords.data();
  } else {
    pool.assign(pool_in.begin(), pool_in.end());
  }
  std::sort(pool.begin(), pool.end());

  if (scratch.edges.size() < state.joint_dim()) {
    scratch.edges.resize(state.joint_dim());
    scratch.next.resize(state.joint_dim());
  }
  scratch.covers.clear();
  scratch.maximal.clear();
  if (pool.empty()) return anchor_joint;

  // Visit dimensions widest span first (see EnumerationScratch::dim_order).
  // Ties break toward the lower dimension index, keeping the order — and
  // the windows_explored trajectory — deterministic.
  const kernels::Ops& ops = kernels::dispatch();
  std::array<double, 2 * Point::kMaxDim> span{};
  for (std::size_t t = 0; t < state.joint_dim(); ++t) {
    double lo;
    double hi;
    ops.minmax_ids(state.joint_col(t), pool.data(), pool.size(), &lo, &hi);
    span[t] = hi - lo;
    scratch.dim_order[t] = t;
  }
  std::stable_sort(scratch.dim_order.begin(),
                   scratch.dim_order.begin() + state.joint_dim(),
                   [&](std::size_t a, std::size_t b) { return span[a] > span[b]; });
  return anchor_joint;
}

/// Shared tail: reduces scratch.covers to the inclusion-maximal covers,
/// leaving their store indices in scratch.maximal in lexicographic (by
/// members) order — the project-wide family order. Content-based throughout
/// (the covers are distinct after dedup, so both sorts are strict total
/// orders), which is what lets the split-task path below feed it a store
/// assembled from per-task slices and still get the serial result.
void select_maximal(const CoverStore& covers, EnumerationScratch& scratch) {
  // Keep the inclusion-maximal covers. Scanning in size-descending order, a
  // cover with any strict superset in the store also has one among the
  // already-accepted maximal covers (subset is transitive and equal-size
  // containment is equality, impossible after dedup), so each cover is
  // checked against the few survivors only.
  auto& order = scratch.order;
  order.resize(covers.count());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ra = covers.run(a);
    const auto rb = covers.run(b);
    if (ra.size() != rb.size()) return ra.size() > rb.size();
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(), rb.end());
  });
  auto& maximal = scratch.maximal;
  for (const std::uint32_t candidate : order) {
    bool covered = false;
    for (const std::uint32_t other : maximal) {
      if (run_is_strict_subset(covers.run(candidate), covers.run(other))) {
        covered = true;
        break;
      }
    }
    if (!covered) maximal.push_back(candidate);
  }
  // Family order: lexicographic by members (a shorter prefix sorts first),
  // matching DeviceSet's vector comparison project-wide.
  std::sort(maximal.begin(), maximal.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ra = covers.run(a);
    const auto rb = covers.run(b);
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(), rb.end());
  });
}

/// Core of enumerate_maximal_windows over reusable scratch: fills
/// scratch.maximal with the store indices of the inclusion-maximal covers,
/// in lexicographic (by members) order.
void enumerate_into(const StatePair& state, const Params& params,
                    std::span<const DeviceId> pool_in,
                    std::optional<DeviceId> anchor, OracleCounters* counters,
                    EnumerationScratch& scratch) {
  std::array<double, Point::kMaxDim> anchor_coords{};
  const double* anchor_joint =
      prepare_pool(state, params, pool_in, anchor, anchor_coords, scratch);
  if (scratch.pool.empty()) return;
  slide(state, params.window(), scratch.pool, 0, anchor_joint, scratch, counters);
  select_maximal(scratch.covers, scratch);
}

/// Depth-0 slice of the unanchored slide for one split task: replays the
/// serial slide's top level — same edge list, same per-edge counters, same
/// subtree recursion — but only over the task's [begin, end) share of the
/// edge list, leaving the task's covers in scratch.covers (per-task dedup
/// only; the cross-task dedup happens at merge). Preconditions: prepare_pool
/// ran (unanchored, pool non-empty) and the depth-0 tight-cluster cut does
/// NOT fire (the split planner never splits tight components), so the
/// serial slide would have entered this exact edge loop. Summed over a
/// task partition of the edge list, the counters reproduce the serial
/// enumeration's exactly.
void slide_edge_slice(const StatePair& state, double window,
                      std::size_t task_index, std::size_t task_count,
                      EnumerationScratch& scratch, OracleCounters* counters) {
  const std::size_t dim = scratch.dim_order[0];
  const double* col = state.joint_col(dim);
  auto& edges = scratch.edges[0];
  edges.clear();
  for (const DeviceId id : scratch.pool) edges.push_back(col[id]);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const std::size_t edge_count = edges.size();
  const std::size_t begin = task_index * edge_count / task_count;
  const std::size_t end = (task_index + 1) * edge_count / task_count;
  const kernels::Ops& ops = kernels::dispatch();
  const std::uint32_t* qcol = state.qcol(dim);
  auto& next = scratch.next[0];
  for (std::size_t e = begin; e < end; ++e) {
    if (counters != nullptr) ++counters->windows_explored;
    const kernels::WindowBoundsQ bounds =
        kernels::window_bounds(edges[e], edges[e] + window);
    next.resize(scratch.pool.size());
    next.resize(ops.filter_in_window(qcol, col, scratch.pool.data(),
                                     scratch.pool.size(), bounds, next.data()));
    slide(state, window, next, 1, nullptr, scratch, counters);
  }
}

}  // namespace

bool spans_fit_window(const StatePair& state, double window,
                      std::span<const DeviceId> active,
                      std::span<const std::size_t> dims) noexcept {
  // min/max of doubles is exact and order-free, so the kernel reduction is
  // byte-identical to the plain scan on every input.
  const kernels::Ops& ops = kernels::dispatch();
  for (const std::size_t t : dims) {
    double lo;
    double hi;
    ops.minmax_ids(state.joint_col(t), active.data(), active.size(), &lo, &hi);
    if (hi - lo > window) return false;
  }
  return true;
}

std::vector<DeviceSet> enumerate_maximal_windows(const StatePair& state,
                                                 const Params& params,
                                                 std::vector<DeviceId> pool,
                                                 std::optional<DeviceId> anchor,
                                                 OracleCounters* counters) {
  EnumerationScratch scratch;
  enumerate_into(state, params, pool, anchor, counters, scratch);
  std::vector<DeviceSet> family;
  family.reserve(scratch.maximal.size());
  for (const std::uint32_t i : scratch.maximal) {
    const auto run = scratch.covers.run(i);
    family.push_back(
        DeviceSet::from_sorted(std::vector<DeviceId>(run.begin(), run.end())));
  }
  return family;
}

MotionPlane::MotionPlane(const StatePair& state, Params params)
    : state_(state), params_(params) {
  params_.validate();
  grid_.emplace(state, state.abnormal(), std::max(params_.window(), kMinGridCell));
  const GridSource source(*grid_);
  build(source, nullptr, 0, nullptr);
}

MotionPlane::MotionPlane(const StatePair& state, Params params,
                         const NeighbourSource& source, WorkerPool* pool,
                         std::size_t component_fanout, PlaneBuildLanes* lanes,
                         std::uint64_t arena_budget_bytes)
    : state_(state), params_(params), source_(&source) {
  params_.validate();
  budget_.limit = arena_budget_bytes;
  build(source, pool, component_fanout, lanes);
}

void MotionPlane::build(const NeighbourSource& source, WorkerPool* pool,
                        std::size_t component_fanout, PlaneBuildLanes* lanes) {
  const DeviceSet& abnormal = state_.abnormal();
  ids_.assign(abnormal.begin(), abnormal.end());
  const std::size_t m = ids_.size();

  // Dense rank lookup: rank_of / covers / intern_run become array reads.
  rank_lookup_.assign(m == 0 ? 0 : ids_.back() + 1, kNoRank);
  for (std::size_t rank = 0; rank < m; ++rank) {
    rank_lookup_[ids_[rank]] = static_cast<std::uint32_t>(rank);
  }

  // Pass 1: neighbourhoods, one grid query per device into the flat arena.
  // With a pool, contiguous rank chunks query concurrently (the sources are
  // immutable during the build, so concurrent const queries are safe) into
  // per-chunk arenas concatenated in rank order — the arena and offsets come
  // out byte-identical to the serial pass.
  counters_.neighbourhood_queries += m;
  nbr_offsets_.reserve(m + 1);
  nbr_offsets_.push_back(0);
  constexpr std::size_t kQueryChunk = 256;
  if (pool != nullptr && m >= 2 * kQueryChunk) {
    const std::size_t chunks = (m + kQueryChunk - 1) / kQueryChunk;
    std::vector<std::vector<DeviceId>> chunk_arena(chunks);
    pool->for_each(
        chunks, 2,
        [&](std::size_t c) {
          thread_local std::vector<DeviceId> nbr_scratch;
          const std::size_t begin = c * kQueryChunk;
          const std::size_t end = std::min(m, begin + kQueryChunk);
          std::vector<DeviceId>& arena = chunk_arena[c];
          for (std::size_t rank = begin; rank < end; ++rank) {
            source.within_into(ids_[rank], params_.window(), nbr_scratch);
            arena.push_back(static_cast<DeviceId>(nbr_scratch.size()));
            arena.insert(arena.end(), nbr_scratch.begin(), nbr_scratch.end());
          }
        },
        0, lanes != nullptr ? &lanes->query_lane_ms : nullptr);
    for (const std::vector<DeviceId>& arena : chunk_arena) {
      budget_.charge(arena.size() * sizeof(DeviceId));
      for (std::size_t i = 0; i < arena.size();) {
        const std::size_t len = arena[i++];
        nbr_arena_.insert(nbr_arena_.end(), arena.begin() + static_cast<std::ptrdiff_t>(i),
                          arena.begin() + static_cast<std::ptrdiff_t>(i + len));
        nbr_offsets_.push_back(static_cast<std::uint32_t>(nbr_arena_.size()));
        i += len;
      }
    }
  } else {
    std::vector<DeviceId> nbr_scratch;
    for (const DeviceId j : ids_) {
      source.within_into(j, params_.window(), nbr_scratch);
      budget_.charge(nbr_scratch.size() * sizeof(DeviceId));
      nbr_arena_.insert(nbr_arena_.end(), nbr_scratch.begin(), nbr_scratch.end());
      nbr_offsets_.push_back(static_cast<std::uint32_t>(nbr_arena_.size()));
    }
  }

  // Pass 2: connected components of the 2r-interaction graph (edges are the
  // neighbourhood lists), then ONE unanchored enumeration per component.
  // Correctness hinges on an exact identity: a motion that is
  // inclusion-maximal among the motions containing j is inclusion-maximal
  // among ALL motions (every superset of it still contains j), so
  // M(j) == { M in maxMotions(component of j) : j in M }. This is the
  // "compute each A_k's motion families once" inversion — a blob of size b
  // is slid once instead of once per member. Validated against brute-force
  // subset enumeration by tests/core/motion_oracle_test.cc.
  const std::vector<std::vector<DeviceId>> components =
      connected_components(ids_, [&](std::size_t rank) {
        return std::span<const DeviceId>{nbr_arena_.data() + nbr_offsets_[rank],
                                         nbr_offsets_[rank + 1] - nbr_offsets_[rank]};
      });
  const std::size_t comp_count = components.size();

  // Component-indexed arenas: each component's sorted member list is the
  // comp-rank universe its motions' membership bitsets index into (the
  // characterizer's word-parallel Theorem 6/7 path).
  budget_.charge(m * (3 * sizeof(std::uint32_t)) +
                 (comp_count + 1) * sizeof(std::uint32_t));
  comp_of_.resize(m);
  comp_rank_of_.resize(m);
  comp_member_offsets_.reserve(comp_count + 1);
  comp_member_offsets_.push_back(0);
  comp_members_.reserve(m);
  for (std::size_t ci = 0; ci < comp_count; ++ci) {
    const std::vector<DeviceId>& comp = components[ci];
    for (std::size_t cr = 0; cr < comp.size(); ++cr) {
      const std::uint32_t rank = rank_lookup_[comp[cr]];
      comp_of_[rank] = static_cast<std::uint32_t>(ci);
      comp_rank_of_[rank] = static_cast<std::uint32_t>(cr);
    }
    comp_members_.insert(comp_members_.end(), comp.begin(), comp.end());
    comp_member_offsets_.push_back(static_cast<std::uint32_t>(comp_members_.size()));
  }

  // Family enumeration, planned as a flat task list. Most components are
  // one task each (the full enumerate + maximality-select, exactly the
  // serial walk). A component that would monopolize a lane — estimated
  // enumeration cost = member count x per-dimension window-span sum — and
  // is NOT a tight cluster (tight ones collapse to one bounding-box scan)
  // is split across several tasks by top-level edge ranges; its maximality
  // selection then runs at merge over the task covers. The flat list keeps
  // the fan-out a single for_each (nested pool sections would deadlock on
  // section_mutex_), and the split decision reads only the component data,
  // never the pool — so every pool size plans, and produces, the same
  // thing. Tasks are DISPATCHED costliest-first (classic LPT against skew)
  // but write private slots merged in plan order, so scheduling cannot leak
  // into results.
  const double window = params_.window();
  struct EnumTask {
    std::uint32_t comp;
    std::uint32_t task_index;
    std::uint32_t task_count;
    std::uint64_t cost;  ///< dispatch-priority estimate for this task
  };
  struct TaskResult {
    std::vector<DeviceId> arena;            ///< concatenated runs
    std::vector<std::uint32_t> offsets{0};  ///< run boundaries
    OracleCounters counters;
    bool final_family = false;  ///< runs are the finished family (1-task path)
  };
  constexpr std::uint64_t kSplitGrain = 4096;
  constexpr std::uint32_t kMaxTasksPerComponent = 32;
  std::vector<EnumTask> tasks;
  tasks.reserve(comp_count);
  std::vector<std::uint32_t> comp_task_begin(comp_count + 1, 0);
  const kernels::Ops& ops = kernels::dispatch();
  for (std::size_t ci = 0; ci < comp_count; ++ci) {
    const std::vector<DeviceId>& comp = components[ci];
    std::uint64_t span_weight = 0;
    bool tight = true;
    for (std::size_t t = 0; t < state_.joint_dim(); ++t) {
      double lo;
      double hi;
      ops.minmax_ids(state_.joint_col(t), comp.data(), comp.size(), &lo, &hi);
      const double span = hi - lo;
      if (span > window) tight = false;
      span_weight +=
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(span / window)));
    }
    const std::uint64_t cost = comp.size() * span_weight;
    std::uint32_t task_count = 1;
    if (pool != nullptr && !tight && cost >= 2 * kSplitGrain) {
      task_count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          std::min<std::uint64_t>(cost / kSplitGrain, kMaxTasksPerComponent),
          comp.size()));
    }
    comp_task_begin[ci] = static_cast<std::uint32_t>(tasks.size());
    for (std::uint32_t t = 0; t < task_count; ++t) {
      tasks.push_back(EnumTask{static_cast<std::uint32_t>(ci), t, task_count,
                               cost / task_count});
    }
  }
  comp_task_begin[comp_count] = static_cast<std::uint32_t>(tasks.size());

  std::vector<std::uint32_t> dispatch(tasks.size());
  std::iota(dispatch.begin(), dispatch.end(), 0u);
  std::stable_sort(dispatch.begin(), dispatch.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return tasks[a].cost > tasks[b].cost;
                   });

  std::vector<TaskResult> results(tasks.size());
  const auto run_task = [&](std::size_t slot) {
    // One scratch per lane, reused across tasks AND planes (CoverStore and
    // the edge/next vectors keep their capacity; contents are cleared by
    // prepare_pool). Lanes are distinct threads, so thread_local is exactly
    // per-lane; the serial loop is one lane reusing one scratch.
    thread_local EnumerationScratch scratch;
    scratch.covers.budget = &budget_;
    const EnumTask& task = tasks[dispatch[slot]];
    TaskResult& out = results[dispatch[slot]];
    if (task.task_count == 1) {
      out.final_family = true;
      ++out.counters.enumeration_calls;
      enumerate_into(state_, params_, components[task.comp], std::nullopt,
                     &out.counters, scratch);
      // scratch.maximal is lexicographic by members; appending in this
      // order keeps every member's family in the project-wide order.
      for (const std::uint32_t i : scratch.maximal) {
        const auto run = scratch.covers.run(i);
        out.arena.insert(out.arena.end(), run.begin(), run.end());
        out.offsets.push_back(static_cast<std::uint32_t>(out.arena.size()));
      }
      return;
    }
    // Split path: this task slides its share of the top-level edges and
    // exports its (locally deduped) covers in store order; one task carries
    // the component's enumeration_calls tick.
    if (task.task_index == 0) ++out.counters.enumeration_calls;
    std::array<double, Point::kMaxDim> anchor_coords{};
    prepare_pool(state_, params_, components[task.comp], std::nullopt,
                 anchor_coords, scratch);
    slide_edge_slice(state_, window, task.task_index, task.task_count, scratch,
                     &out.counters);
    for (std::uint32_t i = 0; i < scratch.covers.count(); ++i) {
      const auto run = scratch.covers.run(i);
      out.arena.insert(out.arena.end(), run.begin(), run.end());
      out.offsets.push_back(static_cast<std::uint32_t>(out.arena.size()));
    }
  };
  if (pool != nullptr) {
    pool->for_each(tasks.size(), component_fanout, run_task, 0,
                   lanes != nullptr ? &lanes->enumerate_lane_ms : nullptr);
  } else {
    for (std::size_t slot = 0; slot < tasks.size(); ++slot) run_task(slot);
  }

  // Deterministic merge: intern runs and assign families component by
  // component, in discovery order. Split components re-assemble their cover
  // store from the task slices in task (= edge) order — per-task dedup kept
  // first occurrences within a slice, the merge add() keeps the first
  // across slices, so the assembled store holds exactly the serial store's
  // runs — then run the same content-based maximality selection.
  motion_offsets_.push_back(0);
  std::vector<std::vector<MotionId>> family_of(m);
  std::vector<std::vector<MotionId>> dense_of(m);
  EnumerationScratch merge_scratch;
  const auto intern_run = [&](std::span<const DeviceId> run) {
    const MotionId mid = intern(run);
    motion_component_.push_back(comp_of_[rank_lookup_[run[0]]]);
    const bool dense = run.size() > params_.tau;
    counters_.motions_shared += run.size() - 1;  // one arena run, |M| families
    for (const DeviceId member : run) {
      const std::uint32_t rank = rank_lookup_[member];
      family_of[rank].push_back(mid);
      if (dense) dense_of[rank].push_back(mid);
    }
  };
  for (std::size_t ci = 0; ci < comp_count; ++ci) {
    for (std::uint32_t t = comp_task_begin[ci]; t < comp_task_begin[ci + 1]; ++t) {
      const OracleCounters& c = results[t].counters;
      counters_.windows_explored += c.windows_explored;
      counters_.covers_generated += c.covers_generated;
      counters_.enumeration_calls += c.enumeration_calls;
    }
    const TaskResult& first = results[comp_task_begin[ci]];
    if (first.final_family) {
      for (std::size_t i = 0; i + 1 < first.offsets.size(); ++i) {
        intern_run({first.arena.data() + first.offsets[i],
                    first.offsets[i + 1] - first.offsets[i]});
      }
      continue;
    }
    merge_scratch.covers.clear();
    merge_scratch.maximal.clear();
    for (std::uint32_t t = comp_task_begin[ci]; t < comp_task_begin[ci + 1]; ++t) {
      const TaskResult& part = results[t];
      for (std::size_t i = 0; i + 1 < part.offsets.size(); ++i) {
        merge_scratch.covers.add({part.arena.data() + part.offsets[i],
                                  part.offsets[i + 1] - part.offsets[i]});
      }
    }
    select_maximal(merge_scratch.covers, merge_scratch);
    for (const std::uint32_t i : merge_scratch.maximal) {
      intern_run(merge_scratch.covers.run(i));
    }
  }

  maximal_offsets_.reserve(m + 1);
  maximal_offsets_.push_back(0);
  dense_offsets_.reserve(m + 1);
  dense_offsets_.push_back(0);
  for (std::size_t rank = 0; rank < m; ++rank) {
    maximal_ids_.insert(maximal_ids_.end(), family_of[rank].begin(),
                        family_of[rank].end());
    dense_ids_.insert(dense_ids_.end(), dense_of[rank].begin(),
                      dense_of[rank].end());
    maximal_offsets_.push_back(static_cast<std::uint32_t>(maximal_ids_.size()));
    dense_offsets_.push_back(static_cast<std::uint32_t>(dense_ids_.size()));
  }

  // Membership bitsets over comp-ranks: one word-run per motion, plus per
  // device the AND of its dense motions' runs (all-ones when the dense
  // family is empty — the vacuous truth of "every dense motion of ell
  // contains j"). These are what turn the characterizer's J/L split,
  // Theorem 6 intersection counts, and Theorem 7 survivor counts into
  // bit tests, ANDs, and popcounts.
  const std::size_t motions = motion_count();
  motion_bits_offsets_.reserve(motions + 1);
  motion_bits_offsets_.push_back(0);
  for (MotionId mid = 0; mid < motions; ++mid) {
    const std::size_t words = component_words(motion_component_[mid]);
    budget_.charge(words * sizeof(std::uint64_t));
    const std::size_t at = motion_bits_.size();
    motion_bits_.resize(at + words, 0);
    for (const DeviceId member : members(mid)) {
      const std::uint32_t cr = comp_rank_of_[rank_lookup_[member]];
      motion_bits_[at + (cr >> 6)] |= 1ULL << (cr & 63);
    }
    motion_bits_offsets_.push_back(static_cast<std::uint32_t>(motion_bits_.size()));
  }
  inter_bits_offsets_.reserve(m + 1);
  inter_bits_offsets_.push_back(0);
  for (std::size_t rank = 0; rank < m; ++rank) {
    const std::uint32_t ci = comp_of_[rank];
    const std::size_t comp_size = component_members(ci).size();
    const std::size_t words = (comp_size + 63) / 64;
    budget_.charge(words * sizeof(std::uint64_t));
    const std::size_t at = inter_bits_.size();
    if (dense_of[rank].empty()) {
      inter_bits_.resize(at + words, ~std::uint64_t{0});
      if (comp_size & 63) {
        inter_bits_.back() = (1ULL << (comp_size & 63)) - 1;  // mask the tail
      }
    } else {
      const auto first = motion_bits(dense_of[rank][0]);
      inter_bits_.insert(inter_bits_.end(), first.begin(), first.end());
      for (std::size_t i = 1; i < dense_of[rank].size(); ++i) {
        const auto run = motion_bits(dense_of[rank][i]);
        for (std::size_t k = 0; k < words; ++k) inter_bits_[at + k] &= run[k];
      }
    }
    inter_bits_offsets_.push_back(static_cast<std::uint32_t>(inter_bits_.size()));
  }
}

std::vector<DeviceId> MotionPlane::within(DeviceId j, double radius) const {
  std::vector<DeviceId> out;
  if (grid_.has_value()) {
    grid_->within_into(j, radius, out);
  } else {
    source_->within_into(j, radius, out);
  }
  return out;
}

bool MotionPlane::covers(DeviceId j) const noexcept {
  return j < rank_lookup_.size() && rank_lookup_[j] != kNoRank;
}

std::span<const DeviceId> MotionPlane::neighbourhood(DeviceId j) const {
  const std::size_t rank = rank_of(j);
  return {nbr_arena_.data() + nbr_offsets_[rank],
          nbr_offsets_[rank + 1] - nbr_offsets_[rank]};
}

std::span<const MotionPlane::MotionId> MotionPlane::maximal(DeviceId j) const {
  const std::size_t rank = rank_of(j);
  return {maximal_ids_.data() + maximal_offsets_[rank],
          maximal_offsets_[rank + 1] - maximal_offsets_[rank]};
}

std::span<const MotionPlane::MotionId> MotionPlane::dense(DeviceId j) const {
  const std::size_t rank = rank_of(j);
  return {dense_ids_.data() + dense_offsets_[rank],
          dense_offsets_[rank + 1] - dense_offsets_[rank]};
}

bool MotionPlane::motion_contains(MotionId m, DeviceId id) const noexcept {
  // O(1) bit test when id is abnormal and in the motion's component; a
  // motion can only contain abnormal members, so anything else is a miss.
  if (id >= rank_lookup_.size()) return false;
  const std::uint32_t rank = rank_lookup_[id];
  if (rank == kNoRank || comp_of_[rank] != motion_component_[m]) return false;
  const std::uint32_t cr = comp_rank_of_[rank];
  return (motion_bits(m)[cr >> 6] >> (cr & 63)) & 1;
}

std::size_t MotionPlane::rank_of(DeviceId j) const {
  if (j >= rank_lookup_.size() || rank_lookup_[j] == kNoRank) {
    throw std::invalid_argument("MotionPlane: device " + std::to_string(j) +
                                " is not in A_k");
  }
  return rank_lookup_[j];
}

MotionPlane::MotionId MotionPlane::intern(std::span<const DeviceId> motion) {
  // Uniqueness holds by construction: within a component the cover store
  // already dedups, and components have disjoint member sets — so every
  // call appends a new distinct run. The sharing the arena buys is one run
  // serving every member's family list.
  const auto mid = static_cast<MotionId>(motion_count());
  budget_.charge(motion.size() * sizeof(DeviceId));
  motion_arena_.insert(motion_arena_.end(), motion.begin(), motion.end());
  motion_offsets_.push_back(static_cast<std::uint32_t>(motion_arena_.size()));
  ++counters_.motions_stored;
  return mid;
}

}  // namespace acn
