#include "core/motion.hpp"

#include <limits>

#include "core/kernels/kernels.hpp"

namespace acn {

JointBox::JointBox(std::size_t joint_dim) noexcept : dim_(joint_dim) {
  lo_.fill(std::numeric_limits<double>::infinity());
  hi_.fill(-std::numeric_limits<double>::infinity());
}

void JointBox::add(const Point& joint_position) noexcept {
  for (std::size_t i = 0; i < dim_; ++i) {
    const double x = joint_position[i];
    if (x < lo_[i]) lo_[i] = x;
    if (x > hi_[i]) hi_[i] = x;
  }
  ++count_;
}

double JointBox::side() const noexcept {
  if (count_ < 2) return 0.0;
  double best = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double extent = hi_[i] - lo_[i];
    if (extent > best) best = extent;
  }
  return best;
}

bool JointBox::within(double window) const noexcept {
  if (count_ < 2) return true;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (hi_[i] - lo_[i] > window) return false;
  }
  return true;
}

bool JointBox::would_fit(const Point& joint_position, double window) const noexcept {
  if (count_ == 0) return true;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double x = joint_position[i];
    const double lo = x < lo_[i] ? x : lo_[i];
    const double hi = x > hi_[i] ? x : hi_[i];
    if (hi - lo > window) return false;
  }
  return true;
}

bool is_r_consistent(const Snapshot& snapshot, const DeviceSet& set, double r) {
  JointBox box(snapshot.dim());
  for (const DeviceId j : set) box.add(snapshot[j]);
  return box.within(2.0 * r);
}

bool has_consistent_motion(const StatePair& state, const DeviceSet& set, double r) {
  // Column-wise exact min/max over the SoA joint layout (kernel-dispatched;
  // min/max of doubles is exact, so this matches the JointBox scan byte for
  // byte) with a per-dimension early exit.
  if (set.empty()) return true;  // JointBox::within is vacuously true
  const auto ids = set.ids();
  const kernels::Ops& ops = kernels::dispatch();
  const double window = 2.0 * r;
  for (std::size_t t = 0; t < state.joint_dim(); ++t) {
    double lo;
    double hi;
    ops.minmax_ids(state.joint_col(t), ids.data(), ids.size(), &lo, &hi);
    if (hi - lo > window) return false;
  }
  return true;
}

double joint_diameter(const StatePair& state, const DeviceSet& set) {
  JointBox box(state.joint_dim());
  for (const DeviceId j : set) box.add(state.joint(j));
  return box.side();
}

bool motion_with_extra(const StatePair& state, const DeviceSet& set, DeviceId extra,
                       double r) {
  JointBox box(state.joint_dim());
  for (const DeviceId j : set) box.add(state.joint(j));
  if (!box.within(2.0 * r)) return false;
  return box.would_fit(state.joint(extra), 2.0 * r);
}

bool is_maximal_motion_in(const StatePair& state, const DeviceSet& set,
                          std::span<const DeviceId> universe, double r) {
  if (!has_consistent_motion(state, set, r)) return false;
  JointBox box(state.joint_dim());
  for (const DeviceId j : set) box.add(state.joint(j));
  for (const DeviceId candidate : universe) {
    if (set.contains(candidate)) continue;
    if (box.would_fit(state.joint(candidate), 2.0 * r)) return false;
  }
  return true;
}

}  // namespace acn
