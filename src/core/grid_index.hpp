// Uniform-grid spatial index over the abnormal devices, supporting the
// neighbourhood queries of the local algorithms: N(j) = devices within 2r of
// j in the joint space (the paper shows trajectories within 4r of a device
// are all it ever needs — two grid hops).
//
// The grid is built on *current* positions (cell side = 2r) and candidate
// hits are filtered by exact joint distance, so correctness never depends on
// the grid geometry — only speed does. Cell keys are packed incrementally
// from per-dimension indices (no per-visit coordinate vector), and the
// batch-query overload reuses a caller-owned output buffer so the motion
// plane's per-device neighbourhood pass allocates nothing per visit.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/shard_map.hpp"
#include "core/state.hpp"

namespace acn {

class WorkerPool;

/// Floor for grid cell sides so the index degenerates gracefully when the
/// consistency window 2r approaches 0. Shared by every 2r grid build
/// (MotionPlane, PartitionEnumerator) so they agree on the same geometry.
inline constexpr double kMinGridCell = 1e-9;

/// Connected components over the sorted `ids`, where `neighbours_of(rank)`
/// yields the (sorted) neighbours of ids[rank] among `ids` — the
/// 2r-interaction graph when the lists come from a window-radius grid
/// query. Every component is sorted by id; components are ordered by
/// smallest member. Shared by the MotionPlane build (arena-backed lists)
/// and PartitionEnumerator::components (on-the-fly grid queries).
[[nodiscard]] std::vector<std::vector<DeviceId>> connected_components(
    std::span<const DeviceId> ids,
    const std::function<std::span<const DeviceId>(std::size_t)>& neighbours_of);

class GridIndex {
 public:
  /// Indexes `members` (typically A_k) of `state` with cell side `cell`.
  /// Requires cell > 0.
  GridIndex(const StatePair& state, const DeviceSet& members, double cell);

  /// All indexed devices ell with joint Chebyshev distance(ell, j) <= radius,
  /// including j itself when indexed. Sorted by id. The query device does not
  /// have to be a member. `radius` may exceed the cell size (4r queries).
  [[nodiscard]] std::vector<DeviceId> within(DeviceId j, double radius) const;

  /// Same query into a caller-owned buffer (cleared first). The motion-plane
  /// build issues one query per abnormal device; reusing `out` keeps that
  /// pass allocation-free.
  void within_into(DeviceId j, double radius, std::vector<DeviceId>& out) const;

  [[nodiscard]] std::size_t member_count() const noexcept { return member_count_; }

 private:
  [[nodiscard]] std::uint64_t cell_key(const Point& curr_position) const noexcept;

  const StatePair& state_;
  double cell_;
  std::size_t member_count_;
  std::unordered_map<std::uint64_t, std::vector<DeviceId>> cells_;
};

/// Incremental uniform grid over the CURRENT positions of the WHOLE fleet,
/// owned by the streaming engine and carried across intervals: after each
/// StatePair::advance only the devices whose position changed are
/// re-bucketed (O(|moved|) per interval), never the n-device rebuild the
/// per-snapshot GridIndex pays. Queries filter candidates by a caller-owned
/// membership flag (the abnormal mask) and then by exact joint distance, so
/// a FleetGrid query restricted to A_k returns bit-for-bit the same sorted
/// id list as a GridIndex built over A_k — the incremental-vs-scratch
/// equivalence the engine's tests pin down.
class FleetGrid {
 public:
  /// Requires cell > 0 (use max(2r, kMinGridCell) to match GridIndex).
  explicit FleetGrid(double cell);

  /// Indexes every device of `state` at its current position.
  void rebuild(const StatePair& state);

  /// Re-buckets `moved` devices after one StatePair::advance. Contract: the
  /// ids come from that advance's `moved` output, so each device's previous
  /// position (its old bucket) is state.prev_pos — apply exactly once per
  /// roll, before any query against the new interval. Devices removed from
  /// the grid (churn) must not appear in `moved`; re-insert them instead.
  void apply(const StatePair& state, std::span<const DeviceId> moved);

  /// Churn path: buckets device j at its CURRENT position (a device joining
  /// the fleet, or re-entering after retirement). j must not already be
  /// indexed — inserting a present device would double-count it in every
  /// query crossing its bucket.
  void insert(const StatePair& state, DeviceId j);

  /// Churn path: unbuckets device j, looked up at its CURRENT position (it
  /// must not have moved since the last rebuild/apply/insert). Throws
  /// std::logic_error if j is not found there — a silent no-op would mask a
  /// stale-position bug upstream.
  void remove(const StatePair& state, DeviceId j);

  /// Devices with member_flag[id] != 0 within joint Chebyshev distance
  /// `radius` of j, sorted by id, into a caller-owned buffer (cleared
  /// first). Pass an empty span to query the whole fleet.
  void within_into(const StatePair& state, DeviceId j, double radius,
                   std::span<const std::uint8_t> member_flag,
                   std::vector<DeviceId>& out) const;

  [[nodiscard]] std::size_t device_count() const noexcept { return device_count_; }
  [[nodiscard]] double cell() const noexcept { return cell_; }

 private:
  double cell_;
  std::size_t device_count_ = 0;
  std::unordered_map<std::uint64_t, std::vector<DeviceId>> cells_;
};

/// FleetGrid partitioned across spatial shards (ShardMap stripes over the
/// first-dimension cell index). Each shard owns a private cell map, so the
/// per-interval re-bucketing splits into two phases the engine can time and
/// parallelize separately:
///
///   stage(state, moved)        — the HALO-EXCHANGE step: one serial
///     O(|moved|) routing pass that turns each move into a remove op for the
///     old position's owner shard and an insert op for the new one's (cells
///     unchanged are dropped, exactly like FleetGrid::apply). Crossing a
///     stripe boundary is just two ops landing on different shards.
///   apply_staged(state, pool)  — each shard applies its own op queue; the
///     writes are disjoint by construction (a shard only ever touches its
///     private map), so the fan-out takes no locks. Ops apply in routing
///     order, which is the serial `moved` order — bucket contents come out
///     byte-identical to an unsharded FleetGrid fed the same rolls.
///
/// Queries resolve each scanned cell to its owner shard by pure ShardMap
/// arithmetic and read the neighbour shard's map directly — between
/// apply_staged and the next stage all shard maps are immutable, so these
/// cross-shard reads are the "read-only neighbour snapshot" side of the halo
/// exchange and need no synchronization. Results are sorted by id and
/// byte-identical to FleetGrid::within_into for every shard count.
class ShardedFleetGrid {
 public:
  /// Requires cell > 0; shards == 0 collapses to 1 (still valid, still
  /// byte-identical — sharding never changes results, only layout).
  ShardedFleetGrid(double cell, unsigned shards);

  /// Indexes every device of `state` at its current position: one serial
  /// routing pass, then per-shard map builds fanned out on `pool`.
  void rebuild(const StatePair& state, WorkerPool* pool = nullptr,
               std::vector<double>* lane_ms = nullptr);

  /// Routes the moves of one StatePair::advance into per-shard op queues
  /// (see class comment). Same contract as FleetGrid::apply: call exactly
  /// once per roll with that roll's `moved` output, before apply_staged.
  void stage(const StatePair& state, std::span<const DeviceId> moved);

  /// Applies every staged op queue, one shard per work item. Queues are
  /// left empty. Queries are only valid between apply_staged and the next
  /// stage.
  void apply_staged(const StatePair& state, WorkerPool* pool = nullptr,
                    std::vector<double>* lane_ms = nullptr);

  /// Churn paths, same contracts as FleetGrid::insert/remove; the op is
  /// routed to the owner shard and applied immediately (churn happens at
  /// interval boundaries, outside the staged window).
  void insert(const StatePair& state, DeviceId j);
  void remove(const StatePair& state, DeviceId j);

  /// Same query contract as FleetGrid::within_into: members within joint
  /// Chebyshev `radius` of j, sorted by id, into a caller-owned buffer.
  void within_into(const StatePair& state, DeviceId j, double radius,
                   std::span<const std::uint8_t> member_flag,
                   std::vector<DeviceId>& out) const;

  [[nodiscard]] std::size_t device_count() const noexcept { return device_count_; }
  [[nodiscard]] double cell() const noexcept { return map_.cell(); }
  [[nodiscard]] const ShardMap& shard_map() const noexcept { return map_; }
  [[nodiscard]] unsigned shards() const noexcept { return map_.shards(); }
  /// Ops routed by the last stage() still awaiting apply_staged().
  [[nodiscard]] std::size_t staged_op_count() const noexcept;

 private:
  /// One routed bucket edit: insert (or remove) `id` at cell `key` of the
  /// owning shard.
  struct Op {
    std::uint64_t key;
    DeviceId id;
    bool is_insert;
  };
  struct Shard {
    std::unordered_map<std::uint64_t, std::vector<DeviceId>> cells;
    std::vector<Op> staged;
  };

  void apply_op(Shard& shard, const Op& op);

  ShardMap map_;
  std::size_t device_count_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace acn
