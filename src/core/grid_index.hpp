// Uniform-grid spatial index over the abnormal devices, supporting the
// neighbourhood queries of the local algorithms: N(j) = devices within 2r of
// j in the joint space (the paper shows trajectories within 4r of a device
// are all it ever needs — two grid hops).
//
// The grid is built on *current* positions (cell side = 2r) and candidate
// hits are filtered by exact joint distance, so correctness never depends on
// the grid geometry — only speed does.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/device_set.hpp"
#include "core/state.hpp"

namespace acn {

class GridIndex {
 public:
  /// Indexes `members` (typically A_k) of `state` with cell side `cell`.
  /// Requires cell > 0.
  GridIndex(const StatePair& state, const DeviceSet& members, double cell);

  /// All indexed devices ell with joint Chebyshev distance(ell, j) <= radius,
  /// including j itself when indexed. Sorted by id. The query device does not
  /// have to be a member. `radius` may exceed the cell size (4r queries).
  [[nodiscard]] std::vector<DeviceId> within(DeviceId j, double radius) const;

  [[nodiscard]] std::size_t member_count() const noexcept { return member_count_; }

 private:
  [[nodiscard]] std::uint64_t cell_key(const Point& curr_position) const noexcept;

  const StatePair& state_;
  double cell_;
  std::size_t member_count_;
  std::unordered_map<std::uint64_t, std::vector<DeviceId>> cells_;
};

}  // namespace acn
