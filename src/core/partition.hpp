// Anomaly partitions (Definition 6) and their construction (Algorithm 1,
// Lemma 2).
//
// A partition P_k of A_k into disjoint r-consistent motions B_1..B_l is an
// *anomaly partition* iff
//   C1: no subset of the union of sparse classes (|B_i| <= tau) forms a
//       tau-dense r-consistent motion, and
//   C2: no such subset can merge with a dense class into a larger motion.
//
// Both conditions quantify over all subsets; `is_valid_anomaly_partition`
// uses the polynomially checkable equivalents proved below:
//   C1  <=>  every maximal motion inside the sparse union has <= tau members
//            (any dense motion would be contained in a maximal one);
//   C2  <=>  for every dense class B_i and every single device ell of the
//            sparse union, B_i + {ell} is not an r-consistent motion
//            (a violating B yields a violating singleton ell in B, and a
//            violating singleton is itself a violating B).
//
// Reproduction note (documented in EXPERIMENTS.md): Algorithm 1 as printed
// in the paper — repeatedly extract *any* maximal motion of the remaining
// pool — does not always yield a valid anomaly partition. Counterexample
// (1-D, tau=2, r=0.125): positions {0, 0.225, 0.3, 0.325}, all abnormal,
// static trajectories. Extracting the maximal motion {0, 0.225} first leaves
// {0.3, 0.325}, and the sparse union {all four} then contains the dense
// motion {0.225, 0.3, 0.325}, violating C1. The nondeterministic choices
// must be angelic: picking {0.225, 0.3, 0.325} first succeeds. We therefore
// ship the faithful greedy (`build_greedy_partition`) plus a robust wrapper
// (`build_anomaly_partition`) that validates and retries with fresh
// randomness, preferring dense-first extraction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/device_set.hpp"
#include "common/rng.hpp"
#include "core/motion_oracle.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

/// A partition of A_k into disjoint classes. Validity as an *anomaly*
/// partition is checked separately (is_valid_anomaly_partition).
class AnomalyPartition {
 public:
  /// Throws std::invalid_argument if classes overlap or any class is empty.
  explicit AnomalyPartition(std::vector<DeviceSet> classes);

  [[nodiscard]] std::span<const DeviceSet> classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t class_count() const noexcept { return classes_.size(); }

  /// P_k(j): the class containing j; throws std::out_of_range if absent.
  [[nodiscard]] const DeviceSet& class_of(DeviceId j) const;
  [[nodiscard]] bool covers(DeviceId j) const noexcept;

  /// Union of all classes (must equal A_k for a partition *of A_k*).
  [[nodiscard]] DeviceSet support() const;

  /// M_{P_k}: devices whose class is tau-dense (Definition 7).
  [[nodiscard]] DeviceSet massive_devices(std::uint32_t tau) const;
  /// I_{P_k}: devices whose class is tau-sparse (Definition 7).
  [[nodiscard]] DeviceSet isolated_devices(std::uint32_t tau) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<DeviceSet> classes_;
};

/// Checks that `partition` is an anomaly partition of A_k for `state`:
/// classes cover A_k exactly, each class has an r-consistent motion, and
/// conditions C1 and C2 hold. On failure, *why (if non-null) receives a
/// human-readable reason.
[[nodiscard]] bool is_valid_anomaly_partition(const StatePair& state, Params params,
                                              const AnomalyPartition& partition,
                                              std::string* why = nullptr);

/// Faithful Algorithm 1: repeatedly pick a random remaining device and
/// extract a random maximal motion (of the remaining pool) containing it.
/// May yield an invalid partition in rare geometries; see header comment.
[[nodiscard]] AnomalyPartition build_greedy_partition(MotionOracle& oracle, Rng& rng);

/// Robust construction: dense-first greedy, validated; retries with fresh
/// randomness up to max_attempts, then throws std::runtime_error (never
/// observed with paper-scale inputs; exercised in tests).
[[nodiscard]] AnomalyPartition build_anomaly_partition(MotionOracle& oracle, Rng& rng,
                                                       int max_attempts = 64);

}  // namespace acn
